//! Offline stand-in for the slice of the `rand` crate used by this
//! workspace: `rand::rngs::StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::gen_range` over half-open/inclusive integer ranges, and
//! `Rng::gen_bool`.
//!
//! The workspace only relies on *seeded determinism* (equal seeds ⇒ equal
//! streams within one build of this crate), never on matching the real
//! `rand` crate's stream bit-for-bit. The generator is xoshiro256++ with a
//! SplitMix64 seed expander.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Minimal core RNG interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed via SplitMix64 expansion.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0,1]"
        );
        // 53 random bits -> uniform f64 in [0, 1)
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }
}

impl<T: RngCore> Rng for T {}

/// A range that can be sampled uniformly to produce a `T`.
pub trait SampleRange<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased uniform draw from `[0, span)` (`span == 0` means the full
/// 2^64 range) via Lemire's multiply-shift with rejection.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    // rejection zone keeps the multiply-shift exactly uniform
    let zone = span.wrapping_neg() % span;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        if (m as u64) >= zone {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_u64(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end - start) as u64; // span+1 values; u64::MAX span wraps to 0 = full range
                start.wrapping_add(uniform_u64(rng, span.wrapping_add(1)) as $t)
            }
        }
    )*};
}

macro_rules! impl_sample_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = ((end as $u).wrapping_sub(start as $u) as u64).wrapping_add(1);
                start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_uint!(u8, u16, u32, u64, usize);
impl_sample_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded PRNG: xoshiro256++.
    ///
    /// Not cryptographic, not reproducible against crates.io `rand` — only
    /// against itself, which is all the workloads generator needs.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn equal_seeds_equal_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000u64), b.gen_range(0..1000u64));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5..=5i32);
            assert!((-5..=5).contains(&y));
            let z = rng.gen_range(10..=10u32);
            assert_eq!(z, 10);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn gen_bool_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4000..6000).contains(&hits), "hits = {hits}");
    }
}
