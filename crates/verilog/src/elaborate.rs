//! Elaboration: AST → netlist, lowering control flow to muxtrees.
//!
//! The structures this pass emits are the raw material of the smaRTLy
//! optimizations:
//!
//! * `if`/`else` becomes a 2-to-1 `mux` per assigned signal;
//! * `case` becomes, per assigned signal, either a *chain* of
//!   `eq` + `mux` pairs (the paper's Listing 1 / Fig. 5 shape; default) or
//!   a single `pmux` ([`CaseLowering::Pmux`]);
//! * `always @(posedge clk)` wraps the same muxtree machinery in a `dff`,
//!   with the register's current value as the fall-through leaf.

use crate::ast::*;
use crate::error::VerilogError;
use smartly_netlist::{Design, Module, SigBit, SigSpec, TriVal, WireId};
use std::collections::HashMap;

/// How `case` statements are lowered.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum CaseLowering {
    /// Priority chain of `eq`+`mux` pairs (Yosys-without-pmux; the shape in
    /// the paper's Listing 1).
    #[default]
    Chain,
    /// A single parallel `pmux` cell per target.
    Pmux,
}

/// Options controlling elaboration.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ElaborateOptions {
    /// `case` lowering strategy.
    pub case_lowering: CaseLowering,
}

/// Elaborates a parsed file into a [`Design`].
///
/// # Errors
///
/// Returns [`VerilogError::Elaborate`] for unknown identifiers,
/// non-constant widths, unsupported constructs, and width errors.
pub fn elaborate(file: &SourceFile, options: &ElaborateOptions) -> Result<Design, VerilogError> {
    let mut design = Design::new();
    for m in &file.modules {
        design.add_module(elaborate_module(m, options)?);
    }
    Ok(design)
}

struct Ctx<'a> {
    module: Module,
    names: HashMap<String, (WireId, u32)>,
    params: HashMap<String, i64>,
    mod_name: &'a str,
    options: &'a ElaborateOptions,
}

impl<'a> Ctx<'a> {
    fn err(&self, msg: impl Into<String>) -> VerilogError {
        VerilogError::elab(self.mod_name, msg)
    }

    fn lookup(&self, name: &str) -> Result<SigSpec, VerilogError> {
        if let Some(&(w, width)) = self.names.get(name) {
            return Ok(SigSpec::from_wire(w, width));
        }
        if let Some(&v) = self.params.get(name) {
            return Ok(const_spec(v));
        }
        Err(self.err(format!("unknown identifier '{name}'")))
    }

    fn width_of(&self, name: &str) -> Result<u32, VerilogError> {
        self.names
            .get(name)
            .map(|&(_, w)| w)
            .ok_or_else(|| self.err(format!("unknown signal '{name}'")))
    }
}

fn const_spec(v: i64) -> SigSpec {
    let width = if v == 0 {
        1
    } else {
        64 - (v as u64).leading_zeros()
    };
    SigSpec::const_u64(v as u64, width.max(1))
}

fn pat_to_sig(bits: &[PatBit]) -> SigSpec {
    bits.iter()
        .map(|b| match b {
            PatBit::Zero => SigBit::Const(TriVal::Zero),
            PatBit::One => SigBit::Const(TriVal::One),
            PatBit::X | PatBit::Z => SigBit::Const(TriVal::X),
        })
        .collect()
}

fn const_eval(e: &Expr, params: &HashMap<String, i64>) -> Result<i64, String> {
    match e {
        Expr::Number { bits, .. } => {
            let mut v: i64 = 0;
            for (i, b) in bits.iter().enumerate() {
                match b {
                    PatBit::One => {
                        if i >= 63 {
                            return Err("constant too large".into());
                        }
                        v |= 1 << i;
                    }
                    PatBit::Zero => {}
                    _ => return Err("x/z in constant expression".into()),
                }
            }
            Ok(v)
        }
        Expr::Ident(name) => params
            .get(name)
            .copied()
            .ok_or_else(|| format!("'{name}' is not a parameter")),
        Expr::Unary {
            op: UnaryOp::Neg,
            expr,
        } => Ok(-const_eval(expr, params)?),
        Expr::Binary { op, lhs, rhs } => {
            let a = const_eval(lhs, params)?;
            let b = const_eval(rhs, params)?;
            match op {
                BinaryOp::Add => Ok(a + b),
                BinaryOp::Sub => Ok(a - b),
                BinaryOp::Mul => Ok(a * b),
                BinaryOp::Shl => Ok(a << b),
                BinaryOp::Shr => Ok(a >> b),
                _ => Err(format!(
                    "operator {op:?} not allowed in constant expression"
                )),
            }
        }
        _ => Err("unsupported constant expression".into()),
    }
}

fn range_width(
    range: &Option<(Expr, Expr)>,
    params: &HashMap<String, i64>,
    mod_name: &str,
) -> Result<u32, VerilogError> {
    match range {
        None => Ok(1),
        Some((msb, lsb)) => {
            let m = const_eval(msb, params).map_err(|e| VerilogError::elab(mod_name, e))?;
            let l = const_eval(lsb, params).map_err(|e| VerilogError::elab(mod_name, e))?;
            if m < l {
                return Err(VerilogError::elab(
                    mod_name,
                    format!("descending ranges only: [{m}:{l}]"),
                ));
            }
            Ok((m - l + 1) as u32)
        }
    }
}

fn elaborate_module(decl: &ModuleDecl, options: &ElaborateOptions) -> Result<Module, VerilogError> {
    let mut params: HashMap<String, i64> = HashMap::new();
    for (name, value) in &decl.params {
        let v = const_eval(value, &params).map_err(|e| VerilogError::elab(&decl.name, e))?;
        params.insert(name.clone(), v);
    }

    let mut module = Module::new(&decl.name);
    let mut names: HashMap<String, (WireId, u32)> = HashMap::new();

    for p in &decl.ports {
        let width = range_width(&p.range, &params, &decl.name)?;
        match p.dir {
            Dir::Input => {
                let spec = module.add_input(&p.name, width);
                let wire = match spec.bit(0) {
                    SigBit::Wire(w, _) => w,
                    SigBit::Const(_) => unreachable!("input ports are wires"),
                };
                names.insert(p.name.clone(), (wire, width));
            }
            Dir::Output => {
                let wire = module.add_wire(&p.name, width);
                module.mark_output(wire);
                names.insert(p.name.clone(), (wire, width));
            }
        }
    }
    for d in &decl.decls {
        if names.contains_key(&d.name) {
            continue; // port redeclaration already merged by the parser
        }
        let width = range_width(&d.range, &params, &decl.name)?;
        let wire = module.add_wire(&d.name, width);
        names.insert(d.name.clone(), (wire, width));
    }

    let mut ctx = Ctx {
        module,
        names,
        params,
        mod_name: &decl.name,
        options,
    };

    for item in &decl.items {
        match item {
            Item::Assign { lhs, rhs } => {
                let value = build_expr(&mut ctx, rhs)?;
                assign_lvalue(&mut ctx, lhs, value)?;
            }
            Item::AlwaysComb(stmt) => {
                let targets = collect_targets(stmt);
                let mut env: Env = HashMap::new();
                for t in &targets {
                    let w = ctx.width_of(t)?;
                    env.insert(t.clone(), SigSpec::xes(w));
                }
                exec_stmt(&mut ctx, stmt, &mut env)?;
                for (name, value) in env {
                    let (wire, width) = ctx.names[&name];
                    ctx.module
                        .connect(SigSpec::from_wire(wire, width), value.zext(width));
                }
            }
            Item::AlwaysFf { clock, stmt } => {
                let clk = ctx.lookup(clock)?;
                if clk.width() != 1 {
                    return Err(ctx.err(format!("clock '{clock}' must be 1 bit")));
                }
                let targets = collect_targets(stmt);
                let mut env: Env = HashMap::new();
                for t in &targets {
                    let (wire, width) = *ctx
                        .names
                        .get(t)
                        .ok_or_else(|| ctx.err(format!("unknown register '{t}'")))?;
                    // fall-through value of a register is its current state
                    env.insert(t.clone(), SigSpec::from_wire(wire, width));
                }
                exec_stmt(&mut ctx, stmt, &mut env)?;
                for (name, d) in env {
                    let (wire, width) = ctx.names[&name];
                    let q = ctx.module.dff(&clk, &d.zext(width));
                    ctx.module.connect(SigSpec::from_wire(wire, width), q);
                }
            }
        }
    }

    Ok(ctx.module)
}

type Env = HashMap<String, SigSpec>;

fn collect_targets(stmt: &Stmt) -> Vec<String> {
    fn walk(stmt: &Stmt, out: &mut Vec<String>) {
        match stmt {
            Stmt::Block(stmts) => stmts.iter().for_each(|s| walk(s, out)),
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                walk(then_branch, out);
                if let Some(e) = else_branch {
                    walk(e, out);
                }
            }
            Stmt::Case { arms, default, .. } => {
                arms.iter().for_each(|a| walk(&a.body, out));
                if let Some(d) = default {
                    walk(d, out);
                }
            }
            Stmt::Assign { lhs, .. } => {
                let name = match lhs {
                    LValue::Ident(n)
                    | LValue::Bit { name: n, .. }
                    | LValue::Part { name: n, .. } => n,
                };
                if !out.contains(name) {
                    out.push(name.clone());
                }
            }
            Stmt::Empty => {}
        }
    }
    let mut out = Vec::new();
    walk(stmt, &mut out);
    out
}

fn assign_lvalue(ctx: &mut Ctx, lhs: &LValue, value: SigSpec) -> Result<(), VerilogError> {
    match lhs {
        LValue::Ident(name) => {
            let (wire, width) = *ctx
                .names
                .get(name)
                .ok_or_else(|| ctx.err(format!("unknown signal '{name}'")))?;
            ctx.module
                .connect(SigSpec::from_wire(wire, width), value.zext(width));
        }
        LValue::Bit { name, index } => {
            let (wire, width) = *ctx
                .names
                .get(name)
                .ok_or_else(|| ctx.err(format!("unknown signal '{name}'")))?;
            let i = const_eval(index, &ctx.params).map_err(|e| ctx.err(e))?;
            if i < 0 || i as u32 >= width {
                return Err(ctx.err(format!("bit index {i} out of range for '{name}'")));
            }
            ctx.module.connect(
                SigSpec::from_bit(SigBit::Wire(wire, i as u32)),
                value.zext(1),
            );
        }
        LValue::Part { name, msb, lsb } => {
            let (wire, width) = *ctx
                .names
                .get(name)
                .ok_or_else(|| ctx.err(format!("unknown signal '{name}'")))?;
            let m = const_eval(msb, &ctx.params).map_err(|e| ctx.err(e))?;
            let l = const_eval(lsb, &ctx.params).map_err(|e| ctx.err(e))?;
            if l < 0 || m < l || m as u32 >= width {
                return Err(ctx.err(format!("part select [{m}:{l}] out of range for '{name}'")));
            }
            let w = (m - l + 1) as u32;
            let dst: SigSpec = (l as u32..=m as u32)
                .map(|i| SigBit::Wire(wire, i))
                .collect();
            ctx.module.connect(dst, value.zext(w));
        }
    }
    Ok(())
}

/// Updates `env[name]` with `value`, splicing for bit/part targets.
fn env_assign(
    ctx: &mut Ctx,
    env: &mut Env,
    lhs: &LValue,
    value: SigSpec,
) -> Result<(), VerilogError> {
    let (name, lo, len) = match lhs {
        LValue::Ident(n) => {
            let w = ctx.width_of(n)?;
            (n.clone(), 0u32, w)
        }
        LValue::Bit { name, index } => {
            let i = const_eval(index, &ctx.params).map_err(|e| ctx.err(e))?;
            let w = ctx.width_of(name)?;
            if i < 0 || i as u32 >= w {
                return Err(ctx.err(format!("bit index {i} out of range for '{name}'")));
            }
            (name.clone(), i as u32, 1)
        }
        LValue::Part { name, msb, lsb } => {
            let m = const_eval(msb, &ctx.params).map_err(|e| ctx.err(e))?;
            let l = const_eval(lsb, &ctx.params).map_err(|e| ctx.err(e))?;
            let w = ctx.width_of(name)?;
            if l < 0 || m < l || m as u32 >= w {
                return Err(ctx.err(format!("part select [{m}:{l}] out of range for '{name}'")));
            }
            (name.clone(), l as u32, (m - l + 1) as u32)
        }
    };
    let cur = env
        .get(&name)
        .cloned()
        .ok_or_else(|| ctx.err(format!("assignment to non-target '{name}'")))?;
    let value = value.zext(len);
    let mut bits = cur.into_bits();
    for k in 0..len as usize {
        bits[lo as usize + k] = value.bit(k);
    }
    env.insert(name, SigSpec::from_bits(bits));
    Ok(())
}

fn exec_stmt(ctx: &mut Ctx, stmt: &Stmt, env: &mut Env) -> Result<(), VerilogError> {
    match stmt {
        Stmt::Empty => Ok(()),
        Stmt::Block(stmts) => {
            for s in stmts {
                exec_stmt(ctx, s, env)?;
            }
            Ok(())
        }
        Stmt::Assign { lhs, rhs } => {
            let value = build_expr(ctx, rhs)?;
            env_assign(ctx, env, lhs, value)
        }
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => {
            let c = build_expr(ctx, cond)?;
            let c = ctx.module.reduce_bool(&c);
            let mut env_then = env.clone();
            exec_stmt(ctx, then_branch, &mut env_then)?;
            let mut env_else = env.clone();
            if let Some(e) = else_branch {
                exec_stmt(ctx, e, &mut env_else)?;
            }
            for (name, base) in env.iter_mut() {
                let t = env_then.get(name).cloned().unwrap_or_else(|| base.clone());
                let e = env_else.get(name).cloned().unwrap_or_else(|| base.clone());
                if t != e {
                    // Y = c ? then : else  (mux: S=1 selects B)
                    *base = ctx.module.mux(&e, &t, &c);
                } else {
                    *base = t;
                }
            }
            Ok(())
        }
        Stmt::Case {
            kind,
            expr,
            arms,
            default,
        } => {
            let scrut = build_expr(ctx, expr)?;
            // per-arm match conditions, in priority order
            let mut conds: Vec<SigSpec> = Vec::with_capacity(arms.len());
            for arm in arms {
                let mut arm_cond: Option<SigSpec> = None;
                for pat in &arm.patterns {
                    let c = pattern_match(ctx, &scrut, pat, *kind)?;
                    arm_cond = Some(match arm_cond {
                        None => c,
                        Some(prev) => ctx.module.or(&prev, &c),
                    });
                }
                conds.push(arm_cond.expect("arm has at least one pattern"));
            }
            // per-arm result environments
            let mut arm_envs: Vec<Env> = Vec::with_capacity(arms.len());
            for arm in arms {
                let mut e = env.clone();
                exec_stmt(ctx, &arm.body, &mut e)?;
                arm_envs.push(e);
            }
            let mut default_env = env.clone();
            if let Some(d) = default {
                exec_stmt(ctx, d, &mut default_env)?;
            }
            match ctx.options.case_lowering {
                CaseLowering::Chain => {
                    for (name, slot) in env.iter_mut() {
                        let mut acc = default_env[name].clone();
                        for (i, arm_env) in arm_envs.iter().enumerate().rev() {
                            let v = arm_env[name].clone();
                            if v == acc {
                                continue;
                            }
                            acc = ctx.module.mux(&acc, &v, &conds[i]);
                        }
                        *slot = acc;
                    }
                }
                CaseLowering::Pmux => {
                    for (name, slot) in env.iter_mut() {
                        let words: Vec<SigSpec> =
                            arm_envs.iter().map(|e| e[name].clone()).collect();
                        if words.iter().all(|w| *w == default_env[name]) {
                            *slot = default_env[name].clone();
                            continue;
                        }
                        let mut sels = SigSpec::new();
                        for c in &conds {
                            sels.concat(c);
                        }
                        *slot = ctx.module.pmux(&default_env[name], &words, &sels);
                    }
                }
            }
            Ok(())
        }
    }
}

/// Builds the 1-bit match condition for a case pattern.
fn pattern_match(
    ctx: &mut Ctx,
    scrut: &SigSpec,
    pat: &Expr,
    kind: CaseKind,
) -> Result<SigSpec, VerilogError> {
    if let Expr::Number { bits, .. } = pat {
        let has_wild = bits.iter().any(|b| matches!(b, PatBit::Z | PatBit::X));
        if has_wild || kind == CaseKind::Casez {
            // compare only non-wildcard bit positions
            let mut s_bits = SigSpec::new();
            let mut p_bits = SigSpec::new();
            for (i, b) in bits.iter().enumerate() {
                let sig = match b {
                    PatBit::Zero => SigBit::Const(TriVal::Zero),
                    PatBit::One => SigBit::Const(TriVal::One),
                    PatBit::Z | PatBit::X => continue, // wildcard
                };
                let sb = if i < scrut.width() {
                    scrut.bit(i)
                } else {
                    SigBit::Const(TriVal::Zero)
                };
                s_bits.extend([sb]);
                p_bits.extend([sig]);
            }
            if s_bits.is_empty() {
                return Ok(SigSpec::const_u64(1, 1)); // all-wildcard: always matches
            }
            return Ok(ctx.module.eq(&s_bits, &p_bits));
        }
    }
    let p = build_expr(ctx, pat)?;
    Ok(ctx.module.eq(scrut, &p))
}

fn build_expr(ctx: &mut Ctx, expr: &Expr) -> Result<SigSpec, VerilogError> {
    match expr {
        Expr::Ident(name) => ctx.lookup(name),
        Expr::Number { bits, .. } => Ok(pat_to_sig(bits)),
        Expr::Unary { op, expr } => {
            let a = build_expr(ctx, expr)?;
            Ok(match op {
                UnaryOp::LogicNot => ctx.module.logic_not(&a),
                UnaryOp::BitNot => ctx.module.not(&a),
                UnaryOp::Neg => {
                    let zero = SigSpec::zeros(a.width() as u32);
                    ctx.module.sub(&zero, &a)
                }
                UnaryOp::RedAnd => ctx.module.reduce_and(&a),
                UnaryOp::RedOr => ctx.module.reduce_or(&a),
                UnaryOp::RedXor => ctx.module.reduce_xor(&a),
            })
        }
        Expr::Binary { op, lhs, rhs } => {
            let a = build_expr(ctx, lhs)?;
            let b = build_expr(ctx, rhs)?;
            Ok(match op {
                BinaryOp::Add => ctx.module.add(&a, &b),
                BinaryOp::Sub => ctx.module.sub(&a, &b),
                BinaryOp::Mul => ctx.module.mul(&a, &b),
                BinaryOp::And => ctx.module.and(&a, &b),
                BinaryOp::Or => ctx.module.or(&a, &b),
                BinaryOp::Xor => ctx.module.xor(&a, &b),
                BinaryOp::LogicAnd => ctx.module.logic_and(&a, &b),
                BinaryOp::LogicOr => ctx.module.logic_or(&a, &b),
                BinaryOp::Eq => ctx.module.eq(&a, &b),
                BinaryOp::Ne => ctx.module.ne(&a, &b),
                BinaryOp::Lt => ctx.module.lt(&a, &b),
                BinaryOp::Le => ctx.module.le(&a, &b),
                BinaryOp::Gt => ctx.module.gt(&a, &b),
                BinaryOp::Ge => ctx.module.ge(&a, &b),
                BinaryOp::Shl => ctx.module.shl(&a, &b),
                BinaryOp::Shr => ctx.module.shr(&a, &b),
            })
        }
        Expr::Ternary {
            cond,
            then_e,
            else_e,
        } => {
            let c = build_expr(ctx, cond)?;
            let c = ctx.module.reduce_bool(&c);
            let t = build_expr(ctx, then_e)?;
            let e = build_expr(ctx, else_e)?;
            let w = t.width().max(e.width()) as u32;
            Ok(ctx.module.mux(&e.zext(w), &t.zext(w), &c))
        }
        Expr::Index { expr, index } => {
            let a = build_expr(ctx, expr)?;
            match const_eval(index, &ctx.params) {
                Ok(i) => {
                    if i < 0 || i as usize >= a.width() {
                        return Err(ctx.err(format!("bit index {i} out of range")));
                    }
                    Ok(a.slice(i as usize, 1))
                }
                Err(_) => {
                    // dynamic index: (a >> index)[0]
                    let idx = build_expr(ctx, index)?;
                    let shifted = ctx.module.shr(&a, &idx);
                    Ok(shifted.slice(0, 1))
                }
            }
        }
        Expr::Part { expr, msb, lsb } => {
            let a = build_expr(ctx, expr)?;
            let m = const_eval(msb, &ctx.params).map_err(|e| ctx.err(e))?;
            let l = const_eval(lsb, &ctx.params).map_err(|e| ctx.err(e))?;
            if l < 0 || m < l || m as usize >= a.width() {
                return Err(ctx.err(format!("part select [{m}:{l}] out of range")));
            }
            Ok(a.slice(l as usize, (m - l + 1) as usize))
        }
        Expr::Concat(parts) => {
            // source order is MSB-first; SigSpec is LSB-first
            let mut out = SigSpec::new();
            for p in parts.iter().rev() {
                let s = build_expr(ctx, p)?;
                out.concat(&s);
            }
            Ok(out)
        }
        Expr::Repl { count, expr } => {
            let n = const_eval(count, &ctx.params).map_err(|e| ctx.err(e))?;
            if !(0..=4096).contains(&n) {
                return Err(ctx.err(format!("bad replication count {n}")));
            }
            let s = build_expr(ctx, expr)?;
            let mut out = SigSpec::new();
            for _ in 0..n {
                out.concat(&s);
            }
            Ok(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn compile(src: &str) -> Module {
        let file = parse(src).unwrap();
        elaborate(&file, &ElaborateOptions::default())
            .unwrap()
            .into_top()
            .unwrap()
    }

    fn compile_pmux(src: &str) -> Module {
        let file = parse(src).unwrap();
        elaborate(
            &file,
            &ElaborateOptions {
                case_lowering: CaseLowering::Pmux,
            },
        )
        .unwrap()
        .into_top()
        .unwrap()
    }

    #[test]
    fn assign_makes_cells() {
        let m = compile(
            "module m(input [3:0] a, input [3:0] b, output [3:0] y); assign y = a & b; endmodule",
        );
        assert_eq!(m.stats().count("and"), 1);
        m.validate().unwrap();
    }

    #[test]
    fn if_else_makes_one_mux_per_target() {
        let m = compile(
            "module m(input s, input [3:0] a, input [3:0] b, output reg [3:0] y);
             always @(*) begin
               if (s) y = a; else y = b;
             end endmodule",
        );
        assert_eq!(m.stats().count("mux"), 1);
        m.validate().unwrap();
    }

    #[test]
    fn nested_if_makes_mux_tree() {
        let m = compile(
            "module m(input s, input r, input [3:0] a, input [3:0] b, input [3:0] c,
                      output reg [3:0] y);
             always @(*) begin
               if (s) begin
                 if (r) y = a; else y = b;
               end else y = c;
             end endmodule",
        );
        assert_eq!(m.stats().count("mux"), 2);
        m.validate().unwrap();
    }

    #[test]
    fn case_chain_shape_listing1() {
        // the paper's Listing 1: 3 eq + 3 mux in a chain
        let m = compile(
            "module m(input [1:0] s, input [7:0] p0, input [7:0] p1, input [7:0] p2,
                      input [7:0] p3, output reg [7:0] y);
             always @(*) begin
               case (s)
                 2'b00: y = p0;
                 2'b01: y = p1;
                 2'b10: y = p2;
                 default: y = p3;
               endcase
             end endmodule",
        );
        assert_eq!(m.stats().count("mux"), 3);
        assert_eq!(m.stats().count("eq"), 3);
        m.validate().unwrap();
    }

    #[test]
    fn case_pmux_shape() {
        let m = compile_pmux(
            "module m(input [1:0] s, input [7:0] p0, input [7:0] p1, input [7:0] p2,
                      input [7:0] p3, output reg [7:0] y);
             always @(*) begin
               case (s)
                 2'b00: y = p0;
                 2'b01: y = p1;
                 2'b10: y = p2;
                 default: y = p3;
               endcase
             end endmodule",
        );
        assert_eq!(m.stats().count("pmux"), 1);
        assert_eq!(m.stats().count("eq"), 3);
        m.validate().unwrap();
    }

    #[test]
    fn casez_wildcards_compare_fewer_bits() {
        // Listing 2 shape: 3'b1zz compares only bit 2
        let m = compile(
            "module m(input [2:0] s, input [3:0] p0, input [3:0] p1, input [3:0] p2,
                      input [3:0] p3, output reg [3:0] y);
             always @(*) begin
               casez (s)
                 3'b1zz: y = p0;
                 3'b01z: y = p1;
                 3'b001: y = p2;
                 default: y = p3;
               endcase
             end endmodule",
        );
        assert_eq!(m.stats().count("mux"), 3);
        // every eq compares a truncated slice
        for (_, cell) in m.cells() {
            if cell.kind == smartly_netlist::CellKind::Eq {
                assert!(cell.port(smartly_netlist::Port::A).unwrap().width() <= 3);
            }
        }
        m.validate().unwrap();
    }

    #[test]
    fn posedge_makes_dff_with_feedback() {
        let m = compile(
            "module m(input clk, input en, input [3:0] d, output reg [3:0] q);
             always @(posedge clk) begin
               if (en) q <= d;
             end endmodule",
        );
        assert_eq!(m.stats().count("dff"), 1);
        assert_eq!(m.stats().count("mux"), 1);
        m.validate().unwrap();
    }

    #[test]
    fn parameters_resolve_widths() {
        let m = compile(
            "module m #(parameter W = 8) (input [W-1:0] a, output [W-1:0] y);
             assign y = a + 1; endmodule",
        );
        let a_wire = m.find_wire("a").unwrap();
        assert_eq!(m.wire(a_wire).width, 8);
    }

    #[test]
    fn concat_and_replication_widths() {
        let m =
            compile("module m(input [1:0] a, output [5:0] y); assign y = {a, {2{a}}}; endmodule");
        let y = m.find_wire("y").unwrap();
        assert_eq!(m.wire(y).width, 6);
        m.validate().unwrap();
    }

    #[test]
    fn dynamic_index_makes_shift() {
        let m =
            compile("module m(input [7:0] a, input [2:0] i, output y); assign y = a[i]; endmodule");
        assert_eq!(m.stats().count("shr"), 1);
        m.validate().unwrap();
    }

    #[test]
    fn unknown_ident_errors() {
        let file = parse("module m(output y); assign y = nope; endmodule").unwrap();
        assert!(matches!(
            elaborate(&file, &ElaborateOptions::default()),
            Err(VerilogError::Elaborate { .. })
        ));
    }

    #[test]
    fn out_of_range_select_errors() {
        let file = parse("module m(input [3:0] a, output y); assign y = a[9]; endmodule").unwrap();
        assert!(elaborate(&file, &ElaborateOptions::default()).is_err());
    }

    #[test]
    fn multi_target_case_shares_conditions() {
        let m = compile(
            "module m(input [1:0] s, input [3:0] a, input [3:0] b,
                      output reg [3:0] x, output reg [3:0] y);
             always @(*) begin
               x = 4'd0; y = 4'd0;
               case (s)
                 2'b00: begin x = a; y = b; end
                 2'b01: x = b;
                 default: y = a;
               endcase
             end endmodule",
        );
        // conditions (eq cells) are built once per arm, not per target
        assert_eq!(m.stats().count("eq"), 2);
        m.validate().unwrap();
    }

    #[test]
    fn bit_and_part_lvalues_in_always() {
        let m = compile(
            "module m(input s, input [3:0] a, output reg [3:0] y);
             always @(*) begin
               y = 4'b0000;
               y[0] = s;
               if (s) y[3:2] = a[1:0];
             end endmodule",
        );
        m.validate().unwrap();
        // the if merges only the sliced bits: a 2-bit mux
        let mux = m
            .cells()
            .find(|(_, c)| c.kind == smartly_netlist::CellKind::Mux);
        assert!(mux.is_some());
    }
}
