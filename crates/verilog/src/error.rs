//! Frontend error type.

use std::error::Error;
use std::fmt;

/// Errors from lexing, parsing or elaborating Verilog source.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum VerilogError {
    /// An unexpected character or malformed literal.
    Lex {
        /// 1-based line number.
        line: u32,
        /// Explanation.
        message: String,
    },
    /// A syntax error.
    Parse {
        /// 1-based line number.
        line: u32,
        /// Explanation.
        message: String,
    },
    /// A semantic error found during elaboration.
    Elaborate {
        /// Module being elaborated.
        module: String,
        /// Explanation.
        message: String,
    },
}

impl VerilogError {
    pub(crate) fn lex(line: u32, message: impl Into<String>) -> Self {
        VerilogError::Lex {
            line,
            message: message.into(),
        }
    }

    pub(crate) fn parse(line: u32, message: impl Into<String>) -> Self {
        VerilogError::Parse {
            line,
            message: message.into(),
        }
    }

    pub(crate) fn elab(module: impl Into<String>, message: impl Into<String>) -> Self {
        VerilogError::Elaborate {
            module: module.into(),
            message: message.into(),
        }
    }
}

impl fmt::Display for VerilogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerilogError::Lex { line, message } => write!(f, "lex error at line {line}: {message}"),
            VerilogError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            VerilogError::Elaborate { module, message } => {
                write!(f, "elaboration error in module {module}: {message}")
            }
        }
    }
}

impl Error for VerilogError {}
