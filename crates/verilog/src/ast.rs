//! Abstract syntax tree for the supported Verilog subset.

pub use crate::lexer::PatBit;

/// A parsed source file: one or more module declarations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SourceFile {
    /// Modules in declaration order.
    pub modules: Vec<ModuleDecl>,
}

/// Port direction.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Dir {
    /// `input`
    Input,
    /// `output`
    Output,
}

/// A port declaration (merged from ANSI or classic style).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PortDecl {
    /// Port name.
    pub name: String,
    /// Direction.
    pub dir: Dir,
    /// `[msb:lsb]` bounds, if declared as a vector.
    pub range: Option<(Expr, Expr)>,
    /// Whether the port was (also) declared `reg`.
    pub is_reg: bool,
}

/// A non-port net declaration (`wire` / `reg`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NetDecl {
    /// Net name.
    pub name: String,
    /// `[msb:lsb]` bounds, if a vector.
    pub range: Option<(Expr, Expr)>,
    /// `reg` (true) or `wire` (false).
    pub is_reg: bool,
}

/// A module declaration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ModuleDecl {
    /// Module name.
    pub name: String,
    /// Ports in header order.
    pub ports: Vec<PortDecl>,
    /// `parameter`/`localparam` definitions in order.
    pub params: Vec<(String, Expr)>,
    /// Internal nets.
    pub decls: Vec<NetDecl>,
    /// Behavioral and continuous items.
    pub items: Vec<Item>,
}

/// A module body item.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Item {
    /// `assign lhs = rhs;`
    Assign {
        /// Target.
        lhs: LValue,
        /// Driven expression.
        rhs: Expr,
    },
    /// `always @(*)` (or an explicit sensitivity list).
    AlwaysComb(Stmt),
    /// `always @(posedge clock)`.
    AlwaysFf {
        /// Clock signal name.
        clock: String,
        /// Body.
        stmt: Stmt,
    },
}

/// The flavor of a `case` statement.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum CaseKind {
    /// `case`: exact match.
    Plain,
    /// `casez`: `z`/`?` bits are wildcards.
    Casez,
}

/// One `case` arm: one or more patterns and a body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CaseArm {
    /// Comma-separated label expressions.
    pub patterns: Vec<Expr>,
    /// Arm body.
    pub body: Stmt,
}

/// A behavioral statement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Stmt {
    /// `begin ... end`
    Block(Vec<Stmt>),
    /// `if (cond) then [else else_]`
    If {
        /// Condition (reduced to 1 bit).
        cond: Expr,
        /// Taken when `cond != 0`.
        then_branch: Box<Stmt>,
        /// Taken otherwise.
        else_branch: Option<Box<Stmt>>,
    },
    /// `case`/`casez`.
    Case {
        /// Flavor.
        kind: CaseKind,
        /// Scrutinee.
        expr: Expr,
        /// Arms in priority order.
        arms: Vec<CaseArm>,
        /// `default:` body, if present.
        default: Option<Box<Stmt>>,
    },
    /// Blocking or non-blocking assignment (elaborated identically; the
    /// enclosing `always` kind decides comb vs. ff).
    Assign {
        /// Target.
        lhs: LValue,
        /// Value.
        rhs: Expr,
    },
    /// Empty statement (`;`).
    Empty,
}

/// An assignment target.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LValue {
    /// Whole signal.
    Ident(String),
    /// Single bit `name[index]` (index must be constant).
    Bit {
        /// Signal name.
        name: String,
        /// Constant index expression.
        index: Expr,
    },
    /// Part select `name[msb:lsb]` (constant bounds).
    Part {
        /// Signal name.
        name: String,
        /// Constant MSB.
        msb: Expr,
        /// Constant LSB.
        lsb: Expr,
    },
}

/// Unary operators.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum UnaryOp {
    /// `!` logical not.
    LogicNot,
    /// `~` bitwise not.
    BitNot,
    /// `-` negate (two's complement).
    Neg,
    /// `&` reduction and.
    RedAnd,
    /// `|` reduction or.
    RedOr,
    /// `^` reduction xor.
    RedXor,
}

/// Binary operators.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum BinaryOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `&&`
    LogicAnd,
    /// `||`
    LogicOr,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
}

/// An expression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Expr {
    /// Signal or parameter reference.
    Ident(String),
    /// Literal; bits are LSB-first.
    Number {
        /// Explicit size, if the literal was sized.
        size: Option<u32>,
        /// LSB-first pattern.
        bits: Vec<PatBit>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinaryOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// `cond ? then_e : else_e`
    Ternary {
        /// Condition.
        cond: Box<Expr>,
        /// Value when true.
        then_e: Box<Expr>,
        /// Value when false.
        else_e: Box<Expr>,
    },
    /// Bit select `expr[index]`; dynamic indices elaborate to a shift.
    Index {
        /// Base expression.
        expr: Box<Expr>,
        /// Index.
        index: Box<Expr>,
    },
    /// Constant part select `expr[msb:lsb]`.
    Part {
        /// Base expression.
        expr: Box<Expr>,
        /// Constant MSB.
        msb: Box<Expr>,
        /// Constant LSB.
        lsb: Box<Expr>,
    },
    /// Concatenation `{a, b, ...}` (first element is most significant).
    Concat(Vec<Expr>),
    /// Replication `{count{expr}}`.
    Repl {
        /// Constant repetition count.
        count: Box<Expr>,
        /// Replicated expression.
        expr: Box<Expr>,
    },
}

impl Expr {
    /// Convenience constructor for an unsized decimal literal.
    pub fn int(value: u64) -> Expr {
        let width = (64 - value.leading_zeros()).max(1);
        Expr::Number {
            size: None,
            bits: (0..width)
                .map(|i| {
                    if (value >> i) & 1 == 1 {
                        PatBit::One
                    } else {
                        PatBit::Zero
                    }
                })
                .collect(),
        }
    }
}
