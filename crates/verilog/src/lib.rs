//! A Verilog-2001 subset frontend: lexer, parser and elaborator.
//!
//! The smaRTLy paper operates on netlists produced from RTL `if`/`case`
//! statements, so the frontend's job is to *generate the muxtrees* the
//! optimizer consumes — the moral equivalent of Yosys' `read_verilog` +
//! `proc`. The reproduction bands note that RTL-parsing crates are thin,
//! so this is a from-scratch implementation.
//!
//! Supported subset:
//!
//! * `module`/`endmodule` with ANSI or classic port declarations;
//! * `wire`/`reg` declarations with ranges, `parameter`/`localparam`;
//! * continuous `assign`;
//! * `always @(*)` (combinational) and `always @(posedge clk)`
//!   (sequential) with `begin/end`, `if`/`else`, `case`/`casez`,
//!   blocking and non-blocking assignments;
//! * expressions: `?:`, `||`, `&&`, `|`, `^`, `&`, equality, relational,
//!   shifts, add/sub/mul, unary `! ~ & | ^ -`, bit-select, part-select,
//!   concatenation and replication, sized/based literals with `x`/`z`
//!   digits.
//!
//! Not supported (documented substitution in `DESIGN.md`): module
//! instantiation, generate blocks, functions/tasks, signed arithmetic.
//!
//! # Example
//!
//! ```
//! let src = r#"
//! module mux2 (input wire [7:0] a, input wire [7:0] b,
//!              input wire s, output wire [7:0] y);
//!   assign y = s ? a : b;
//! endmodule
//! "#;
//! let design = smartly_verilog::compile(src)?;
//! let m = design.top().expect("one module");
//! assert_eq!(m.stats().count("mux"), 1);
//! # Ok::<(), smartly_verilog::VerilogError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
mod elaborate;
mod emit;
mod error;
mod lexer;
mod parser;

pub use elaborate::{elaborate, CaseLowering, ElaborateOptions};
pub use emit::emit_verilog;
pub use error::VerilogError;
pub use lexer::{Lexer, Token, TokenKind};
pub use parser::parse;

use smartly_netlist::Design;

/// Parses and elaborates `source` with default options.
///
/// # Errors
///
/// Returns [`VerilogError`] on lexical, syntactic or elaboration problems
/// (unknown identifiers, width errors, unsupported constructs).
pub fn compile(source: &str) -> Result<Design, VerilogError> {
    let file = parse(source)?;
    elaborate(&file, &ElaborateOptions::default())
}

/// Parses and elaborates with explicit [`ElaborateOptions`].
///
/// # Errors
///
/// Same conditions as [`compile`].
pub fn compile_with(source: &str, options: &ElaborateOptions) -> Result<Design, VerilogError> {
    let file = parse(source)?;
    elaborate(&file, options)
}
