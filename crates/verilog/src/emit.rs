//! Structural Verilog emission: netlist → source.
//!
//! [`emit_verilog`] renders any (validated) [`Module`] back as synthesizable
//! structural Verilog within the subset this crate parses, so optimized
//! netlists round-trip: *emit → parse → elaborate* yields an equivalent
//! module (covered by CEC round-trip tests).

use smartly_netlist::{CellKind, Module, Port, PortDir, SigBit, SigSpec, TriVal, WireId};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Renders `module` as structural Verilog.
///
/// Wire names are sanitized into legal identifiers (the elaborator's
/// `$auto$N` internals become `auto_N`-style names); ports keep their
/// names. Flip-flops become `always @(posedge <clk>)` blocks; every other
/// cell becomes a continuous `assign` with the matching operator.
pub fn emit_verilog(module: &Module) -> String {
    let mut names = Namer::new(module);
    let mut out = String::new();
    writeln!(
        out,
        "// emitted by smartly-verilog from netlist '{}'",
        module.name
    )
    .expect("write");
    writeln!(out, "module {} (", sanitize(&module.name)).expect("write");
    let ports: Vec<String> = module
        .ports()
        .iter()
        .map(|p| {
            let w = module.wire(p.wire).width;
            let dir = match p.dir {
                PortDir::Input => "input",
                PortDir::Output => "output",
            };
            let range = if w > 1 {
                format!(" [{}:0]", w - 1)
            } else {
                String::new()
            };
            format!("  {dir} wire{range} {}", names.name(p.wire))
        })
        .collect();
    writeln!(out, "{}\n);", ports.join(",\n")).expect("write");

    // wire declarations for everything that is not a port
    let mut port_wires: Vec<WireId> = module.ports().iter().map(|p| p.wire).collect();
    port_wires.sort();
    for (id, wire) in module.wires() {
        if port_wires.binary_search(&id).is_ok() {
            continue;
        }
        let range = if wire.width > 1 {
            format!("[{}:0] ", wire.width - 1)
        } else {
            String::new()
        };
        // dff outputs are written from always blocks: declare as reg
        let is_reg = names.reg_wires.contains(&id);
        let kw = if is_reg { "reg" } else { "wire" };
        writeln!(out, "  {kw} {range}{};", names.name(id)).expect("write");
    }

    // cells
    for (_, cell) in module.cells() {
        emit_cell(&mut out, cell, &mut names);
    }

    // module-level connections: assign per contiguous destination run
    for (dst, src) in module.connections() {
        let mut i = 0usize;
        while i < dst.width() {
            let (wire, off) = match dst.bit(i) {
                SigBit::Wire(w, o) => (w, o),
                SigBit::Const(_) => unreachable!("validated connection dst"),
            };
            let mut len = 1usize;
            while i + len < dst.width() {
                match dst.bit(i + len) {
                    SigBit::Wire(w2, o2) if w2 == wire && o2 == off + len as u32 => len += 1,
                    _ => break,
                }
            }
            let lhs = if len == module.wire(wire).width as usize && off == 0 {
                names.name(wire)
            } else if len == 1 {
                format!("{}[{}]", names.name(wire), off)
            } else {
                format!("{}[{}:{}]", names.name(wire), off as usize + len - 1, off)
            };
            let rhs = names.expr(&src.slice(i, len));
            writeln!(out, "  assign {lhs} = {rhs};").expect("write");
            i += len;
        }
    }

    writeln!(out, "endmodule").expect("write");
    out
}

fn emit_cell(out: &mut String, cell: &smartly_netlist::Cell, names: &mut Namer) {
    use CellKind::*;
    let get = |p: Port| cell.port(p).cloned().unwrap_or_default();
    if cell.kind == Dff {
        let q = get(Port::Q);
        let clk = names.expr(&get(Port::Clk));
        let d = names.expr(&get(Port::D));
        // Q is always a freshly allocated contiguous wire (builder invariant)
        let qname = match q.bit(0) {
            SigBit::Wire(w, 0) => names.name(w),
            _ => unreachable!("dff Q is a fresh wire"),
        };
        writeln!(out, "  always @(posedge {clk}) {qname} <= {d};").expect("write");
        return;
    }
    let a = names.expr(&get(Port::A));
    let rhs = match cell.kind {
        Not => format!("~({a})"),
        ReduceAnd => format!("&({a})"),
        ReduceOr | ReduceBool => format!("|({a})"),
        ReduceXor => format!("^({a})"),
        LogicNot => format!("!({a})"),
        And | Or | Xor | Xnor | LogicAnd | LogicOr | Add | Sub | Mul | Shl | Shr | Eq | Ne | Lt
        | Le | Gt | Ge => {
            let b = names.expr(&get(Port::B));
            let op = match cell.kind {
                And => "&",
                Or => "|",
                Xor => "^",
                LogicAnd => "&&",
                LogicOr => "||",
                Add => "+",
                Sub => "-",
                Mul => "*",
                Shl => "<<",
                Shr => ">>",
                Eq => "==",
                Ne => "!=",
                Lt => "<",
                Le => "<=",
                Gt => ">",
                Ge => ">=",
                Xnor => "^",
                _ => unreachable!(),
            };
            if cell.kind == Xnor {
                format!("~(({a}) ^ ({b}))")
            } else {
                format!("({a}) {op} ({b})")
            }
        }
        Mux => {
            let b = names.expr(&get(Port::B));
            let s = names.expr(&get(Port::S));
            format!("({s}) ? ({b}) : ({a})")
        }
        Pmux => {
            // priority chain, lowest select first
            let b = get(Port::B);
            let s = get(Port::S);
            let w = cell.output().width();
            let mut expr = format!("({a})");
            for i in (0..s.width()).rev() {
                let word = names.expr(&b.slice(i * w, w));
                let sel = names.expr(&s.slice(i, 1));
                expr = format!("({sel}) ? ({word}) : ({expr})");
            }
            expr
        }
        Dff => unreachable!("handled above"),
    };
    let y = cell.output();
    // cell outputs are fresh contiguous wires by builder invariant
    let yname = match y.bit(0) {
        SigBit::Wire(w, 0) => names.name(w),
        _ => unreachable!("cell output is a fresh wire"),
    };
    writeln!(out, "  assign {yname} = {rhs};").expect("write");
}

struct Namer {
    by_wire: HashMap<WireId, String>,
    widths: HashMap<WireId, u32>,
    reg_wires: Vec<WireId>,
}

impl Namer {
    fn new(module: &Module) -> Self {
        let mut used: HashMap<String, usize> = HashMap::new();
        let mut by_wire = HashMap::new();
        for (id, wire) in module.wires() {
            let base = sanitize(&wire.name);
            let name = match used.get(&base) {
                None => base.clone(),
                Some(n) => format!("{base}_{n}"),
            };
            *used.entry(base).or_insert(0) += 1;
            by_wire.insert(id, name);
        }
        let reg_wires = module
            .cells()
            .filter(|(_, c)| c.kind == CellKind::Dff)
            .filter_map(|(_, c)| match c.output().bit(0) {
                SigBit::Wire(w, _) => Some(w),
                SigBit::Const(_) => None,
            })
            .collect();
        let widths = module.wires().map(|(id, w)| (id, w.width)).collect();
        Namer {
            by_wire,
            widths,
            reg_wires,
        }
    }

    fn name(&self, wire: WireId) -> String {
        self.by_wire[&wire].clone()
    }

    /// Renders a spec as a Verilog expression (concat of runs, MSB-first).
    fn expr(&mut self, spec: &SigSpec) -> String {
        if spec.is_empty() {
            return "1'b0".to_string();
        }
        let mut parts: Vec<String> = Vec::new(); // LSB-first, reversed later
        let mut i = 0usize;
        while i < spec.width() {
            match spec.bit(i) {
                SigBit::Const(_) => {
                    // gather a constant run
                    let mut bits = Vec::new();
                    while i < spec.width() {
                        match spec.bit(i) {
                            SigBit::Const(v) => {
                                bits.push(v);
                                i += 1;
                            }
                            _ => break,
                        }
                    }
                    let digits: String = bits
                        .iter()
                        .rev()
                        .map(|v| match v {
                            TriVal::Zero => '0',
                            TriVal::One => '1',
                            TriVal::X => 'x',
                        })
                        .collect();
                    parts.push(format!("{}'b{digits}", bits.len()));
                }
                SigBit::Wire(w, off) => {
                    let mut len = 1usize;
                    while i + len < spec.width() {
                        match spec.bit(i + len) {
                            SigBit::Wire(w2, o2) if w2 == w && o2 == off + len as u32 => len += 1,
                            _ => break,
                        }
                    }
                    let name = self.name(w);
                    let total = off as usize + len;
                    let full = off == 0 && len as u32 == self.widths[&w];
                    let part = if full {
                        name
                    } else if len == 1 {
                        format!("{name}[{off}]")
                    } else {
                        format!("{name}[{}:{off}]", total - 1)
                    };
                    parts.push(part);
                    i += len;
                }
            }
        }
        if parts.len() == 1 {
            parts.pop().expect("one part")
        } else {
            parts.reverse(); // MSB-first inside the concat
            format!("{{{}}}", parts.join(", "))
        }
    }
}

fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, ch) in name.chars().enumerate() {
        let ok = ch.is_ascii_alphanumeric() || ch == '_';
        if i == 0 && ch.is_ascii_digit() {
            out.push('_');
        }
        out.push(if ok { ch } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    // avoid keywords
    const KEYWORDS: &[&str] = &[
        "module",
        "endmodule",
        "input",
        "output",
        "wire",
        "reg",
        "assign",
        "always",
        "begin",
        "end",
        "if",
        "else",
        "case",
        "casez",
        "casex",
        "endcase",
        "default",
        "posedge",
        "negedge",
        "or",
        "parameter",
        "localparam",
        "integer",
        "initial",
        "inout",
    ];
    if KEYWORDS.contains(&out.as_str()) {
        out.push('_');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;

    fn round_trip(src: &str) -> (Module, Module) {
        let original = compile(src).expect("parses").into_top().expect("module");
        let emitted = emit_verilog(&original);
        let reparsed = compile(&emitted)
            .unwrap_or_else(|e| panic!("emitted source must parse: {e}\n{emitted}"))
            .into_top()
            .expect("module");
        (original, reparsed)
    }

    #[test]
    fn emits_and_reparses_combinational() {
        let (orig, back) = round_trip(
            "module m (input wire [3:0] a, input wire [3:0] b, input wire s,
                       output wire [3:0] y);
               assign y = s ? (a + b) : (a & b);
             endmodule",
        );
        assert_eq!(orig.ports().len(), back.ports().len());
        // same external interface
        for (p, q) in orig.ports().iter().zip(back.ports().iter()) {
            assert_eq!(p.name, q.name);
            assert_eq!(p.dir, q.dir);
        }
    }

    #[test]
    fn emits_and_reparses_sequential() {
        let (orig, back) = round_trip(
            "module m (input wire clk, input wire en, input wire [7:0] d,
                       output reg [7:0] q);
               always @(posedge clk) if (en) q <= d;
             endmodule",
        );
        assert_eq!(orig.stats().count("dff"), back.stats().count("dff"));
    }

    #[test]
    fn sanitizes_internal_names() {
        let src = "module m (input wire a, output wire y); assign y = ~a; endmodule";
        let m = compile(src).expect("parses").into_top().expect("module");
        let emitted = emit_verilog(&m);
        assert!(
            !emitted.contains('$'),
            "no $ in emitted identifiers:\n{emitted}"
        );
    }

    #[test]
    fn constants_and_x_emit_as_literals() {
        let src = "module m (input wire [1:0] s, output reg [3:0] y);
                     always @(*) begin
                       if (s == 2'b01) y = 4'b10x1; else y = 4'd5;
                     end
                   endmodule";
        let m = compile(src).expect("parses").into_top().expect("module");
        let emitted = emit_verilog(&m);
        // must re-parse cleanly despite x bits
        assert!(compile(&emitted).is_ok(), "{emitted}");
    }
}
