//! Recursive-descent parser for the Verilog subset.

use crate::ast::*;
use crate::error::VerilogError;
use crate::lexer::{Lexer, Token, TokenKind};

/// Parses a source file.
///
/// # Errors
///
/// Returns [`VerilogError::Lex`] or [`VerilogError::Parse`].
pub fn parse(source: &str) -> Result<SourceFile, VerilogError> {
    let tokens = Lexer::new(source).tokenize()?;
    let mut p = Parser { tokens, pos: 0 };
    let mut modules = Vec::new();
    while !p.at_eof() {
        modules.push(p.module()?);
    }
    if modules.is_empty() {
        return Err(VerilogError::parse(1, "no modules in source"));
    }
    Ok(SourceFile { modules })
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].kind
    }

    fn line(&self) -> u32 {
        self.tokens[self.pos.min(self.tokens.len() - 1)].line
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), TokenKind::Eof)
    }

    fn bump(&mut self) -> TokenKind {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)]
            .kind
            .clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> VerilogError {
        VerilogError::parse(self.line(), msg.into())
    }

    fn eat_sym(&mut self, s: &str) -> bool {
        if matches!(self.peek(), TokenKind::Sym(x) if *x == s) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, s: &str) -> Result<(), VerilogError> {
        if self.eat_sym(s) {
            Ok(())
        } else {
            Err(self.err(format!("expected '{s}', found {:?}", self.peek())))
        }
    }

    fn eat_kw(&mut self, k: &str) -> bool {
        if matches!(self.peek(), TokenKind::Keyword(x) if *x == k) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, k: &str) -> Result<(), VerilogError> {
        if self.eat_kw(k) {
            Ok(())
        } else {
            Err(self.err(format!("expected keyword '{k}', found {:?}", self.peek())))
        }
    }

    fn ident(&mut self) -> Result<String, VerilogError> {
        match self.bump() {
            TokenKind::Ident(s) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    // ------------------------------------------------------------- modules

    fn module(&mut self) -> Result<ModuleDecl, VerilogError> {
        self.expect_kw("module")?;
        let name = self.ident()?;
        let mut ports: Vec<PortDecl> = Vec::new();
        let mut params: Vec<(String, Expr)> = Vec::new();
        let mut header_names: Vec<String> = Vec::new();

        // #(parameter N = 8, ...)
        if self.eat_sym("#") {
            self.expect_sym("(")?;
            loop {
                self.eat_kw("parameter");
                let pname = self.ident()?;
                self.expect_sym("=")?;
                let value = self.expr()?;
                params.push((pname, value));
                if !self.eat_sym(",") {
                    break;
                }
            }
            self.expect_sym(")")?;
        }

        if self.eat_sym("(") {
            if !matches!(self.peek(), TokenKind::Sym(")")) {
                self.port_list(&mut ports, &mut header_names)?;
            }
            self.expect_sym(")")?;
        }
        self.expect_sym(";")?;

        let mut decls: Vec<NetDecl> = Vec::new();
        let mut items: Vec<Item> = Vec::new();

        loop {
            match self.peek().clone() {
                TokenKind::Keyword("endmodule") => {
                    self.bump();
                    break;
                }
                TokenKind::Keyword("parameter") | TokenKind::Keyword("localparam") => {
                    self.bump();
                    loop {
                        let pname = self.ident()?;
                        self.expect_sym("=")?;
                        let value = self.expr()?;
                        params.push((pname, value));
                        if !self.eat_sym(",") {
                            break;
                        }
                    }
                    self.expect_sym(";")?;
                }
                TokenKind::Keyword(dir @ ("input" | "output")) => {
                    self.bump();
                    let d = if dir == "input" {
                        Dir::Input
                    } else {
                        Dir::Output
                    };
                    let is_reg = self.eat_kw("reg");
                    self.eat_kw("wire");
                    let range = self.opt_range()?;
                    loop {
                        let pname = self.ident()?;
                        self.merge_port(&mut ports, &header_names, pname, d, &range, is_reg)?;
                        if !self.eat_sym(",") {
                            break;
                        }
                    }
                    self.expect_sym(";")?;
                }
                TokenKind::Keyword(kw @ ("wire" | "reg")) => {
                    self.bump();
                    let is_reg = kw == "reg";
                    let range = self.opt_range()?;
                    loop {
                        let nname = self.ident()?;
                        // `reg` re-declaration of an output port only sets its flag
                        if let Some(p) = ports.iter_mut().find(|p| p.name == nname) {
                            p.is_reg |= is_reg;
                            if p.range.is_none() {
                                p.range.clone_from(&range);
                            }
                        } else {
                            decls.push(NetDecl {
                                name: nname.clone(),
                                range: range.clone(),
                                is_reg,
                            });
                        }
                        // net initializer: `wire x = expr;` is sugar for a
                        // declaration plus a continuous assign
                        if self.eat_sym("=") {
                            let rhs = self.expr()?;
                            items.push(Item::Assign {
                                lhs: LValue::Ident(nname),
                                rhs,
                            });
                        }
                        if !self.eat_sym(",") {
                            break;
                        }
                    }
                    self.expect_sym(";")?;
                }
                TokenKind::Keyword("integer") => {
                    // tolerated but ignored: skip to ';'
                    self.bump();
                    while !matches!(self.peek(), TokenKind::Sym(";") | TokenKind::Eof) {
                        self.bump();
                    }
                    self.expect_sym(";")?;
                }
                TokenKind::Keyword("assign") => {
                    self.bump();
                    loop {
                        let lhs = self.lvalue()?;
                        self.expect_sym("=")?;
                        let rhs = self.expr()?;
                        items.push(Item::Assign { lhs, rhs });
                        if !self.eat_sym(",") {
                            break;
                        }
                    }
                    self.expect_sym(";")?;
                }
                TokenKind::Keyword("always") => {
                    self.bump();
                    items.push(self.always()?);
                }
                other => {
                    return Err(self.err(format!("unexpected token in module body: {other:?}")))
                }
            }
        }

        Ok(ModuleDecl {
            name,
            ports,
            params,
            decls,
            items,
        })
    }

    /// Parses the header port list — either ANSI declarations or plain names.
    fn port_list(
        &mut self,
        ports: &mut Vec<PortDecl>,
        header_names: &mut Vec<String>,
    ) -> Result<(), VerilogError> {
        let mut cur_dir: Option<Dir> = None;
        let mut cur_range: Option<(Expr, Expr)> = None;
        let mut cur_reg = false;
        loop {
            match self.peek().clone() {
                TokenKind::Keyword(d @ ("input" | "output")) => {
                    self.bump();
                    cur_dir = Some(if d == "input" {
                        Dir::Input
                    } else {
                        Dir::Output
                    });
                    cur_reg = self.eat_kw("reg");
                    self.eat_kw("wire");
                    cur_range = self.opt_range()?;
                    let name = self.ident()?;
                    ports.push(PortDecl {
                        name,
                        dir: cur_dir.expect("just set"),
                        range: cur_range.clone(),
                        is_reg: cur_reg,
                    });
                }
                TokenKind::Ident(_) => {
                    let name = self.ident()?;
                    match cur_dir {
                        Some(d) => ports.push(PortDecl {
                            name,
                            dir: d,
                            range: cur_range.clone(),
                            is_reg: cur_reg,
                        }),
                        None => header_names.push(name), // classic style
                    }
                }
                other => return Err(self.err(format!("bad port declaration: {other:?}"))),
            }
            if !self.eat_sym(",") {
                return Ok(());
            }
        }
    }

    fn merge_port(
        &self,
        ports: &mut Vec<PortDecl>,
        header_names: &[String],
        name: String,
        dir: Dir,
        range: &Option<(Expr, Expr)>,
        is_reg: bool,
    ) -> Result<(), VerilogError> {
        if let Some(p) = ports.iter_mut().find(|p| p.name == name) {
            p.dir = dir;
            p.is_reg |= is_reg;
            if p.range.is_none() {
                p.range.clone_from(range);
            }
            return Ok(());
        }
        if !header_names.contains(&name) {
            return Err(self.err(format!("port '{name}' not in module header")));
        }
        ports.push(PortDecl {
            name,
            dir,
            range: range.clone(),
            is_reg,
        });
        Ok(())
    }

    fn opt_range(&mut self) -> Result<Option<(Expr, Expr)>, VerilogError> {
        if self.eat_sym("[") {
            let msb = self.expr()?;
            self.expect_sym(":")?;
            let lsb = self.expr()?;
            self.expect_sym("]")?;
            Ok(Some((msb, lsb)))
        } else {
            Ok(None)
        }
    }

    // -------------------------------------------------------------- always

    fn always(&mut self) -> Result<Item, VerilogError> {
        self.expect_sym("@")?;
        let mut clock: Option<String> = None;
        let mut combinational = false;
        if self.eat_sym("*") {
            combinational = true;
        } else {
            self.expect_sym("(")?;
            if self.eat_sym("*") {
                combinational = true;
            } else {
                loop {
                    if self.eat_kw("posedge") {
                        let c = self.ident()?;
                        if clock.is_some() {
                            return Err(self.err("multiple posedge clocks unsupported"));
                        }
                        clock = Some(c);
                    } else if self.eat_kw("negedge") {
                        return Err(self.err("negedge clocking unsupported"));
                    } else {
                        let _signal = self.ident()?;
                        combinational = true;
                    }
                    if !(self.eat_kw("or") || self.eat_sym(",")) {
                        break;
                    }
                }
            }
            self.expect_sym(")")?;
        }
        let stmt = self.stmt()?;
        match (clock, combinational) {
            (Some(c), false) => Ok(Item::AlwaysFf { clock: c, stmt }),
            (None, _) => Ok(Item::AlwaysComb(stmt)),
            (Some(_), true) => Err(self.err("mixed posedge and level sensitivity unsupported")),
        }
    }

    fn stmt(&mut self) -> Result<Stmt, VerilogError> {
        match self.peek().clone() {
            TokenKind::Keyword("begin") => {
                self.bump();
                let mut stmts = Vec::new();
                while !self.eat_kw("end") {
                    if self.at_eof() {
                        return Err(self.err("unterminated begin/end block"));
                    }
                    stmts.push(self.stmt()?);
                }
                Ok(Stmt::Block(stmts))
            }
            TokenKind::Keyword("if") => {
                self.bump();
                self.expect_sym("(")?;
                let cond = self.expr()?;
                self.expect_sym(")")?;
                let then_branch = Box::new(self.stmt()?);
                let else_branch = if self.eat_kw("else") {
                    Some(Box::new(self.stmt()?))
                } else {
                    None
                };
                Ok(Stmt::If {
                    cond,
                    then_branch,
                    else_branch,
                })
            }
            TokenKind::Keyword(kw @ ("case" | "casez" | "casex")) => {
                self.bump();
                let kind = if kw == "case" {
                    CaseKind::Plain
                } else {
                    // casex treated as casez (x/z both wildcard)
                    CaseKind::Casez
                };
                self.expect_sym("(")?;
                let expr = self.expr()?;
                self.expect_sym(")")?;
                let mut arms = Vec::new();
                let mut default = None;
                loop {
                    if self.eat_kw("endcase") {
                        break;
                    }
                    if self.at_eof() {
                        return Err(self.err("unterminated case"));
                    }
                    if self.eat_kw("default") {
                        self.eat_sym(":");
                        default = Some(Box::new(self.stmt()?));
                        continue;
                    }
                    let mut patterns = vec![self.expr()?];
                    while self.eat_sym(",") {
                        patterns.push(self.expr()?);
                    }
                    self.expect_sym(":")?;
                    let body = self.stmt()?;
                    arms.push(CaseArm { patterns, body });
                }
                Ok(Stmt::Case {
                    kind,
                    expr,
                    arms,
                    default,
                })
            }
            TokenKind::Sym(";") => {
                self.bump();
                Ok(Stmt::Empty)
            }
            _ => {
                let lhs = self.lvalue()?;
                // '=' or '<='
                if !self.eat_sym("=") && !self.eat_sym("<=") {
                    return Err(self.err("expected '=' or '<=' in assignment"));
                }
                let rhs = self.expr()?;
                self.expect_sym(";")?;
                Ok(Stmt::Assign { lhs, rhs })
            }
        }
    }

    fn lvalue(&mut self) -> Result<LValue, VerilogError> {
        let name = self.ident()?;
        if self.eat_sym("[") {
            let first = self.expr()?;
            if self.eat_sym(":") {
                let lsb = self.expr()?;
                self.expect_sym("]")?;
                Ok(LValue::Part {
                    name,
                    msb: first,
                    lsb,
                })
            } else {
                self.expect_sym("]")?;
                Ok(LValue::Bit { name, index: first })
            }
        } else {
            Ok(LValue::Ident(name))
        }
    }

    // --------------------------------------------------------- expressions

    fn expr(&mut self) -> Result<Expr, VerilogError> {
        self.ternary()
    }

    fn ternary(&mut self) -> Result<Expr, VerilogError> {
        let cond = self.binary(0)?;
        if self.eat_sym("?") {
            let then_e = self.expr()?;
            self.expect_sym(":")?;
            let else_e = self.expr()?;
            Ok(Expr::Ternary {
                cond: Box::new(cond),
                then_e: Box::new(then_e),
                else_e: Box::new(else_e),
            })
        } else {
            Ok(cond)
        }
    }

    /// Precedence-climbing over binary operators.
    fn binary(&mut self, min_level: u8) -> Result<Expr, VerilogError> {
        let mut lhs = self.unary()?;
        loop {
            let (op, level) = match self.peek() {
                TokenKind::Sym("||") => (BinaryOp::LogicOr, 1),
                TokenKind::Sym("&&") => (BinaryOp::LogicAnd, 2),
                TokenKind::Sym("|") => (BinaryOp::Or, 3),
                TokenKind::Sym("^") => (BinaryOp::Xor, 4),
                TokenKind::Sym("&") => (BinaryOp::And, 5),
                TokenKind::Sym("==") => (BinaryOp::Eq, 6),
                TokenKind::Sym("!=") => (BinaryOp::Ne, 6),
                TokenKind::Sym("<") => (BinaryOp::Lt, 7),
                TokenKind::Sym("<=") => (BinaryOp::Le, 7),
                TokenKind::Sym(">") => (BinaryOp::Gt, 7),
                TokenKind::Sym(">=") => (BinaryOp::Ge, 7),
                TokenKind::Sym("<<") => (BinaryOp::Shl, 8),
                TokenKind::Sym(">>") => (BinaryOp::Shr, 8),
                TokenKind::Sym("+") => (BinaryOp::Add, 9),
                TokenKind::Sym("-") => (BinaryOp::Sub, 9),
                TokenKind::Sym("*") => (BinaryOp::Mul, 10),
                _ => break,
            };
            if level < min_level {
                break;
            }
            self.bump();
            let rhs = self.binary(level + 1)?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, VerilogError> {
        let op = match self.peek() {
            TokenKind::Sym("!") => Some(UnaryOp::LogicNot),
            TokenKind::Sym("~") => Some(UnaryOp::BitNot),
            TokenKind::Sym("-") => Some(UnaryOp::Neg),
            TokenKind::Sym("&") => Some(UnaryOp::RedAnd),
            TokenKind::Sym("|") => Some(UnaryOp::RedOr),
            TokenKind::Sym("^") => Some(UnaryOp::RedXor),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let expr = self.unary()?;
            return Ok(Expr::Unary {
                op,
                expr: Box::new(expr),
            });
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, VerilogError> {
        let mut e = self.primary()?;
        while self.eat_sym("[") {
            let first = self.expr()?;
            if self.eat_sym(":") {
                let lsb = self.expr()?;
                self.expect_sym("]")?;
                e = Expr::Part {
                    expr: Box::new(e),
                    msb: Box::new(first),
                    lsb: Box::new(lsb),
                };
            } else {
                self.expect_sym("]")?;
                e = Expr::Index {
                    expr: Box::new(e),
                    index: Box::new(first),
                };
            }
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, VerilogError> {
        match self.bump() {
            TokenKind::Ident(s) => Ok(Expr::Ident(s)),
            TokenKind::Number { size, bits, .. } => Ok(Expr::Number { size, bits }),
            TokenKind::Sym("(") => {
                let e = self.expr()?;
                self.expect_sym(")")?;
                Ok(e)
            }
            TokenKind::Sym("{") => {
                let first = self.expr()?;
                // replication: {N{expr}}
                if self.eat_sym("{") {
                    let inner = self.expr()?;
                    self.expect_sym("}")?;
                    self.expect_sym("}")?;
                    return Ok(Expr::Repl {
                        count: Box::new(first),
                        expr: Box::new(inner),
                    });
                }
                let mut parts = vec![first];
                while self.eat_sym(",") {
                    parts.push(self.expr()?);
                }
                self.expect_sym("}")?;
                Ok(Expr::Concat(parts))
            }
            other => Err(self.err(format!("expected expression, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_one(src: &str) -> ModuleDecl {
        parse(src).unwrap().modules.remove(0)
    }

    #[test]
    fn ansi_ports() {
        let m = parse_one("module m(input wire [3:0] a, input b, output reg [7:0] y); endmodule");
        assert_eq!(m.ports.len(), 3);
        assert_eq!(m.ports[0].dir, Dir::Input);
        assert!(m.ports[0].range.is_some());
        assert_eq!(m.ports[1].dir, Dir::Input);
        assert!(m.ports[1].range.is_none());
        assert_eq!(m.ports[2].dir, Dir::Output);
        assert!(m.ports[2].is_reg);
    }

    #[test]
    fn classic_ports() {
        let m = parse_one(
            "module m(a, y);\n input [3:0] a;\n output [3:0] y;\n reg [3:0] y;\nendmodule",
        );
        assert_eq!(m.ports.len(), 2);
        assert_eq!(m.ports[1].dir, Dir::Output);
        assert!(m.ports[1].is_reg);
    }

    #[test]
    fn precedence_shapes() {
        let m = parse_one(
            "module m(input a, input b, input c, output y); assign y = a | b & c; endmodule",
        );
        match &m.items[0] {
            Item::Assign { rhs, .. } => match rhs {
                Expr::Binary {
                    op: BinaryOp::Or,
                    rhs: r,
                    ..
                } => {
                    assert!(matches!(
                        **r,
                        Expr::Binary {
                            op: BinaryOp::And,
                            ..
                        }
                    ));
                }
                other => panic!("bad shape {other:?}"),
            },
            other => panic!("bad item {other:?}"),
        }
    }

    #[test]
    fn ternary_nests_right() {
        let m = parse_one(
            "module m(input s, input t, output y); assign y = s ? 1'b0 : t ? 1'b1 : 1'b0; endmodule",
        );
        match &m.items[0] {
            Item::Assign {
                rhs: Expr::Ternary { else_e, .. },
                ..
            } => {
                assert!(matches!(**else_e, Expr::Ternary { .. }));
            }
            other => panic!("bad {other:?}"),
        }
    }

    #[test]
    fn case_with_default() {
        let m = parse_one(
            "module m(input [1:0] s, output reg y);\n always @(*) begin\n case (s)\n 2'b00: y = 1'b0;\n 2'b01, 2'b10: y = 1'b1;\n default: y = 1'b0;\n endcase\n end\nendmodule",
        );
        match &m.items[0] {
            Item::AlwaysComb(Stmt::Block(stmts)) => match &stmts[0] {
                Stmt::Case { arms, default, .. } => {
                    assert_eq!(arms.len(), 2);
                    assert_eq!(arms[1].patterns.len(), 2);
                    assert!(default.is_some());
                }
                other => panic!("bad {other:?}"),
            },
            other => panic!("bad {other:?}"),
        }
    }

    #[test]
    fn always_ff_detected() {
        let m = parse_one(
            "module m(input clk, input d, output reg q); always @(posedge clk) q <= d; endmodule",
        );
        assert!(matches!(&m.items[0], Item::AlwaysFf { clock, .. } if clock == "clk"));
    }

    #[test]
    fn sensitivity_list_is_comb() {
        let m = parse_one(
            "module m(input a, input b, output reg y); always @(a or b) y = a & b; endmodule",
        );
        assert!(matches!(&m.items[0], Item::AlwaysComb(_)));
    }

    #[test]
    fn concat_and_replication() {
        let m =
            parse_one("module m(input [1:0] a, output [5:0] y); assign y = {a, {2{a}}}; endmodule");
        match &m.items[0] {
            Item::Assign {
                rhs: Expr::Concat(parts),
                ..
            } => {
                assert_eq!(parts.len(), 2);
                assert!(matches!(parts[1], Expr::Repl { .. }));
            }
            other => panic!("bad {other:?}"),
        }
    }

    #[test]
    fn parameters_header_and_body() {
        let m = parse_one(
            "module m #(parameter W = 8) (input [W-1:0] a, output [W-1:0] y);\n parameter D = 2;\n assign y = a + D;\nendmodule",
        );
        assert_eq!(m.params.len(), 2);
        assert_eq!(m.params[0].0, "W");
    }

    #[test]
    fn error_on_garbage() {
        assert!(parse("module m(; endmodule").is_err());
        assert!(parse("modul m(); endmodule").is_err());
        assert!(parse("module m(input a); assign = 1; endmodule").is_err());
    }

    #[test]
    fn nonblocking_assignment() {
        let m = parse_one(
            "module m(input clk, input [3:0] d, output reg [3:0] q); always @(posedge clk) begin q <= d; end endmodule",
        );
        match &m.items[0] {
            Item::AlwaysFf {
                stmt: Stmt::Block(b),
                ..
            } => {
                assert!(matches!(&b[0], Stmt::Assign { .. }));
            }
            other => panic!("bad {other:?}"),
        }
    }

    #[test]
    fn two_modules() {
        let f = parse("module a(); endmodule module b(); endmodule").unwrap();
        assert_eq!(f.modules.len(), 2);
        assert_eq!(f.modules[1].name, "b");
    }
}
