//! Hand-written Verilog lexer.

use crate::error::VerilogError;

/// A pattern bit in a literal: `0`, `1`, `x` (unknown) or `z` (wildcard in
/// `casez` patterns, unknown elsewhere).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum PatBit {
    /// Logic 0.
    Zero,
    /// Logic 1.
    One,
    /// Unknown.
    X,
    /// High-impedance / `casez` wildcard.
    Z,
}

/// Token kinds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier (including escaped identifiers).
    Ident(String),
    /// A number literal: optional size, base, bits (MSB-first as parsed,
    /// stored LSB-first), e.g. `4'b10x0`. Plain decimals get `size: None`.
    Number {
        /// Explicit size in bits, if given.
        size: Option<u32>,
        /// LSB-first bit pattern.
        bits: Vec<PatBit>,
        /// Original value when it fits in u64 and has no x/z digits.
        value: Option<u64>,
    },
    /// Keyword (lowercase reserved word).
    Keyword(&'static str),
    /// Punctuation or operator.
    Sym(&'static str),
    /// End of input.
    Eof,
}

/// A token with its source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// What was read.
    pub kind: TokenKind,
    /// 1-based line number.
    pub line: u32,
}

const KEYWORDS: &[&str] = &[
    "module",
    "endmodule",
    "input",
    "output",
    "inout",
    "wire",
    "reg",
    "assign",
    "always",
    "begin",
    "end",
    "if",
    "else",
    "case",
    "casez",
    "casex",
    "endcase",
    "default",
    "posedge",
    "negedge",
    "or",
    "parameter",
    "localparam",
    "integer",
    "initial",
];

/// Streaming lexer over Verilog source.
#[derive(Debug)]
pub struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Lexer<'a> {
    /// Creates a lexer over `source`.
    pub fn new(source: &'a str) -> Self {
        Lexer {
            src: source.as_bytes(),
            pos: 0,
            line: 1,
        }
    }

    /// Lexes the whole input into a token vector (ending with `Eof`).
    ///
    /// # Errors
    ///
    /// Returns [`VerilogError::Lex`] on malformed input.
    pub fn tokenize(mut self) -> Result<Vec<Token>, VerilogError> {
        let mut out = Vec::new();
        loop {
            let t = self.next_token()?;
            let eof = t.kind == TokenKind::Eof;
            out.push(t);
            if eof {
                return Ok(out);
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek();
        if c == Some(b'\n') {
            self.line += 1;
        }
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn skip_trivia(&mut self) -> Result<(), VerilogError> {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let start_line = self.line;
                    self.bump();
                    self.bump();
                    loop {
                        match self.peek() {
                            None => {
                                return Err(VerilogError::lex(
                                    start_line,
                                    "unterminated block comment",
                                ))
                            }
                            Some(b'*') if self.peek2() == Some(b'/') => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            _ => {
                                self.bump();
                            }
                        }
                    }
                }
                // compiler directives: skip to end of line
                Some(b'`') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn next_token(&mut self) -> Result<Token, VerilogError> {
        self.skip_trivia()?;
        let line = self.line;
        let c = match self.peek() {
            None => {
                return Ok(Token {
                    kind: TokenKind::Eof,
                    line,
                })
            }
            Some(c) => c,
        };
        if c.is_ascii_alphabetic() || c == b'_' || c == b'\\' {
            return Ok(Token {
                kind: self.lex_ident()?,
                line,
            });
        }
        if c.is_ascii_digit() || (c == b'\'' && self.peek2().is_some()) {
            return Ok(Token {
                kind: self.lex_number()?,
                line,
            });
        }
        let kind = self.lex_symbol(line)?;
        Ok(Token { kind, line })
    }

    fn lex_ident(&mut self) -> Result<TokenKind, VerilogError> {
        let mut s = String::new();
        if self.peek() == Some(b'\\') {
            // escaped identifier: up to whitespace
            self.bump();
            while let Some(c) = self.peek() {
                if c.is_ascii_whitespace() {
                    break;
                }
                s.push(c as char);
                self.bump();
            }
            return Ok(TokenKind::Ident(s));
        }
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' || c == b'$' {
                s.push(c as char);
                self.bump();
            } else {
                break;
            }
        }
        if let Some(kw) = KEYWORDS.iter().find(|&&k| k == s) {
            Ok(TokenKind::Keyword(kw))
        } else {
            Ok(TokenKind::Ident(s))
        }
    }

    fn lex_number(&mut self) -> Result<TokenKind, VerilogError> {
        let line = self.line;
        // leading decimal digits: either a plain decimal or the size prefix
        let mut digits = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || c == b'_' {
                if c != b'_' {
                    digits.push(c as char);
                }
                self.bump();
            } else {
                break;
            }
        }
        // skip whitespace between size and base (legal in Verilog)
        let save = (self.pos, self.line);
        while self.peek().is_some_and(|c| c == b' ' || c == b'\t') {
            self.bump();
        }
        if self.peek() != Some(b'\'') {
            (self.pos, self.line) = save;
            // plain decimal
            let value: u64 = digits
                .parse()
                .map_err(|_| VerilogError::lex(line, format!("bad decimal '{digits}'")))?;
            let width = 32.max(64 - value.leading_zeros()).min(64);
            let bits = (0..width)
                .map(|i| {
                    if (value >> i) & 1 == 1 {
                        PatBit::One
                    } else {
                        PatBit::Zero
                    }
                })
                .collect();
            return Ok(TokenKind::Number {
                size: None,
                bits,
                value: Some(value),
            });
        }
        self.bump(); // '
        let size: Option<u32> = if digits.is_empty() {
            None
        } else {
            Some(
                digits
                    .parse()
                    .map_err(|_| VerilogError::lex(line, format!("bad size '{digits}'")))?,
            )
        };
        let base = self
            .bump()
            .ok_or_else(|| VerilogError::lex(line, "missing base after '"))?
            .to_ascii_lowercase();
        let mut body = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' || c == b'?' {
                if c != b'_' {
                    body.push((c as char).to_ascii_lowercase());
                }
                self.bump();
            } else {
                break;
            }
        }
        if body.is_empty() {
            return Err(VerilogError::lex(line, "empty number body"));
        }
        // msb-first pattern bits
        let mut msb: Vec<PatBit> = Vec::new();
        let push_digit = |msb: &mut Vec<PatBit>, v: u32, nbits: u32| {
            for i in (0..nbits).rev() {
                msb.push(if (v >> i) & 1 == 1 {
                    PatBit::One
                } else {
                    PatBit::Zero
                });
            }
        };
        match base {
            b'b' | b'o' | b'h' => {
                let nbits = match base {
                    b'b' => 1,
                    b'o' => 3,
                    _ => 4,
                };
                for ch in body.chars() {
                    match ch {
                        'x' => msb.extend(std::iter::repeat_n(PatBit::X, nbits as usize)),
                        'z' | '?' => msb.extend(std::iter::repeat_n(PatBit::Z, nbits as usize)),
                        _ => {
                            let v = ch.to_digit(1 << nbits).ok_or_else(|| {
                                VerilogError::lex(line, format!("bad digit '{ch}'"))
                            })?;
                            push_digit(&mut msb, v, nbits);
                        }
                    }
                }
            }
            b'd' => {
                let value: u64 = body
                    .parse()
                    .map_err(|_| VerilogError::lex(line, format!("bad decimal '{body}'")))?;
                let width = 64 - value.leading_zeros().min(63);
                push_digit(&mut msb, 0, 0);
                for i in (0..width.max(1)).rev() {
                    msb.push(if (value >> i) & 1 == 1 {
                        PatBit::One
                    } else {
                        PatBit::Zero
                    });
                }
            }
            _ => {
                return Err(VerilogError::lex(
                    line,
                    format!("bad base '{}'", base as char),
                ))
            }
        }
        // size adjust: MSB-first → resize → LSB-first
        let mut lsb: Vec<PatBit> = msb.into_iter().rev().collect();
        if let Some(sz) = size {
            // extend with 0 (or x/z if the MSB is x/z, per the standard)
            let ext = match lsb.last() {
                Some(PatBit::X) => PatBit::X,
                Some(PatBit::Z) => PatBit::Z,
                _ => PatBit::Zero,
            };
            lsb.resize(sz as usize, ext);
        }
        let value =
            if lsb.iter().all(|b| matches!(b, PatBit::Zero | PatBit::One)) && lsb.len() <= 64 {
                let mut v = 0u64;
                for (i, b) in lsb.iter().enumerate() {
                    if *b == PatBit::One {
                        v |= 1 << i;
                    }
                }
                Some(v)
            } else {
                None
            };
        Ok(TokenKind::Number {
            size,
            bits: lsb,
            value,
        })
    }

    fn lex_symbol(&mut self, line: u32) -> Result<TokenKind, VerilogError> {
        const TWO: &[&str] = &[
            "&&", "||", "==", "!=", "<=", ">=", "<<", ">>", "=>", "+:", "-:",
        ];
        let c1 = self.bump().expect("checked by caller") as char;
        if let Some(c2) = self.peek() {
            let pair = [c1 as u8, c2];
            let pair_str = std::str::from_utf8(&pair).unwrap_or("");
            if let Some(sym) = TWO.iter().find(|&&s| s == pair_str) {
                self.bump();
                return Ok(TokenKind::Sym(sym));
            }
        }
        const ONE: &[&str] = &[
            "(", ")", "[", "]", "{", "}", ";", ",", ":", "?", "=", "+", "-", "*", "/", "%", "&",
            "|", "^", "~", "!", "<", ">", "@", "#", ".",
        ];
        let s = c1.to_string();
        if let Some(sym) = ONE.iter().find(|&&o| o == s) {
            Ok(TokenKind::Sym(sym))
        } else {
            Err(VerilogError::lex(
                line,
                format!("unexpected character '{c1}'"),
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        Lexer::new(src)
            .tokenize()
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn idents_and_keywords() {
        let ks = kinds("module foo_1 ba$r endmodule");
        assert_eq!(ks[0], TokenKind::Keyword("module"));
        assert_eq!(ks[1], TokenKind::Ident("foo_1".into()));
        // $ continues an identifier after a start character
        assert_eq!(ks[2], TokenKind::Ident("ba$r".into()));
        assert_eq!(ks.last(), Some(&TokenKind::Eof));
    }

    #[test]
    fn comments_are_skipped() {
        let ks = kinds("a // line\n /* block\n comment */ b");
        assert_eq!(ks[0], TokenKind::Ident("a".into()));
        assert_eq!(ks[1], TokenKind::Ident("b".into()));
    }

    #[test]
    fn sized_binary_literal() {
        let ks = kinds("4'b10x0");
        match &ks[0] {
            TokenKind::Number { size, bits, value } => {
                assert_eq!(*size, Some(4));
                assert_eq!(
                    bits,
                    &vec![PatBit::Zero, PatBit::X, PatBit::Zero, PatBit::One]
                );
                assert_eq!(*value, None);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn casez_wildcard_literal() {
        let ks = kinds("3'b1zz");
        match &ks[0] {
            TokenKind::Number { bits, .. } => {
                assert_eq!(bits, &vec![PatBit::Z, PatBit::Z, PatBit::One]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn hex_and_decimal() {
        let ks = kinds("8'hff 2'd3 13");
        match &ks[0] {
            TokenKind::Number { size, value, .. } => {
                assert_eq!(*size, Some(8));
                assert_eq!(*value, Some(255));
            }
            other => panic!("unexpected {other:?}"),
        }
        match &ks[1] {
            TokenKind::Number { value, .. } => assert_eq!(*value, Some(3)),
            other => panic!("unexpected {other:?}"),
        }
        match &ks[2] {
            TokenKind::Number { size, value, .. } => {
                assert_eq!(*size, None);
                assert_eq!(*value, Some(13));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn operators() {
        let ks = kinds("a && b || !c == d <= e << 2");
        let syms: Vec<&str> = ks
            .iter()
            .filter_map(|k| match k {
                TokenKind::Sym(s) => Some(*s),
                _ => None,
            })
            .collect();
        assert_eq!(syms, vec!["&&", "||", "!", "==", "<=", "<<"]);
    }

    #[test]
    fn truncating_size() {
        // 2'd7 must truncate to 2 bits = 3
        let ks = kinds("2'd7");
        match &ks[0] {
            TokenKind::Number { bits, value, .. } => {
                assert_eq!(bits.len(), 2);
                assert_eq!(*value, Some(3));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn underscores_in_literals() {
        let ks = kinds("16'b1010_1010_1010_1010");
        match &ks[0] {
            TokenKind::Number { value, .. } => assert_eq!(*value, Some(0xAAAA)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn directives_skipped() {
        let ks = kinds("`timescale 1ns/1ps\nmodule");
        assert_eq!(ks[0], TokenKind::Keyword("module"));
    }

    #[test]
    fn bad_char_errors() {
        assert!(Lexer::new("\"str\"").tokenize().is_err());
    }
}
