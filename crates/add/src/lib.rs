//! Algebraic Decision Diagrams (ADDs) for muxtree restructuring.
//!
//! An ADD generalizes a BDD from `{0,1}` terminals to an arbitrary finite
//! terminal set [Bahar et al. 1997]. The smaRTLy restructuring pass
//! (paper §III) collects a `case` statement's *control-bit → data-leaf*
//! function, builds an ADD over the individual control bits, and re-emits
//! one 2-to-1 MUX per internal node.
//!
//! Variable choice is the paper's greedy heuristic: at every node pick the
//! bit that minimizes the **sum of distinct terminal counts of the two
//! cofactors** (so the select `S2` of Listing 2 scores 4 = |{p1,p2,p3}| +
//! |{p0}| and beats `S0`'s 6). Because each node chooses its own variable
//! this is a *free* ADD; hash-consing still shares isomorphic subgraphs.
//!
//! # Example — the paper's Listing 1
//!
//! ```
//! use smartly_add::{FunctionTable, Add};
//!
//! // case (s[1:0]) 0:p0 1:p1 2:p2 default:p3 — terminals 0..=3
//! let mut t = FunctionTable::new_filled(2, 3);
//! t.set(0b00, 0);
//! t.set(0b01, 1);
//! t.set(0b10, 2);
//! let add = Add::build_greedy(&t);
//! assert_eq!(add.node_count(), 3); // three MUXes, as in paper Fig. 7
//! assert_eq!(add.eval(0b10), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;

/// A complete function table over `width` input bits with `u32` terminals.
///
/// Index `i`'s bit `k` is the value of input bit `k` (LSB-first), matching
/// the control-bus bit order of the restructuring pass.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FunctionTable {
    width: u32,
    entries: Vec<u32>,
}

impl FunctionTable {
    /// A table of `2^width` entries, all set to `fill`.
    ///
    /// # Panics
    ///
    /// Panics if `width > 24` (tables are materialized in full).
    pub fn new_filled(width: u32, fill: u32) -> Self {
        assert!(width <= 24, "function tables are capped at 24 bits");
        FunctionTable {
            width,
            entries: vec![fill; 1usize << width],
        }
    }

    /// Number of input bits.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Sets entry `index` to terminal `t`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 2^width`.
    pub fn set(&mut self, index: usize, t: u32) {
        self.entries[index] = t;
    }

    /// The terminal for assignment `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 2^width`.
    pub fn get(&self, index: usize) -> u32 {
        self.entries[index]
    }

    /// Builds a table from priority-ordered cubes (first match wins).
    ///
    /// Each cube gives, per input bit, `Some(required value)` or `None`
    /// (don't care). Assignments matching no cube get `default`.
    ///
    /// # Panics
    ///
    /// Panics if a cube's length differs from `width` or `width > 24`.
    pub fn from_priority_cubes(
        width: u32,
        default: u32,
        cubes: &[(Vec<Option<bool>>, u32)],
    ) -> Self {
        let mut table = FunctionTable::new_filled(width, default);
        // apply lowest priority first so earlier cubes overwrite
        for (cube, t) in cubes.iter().rev() {
            assert_eq!(cube.len(), width as usize, "cube width mismatch");
            // enumerate assignments matching the cube
            let free: Vec<usize> = (0..width as usize).filter(|&i| cube[i].is_none()).collect();
            let base: usize = (0..width as usize)
                .map(|i| match cube[i] {
                    Some(true) => 1usize << i,
                    _ => 0,
                })
                .sum();
            for m in 0..(1usize << free.len()) {
                let mut idx = base;
                for (k, &bit) in free.iter().enumerate() {
                    if (m >> k) & 1 == 1 {
                        idx |= 1 << bit;
                    }
                }
                table.entries[idx] = *t;
            }
        }
        table
    }

    /// Distinct terminals of the sub-function where the bits listed in
    /// `fixed` take the given values.
    pub fn distinct_terminals(&self, fixed: &[(u32, bool)]) -> Vec<u32> {
        let mut out: Vec<u32> = Vec::new();
        'outer: for idx in 0..self.entries.len() {
            for &(bit, val) in fixed {
                if ((idx >> bit) & 1 == 1) != val {
                    continue 'outer;
                }
            }
            let t = self.entries[idx];
            if !out.contains(&t) {
                out.push(t);
            }
        }
        out
    }
}

/// Reference to an ADD vertex: an internal node or a terminal.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum AddRef {
    /// A terminal (leaf) value.
    Terminal(u32),
    /// An internal node, by index into [`Add::node`].
    Node(u32),
}

/// An internal decision node: branch on `var`.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct AddNode {
    /// Input bit tested at this node.
    pub var: u32,
    /// Child when the bit is 0.
    pub lo: AddRef,
    /// Child when the bit is 1.
    pub hi: AddRef,
}

/// A reduced, hash-consed algebraic decision diagram.
#[derive(Clone, Debug)]
pub struct Add {
    nodes: Vec<AddNode>,
    root: AddRef,
    width: u32,
}

impl Add {
    /// Builds an ADD with the paper's greedy per-node bit selection.
    pub fn build_greedy(table: &FunctionTable) -> Add {
        Builder::new(table, None).build()
    }

    /// Builds an ADD with a fixed variable order (for the good-vs-bad
    /// ordering comparison of Listing 2 and the ablation bench).
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of `0..width`.
    pub fn build_with_order(table: &FunctionTable, order: &[u32]) -> Add {
        let mut sorted: Vec<u32> = order.to_vec();
        sorted.sort_unstable();
        assert!(
            sorted == (0..table.width()).collect::<Vec<_>>(),
            "order must be a permutation of 0..width"
        );
        Builder::new(table, Some(order.to_vec())).build()
    }

    /// The root reference.
    pub fn root(&self) -> AddRef {
        self.root
    }

    /// Number of internal nodes — the number of 2-to-1 MUXes a rebuild
    /// needs.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The node behind a [`AddRef::Node`].
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    pub fn node(&self, index: u32) -> AddNode {
        self.nodes[index as usize]
    }

    /// Longest root-to-terminal path (0 for a constant function).
    pub fn depth(&self) -> usize {
        fn walk(add: &Add, r: AddRef) -> usize {
            match r {
                AddRef::Terminal(_) => 0,
                AddRef::Node(i) => {
                    let n = add.node(i);
                    1 + walk(add, n.lo).max(walk(add, n.hi))
                }
            }
        }
        walk(self, self.root)
    }

    /// Evaluates the diagram on assignment `index` (bit `k` of `index` =
    /// input bit `k`).
    pub fn eval(&self, index: usize) -> u32 {
        let mut cur = self.root;
        loop {
            match cur {
                AddRef::Terminal(t) => return t,
                AddRef::Node(i) => {
                    let n = self.node(i);
                    cur = if (index >> n.var) & 1 == 1 {
                        n.hi
                    } else {
                        n.lo
                    };
                }
            }
        }
    }

    /// Distinct terminals reachable from the root.
    pub fn terminals(&self) -> Vec<u32> {
        let mut out = Vec::new();
        fn walk(add: &Add, r: AddRef, out: &mut Vec<u32>) {
            match r {
                AddRef::Terminal(t) => {
                    if !out.contains(&t) {
                        out.push(t);
                    }
                }
                AddRef::Node(i) => {
                    let n = add.node(i);
                    walk(add, n.lo, out);
                    walk(add, n.hi, out);
                }
            }
        }
        walk(self, self.root, &mut out);
        out
    }

    /// Input bit count of the source table.
    pub fn width(&self) -> u32 {
        self.width
    }
}

struct Builder<'t> {
    table: &'t FunctionTable,
    order: Option<Vec<u32>>,
    nodes: Vec<AddNode>,
    unique: HashMap<AddNode, u32>,
    /// memo: (free variable set, subtable signature) → node
    memo: HashMap<(Vec<u32>, Vec<u32>), AddRef>,
}

impl<'t> Builder<'t> {
    fn new(table: &'t FunctionTable, order: Option<Vec<u32>>) -> Self {
        Builder {
            table,
            order,
            nodes: Vec::new(),
            unique: HashMap::new(),
            memo: HashMap::new(),
        }
    }

    fn build(mut self) -> Add {
        let fixed: Vec<(u32, bool)> = Vec::new();
        let root = self.rec(&fixed, 0);
        Add {
            nodes: self.nodes,
            root,
            width: self.table.width(),
        }
    }

    /// Enumerates the subtable entries under `fixed`, in index order.
    fn subtable(&self, fixed: &[(u32, bool)]) -> Vec<u32> {
        let w = self.table.width() as usize;
        let mut out = Vec::new();
        'outer: for idx in 0..(1usize << w) {
            for &(bit, val) in fixed {
                if ((idx >> bit) & 1 == 1) != val {
                    continue 'outer;
                }
            }
            out.push(self.table.get(idx));
        }
        out
    }

    fn rec(&mut self, fixed: &[(u32, bool)], depth: usize) -> AddRef {
        let fixed_bits: Vec<u32> = {
            let mut v: Vec<u32> = fixed.iter().map(|&(b, _)| b).collect();
            v.sort_unstable();
            v
        };
        let free: Vec<u32> = (0..self.table.width())
            .filter(|v| !fixed_bits.contains(v))
            .collect();
        let sub = self.subtable(fixed);
        let key = (free, sub);
        if let Some(&r) = self.memo.get(&key) {
            return r;
        }
        // constant sub-function?
        if key.1.iter().all(|&t| t == key.1[0]) {
            let r = AddRef::Terminal(key.1[0]);
            self.memo.insert(key, r);
            return r;
        }
        let var = match &self.order {
            Some(order) => order[depth.min(order.len() - 1)],
            None => {
                // greedy: minimize |terminals(lo)| + |terminals(hi)|
                let mut best = (usize::MAX, 0u32);
                for v in 0..self.table.width() {
                    if fixed_bits.contains(&v) {
                        continue;
                    }
                    let mut f0 = fixed.to_vec();
                    f0.push((v, false));
                    let mut f1 = fixed.to_vec();
                    f1.push((v, true));
                    let score = self.table.distinct_terminals(&f0).len()
                        + self.table.distinct_terminals(&f1).len();
                    if score < best.0 {
                        best = (score, v);
                    }
                }
                best.1
            }
        };
        // with a fixed order the chosen var may already be fixed (skip it)
        if fixed_bits.contains(&var) {
            return self.rec_with_next_order_var(fixed, depth);
        }
        let mut f0 = fixed.to_vec();
        f0.push((var, false));
        let lo = self.rec(&f0, depth + 1);
        let mut f1 = fixed.to_vec();
        f1.push((var, true));
        let hi = self.rec(&f1, depth + 1);
        let r = if lo == hi {
            lo
        } else {
            let node = AddNode { var, lo, hi };
            let idx = match self.unique.get(&node) {
                Some(&i) => i,
                None => {
                    let i = self.nodes.len() as u32;
                    self.nodes.push(node);
                    self.unique.insert(node, i);
                    i
                }
            };
            AddRef::Node(idx)
        };
        self.memo.insert(key, r);
        r
    }

    fn rec_with_next_order_var(&mut self, fixed: &[(u32, bool)], depth: usize) -> AddRef {
        self.rec(fixed, depth + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Listing 2 of the paper: casez (s) 3'b1zz:p0; 3'b01z:p1; 3'b001:p2;
    /// default:p3 — bits LSB-first so `3'b1zz` = bit2 must be 1.
    fn listing2_table() -> FunctionTable {
        FunctionTable::from_priority_cubes(
            3,
            3,
            &[
                (vec![None, None, Some(true)], 0),
                (vec![None, Some(true), Some(false)], 1),
                (vec![Some(true), Some(false), Some(false)], 2),
            ],
        )
    }

    #[test]
    fn listing1_gives_three_nodes() {
        let mut t = FunctionTable::new_filled(2, 3);
        t.set(0b00, 0);
        t.set(0b01, 1);
        t.set(0b10, 2);
        let add = Add::build_greedy(&t);
        assert_eq!(add.node_count(), 3);
        for idx in 0..4 {
            assert_eq!(add.eval(idx), t.get(idx), "idx {idx}");
        }
    }

    #[test]
    fn listing2_greedy_three_vs_bad_order_seven() {
        let t = listing2_table();
        let greedy = Add::build_greedy(&t);
        assert_eq!(greedy.node_count(), 3, "good assignment: 3 MUXes");
        // the paper: assigning S0 first needs 7 MUXes
        let bad = Add::build_with_order(&t, &[0, 1, 2]);
        assert!(
            bad.node_count() > greedy.node_count(),
            "bad order {} should exceed greedy {}",
            bad.node_count(),
            greedy.node_count()
        );
        // both evaluate identically
        for idx in 0..8 {
            assert_eq!(greedy.eval(idx), t.get(idx));
            assert_eq!(bad.eval(idx), t.get(idx));
        }
    }

    #[test]
    fn greedy_picks_msb_for_listing2() {
        let t = listing2_table();
        let add = Add::build_greedy(&t);
        match add.root() {
            AddRef::Node(i) => assert_eq!(add.node(i).var, 2, "root should test S2"),
            AddRef::Terminal(_) => panic!("root must be a node"),
        }
    }

    #[test]
    fn constant_function_has_no_nodes() {
        let t = FunctionTable::new_filled(4, 7);
        let add = Add::build_greedy(&t);
        assert_eq!(add.node_count(), 0);
        assert_eq!(add.root(), AddRef::Terminal(7));
        assert_eq!(add.depth(), 0);
    }

    #[test]
    fn redundant_var_is_skipped() {
        // f(s1, s0) = s1 ? a : b — s0 never matters
        let mut t = FunctionTable::new_filled(2, 0);
        t.set(0b10, 1);
        t.set(0b11, 1);
        let add = Add::build_greedy(&t);
        assert_eq!(add.node_count(), 1);
        match add.root() {
            AddRef::Node(i) => assert_eq!(add.node(i).var, 1),
            AddRef::Terminal(_) => panic!("root must be a node"),
        }
    }

    #[test]
    fn sharing_collapses_isomorphic_subtrees() {
        // f = parity-ish function with shared cofactors:
        // f(s1,s0) = s0 (independent of s1): must share to a single node
        let mut t = FunctionTable::new_filled(2, 0);
        t.set(0b01, 1);
        t.set(0b11, 1);
        let add = Add::build_greedy(&t);
        assert_eq!(add.node_count(), 1);
    }

    #[test]
    fn terminals_reports_reachable_set() {
        let t = listing2_table();
        let add = Add::build_greedy(&t);
        let mut ts = add.terminals();
        ts.sort_unstable();
        assert_eq!(ts, vec![0, 1, 2, 3]);
    }

    #[test]
    fn from_priority_cubes_respects_priority() {
        // overlapping cubes: first matches 1xx -> 9, second xx1 -> 5
        let t = FunctionTable::from_priority_cubes(
            3,
            0,
            &[
                (vec![None, None, Some(true)], 9),
                (vec![Some(true), None, None], 5),
            ],
        );
        assert_eq!(t.get(0b101), 9, "higher priority cube wins");
        assert_eq!(t.get(0b001), 5);
        assert_eq!(t.get(0b010), 0);
    }

    #[test]
    fn eval_matches_table_exhaustively_random() {
        let mut seed = 0xabcdef12345u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..30 {
            let w = 1 + (next() % 6) as u32;
            let nterm = 1 + (next() % 5) as u32;
            let mut t = FunctionTable::new_filled(w, 0);
            for idx in 0..(1usize << w) {
                t.set(idx, (next() % nterm as u64) as u32);
            }
            let add = Add::build_greedy(&t);
            for idx in 0..(1usize << w) {
                assert_eq!(add.eval(idx), t.get(idx));
            }
            // node count can never exceed a complete tree
            assert!(add.node_count() < (1 << w));
            assert!(add.depth() <= w as usize);
        }
    }
}
