//! The industrial-style corpus (paper §IV-B substitution).
//!
//! The paper's industrial suite is confidential; what it reports about it
//! is structural: *"the selection circuits are more common in the
//! industrial dataset, so the proportion of MUX gates and PMUX gates is
//! higher"*, Yosys' identical-signal matching finds almost nothing there,
//! and 37.5% of the test points exceed a million AIG nodes. This
//! generator dials in exactly those traits — selection-dominated designs
//! whose control conditions are all *derived* (`|`/`&` chains) rather
//! than reused verbatim — at a laptop-friendly scale.
//!
//! Like the public corpus, the industrial points are scale-polymorphic:
//! at [`Scale::Medium`]/[`Scale::Large`] they grow the structural-depth
//! features (wider selects, deeper nesting, adder-identity miter cones)
//! and so join the conflict-bearing regime of the scaling curve.
//!
//! # Example
//!
//! ```
//! use smartly_workloads::{industrial_corpus, IndustrialSpec, Scale};
//!
//! let spec = IndustrialSpec { points: 2, scale: Scale::Tiny, ..Default::default() };
//! let corpus = industrial_corpus(&spec);
//! assert_eq!(corpus.len(), 2);
//! // deterministic: the same spec regenerates byte-identical sources
//! assert_eq!(corpus[0].source, industrial_corpus(&spec)[0].source);
//! ```

use crate::generator::{DesignSpec, Scale};
use crate::BenchCase;

/// Parameters for the industrial corpus.
#[derive(Clone, Debug)]
pub struct IndustrialSpec {
    /// Number of test points (paper: a suite; default 8).
    pub points: usize,
    /// Base RNG seed; point `i` uses `seed + i`.
    pub seed: u64,
    /// Scale applied to every point.
    pub scale: Scale,
}

impl Default for IndustrialSpec {
    fn default() -> Self {
        IndustrialSpec {
            points: 8,
            seed: 0x1d57,
            scale: Scale::Paper,
        }
    }
}

/// Generates the industrial corpus.
///
/// Sizes follow the paper's skew: ~37.5% of the points are generated at a
/// multiple of the base size (the "million-node" class, scaled down).
pub fn industrial_corpus(spec: &IndustrialSpec) -> Vec<BenchCase> {
    (0..spec.points)
        .map(|i| {
            // every 8th/3rd point is a "big" one: 3 of 8 ≈ 37.5%
            let big = i % 8 < 3;
            let mult = if big { 4 } else { 1 };
            let d = DesignSpec {
                name: format!("ind_{i:02}"),
                description: format!(
                    "industrial-style selection-heavy point {} ({})",
                    i,
                    if big { "large class" } else { "regular class" }
                ),
                seed: spec.seed + i as u64,
                data_width: 8,
                case_blocks: 40 * mult,
                case_sel_width: (4, 6),
                case_arm_fill: 0.85,
                case_leaf_sharing: 0.7,
                casez_fraction: 0.2,
                case_structure: 0.9,
                dep_cones: 70 * mult,
                dep_implied_fraction: 0.92,
                // almost no identical-signal reuse: Yosys finds nothing
                same_sig_cones: 2,
                same_sig_depth: (1, 2),
                redundancy_ops: 4,
                datapath_ops: 6 * mult,
                register_banks: 5 * mult,
                arith_cones: 5 * mult,
            };
            d.generate(spec.scale)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_requested_points() {
        let spec = IndustrialSpec {
            points: 4,
            scale: Scale::Tiny,
            ..Default::default()
        };
        let corpus = industrial_corpus(&spec);
        assert_eq!(corpus.len(), 4);
        for case in corpus {
            let m = case.compile().unwrap();
            m.validate().unwrap();
        }
    }

    #[test]
    fn selection_dominated() {
        let spec = IndustrialSpec {
            points: 1,
            scale: Scale::Small,
            ..Default::default()
        };
        let m = industrial_corpus(&spec)[0].compile().unwrap();
        let stats = m.stats();
        // mux-family cells must rival the arithmetic cells
        assert!(
            stats.mux_like() > stats.count("add") + stats.count("sub"),
            "muxes {} vs arith {}",
            stats.mux_like(),
            stats.count("add") + stats.count("sub")
        );
    }

    #[test]
    fn size_skew_present() {
        let spec = IndustrialSpec {
            points: 8,
            scale: Scale::Tiny,
            ..Default::default()
        };
        let sizes: Vec<usize> = industrial_corpus(&spec)
            .iter()
            .map(|c| c.compile().unwrap().live_cell_count())
            .collect();
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().min().unwrap();
        assert!(max > 2 * min, "large class must stand out: {sizes:?}");
    }
}
