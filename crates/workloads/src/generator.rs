//! The parameterized Verilog design generator.
//!
//! Every benchmark case in this crate is produced by [`DesignSpec`]: a
//! recipe of *blocks* whose mix determines which optimization pays off:
//!
//! * **case blocks** — `case`/`casez` statements lowered to eq+mux chains:
//!   food for muxtree restructuring;
//! * **dependent cones** — nested `if`s whose inner condition is a
//!   derived (`|`/`&`) function of the outer one: food for SAT-based
//!   redundancy elimination and invisible to the identical-signal
//!   baseline;
//! * **same-signal cones** — nested `if`s reusing the *same* condition:
//!   food for the Yosys baseline (this is what gives Yosys its large
//!   first-cut reduction in the paper);
//! * **arith cones** — muxes whose select is an adder-identity miter
//!   (`(a + b) == (b + a)` and add/sub round trips) at operand widths
//!   above the exhaustive-simulation threshold: constant-true, but only
//!   provably so by conflict-driven SAT search, so these blocks are what
//!   make the [`Scale::Medium`]/[`Scale::Large`] corpora drive real
//!   solver conflicts (enabled only at those scales);
//! * **datapath ops** and **register banks** — arithmetic and sequential
//!   filler that no muxtree pass can remove, anchoring the realistic
//!   "little headroom" cases.
//!
//! # Determinism
//!
//! All randomness is drawn from a seeded [`rand::rngs::StdRng`]; equal
//! `(spec, scale)` pairs generate byte-identical sources, on every
//! machine. The per-scale structural features are arranged so that the
//! legacy scales (`Tiny`/`Small`/`Paper`) consume exactly the RNG stream
//! they always did: enabling a feature at `Medium`/`Large` never shifts
//! a draw at a smaller scale, so historical corpus digests stay valid.
//!
//! # Example
//!
//! ```
//! use smartly_workloads::{DesignSpec, Scale};
//!
//! let spec = DesignSpec {
//!     name: "example".into(),
//!     description: "doc example".into(),
//!     seed: 7,
//!     data_width: 8,
//!     case_blocks: 2,
//!     case_sel_width: (2, 3),
//!     case_arm_fill: 0.7,
//!     case_leaf_sharing: 0.4,
//!     casez_fraction: 0.25,
//!     dep_cones: 2,
//!     dep_implied_fraction: 0.75,
//!     same_sig_cones: 2,
//!     same_sig_depth: (2, 4),
//!     case_structure: 0.3,
//!     redundancy_ops: 2,
//!     datapath_ops: 2,
//!     register_banks: 1,
//!     arith_cones: 1,
//! };
//! // equal (spec, scale) pairs are byte-identical...
//! assert_eq!(
//!     spec.generate(Scale::Medium).source,
//!     spec.generate(Scale::Medium).source,
//! );
//! // ...and the conflict-driving arith cones exist only at Medium/Large
//! assert!(spec.generate(Scale::Medium).source.contains("wire mc_"));
//! assert!(!spec.generate(Scale::Paper).source.contains("wire mc_"));
//! ```

use crate::BenchCase;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;

/// Corpus size class.
///
/// The first three variants are fractions of the paper-reproduction
/// target; `Medium` and `Large` grow past it toward the size class of
/// the paper's evaluation set (the 10 largest IWLS-2005 / RISC-V
/// circuits) *and* switch on the structural-depth features — wider
/// `case` selects, deeper same-signal nesting, and the conflict-driving
/// arith cones — that make the SAT machinery measurable. A corpus at
/// `Tiny` drives ~0 solver conflicts; `Medium` and `Large` provably
/// drive thousands (CI asserts this).
///
/// Size ladder: `Tiny < Small < Paper < Medium < Large` (total live
/// cells, every public-corpus circuit).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Scale {
    /// ~1/12 of paper scale: unit-test sized (hundreds of cells).
    Tiny,
    /// ~1/3 of paper scale: integration-test sized.
    Small,
    /// Full reproduction scale (thousands to tens of thousands of
    /// cells); structurally identical shape to `Tiny`/`Small`.
    Paper,
    /// 1.5x paper-scale block counts plus the structural-depth
    /// features: wider `case` selects (+1 bit), deeper same-signal
    /// nesting (+2 levels), and one arith cone per spec unit — the
    /// smallest scale with a non-trivial SAT conflict regime.
    Medium,
    /// 3x paper-scale block counts with the depth features turned up
    /// (+2-bit selects, +3 nesting levels, doubled arith cones at wider
    /// operands): the IWLS-large stand-in for scaling-curve runs.
    Large,
}

/// Per-scale structural knobs; the legacy scales keep every feature at
/// zero so their generated sources (and therefore historical digests)
/// are bit-for-bit unchanged.
struct ScaleProfile {
    /// Block-count multiplier, as `n * num / den`.
    num: usize,
    den: usize,
    /// Multiplier on [`DesignSpec::arith_cones`] (0 disables the block).
    arith_mult: usize,
    /// Operand width range for arith-cone miters. Kept strictly above
    /// the engine's exhaustive-simulation threshold (10 free leaves)
    /// so every miter routes to real CDCL search.
    arith_width: (u32, u32),
    /// Extra nesting levels for same-signal cones.
    depth_bonus: usize,
    /// Extra `case` select bits (wider mux trees after lowering).
    sel_width_bonus: u32,
}

impl Scale {
    /// Every scale, in size order — drives CLI parsing, docs tables and
    /// the scaling-curve runner.
    pub const ALL: [Scale; 5] = [
        Scale::Tiny,
        Scale::Small,
        Scale::Paper,
        Scale::Medium,
        Scale::Large,
    ];

    /// The CLI / artifact name of this scale (`"tiny"`, `"medium"`, ...).
    pub fn name(self) -> &'static str {
        match self {
            Scale::Tiny => "tiny",
            Scale::Small => "small",
            Scale::Paper => "paper",
            Scale::Medium => "medium",
            Scale::Large => "large",
        }
    }

    /// Parses a CLI-style scale name (the inverse of [`Scale::name`]).
    pub fn from_name(name: &str) -> Option<Scale> {
        Scale::ALL.into_iter().find(|s| s.name() == name)
    }

    /// Whether this scale enables the conflict-driving arith cones (and
    /// the other structural-depth features): true for `Medium`/`Large`.
    pub fn conflict_bearing(self) -> bool {
        self.profile().arith_mult > 0
    }

    fn profile(self) -> ScaleProfile {
        match self {
            Scale::Tiny => ScaleProfile {
                num: 1,
                den: 12,
                arith_mult: 0,
                arith_width: (0, 0),
                depth_bonus: 0,
                sel_width_bonus: 0,
            },
            Scale::Small => ScaleProfile {
                num: 1,
                den: 3,
                arith_mult: 0,
                arith_width: (0, 0),
                depth_bonus: 0,
                sel_width_bonus: 0,
            },
            Scale::Paper => ScaleProfile {
                num: 1,
                den: 1,
                arith_mult: 0,
                arith_width: (0, 0),
                depth_bonus: 0,
                sel_width_bonus: 0,
            },
            Scale::Medium => ScaleProfile {
                num: 3,
                den: 2,
                arith_mult: 1,
                arith_width: (11, 13),
                depth_bonus: 2,
                sel_width_bonus: 1,
            },
            Scale::Large => ScaleProfile {
                num: 3,
                den: 1,
                arith_mult: 2,
                arith_width: (12, 14),
                depth_bonus: 3,
                sel_width_bonus: 2,
            },
        }
    }

    fn apply(self, n: usize) -> usize {
        let p = self.profile();
        let scaled = n * p.num / p.den;
        if n > 0 {
            scaled.max(1)
        } else {
            0
        }
    }

    /// Arith cones scale by their own multiplier, not the block-count
    /// ratio: the legacy scales must generate exactly zero of them.
    fn apply_arith(self, n: usize) -> usize {
        n * self.profile().arith_mult
    }
}

/// A generation recipe; see the crate docs for the block kinds.
///
/// # Invariants
///
/// * Generation is a pure function of `(spec, scale)`: every random draw
///   comes from one [`StdRng`] seeded with [`DesignSpec::seed`], so
///   equal inputs produce byte-identical Verilog on any machine.
/// * Block counts are *reference-scale* values; [`Scale`] multiplies
///   them (and gates the arith cones), so one spec describes the whole
///   size ladder.
/// * `data_width` must be ≥ 2 (the generator slices `data_width / 2`
///   bits) and `case_sel_width.1 + 2 ≤ 15` so the widest `Large`-scale
///   select still fits the 16-bit `sel` port.
#[derive(Clone, Debug)]
pub struct DesignSpec {
    /// Module / case name.
    pub name: String,
    /// One-line description for reports.
    pub description: String,
    /// RNG seed (cases are reproducible).
    pub seed: u64,
    /// Data width of the generated word-level signals.
    pub data_width: u32,
    /// Number of `case` blocks.
    pub case_blocks: usize,
    /// Select width range (inclusive) for case blocks.
    pub case_sel_width: (u32, u32),
    /// Fraction of the select space covered by explicit arms.
    pub case_arm_fill: f64,
    /// Probability an arm reuses an earlier arm's leaf (sharing makes the
    /// rebuilt ADD smaller — the paper's Fig. 7 effect).
    pub case_leaf_sharing: f64,
    /// Fraction of case blocks emitted as `casez` priority decodes.
    pub casez_fraction: f64,
    /// Number of dependent-control cones.
    pub dep_cones: usize,
    /// Fraction of dependent cones whose inner select is truly implied.
    pub dep_implied_fraction: f64,
    /// Number of identical-signal cones (baseline-removable).
    pub same_sig_cones: usize,
    /// Nesting depth range for identical-signal cones (deeper nests give
    /// the baseline more to remove, like real elaborated RTL).
    pub same_sig_depth: (usize, usize),
    /// Probability a `case` block's leaf is a *structured* function of a
    /// few select bits (way-select style) — these are the blocks the ADD
    /// rebuild collapses dramatically (paper Figs. 5–7).
    pub case_structure: f64,
    /// Number of redundancy blocks: constant-foldable and duplicate
    /// expressions that the Yosys-style cleanup removes (this is what
    /// gives Yosys its large first-cut reduction in the paper's Table II).
    pub redundancy_ops: usize,
    /// Number of datapath filler operations.
    pub datapath_ops: usize,
    /// Number of registered (posedge) banks.
    pub register_banks: usize,
    /// Number of arith cones *per unit of the scale's arith multiplier*:
    /// adder-identity miter selects that force real CDCL search. Only
    /// generated at [`Scale::Medium`] (×1) and [`Scale::Large`] (×2);
    /// the legacy scales emit none, keeping their sources unchanged.
    pub arith_cones: usize,
}

impl DesignSpec {
    /// Generates the Verilog for this spec at `scale`.
    pub fn generate(&self, scale: Scale) -> BenchCase {
        let mut g = Gen::new(self, scale);
        g.run();
        BenchCase {
            name: self.name.clone(),
            description: self.description.clone(),
            source: g.finish(),
        }
    }
}

struct Gen<'s> {
    spec: &'s DesignSpec,
    scale: Scale,
    rng: StdRng,
    body: String,
    /// data-width signal names available as operands
    data_pool: Vec<String>,
    /// 1-bit condition signal names
    cond_pool: Vec<String>,
    /// register output names (kept live via a dedicated output)
    reg_pool: Vec<String>,
    /// extra input ports (name, width) appended by arith cones
    extra_ports: Vec<(String, u32)>,
    counter: usize,
}

impl<'s> Gen<'s> {
    fn new(spec: &'s DesignSpec, scale: Scale) -> Self {
        Gen {
            spec,
            scale,
            rng: StdRng::seed_from_u64(spec.seed),
            body: String::new(),
            data_pool: Vec::new(),
            cond_pool: Vec::new(),
            reg_pool: Vec::new(),
            extra_ports: Vec::new(),
            counter: 0,
        }
    }

    fn fresh(&mut self, prefix: &str) -> String {
        self.counter += 1;
        format!("{prefix}_{}", self.counter)
    }

    fn pick_data(&mut self) -> String {
        let i = self.rng.gen_range(0..self.data_pool.len());
        self.data_pool[i].clone()
    }

    fn pick_cond(&mut self) -> String {
        let i = self.rng.gen_range(0..self.cond_pool.len());
        self.cond_pool[i].clone()
    }

    fn run(&mut self) {
        let w = self.spec.data_width;
        // seed pools from the fixed input ports
        for i in 0..8 {
            self.data_pool.push(format!("in{i}"));
        }
        for i in 0..8 {
            let c = self.fresh("c");
            writeln!(self.body, "  wire {c} = ctl[{i}];").expect("write");
            self.cond_pool.push(c);
        }
        // a few comparison-derived conditions
        for _ in 0..4 {
            let a = self.pick_data();
            let b = self.pick_data();
            let c = self.fresh("c");
            let op = ["<", "==", ">=", "!="][self.rng.gen_range(0..4usize)];
            writeln!(self.body, "  wire {c} = {a} {op} {b};").expect("write");
            self.cond_pool.push(c);
        }

        let plan: Vec<(usize, BlockKind)> = [
            (
                self.scale.apply(self.spec.datapath_ops),
                BlockKind::Datapath,
            ),
            (
                self.scale.apply(self.spec.redundancy_ops),
                BlockKind::Redundancy,
            ),
            (
                self.scale.apply(self.spec.same_sig_cones),
                BlockKind::SameSig,
            ),
            (self.scale.apply(self.spec.dep_cones), BlockKind::DepCone),
            (self.scale.apply(self.spec.case_blocks), BlockKind::Case),
            (
                self.scale.apply(self.spec.register_banks),
                BlockKind::Register,
            ),
            // keep the conflict-bearing blocks last in the plan: a zero
            // count draws nothing from the RNG, so Tiny/Small/Paper
            // streams — and their historical digests — are untouched
            (
                self.scale.apply_arith(self.spec.arith_cones),
                BlockKind::Arith,
            ),
        ]
        .into_iter()
        .collect();

        // interleave block kinds round-robin for a realistic mix
        let mut remaining: Vec<(usize, BlockKind)> = plan;
        loop {
            let mut emitted = false;
            for slot in remaining.iter_mut() {
                if slot.0 > 0 {
                    slot.0 -= 1;
                    emitted = true;
                    match slot.1 {
                        BlockKind::Datapath => self.datapath_op(),
                        BlockKind::Redundancy => self.redundancy_op(),
                        BlockKind::SameSig => self.same_sig_cone(),
                        BlockKind::DepCone => self.dep_cone(),
                        BlockKind::Case => self.case_block(),
                        BlockKind::Register => self.register_bank(),
                        BlockKind::Arith => self.arith_cone(),
                    }
                }
            }
            if !emitted {
                break;
            }
        }
        let _ = w;
    }

    fn datapath_op(&mut self) {
        let a = self.pick_data();
        let b = self.pick_data();
        let name = self.fresh("dp");
        let expr = match self.rng.gen_range(0..6) {
            0 => format!("{a} + {b}"),
            1 => format!("{a} - {b}"),
            2 => format!("{a} ^ {b}"),
            3 => format!("({a} & {b}) | (~{a} & {}) ", { self.pick_data() }),
            4 => format!("{a} + ({b} ^ {})", { self.pick_data() }),
            _ => format!(
                "{{{a}[{}:0], {b}[{}:{}]}}",
                {
                    let w = self.spec.data_width;
                    w / 2 - 1
                },
                {
                    let w = self.spec.data_width;
                    w - 1
                },
                {
                    let w = self.spec.data_width;
                    w / 2
                }
            ),
        };
        let w = self.spec.data_width;
        writeln!(self.body, "  wire [{}:0] {name} = {expr};", w - 1).expect("write");
        self.data_pool.push(name.clone());
        // occasionally derive a fresh condition from the datapath
        if self.rng.gen_bool(0.3) {
            let c = self.fresh("c");
            let k = self
                .rng
                .gen_range(0..(1u64 << self.spec.data_width.min(16)));
            writeln!(
                self.body,
                "  wire {c} = {name} < {}'d{k};",
                self.spec.data_width
            )
            .expect("write");
            self.cond_pool.push(c);
        }
    }

    /// Constant-foldable or duplicated logic: the Yosys-style cleanup
    /// (`opt_expr`/`opt_merge` analogues) removes all of it. These blocks
    /// are what give the baseline its large first-cut reduction, like the
    /// ~55% average the paper reports for Yosys on the public set.
    fn redundancy_op(&mut self) {
        let w = self.spec.data_width;
        let a = self.pick_data();
        let b = self.pick_data();
        let name = self.fresh("rd");
        match self.rng.gen_range(0..5) {
            // x & 0 | y  →  y
            0 => {
                writeln!(
                    self.body,
                    "  wire [{}:0] {name} = ({a} & {w}'d0) | {b};",
                    w - 1
                )
                .expect("write");
            }
            // (x ^ x) + y  →  y
            1 => {
                writeln!(
                    self.body,
                    "  wire [{}:0] {name} = ({a} ^ {a}) + {b};",
                    w - 1
                )
                .expect("write");
            }
            // mux with identical branches
            2 => {
                let c = self.pick_cond();
                writeln!(self.body, "  wire [{}:0] {name} = {c} ? {a} : {a};", w - 1)
                    .expect("write");
            }
            // duplicate expression pair (merged by opt_merge)
            3 => {
                let dup = self.fresh("rd");
                writeln!(self.body, "  wire [{}:0] {dup} = {a} + {b};", w - 1).expect("write");
                writeln!(
                    self.body,
                    "  wire [{}:0] {name} = ({a} + {b}) ^ {dup};",
                    w - 1
                )
                .expect("write");
            }
            // select on a self-comparison (x == x is constant true)
            _ => {
                writeln!(
                    self.body,
                    "  wire [{}:0] {name} = ({a} == {a}) ? {b} : {a};",
                    w - 1
                )
                .expect("write");
            }
        }
        self.data_pool.push(name);
    }

    /// Nested ifs reusing the same condition at `same_sig_depth` levels
    /// (paper Fig. 1 food; the Yosys baseline removes every inner mux).
    fn same_sig_cone(&mut self) {
        let c = self.pick_cond();
        let name = self.fresh("ss");
        let w = self.spec.data_width;
        let (dmin, dmax) = self.spec.same_sig_depth;
        let dmax = dmax.max(dmin) + self.scale.profile().depth_bonus;
        let depth = self.rng.gen_range(dmin..=dmax);
        writeln!(self.body, "  reg [{}:0] {name};", w - 1).expect("write");
        writeln!(self.body, "  always @(*) begin").expect("write");
        // build `depth` nested ifs on alternating branches, all testing c
        let mut then_side = self.rng.gen_bool(0.5);
        let mut indent = String::from("    ");
        let mut closes: Vec<(String, String)> = Vec::new();
        for _ in 0..depth {
            let leaf = self.pick_data();
            writeln!(self.body, "{indent}if ({c}) begin").expect("write");
            if then_side {
                // descend on the then side; else gets a leaf
                closes.push((indent.clone(), format!("end else {name} = {leaf};")));
            } else {
                // give then a leaf, descend on the else side
                writeln!(self.body, "{indent}  {name} = {leaf};").expect("write");
                writeln!(self.body, "{indent}end else begin").expect("write");
                closes.push((indent.clone(), "end".to_string()));
            }
            indent.push_str("  ");
            then_side = !then_side;
        }
        let final_leaf = self.pick_data();
        writeln!(self.body, "{indent}{name} = {final_leaf};").expect("write");
        for (ind, close) in closes.into_iter().rev() {
            writeln!(self.body, "{ind}{close}").expect("write");
        }
        writeln!(self.body, "  end").expect("write");
        self.data_pool.push(name);
    }

    /// Nested ifs whose inner condition is a derived function of the
    /// outer — the paper's Fig. 3 shape. With probability
    /// `dep_implied_fraction` the inner select is truly implied (SAT can
    /// remove it); otherwise it genuinely depends on fresh inputs.
    fn dep_cone(&mut self) {
        let ca = self.pick_cond();
        let cb = self.pick_cond();
        let implied = self.rng.gen_bool(self.spec.dep_implied_fraction);
        let dcond = self.fresh("dc");
        let (defn, outer, inner_reachable_branch) = if implied {
            match self.rng.gen_range(0..4) {
                // outer c=1 path, inner c|x decided 1
                0 => (format!("{ca} | {cb}"), ca.to_string(), true),
                // outer c=1, inner (x | (c | y)) decided through two gates
                1 => {
                    let cc = self.pick_cond();
                    (format!("{cb} | ({ca} | {cc})"), ca.to_string(), true)
                }
                // outer !c path (else), inner c&x decided 0
                2 => (format!("{ca} & {cb}"), format!("!{ca}"), true),
                // inner !c decided 0 on the c=1 path
                _ => (format!("!{ca}"), ca.to_string(), true),
            }
        } else if self.rng.gen_bool(0.5) {
            // implied, but only visible through case analysis: the Table I
            // rules get stuck on (ca&cb)|(ca&!cb), so simulation or SAT
            // must decide it (the paper's hybrid decision procedure)
            (
                format!("({ca} & {cb}) | ({ca} & !{cb})"),
                ca.to_string(),
                true,
            )
        } else {
            // genuinely independent: SAT must keep the inner mux
            let cc = self.pick_cond();
            (format!("{cb} ^ {cc}"), ca.to_string(), false)
        };
        writeln!(self.body, "  wire {dcond} = {defn};").expect("write");
        self.cond_pool.push(dcond.clone());

        let x1 = self.pick_data();
        let x2 = self.pick_data();
        let x3 = self.pick_data();
        let name = self.fresh("dep");
        let w = self.spec.data_width;
        writeln!(self.body, "  reg [{}:0] {name};", w - 1).expect("write");
        writeln!(self.body, "  always @(*) begin").expect("write");
        writeln!(self.body, "    if ({outer}) begin").expect("write");
        // when "implied", dcond is constant on this path: the inner mux is
        // redundant; the branch that survives depends on the variant
        let _ = inner_reachable_branch;
        writeln!(
            self.body,
            "      if ({dcond}) {name} = {x1}; else {name} = {x2};"
        )
        .expect("write");
        writeln!(self.body, "    end else {name} = {x3};").expect("write");
        writeln!(self.body, "  end").expect("write");
        self.data_pool.push(name);
    }

    /// A mux whose select is an adder-identity miter — constant-true,
    /// but only provably so by conflict-driven search. The operand
    /// widths (≥ 11 bits, two free operands) put the cone's free-leaf
    /// count far above the engine's exhaustive-simulation threshold, so
    /// the query routes to the incremental CDCL solver; the random
    /// prefilter witnesses the true polarity instantly and never the
    /// false one, and the UNSAT proof of "can the select be false?"
    /// walks a carry-chain refutation generating hundreds of conflicts
    /// per distinct cone. This is the [`crate::solver_stress`] shape,
    /// embedded in realistic corpus circuits.
    fn arith_cone(&mut self) {
        let (wmin, wmax) = self.scale.profile().arith_width;
        let aw = self.rng.gen_range(wmin..=wmax);
        let ax = self.fresh("ax");
        let ay = self.fresh("ay");
        self.extra_ports.push((ax.clone(), aw));
        self.extra_ports.push((ay.clone(), aw));
        let sel = self.fresh("mc");
        // three identity families so cones are not all isomorphic even
        // at equal widths: commutativity, and both sub/add round trips
        let defn = match self.rng.gen_range(0..3) {
            0 => format!("({ax} + {ay}) == ({ay} + {ax})"),
            1 => format!("(({ax} - {ay}) + {ay}) == {ax}"),
            _ => format!("(({ax} + {ay}) - {ay}) == {ax}"),
        };
        writeln!(self.body, "  wire {sel} = {defn};").expect("write");
        let t = self.pick_data();
        let e = self.pick_data();
        let name = self.fresh("ac");
        let w = self.spec.data_width;
        writeln!(self.body, "  reg [{}:0] {name};", w - 1).expect("write");
        writeln!(self.body, "  always @(*) begin").expect("write");
        writeln!(self.body, "    if ({sel}) {name} = {t}; else {name} = {e};").expect("write");
        writeln!(self.body, "  end").expect("write");
        self.data_pool.push(name);
    }

    /// A `case`/`casez` block: chain of eq+mux after elaboration.
    fn case_block(&mut self) {
        let (wmin, wmax) = self.spec.case_sel_width;
        let selw = self.rng.gen_range(wmin..=wmax) + self.scale.profile().sel_width_bonus;
        let space = 1u64 << selw;
        let arms = ((space as f64 * self.spec.case_arm_fill) as u64)
            .clamp(2, space.saturating_sub(1).max(2));
        let casez = self.rng.gen_bool(self.spec.casez_fraction);
        let name = self.fresh("cs");
        let w = self.spec.data_width;

        // select expression: a slice of the sel bus xored with a condition-
        // independent shuffle so different case blocks differ
        let off = self.rng.gen_range(0..(16 - selw));
        let sel = format!("sel[{}:{}]", off + selw - 1, off);

        writeln!(self.body, "  reg [{}:0] {name};", w - 1).expect("write");
        writeln!(self.body, "  always @(*) begin").expect("write");
        if casez {
            writeln!(self.body, "    casez ({sel})").expect("write");
            // priority one-hot style decode: 1zz, 01z, 001 ...
            let mut leaves: Vec<String> = Vec::new();
            for i in 0..selw.min(arms as u32) {
                let mut pat = String::new();
                for k in 0..selw {
                    let pos = selw - 1 - k;
                    if pos > selw - 1 - i {
                        pat.push('0');
                    } else if pos == selw - 1 - i {
                        pat.push('1');
                    } else {
                        pat.push('z');
                    }
                }
                let leaf = self.case_leaf(&mut leaves);
                writeln!(self.body, "      {selw}'b{pat}: {name} = {leaf};").expect("write");
            }
            let dleaf = self.pick_data();
            writeln!(self.body, "      default: {name} = {dleaf};").expect("write");
        } else {
            writeln!(self.body, "    case ({sel})").expect("write");
            let mut values: Vec<u64> = (0..space).collect();
            // deterministic shuffle
            for i in (1..values.len()).rev() {
                let j = self.rng.gen_range(0..=i);
                values.swap(i, j);
            }
            let structured = self.rng.gen_bool(self.spec.case_structure);
            if structured {
                // way-select style: the leaf depends on only the top two
                // select bits — the chain wastes one eq+mux per arm while
                // the ADD needs at most three muxes (paper Fig. 7)
                let ways: Vec<String> = (0..4).map(|_| self.pick_data()).collect();
                for &v in values.iter().take(arms as usize) {
                    let way = ((v >> (selw - 2)) & 3) as usize;
                    writeln!(self.body, "      {selw}'d{v}: {name} = {};", ways[way])
                        .expect("write");
                }
                let dleaf = ways[0].clone();
                writeln!(self.body, "      default: {name} = {dleaf};").expect("write");
            } else {
                let mut leaves: Vec<String> = Vec::new();
                for &v in values.iter().take(arms as usize) {
                    let leaf = self.case_leaf(&mut leaves);
                    writeln!(self.body, "      {selw}'d{v}: {name} = {leaf};").expect("write");
                }
                let dleaf = self.pick_data();
                writeln!(self.body, "      default: {name} = {dleaf};").expect("write");
            }
        }
        writeln!(self.body, "    endcase").expect("write");
        writeln!(self.body, "  end").expect("write");
        self.data_pool.push(name);
    }

    fn case_leaf(&mut self, leaves: &mut Vec<String>) -> String {
        if !leaves.is_empty() && self.rng.gen_bool(self.spec.case_leaf_sharing) {
            let i = self.rng.gen_range(0..leaves.len());
            leaves[i].clone()
        } else {
            let l = self.pick_data();
            leaves.push(l.clone());
            l
        }
    }

    /// A registered bank with enable (mux with Q feedback after proc).
    fn register_bank(&mut self) {
        let en = self.pick_cond();
        let src = self.pick_data();
        let name = self.fresh("r");
        let w = self.spec.data_width;
        writeln!(self.body, "  reg [{}:0] {name};", w - 1).expect("write");
        writeln!(self.body, "  always @(posedge clk) begin").expect("write");
        if self.rng.gen_bool(0.4) {
            let alt = self.pick_data();
            let c2 = self.pick_cond();
            writeln!(self.body, "    if ({en}) begin").expect("write");
            writeln!(
                self.body,
                "      if ({c2}) {name} <= {src}; else {name} <= {alt};"
            )
            .expect("write");
            writeln!(self.body, "    end").expect("write");
        } else {
            writeln!(self.body, "    if ({en}) {name} <= {src};").expect("write");
        }
        writeln!(self.body, "  end").expect("write");
        self.reg_pool.push(name.clone());
        self.data_pool.push(name);
    }

    fn finish(self) -> String {
        let w = self.spec.data_width;
        let mut out = String::new();
        writeln!(
            out,
            "// generated by smartly-workloads, spec '{}', seed {}",
            self.spec.name, self.spec.seed
        )
        .expect("write");
        writeln!(out, "module {} (", self.spec.name).expect("write");
        writeln!(out, "  input wire clk,").expect("write");
        for i in 0..8 {
            writeln!(out, "  input wire [{}:0] in{i},", w - 1).expect("write");
        }
        writeln!(out, "  input wire [15:0] sel,").expect("write");
        writeln!(out, "  input wire [7:0] ctl,").expect("write");
        for (name, width) in &self.extra_ports {
            writeln!(out, "  input wire [{}:0] {name},", width - 1).expect("write");
        }
        writeln!(out, "  output wire [{}:0] out_comb,", w - 1).expect("write");
        writeln!(out, "  output wire [{}:0] out_regs", w - 1).expect("write");
        writeln!(out, ");").expect("write");
        out.push_str(&self.body);

        // fold every generated signal into the outputs so nothing is dead
        let comb: Vec<String> = self
            .data_pool
            .iter()
            .filter(|n| !self.reg_pool.contains(n))
            .cloned()
            .collect();
        let comb_expr = if comb.is_empty() {
            "{16'd0}".to_string()
        } else {
            comb.join(" ^ ")
        };
        writeln!(out, "  assign out_comb = {comb_expr};").expect("write");
        let regs_expr = if self.reg_pool.is_empty() {
            format!("{w}'d0")
        } else {
            self.reg_pool.join(" ^ ")
        };
        writeln!(out, "  assign out_regs = {regs_expr};").expect("write");
        writeln!(out, "endmodule").expect("write");
        out
    }
}

#[derive(Copy, Clone, Debug)]
enum BlockKind {
    Datapath,
    Redundancy,
    SameSig,
    DepCone,
    Case,
    Register,
    Arith,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_spec() -> DesignSpec {
        DesignSpec {
            name: "demo".to_string(),
            description: "generator smoke test".to_string(),
            seed: 1,
            data_width: 8,
            case_blocks: 6,
            case_sel_width: (2, 4),
            case_arm_fill: 0.7,
            case_leaf_sharing: 0.4,
            casez_fraction: 0.3,
            dep_cones: 6,
            dep_implied_fraction: 0.8,
            same_sig_cones: 6,
            same_sig_depth: (1, 3),
            case_structure: 0.5,
            redundancy_ops: 8,
            datapath_ops: 10,
            register_banks: 3,
            arith_cones: 3,
        }
    }

    #[test]
    fn generated_source_compiles_and_validates() {
        let case = demo_spec().generate(Scale::Paper);
        let m = case.compile().expect("valid Verilog");
        m.validate().unwrap();
        assert!(m.stats().mux_like() > 10, "plenty of muxes");
        assert!(m.stats().count("dff") >= 3);
    }

    #[test]
    fn scales_are_ordered() {
        let spec = demo_spec();
        let cells: Vec<usize> = Scale::ALL
            .iter()
            .map(|&s| spec.generate(s).compile().unwrap().live_cell_count())
            .collect();
        for w in cells.windows(2) {
            assert!(w[0] < w[1], "size ladder must be strict: {cells:?}");
        }
    }

    #[test]
    fn same_seed_same_source() {
        let a = demo_spec().generate(Scale::Small);
        let b = demo_spec().generate(Scale::Small);
        assert_eq!(a.source, b.source);
    }

    #[test]
    fn medium_generation_is_deterministic() {
        let a = demo_spec().generate(Scale::Medium);
        let b = demo_spec().generate(Scale::Medium);
        assert_eq!(a.source, b.source);
        let c = demo_spec().generate(Scale::Large);
        let d = demo_spec().generate(Scale::Large);
        assert_eq!(c.source, d.source);
    }

    #[test]
    fn arith_cones_only_at_conflict_bearing_scales() {
        let spec = demo_spec();
        for &scale in &Scale::ALL {
            let has_miters = spec.generate(scale).source.contains("wire mc_");
            assert_eq!(
                has_miters,
                scale.conflict_bearing(),
                "arith cones at {scale:?}"
            );
        }
    }

    /// Adding the Medium/Large features must not perturb the RNG stream
    /// of the legacy scales: a spec with arith cones and one with none
    /// generate byte-identical sources at Tiny/Small/Paper.
    #[test]
    fn legacy_scales_ignore_arith_cones() {
        let with = demo_spec();
        let mut without = demo_spec();
        without.arith_cones = 0;
        for scale in [Scale::Tiny, Scale::Small, Scale::Paper] {
            assert_eq!(
                with.generate(scale).source,
                without.generate(scale).source,
                "{scale:?} must be unaffected by arith_cones"
            );
        }
    }

    #[test]
    fn scale_names_round_trip() {
        for &scale in &Scale::ALL {
            assert_eq!(Scale::from_name(scale.name()), Some(scale));
        }
        assert_eq!(Scale::from_name("huge"), None);
    }

    #[test]
    fn medium_compiles_and_validates() {
        let case = demo_spec().generate(Scale::Medium);
        let m = case.compile().expect("medium-scale source compiles");
        m.validate().unwrap();
        assert!(m.stats().mux_like() > 10);
    }

    #[test]
    fn different_seed_different_source() {
        let mut s2 = demo_spec();
        s2.seed = 2;
        let a = demo_spec().generate(Scale::Small);
        let b = s2.generate(Scale::Small);
        assert_ne!(a.source, b.source);
    }
}
