//! The parameterized Verilog design generator.
//!
//! Every benchmark case in this crate is produced by [`DesignSpec`]: a
//! recipe of *blocks* whose mix determines which optimization pays off:
//!
//! * **case blocks** — `case`/`casez` statements lowered to eq+mux chains:
//!   food for muxtree restructuring;
//! * **dependent cones** — nested `if`s whose inner condition is a
//!   derived (`|`/`&`) function of the outer one: food for SAT-based
//!   redundancy elimination and invisible to the identical-signal
//!   baseline;
//! * **same-signal cones** — nested `if`s reusing the *same* condition:
//!   food for the Yosys baseline (this is what gives Yosys its large
//!   first-cut reduction in the paper);
//! * **datapath ops** and **register banks** — arithmetic and sequential
//!   filler that no muxtree pass can remove, anchoring the realistic
//!   "little headroom" cases.
//!
//! All randomness is drawn from a seeded [`rand::rngs::StdRng`]; equal
//! specs generate byte-identical sources.

use crate::BenchCase;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;

/// Corpus size multiplier.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Scale {
    /// ~1/12 of paper scale: unit-test sized (hundreds of cells).
    Tiny,
    /// ~1/3 of paper scale: integration-test sized.
    Small,
    /// Full reproduction scale (thousands to tens of thousands of cells).
    Paper,
}

impl Scale {
    fn apply(self, n: usize) -> usize {
        let scaled = match self {
            Scale::Tiny => n / 12,
            Scale::Small => n / 3,
            Scale::Paper => n,
        };
        if n > 0 {
            scaled.max(1)
        } else {
            0
        }
    }
}

/// A generation recipe; see the crate docs for the block kinds.
#[derive(Clone, Debug)]
pub struct DesignSpec {
    /// Module / case name.
    pub name: String,
    /// One-line description for reports.
    pub description: String,
    /// RNG seed (cases are reproducible).
    pub seed: u64,
    /// Data width of the generated word-level signals.
    pub data_width: u32,
    /// Number of `case` blocks.
    pub case_blocks: usize,
    /// Select width range (inclusive) for case blocks.
    pub case_sel_width: (u32, u32),
    /// Fraction of the select space covered by explicit arms.
    pub case_arm_fill: f64,
    /// Probability an arm reuses an earlier arm's leaf (sharing makes the
    /// rebuilt ADD smaller — the paper's Fig. 7 effect).
    pub case_leaf_sharing: f64,
    /// Fraction of case blocks emitted as `casez` priority decodes.
    pub casez_fraction: f64,
    /// Number of dependent-control cones.
    pub dep_cones: usize,
    /// Fraction of dependent cones whose inner select is truly implied.
    pub dep_implied_fraction: f64,
    /// Number of identical-signal cones (baseline-removable).
    pub same_sig_cones: usize,
    /// Nesting depth range for identical-signal cones (deeper nests give
    /// the baseline more to remove, like real elaborated RTL).
    pub same_sig_depth: (usize, usize),
    /// Probability a `case` block's leaf is a *structured* function of a
    /// few select bits (way-select style) — these are the blocks the ADD
    /// rebuild collapses dramatically (paper Figs. 5–7).
    pub case_structure: f64,
    /// Number of redundancy blocks: constant-foldable and duplicate
    /// expressions that the Yosys-style cleanup removes (this is what
    /// gives Yosys its large first-cut reduction in the paper's Table II).
    pub redundancy_ops: usize,
    /// Number of datapath filler operations.
    pub datapath_ops: usize,
    /// Number of registered (posedge) banks.
    pub register_banks: usize,
}

impl DesignSpec {
    /// Generates the Verilog for this spec at `scale`.
    pub fn generate(&self, scale: Scale) -> BenchCase {
        let mut g = Gen::new(self, scale);
        g.run();
        BenchCase {
            name: self.name.clone(),
            description: self.description.clone(),
            source: g.finish(),
        }
    }
}

struct Gen<'s> {
    spec: &'s DesignSpec,
    scale: Scale,
    rng: StdRng,
    body: String,
    /// data-width signal names available as operands
    data_pool: Vec<String>,
    /// 1-bit condition signal names
    cond_pool: Vec<String>,
    /// register output names (kept live via a dedicated output)
    reg_pool: Vec<String>,
    counter: usize,
}

impl<'s> Gen<'s> {
    fn new(spec: &'s DesignSpec, scale: Scale) -> Self {
        Gen {
            spec,
            scale,
            rng: StdRng::seed_from_u64(spec.seed),
            body: String::new(),
            data_pool: Vec::new(),
            cond_pool: Vec::new(),
            reg_pool: Vec::new(),
            counter: 0,
        }
    }

    fn fresh(&mut self, prefix: &str) -> String {
        self.counter += 1;
        format!("{prefix}_{}", self.counter)
    }

    fn pick_data(&mut self) -> String {
        let i = self.rng.gen_range(0..self.data_pool.len());
        self.data_pool[i].clone()
    }

    fn pick_cond(&mut self) -> String {
        let i = self.rng.gen_range(0..self.cond_pool.len());
        self.cond_pool[i].clone()
    }

    fn run(&mut self) {
        let w = self.spec.data_width;
        // seed pools from the fixed input ports
        for i in 0..8 {
            self.data_pool.push(format!("in{i}"));
        }
        for i in 0..8 {
            let c = self.fresh("c");
            writeln!(self.body, "  wire {c} = ctl[{i}];").expect("write");
            self.cond_pool.push(c);
        }
        // a few comparison-derived conditions
        for _ in 0..4 {
            let a = self.pick_data();
            let b = self.pick_data();
            let c = self.fresh("c");
            let op = ["<", "==", ">=", "!="][self.rng.gen_range(0..4usize)];
            writeln!(self.body, "  wire {c} = {a} {op} {b};").expect("write");
            self.cond_pool.push(c);
        }

        let plan: Vec<(usize, BlockKind)> = [
            (
                self.scale.apply(self.spec.datapath_ops),
                BlockKind::Datapath,
            ),
            (
                self.scale.apply(self.spec.redundancy_ops),
                BlockKind::Redundancy,
            ),
            (
                self.scale.apply(self.spec.same_sig_cones),
                BlockKind::SameSig,
            ),
            (self.scale.apply(self.spec.dep_cones), BlockKind::DepCone),
            (self.scale.apply(self.spec.case_blocks), BlockKind::Case),
            (
                self.scale.apply(self.spec.register_banks),
                BlockKind::Register,
            ),
        ]
        .into_iter()
        .collect();

        // interleave block kinds round-robin for a realistic mix
        let mut remaining: Vec<(usize, BlockKind)> = plan;
        loop {
            let mut emitted = false;
            for slot in remaining.iter_mut() {
                if slot.0 > 0 {
                    slot.0 -= 1;
                    emitted = true;
                    match slot.1 {
                        BlockKind::Datapath => self.datapath_op(),
                        BlockKind::Redundancy => self.redundancy_op(),
                        BlockKind::SameSig => self.same_sig_cone(),
                        BlockKind::DepCone => self.dep_cone(),
                        BlockKind::Case => self.case_block(),
                        BlockKind::Register => self.register_bank(),
                    }
                }
            }
            if !emitted {
                break;
            }
        }
        let _ = w;
    }

    fn datapath_op(&mut self) {
        let a = self.pick_data();
        let b = self.pick_data();
        let name = self.fresh("dp");
        let expr = match self.rng.gen_range(0..6) {
            0 => format!("{a} + {b}"),
            1 => format!("{a} - {b}"),
            2 => format!("{a} ^ {b}"),
            3 => format!("({a} & {b}) | (~{a} & {}) ", { self.pick_data() }),
            4 => format!("{a} + ({b} ^ {})", { self.pick_data() }),
            _ => format!(
                "{{{a}[{}:0], {b}[{}:{}]}}",
                {
                    let w = self.spec.data_width;
                    w / 2 - 1
                },
                {
                    let w = self.spec.data_width;
                    w - 1
                },
                {
                    let w = self.spec.data_width;
                    w / 2
                }
            ),
        };
        let w = self.spec.data_width;
        writeln!(self.body, "  wire [{}:0] {name} = {expr};", w - 1).expect("write");
        self.data_pool.push(name.clone());
        // occasionally derive a fresh condition from the datapath
        if self.rng.gen_bool(0.3) {
            let c = self.fresh("c");
            let k = self
                .rng
                .gen_range(0..(1u64 << self.spec.data_width.min(16)));
            writeln!(
                self.body,
                "  wire {c} = {name} < {}'d{k};",
                self.spec.data_width
            )
            .expect("write");
            self.cond_pool.push(c);
        }
    }

    /// Constant-foldable or duplicated logic: the Yosys-style cleanup
    /// (`opt_expr`/`opt_merge` analogues) removes all of it. These blocks
    /// are what give the baseline its large first-cut reduction, like the
    /// ~55% average the paper reports for Yosys on the public set.
    fn redundancy_op(&mut self) {
        let w = self.spec.data_width;
        let a = self.pick_data();
        let b = self.pick_data();
        let name = self.fresh("rd");
        match self.rng.gen_range(0..5) {
            // x & 0 | y  →  y
            0 => {
                writeln!(
                    self.body,
                    "  wire [{}:0] {name} = ({a} & {w}'d0) | {b};",
                    w - 1
                )
                .expect("write");
            }
            // (x ^ x) + y  →  y
            1 => {
                writeln!(
                    self.body,
                    "  wire [{}:0] {name} = ({a} ^ {a}) + {b};",
                    w - 1
                )
                .expect("write");
            }
            // mux with identical branches
            2 => {
                let c = self.pick_cond();
                writeln!(self.body, "  wire [{}:0] {name} = {c} ? {a} : {a};", w - 1)
                    .expect("write");
            }
            // duplicate expression pair (merged by opt_merge)
            3 => {
                let dup = self.fresh("rd");
                writeln!(self.body, "  wire [{}:0] {dup} = {a} + {b};", w - 1).expect("write");
                writeln!(
                    self.body,
                    "  wire [{}:0] {name} = ({a} + {b}) ^ {dup};",
                    w - 1
                )
                .expect("write");
            }
            // select on a self-comparison (x == x is constant true)
            _ => {
                writeln!(
                    self.body,
                    "  wire [{}:0] {name} = ({a} == {a}) ? {b} : {a};",
                    w - 1
                )
                .expect("write");
            }
        }
        self.data_pool.push(name);
    }

    /// Nested ifs reusing the same condition at `same_sig_depth` levels
    /// (paper Fig. 1 food; the Yosys baseline removes every inner mux).
    fn same_sig_cone(&mut self) {
        let c = self.pick_cond();
        let name = self.fresh("ss");
        let w = self.spec.data_width;
        let (dmin, dmax) = self.spec.same_sig_depth;
        let depth = self.rng.gen_range(dmin..=dmax.max(dmin));
        writeln!(self.body, "  reg [{}:0] {name};", w - 1).expect("write");
        writeln!(self.body, "  always @(*) begin").expect("write");
        // build `depth` nested ifs on alternating branches, all testing c
        let mut then_side = self.rng.gen_bool(0.5);
        let mut indent = String::from("    ");
        let mut closes: Vec<(String, String)> = Vec::new();
        for _ in 0..depth {
            let leaf = self.pick_data();
            writeln!(self.body, "{indent}if ({c}) begin").expect("write");
            if then_side {
                // descend on the then side; else gets a leaf
                closes.push((indent.clone(), format!("end else {name} = {leaf};")));
            } else {
                // give then a leaf, descend on the else side
                writeln!(self.body, "{indent}  {name} = {leaf};").expect("write");
                writeln!(self.body, "{indent}end else begin").expect("write");
                closes.push((indent.clone(), "end".to_string()));
            }
            indent.push_str("  ");
            then_side = !then_side;
        }
        let final_leaf = self.pick_data();
        writeln!(self.body, "{indent}{name} = {final_leaf};").expect("write");
        for (ind, close) in closes.into_iter().rev() {
            writeln!(self.body, "{ind}{close}").expect("write");
        }
        writeln!(self.body, "  end").expect("write");
        self.data_pool.push(name);
    }

    /// Nested ifs whose inner condition is a derived function of the
    /// outer — the paper's Fig. 3 shape. With probability
    /// `dep_implied_fraction` the inner select is truly implied (SAT can
    /// remove it); otherwise it genuinely depends on fresh inputs.
    fn dep_cone(&mut self) {
        let ca = self.pick_cond();
        let cb = self.pick_cond();
        let implied = self.rng.gen_bool(self.spec.dep_implied_fraction);
        let dcond = self.fresh("dc");
        let (defn, outer, inner_reachable_branch) = if implied {
            match self.rng.gen_range(0..4) {
                // outer c=1 path, inner c|x decided 1
                0 => (format!("{ca} | {cb}"), ca.to_string(), true),
                // outer c=1, inner (x | (c | y)) decided through two gates
                1 => {
                    let cc = self.pick_cond();
                    (format!("{cb} | ({ca} | {cc})"), ca.to_string(), true)
                }
                // outer !c path (else), inner c&x decided 0
                2 => (format!("{ca} & {cb}"), format!("!{ca}"), true),
                // inner !c decided 0 on the c=1 path
                _ => (format!("!{ca}"), ca.to_string(), true),
            }
        } else if self.rng.gen_bool(0.5) {
            // implied, but only visible through case analysis: the Table I
            // rules get stuck on (ca&cb)|(ca&!cb), so simulation or SAT
            // must decide it (the paper's hybrid decision procedure)
            (
                format!("({ca} & {cb}) | ({ca} & !{cb})"),
                ca.to_string(),
                true,
            )
        } else {
            // genuinely independent: SAT must keep the inner mux
            let cc = self.pick_cond();
            (format!("{cb} ^ {cc}"), ca.to_string(), false)
        };
        writeln!(self.body, "  wire {dcond} = {defn};").expect("write");
        self.cond_pool.push(dcond.clone());

        let x1 = self.pick_data();
        let x2 = self.pick_data();
        let x3 = self.pick_data();
        let name = self.fresh("dep");
        let w = self.spec.data_width;
        writeln!(self.body, "  reg [{}:0] {name};", w - 1).expect("write");
        writeln!(self.body, "  always @(*) begin").expect("write");
        writeln!(self.body, "    if ({outer}) begin").expect("write");
        // when "implied", dcond is constant on this path: the inner mux is
        // redundant; the branch that survives depends on the variant
        let _ = inner_reachable_branch;
        writeln!(
            self.body,
            "      if ({dcond}) {name} = {x1}; else {name} = {x2};"
        )
        .expect("write");
        writeln!(self.body, "    end else {name} = {x3};").expect("write");
        writeln!(self.body, "  end").expect("write");
        self.data_pool.push(name);
    }

    /// A `case`/`casez` block: chain of eq+mux after elaboration.
    fn case_block(&mut self) {
        let (wmin, wmax) = self.spec.case_sel_width;
        let selw = self.rng.gen_range(wmin..=wmax);
        let space = 1u64 << selw;
        let arms = ((space as f64 * self.spec.case_arm_fill) as u64)
            .clamp(2, space.saturating_sub(1).max(2));
        let casez = self.rng.gen_bool(self.spec.casez_fraction);
        let name = self.fresh("cs");
        let w = self.spec.data_width;

        // select expression: a slice of the sel bus xored with a condition-
        // independent shuffle so different case blocks differ
        let off = self.rng.gen_range(0..(16 - selw));
        let sel = format!("sel[{}:{}]", off + selw - 1, off);

        writeln!(self.body, "  reg [{}:0] {name};", w - 1).expect("write");
        writeln!(self.body, "  always @(*) begin").expect("write");
        if casez {
            writeln!(self.body, "    casez ({sel})").expect("write");
            // priority one-hot style decode: 1zz, 01z, 001 ...
            let mut leaves: Vec<String> = Vec::new();
            for i in 0..selw.min(arms as u32) {
                let mut pat = String::new();
                for k in 0..selw {
                    let pos = selw - 1 - k;
                    if pos > selw - 1 - i {
                        pat.push('0');
                    } else if pos == selw - 1 - i {
                        pat.push('1');
                    } else {
                        pat.push('z');
                    }
                }
                let leaf = self.case_leaf(&mut leaves);
                writeln!(self.body, "      {selw}'b{pat}: {name} = {leaf};").expect("write");
            }
            let dleaf = self.pick_data();
            writeln!(self.body, "      default: {name} = {dleaf};").expect("write");
        } else {
            writeln!(self.body, "    case ({sel})").expect("write");
            let mut values: Vec<u64> = (0..space).collect();
            // deterministic shuffle
            for i in (1..values.len()).rev() {
                let j = self.rng.gen_range(0..=i);
                values.swap(i, j);
            }
            let structured = self.rng.gen_bool(self.spec.case_structure);
            if structured {
                // way-select style: the leaf depends on only the top two
                // select bits — the chain wastes one eq+mux per arm while
                // the ADD needs at most three muxes (paper Fig. 7)
                let ways: Vec<String> = (0..4).map(|_| self.pick_data()).collect();
                for &v in values.iter().take(arms as usize) {
                    let way = ((v >> (selw - 2)) & 3) as usize;
                    writeln!(self.body, "      {selw}'d{v}: {name} = {};", ways[way])
                        .expect("write");
                }
                let dleaf = ways[0].clone();
                writeln!(self.body, "      default: {name} = {dleaf};").expect("write");
            } else {
                let mut leaves: Vec<String> = Vec::new();
                for &v in values.iter().take(arms as usize) {
                    let leaf = self.case_leaf(&mut leaves);
                    writeln!(self.body, "      {selw}'d{v}: {name} = {leaf};").expect("write");
                }
                let dleaf = self.pick_data();
                writeln!(self.body, "      default: {name} = {dleaf};").expect("write");
            }
        }
        writeln!(self.body, "    endcase").expect("write");
        writeln!(self.body, "  end").expect("write");
        self.data_pool.push(name);
    }

    fn case_leaf(&mut self, leaves: &mut Vec<String>) -> String {
        if !leaves.is_empty() && self.rng.gen_bool(self.spec.case_leaf_sharing) {
            let i = self.rng.gen_range(0..leaves.len());
            leaves[i].clone()
        } else {
            let l = self.pick_data();
            leaves.push(l.clone());
            l
        }
    }

    /// A registered bank with enable (mux with Q feedback after proc).
    fn register_bank(&mut self) {
        let en = self.pick_cond();
        let src = self.pick_data();
        let name = self.fresh("r");
        let w = self.spec.data_width;
        writeln!(self.body, "  reg [{}:0] {name};", w - 1).expect("write");
        writeln!(self.body, "  always @(posedge clk) begin").expect("write");
        if self.rng.gen_bool(0.4) {
            let alt = self.pick_data();
            let c2 = self.pick_cond();
            writeln!(self.body, "    if ({en}) begin").expect("write");
            writeln!(
                self.body,
                "      if ({c2}) {name} <= {src}; else {name} <= {alt};"
            )
            .expect("write");
            writeln!(self.body, "    end").expect("write");
        } else {
            writeln!(self.body, "    if ({en}) {name} <= {src};").expect("write");
        }
        writeln!(self.body, "  end").expect("write");
        self.reg_pool.push(name.clone());
        self.data_pool.push(name);
    }

    fn finish(self) -> String {
        let w = self.spec.data_width;
        let mut out = String::new();
        writeln!(
            out,
            "// generated by smartly-workloads, spec '{}', seed {}",
            self.spec.name, self.spec.seed
        )
        .expect("write");
        writeln!(out, "module {} (", self.spec.name).expect("write");
        writeln!(out, "  input wire clk,").expect("write");
        for i in 0..8 {
            writeln!(out, "  input wire [{}:0] in{i},", w - 1).expect("write");
        }
        writeln!(out, "  input wire [15:0] sel,").expect("write");
        writeln!(out, "  input wire [7:0] ctl,").expect("write");
        writeln!(out, "  output wire [{}:0] out_comb,", w - 1).expect("write");
        writeln!(out, "  output wire [{}:0] out_regs", w - 1).expect("write");
        writeln!(out, ");").expect("write");
        out.push_str(&self.body);

        // fold every generated signal into the outputs so nothing is dead
        let comb: Vec<String> = self
            .data_pool
            .iter()
            .filter(|n| !self.reg_pool.contains(n))
            .cloned()
            .collect();
        let comb_expr = if comb.is_empty() {
            "{16'd0}".to_string()
        } else {
            comb.join(" ^ ")
        };
        writeln!(out, "  assign out_comb = {comb_expr};").expect("write");
        let regs_expr = if self.reg_pool.is_empty() {
            format!("{w}'d0")
        } else {
            self.reg_pool.join(" ^ ")
        };
        writeln!(out, "  assign out_regs = {regs_expr};").expect("write");
        writeln!(out, "endmodule").expect("write");
        out
    }
}

#[derive(Copy, Clone, Debug)]
enum BlockKind {
    Datapath,
    Redundancy,
    SameSig,
    DepCone,
    Case,
    Register,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_spec() -> DesignSpec {
        DesignSpec {
            name: "demo".to_string(),
            description: "generator smoke test".to_string(),
            seed: 1,
            data_width: 8,
            case_blocks: 6,
            case_sel_width: (2, 4),
            case_arm_fill: 0.7,
            case_leaf_sharing: 0.4,
            casez_fraction: 0.3,
            dep_cones: 6,
            dep_implied_fraction: 0.8,
            same_sig_cones: 6,
            same_sig_depth: (1, 3),
            case_structure: 0.5,
            redundancy_ops: 8,
            datapath_ops: 10,
            register_banks: 3,
        }
    }

    #[test]
    fn generated_source_compiles_and_validates() {
        let case = demo_spec().generate(Scale::Paper);
        let m = case.compile().expect("valid Verilog");
        m.validate().unwrap();
        assert!(m.stats().mux_like() > 10, "plenty of muxes");
        assert!(m.stats().count("dff") >= 3);
    }

    #[test]
    fn scales_are_ordered() {
        let spec = demo_spec();
        let tiny = spec.generate(Scale::Tiny).compile().unwrap();
        let paper = spec.generate(Scale::Paper).compile().unwrap();
        assert!(tiny.live_cell_count() < paper.live_cell_count());
    }

    #[test]
    fn same_seed_same_source() {
        let a = demo_spec().generate(Scale::Small);
        let b = demo_spec().generate(Scale::Small);
        assert_eq!(a.source, b.source);
    }

    #[test]
    fn different_seed_different_source() {
        let mut s2 = demo_spec();
        s2.seed = 2;
        let a = demo_spec().generate(Scale::Small);
        let b = s2.generate(Scale::Small);
        assert_ne!(a.source, b.source);
    }
}
