//! Benchmark workloads: the synthetic public corpus and the
//! industrial-style generator.
//!
//! The paper evaluates on the 10 largest IWLS-2005 / RISC-V circuits and a
//! confidential industrial suite. Neither ships with this repository, so
//! this crate *generates* Verilog designs whose structural mix is tuned,
//! case by case, to the per-circuit behavior reported in the paper's
//! Table III:
//!
//! * `top_cache_axi` is `case`-statement heavy (Rebuild dominates there:
//!   24.91% vs. SAT's 0.01%),
//! * `wb_conmax` is dominated by logically dependent control cones (SAT
//!   19.05% vs. Rebuild 4.65%),
//! * `mem_ctrl`/`ethernet` are datapath-heavy with little mux headroom,
//!   and so on.
//!
//! Absolute sizes are scaled down (10^3–10^5 AND nodes instead of up to
//! 10^7) so the whole suite runs in CI time; the *shape* — which method
//! wins where, and by roughly what factor — is the reproduction target.
//! All generation is seeded and deterministic.
//!
//! # The scale ladder
//!
//! Every corpus is generated at one of five [`Scale`]s, strictly ordered
//! by live-cell count: `Tiny < Small < Paper < Medium < Large`.
//! Tiny/Small/Paper are fractional block counts of the same structural
//! recipe (1/12, 1/3, 1/1) and drive essentially zero CDCL conflicts —
//! every equivalence query is settled by simulation or a conflict-free
//! SAT probe. `Medium`/`Large` are the *conflict-bearing* scales: on top
//! of the Paper block counts they widen case selects, deepen shared-cone
//! nesting, and inject adder-identity miter cones whose UNSAT proofs
//! force real conflict/propagation work in the solver
//! ([`Scale::conflict_bearing`]). Sources at Tiny/Small/Paper are
//! byte-identical to what pre-Medium versions of this crate generated:
//! the new features draw nothing from the RNG at legacy scales.
//!
//! # Example
//!
//! ```
//! use smartly_workloads::{public_corpus, Scale};
//!
//! let corpus = public_corpus(Scale::Tiny);
//! assert_eq!(corpus.len(), 10);
//! let m = corpus[0].compile()?;
//! assert!(m.live_cell_count() > 0);
//! # Ok::<(), smartly_verilog::VerilogError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod generator;
mod industrial;
mod public;

pub use generator::{DesignSpec, Scale};
pub use industrial::{industrial_corpus, IndustrialSpec};
pub use public::public_corpus;

use smartly_netlist::Module;
use smartly_verilog::{compile_with, CaseLowering, ElaborateOptions, VerilogError};

/// A multi-module design of *near-miss parameter variants* — the
/// workload shape the driver's design-level knowledge base targets.
///
/// Every module holds `cones` copies of the same dependent-control
/// pattern: an inner mux whose select is a wide AND-reduction
/// (`&w[and_width-1:0]`), nested under an outer mux on a free select.
/// The AND-cone's true polarity has probability `2^-and_width` per
/// random vector, so the query engine's random prefilter essentially
/// never witnesses it and every module must pay a SAT call to learn the
/// all-ones witness — *unless* a sibling module already published that
/// model to the shared bank. Each variant also carries a distinct chain
/// of inverters, so the driver's full-text module memo cannot fire: the
/// modules are structural near-misses, with identical cone shapes on
/// different nets.
///
/// With `and_width` above the hybrid `sim_threshold` (default 10) the
/// cones route to SAT rather than exhaustive simulation.
pub fn knowledge_probes(variants: usize, cones: usize, and_width: u32) -> Vec<Module> {
    (0..variants)
        .map(|v| {
            let mut m = Module::new(format!("probe_{v:02}"));
            for c in 0..cones {
                let s = m.add_input(&format!("s{c}"), 1);
                let wide = m.add_input(&format!("w{c}"), and_width);
                let st = m.reduce_and(&wide);
                let a = m.add_input(&format!("a{c}"), 4);
                let b = m.add_input(&format!("b{c}"), 4);
                let d = m.add_input(&format!("d{c}"), 4);
                let inner = m.mux(&b, &a, &st);
                let outer = m.mux(&d, &inner, &s);
                m.add_output(&format!("y{c}"), &outer);
            }
            // the near-miss distinguisher: v+1 chained inverters make
            // every variant's canonical text unique
            let x = m.add_input("x", 1);
            let mut t = x;
            for _ in 0..=v {
                t = m.not(&t);
            }
            m.add_output("z", &t);
            m
        })
        .collect()
}

/// A SAT-heavy stress design for the CDCL solver itself: every mux
/// select is an adder-commutativity miter, `(a + b) == (b + a)`, which
/// is constant-true but only provably so by real conflict-driven search
/// — the random prefilter witnesses the true polarity instantly and
/// never the false one, and the UNSAT proof of "can it be false?" walks
/// a carry-chain refutation that generates hundreds-to-thousands of
/// conflicts. Widths grow by one per cone (`bits`, `bits + 1`, …) so
/// the cones are *not* isomorphic and the per-module verdict memo
/// cannot shortcut them: each query hits the shared incremental solver,
/// piling learnt clauses into one database until tier-based reduction
/// and the compacting arena GC fire.
///
/// One module holds all `cones`: the corpus runner uses this as the
/// timing-only solver bench exercising the learnt-clause tiers
/// (`lbd_core`), `reduce_db` (`reduces`), arena compaction
/// (`arena_gcs`) and aspiration rephasing on a real query stream.
pub fn solver_stress(cones: usize, bits: u32) -> Vec<Module> {
    let mut m = Module::new("solver_stress");
    for c in 0..cones {
        let w = bits + c as u32;
        let a = m.add_input(&format!("a{c}"), w);
        let b = m.add_input(&format!("b{c}"), w);
        let p = m.add_input(&format!("p{c}"), 4);
        let q = m.add_input(&format!("q{c}"), 4);
        let ab = m.add(&a, &b);
        let ba = m.add(&b, &a);
        let sel = m.eq(&ab, &ba);
        let y = m.mux(&q, &p, &sel);
        m.add_output(&format!("y{c}"), &y);
    }
    vec![m]
}

/// One benchmark case: a name, a description and generated Verilog.
#[derive(Clone, Debug)]
pub struct BenchCase {
    /// Case name (matches the paper's Table II rows for the public set).
    pub name: String,
    /// What this case models and why.
    pub description: String,
    /// Generated Verilog source.
    pub source: String,
}

impl BenchCase {
    /// Parses and elaborates the case with priority-chain `case` lowering
    /// (the muxtree shape the paper optimizes).
    ///
    /// # Errors
    ///
    /// Returns [`VerilogError`] if generation produced invalid source
    /// (a generator bug — covered by tests).
    pub fn compile(&self) -> Result<Module, VerilogError> {
        let opts = ElaborateOptions {
            case_lowering: CaseLowering::Chain,
        };
        let design = compile_with(&self.source, &opts)?;
        design.into_top().ok_or_else(|| VerilogError::Elaborate {
            module: self.name.clone(),
            message: "empty design".to_string(),
        })
    }
}

/// Tiny hand-written sources for the paper's figures (used by examples
/// and integration tests).
pub fn paper_figures() -> Vec<BenchCase> {
    vec![
        BenchCase {
            name: "fig1_same_ctrl".to_string(),
            description: "Fig. 1: nested mux with identical control".to_string(),
            source: r#"
module fig1 (input wire s, input wire [3:0] a, input wire [3:0] b,
             input wire [3:0] c, output reg [3:0] y);
  always @(*) begin
    if (s) begin
      if (s) y = a; else y = b;
    end else y = c;
  end
endmodule
"#
            .to_string(),
        },
        BenchCase {
            name: "fig3_dependent_ctrl".to_string(),
            description: "Fig. 3: control decided through an OR gate".to_string(),
            source: r#"
module fig3 (input wire s, input wire r, input wire [3:0] a,
             input wire [3:0] b, input wire [3:0] c, output reg [3:0] y);
  always @(*) begin
    if (s) begin
      if (s | r) y = a; else y = b;
    end else y = c;
  end
endmodule
"#
            .to_string(),
        },
        BenchCase {
            name: "listing1_case_chain".to_string(),
            description: "Listing 1: 4-way case, chain of eq+mux".to_string(),
            source: r#"
module listing1 (input wire [1:0] s, input wire [7:0] p0, input wire [7:0] p1,
                 input wire [7:0] p2, input wire [7:0] p3, output reg [7:0] y);
  always @(*) begin
    case (s)
      2'b00: y = p0;
      2'b01: y = p1;
      2'b10: y = p2;
      default: y = p3;
    endcase
  end
endmodule
"#
            .to_string(),
        },
        BenchCase {
            name: "listing2_casez".to_string(),
            description: "Listing 2: casez priority decode".to_string(),
            source: r#"
module listing2 (input wire [2:0] s, input wire [3:0] p0, input wire [3:0] p1,
                 input wire [3:0] p2, input wire [3:0] p3, output reg [3:0] y);
  always @(*) begin
    casez (s)
      3'b1zz: y = p0;
      3'b01z: y = p1;
      3'b001: y = p2;
      default: y = p3;
    endcase
  end
endmodule
"#
            .to_string(),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_figures_compile_and_validate() {
        for case in paper_figures() {
            let m = case
                .compile()
                .unwrap_or_else(|e| panic!("{}: {e}", case.name));
            m.validate().unwrap();
            assert!(m.stats().mux_like() >= 1, "{} has muxes", case.name);
        }
    }

    #[test]
    fn corpus_is_deterministic() {
        let a = public_corpus(Scale::Tiny);
        let b = public_corpus(Scale::Tiny);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.source, y.source, "{} must be reproducible", x.name);
        }
    }
}
