//! The synthetic public corpus: ten cases named after the paper's
//! Table II rows (IWLS-2005 + RISC-V), with per-case structural mixes
//! tuned to the Table III behavior.
//!
//! One set of specs describes the whole size ladder: [`Scale`] picks
//! the block multiplier and (at [`Scale::Medium`]/[`Scale::Large`])
//! switches on the conflict-driving structural features. Generation is
//! deterministic — the same `(case, scale)` pair is byte-identical on
//! every machine.
//!
//! # Example
//!
//! ```
//! use smartly_workloads::{public_corpus, Scale};
//!
//! let corpus = public_corpus(Scale::Medium);
//! assert_eq!(corpus.len(), 10);
//! assert_eq!(corpus[0].name, "top_cache_axi");
//! // Medium-scale circuits carry the adder-identity miters that force
//! // real CDCL conflicts (absent at Tiny/Small/Paper)
//! assert!(corpus.iter().all(|c| c.source.contains("wire mc_")));
//! ```

use crate::generator::{DesignSpec, Scale};
use crate::BenchCase;

/// Builds the 10-case public corpus at the requested scale.
///
/// Case order matches the paper's Table II. Per-case tuning (all numbers
/// are block counts at [`Scale::Paper`]; `arith_cones` are per unit of
/// the scale's arith multiplier — datapath-heavy circuits carry more,
/// so the Medium/Large conflict load lands where real arithmetic
/// lives):
///
/// | case | tilt | paper SAT / Rebuild |
/// |------|------|---------------------|
/// | `top_cache_axi` | case-statement heavy | 0.01% / 24.91% |
/// | `pci_bridge32` | mild mix | 0.71% / 2.01% |
/// | `wb_conmax` | dependent-control heavy | 19.05% / 4.65% |
/// | `mem_ctrl` | datapath-dominated | 0.12% / 0.47% |
/// | `wb_dma` | dependent-control | 11.52% / 0.80% |
/// | `tv80` | datapath + small decode | 0.71% / 1.61% |
/// | `usb_funct` | balanced | 1.60% / 1.69% |
/// | `ethernet` | datapath + registers | 0.49% / 0.48% |
/// | `riscv` | instruction decoder | 0.17% / 1.97% |
/// | `ac97_ctrl` | small, case-y | 1.34% / 5.36% |
pub fn public_corpus(scale: Scale) -> Vec<BenchCase> {
    specs().into_iter().map(|s| s.generate(scale)).collect()
}

/// The raw specs behind [`public_corpus`] (exposed for ablation benches).
pub(crate) fn specs() -> Vec<DesignSpec> {
    let base = DesignSpec {
        name: String::new(),
        description: String::new(),
        seed: 0,
        data_width: 8,
        case_blocks: 0,
        case_sel_width: (2, 4),
        case_arm_fill: 0.7,
        case_leaf_sharing: 0.4,
        casez_fraction: 0.25,
        dep_cones: 0,
        dep_implied_fraction: 0.75,
        same_sig_cones: 0,
        same_sig_depth: (2, 5),
        case_structure: 0.3,
        redundancy_ops: 0,
        datapath_ops: 0,
        register_banks: 0,
        arith_cones: 6,
    };
    vec![
        DesignSpec {
            name: "top_cache_axi".into(),
            description: "cache way-select + AXI burst decode: case-statement heavy".into(),
            seed: 0xCAC4E,
            data_width: 16,
            case_blocks: 60,
            case_sel_width: (3, 5),
            case_arm_fill: 0.8,
            case_leaf_sharing: 0.65,
            casez_fraction: 0.3,
            case_structure: 0.75,
            dep_cones: 2,
            dep_implied_fraction: 0.5,
            same_sig_cones: 60,
            same_sig_depth: (2, 6),
            redundancy_ops: 160,
            datapath_ops: 60,
            register_banks: 10,
            arith_cones: 4,
        },
        DesignSpec {
            name: "pci_bridge32".into(),
            description: "bus bridge: mild mix of decode and datapath".into(),
            seed: 0x9C1,
            data_width: 8,
            case_blocks: 20,
            case_structure: 0.65,
            dep_cones: 12,
            dep_implied_fraction: 0.55,
            same_sig_cones: 30,
            same_sig_depth: (2, 6),
            redundancy_ops: 130,
            datapath_ops: 70,
            register_banks: 12,
            ..base.clone()
        },
        DesignSpec {
            name: "wb_conmax".into(),
            description: "crossbar arbiter: logically dependent grant chains".into(),
            seed: 0xC03,
            data_width: 8,
            case_blocks: 10,
            case_arm_fill: 0.5,
            case_structure: 0.4,
            dep_cones: 170,
            dep_implied_fraction: 0.85,
            same_sig_cones: 30,
            same_sig_depth: (2, 6),
            redundancy_ops: 90,
            datapath_ops: 25,
            register_banks: 8,
            arith_cones: 8,
            ..base.clone()
        },
        DesignSpec {
            name: "mem_ctrl".into(),
            description: "memory controller: datapath-dominated, little headroom".into(),
            seed: 0x3E3,
            data_width: 16,
            case_blocks: 6,
            case_arm_fill: 0.5,
            case_structure: 0.3,
            dep_cones: 3,
            dep_implied_fraction: 0.35,
            same_sig_cones: 70,
            same_sig_depth: (2, 6),
            redundancy_ops: 300,
            datapath_ops: 180,
            register_banks: 24,
            arith_cones: 14,
            ..base.clone()
        },
        DesignSpec {
            name: "wb_dma".into(),
            description: "DMA engine: channel-select logic with derived enables".into(),
            seed: 0xD3A,
            data_width: 8,
            case_blocks: 4,
            case_structure: 0.05,
            dep_cones: 80,
            dep_implied_fraction: 0.8,
            same_sig_cones: 26,
            same_sig_depth: (2, 6),
            redundancy_ops: 80,
            datapath_ops: 45,
            register_banks: 10,
            arith_cones: 8,
            ..base.clone()
        },
        DesignSpec {
            name: "tv80".into(),
            description: "8-bit CPU: ALU datapath plus modest decode".into(),
            seed: 0x280,
            data_width: 8,
            case_blocks: 12,
            case_arm_fill: 0.45,
            case_leaf_sharing: 0.3,
            case_structure: 0.35,
            dep_cones: 10,
            dep_implied_fraction: 0.6,
            same_sig_cones: 45,
            same_sig_depth: (2, 6),
            redundancy_ops: 220,
            datapath_ops: 140,
            register_banks: 16,
            arith_cones: 12,
            ..base.clone()
        },
        DesignSpec {
            name: "usb_funct".into(),
            description: "USB function: balanced decode / datapath mix".into(),
            seed: 0x05B,
            data_width: 8,
            case_blocks: 12,
            case_structure: 0.42,
            dep_cones: 16,
            dep_implied_fraction: 0.62,
            same_sig_cones: 35,
            same_sig_depth: (2, 6),
            redundancy_ops: 140,
            datapath_ops: 90,
            register_banks: 14,
            ..base.clone()
        },
        DesignSpec {
            name: "ethernet".into(),
            description: "MAC: wide datapath and registers, tiny mux headroom".into(),
            seed: 0xE04,
            data_width: 16,
            case_blocks: 4,
            case_arm_fill: 0.4,
            case_structure: 0.1,
            dep_cones: 5,
            dep_implied_fraction: 0.4,
            same_sig_cones: 55,
            same_sig_depth: (2, 6),
            redundancy_ops: 340,
            datapath_ops: 200,
            register_banks: 30,
            arith_cones: 16,
            ..base.clone()
        },
        DesignSpec {
            name: "riscv".into(),
            description: "RV32 decoder: casez instruction decode + ALU".into(),
            seed: 0x5C5,
            data_width: 16,
            case_blocks: 26,
            case_sel_width: (3, 5),
            case_arm_fill: 0.55,
            case_leaf_sharing: 0.5,
            casez_fraction: 0.35,
            case_structure: 0.7,
            dep_cones: 4,
            dep_implied_fraction: 0.4,
            same_sig_cones: 45,
            same_sig_depth: (2, 6),
            redundancy_ops: 200,
            datapath_ops: 120,
            register_banks: 20,
            arith_cones: 10,
        },
        DesignSpec {
            name: "ac97_ctrl".into(),
            description: "audio codec controller: small, case-flavored".into(),
            seed: 0xAC97,
            data_width: 8,
            case_blocks: 9,
            case_arm_fill: 0.75,
            case_leaf_sharing: 0.6,
            case_structure: 0.3,
            dep_cones: 8,
            dep_implied_fraction: 0.6,
            same_sig_cones: 18,
            same_sig_depth: (2, 6),
            redundancy_ops: 45,
            datapath_ops: 25,
            register_banks: 6,
            arith_cones: 4,
            ..base
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_cases_matching_paper_names() {
        let corpus = public_corpus(Scale::Tiny);
        let names: Vec<&str> = corpus.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "top_cache_axi",
                "pci_bridge32",
                "wb_conmax",
                "mem_ctrl",
                "wb_dma",
                "tv80",
                "usb_funct",
                "ethernet",
                "riscv",
                "ac97_ctrl"
            ]
        );
    }

    #[test]
    fn all_cases_compile_at_tiny_scale() {
        for case in public_corpus(Scale::Tiny) {
            let m = case
                .compile()
                .unwrap_or_else(|e| panic!("{}: {e}", case.name));
            m.validate()
                .unwrap_or_else(|e| panic!("{}: {e}", case.name));
            assert!(m.stats().mux_like() > 0, "{} must contain muxes", case.name);
        }
    }
}
