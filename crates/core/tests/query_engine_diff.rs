//! Differential tests: the incremental [`smartly_core::QueryEngine`]
//! funnel must produce exactly the verdicts — and therefore exactly the
//! rewrites — of the legacy fresh-solver path, on seeded random
//! workloads from `smartly-workloads`, while every funnel layer earns
//! its keep at least once across the suite.

use smartly_core::sat_pass::{sat_redundancy, SatPassStats, SatRedundancyOptions};
use smartly_netlist::Module;
use smartly_workloads::{DesignSpec, Scale};

/// A small seeded workload tilted toward dependent-control cones (the
/// redundancy pass's food) with enough replicated structure to exercise
/// the verdict memo.
fn spec(seed: u64, dep_cones: usize, case_blocks: usize) -> DesignSpec {
    DesignSpec {
        name: format!("diff_{seed:x}"),
        description: "query-engine differential workload".into(),
        seed,
        data_width: 8,
        case_blocks,
        case_sel_width: (2, 4),
        case_arm_fill: 0.7,
        case_leaf_sharing: 0.4,
        casez_fraction: 0.25,
        dep_cones,
        dep_implied_fraction: 0.6,
        same_sig_cones: 8,
        same_sig_depth: (2, 5),
        case_structure: 0.3,
        redundancy_ops: 6,
        datapath_ops: 4,
        register_banks: 2,
        arith_cones: 0,
    }
}

fn compile(seed: u64, dep_cones: usize, case_blocks: usize) -> Module {
    spec(seed, dep_cones, case_blocks)
        .generate(Scale::Tiny)
        .compile()
        .expect("workload compiles")
}

/// Runs one sweep in both modes and checks the rewritten netlists and
/// the shared counters match cell-for-cell.
fn differential(module: &Module, opts_base: &SatRedundancyOptions) -> (SatPassStats, SatPassStats) {
    let mut inc = module.clone();
    let mut leg = module.clone();
    let inc_stats = sat_redundancy(
        &mut inc,
        &SatRedundancyOptions {
            incremental: true,
            ..*opts_base
        },
    );
    let leg_stats = sat_redundancy(
        &mut leg,
        &SatRedundancyOptions {
            incremental: false,
            ..*opts_base
        },
    );
    assert_eq!(inc_stats.rewrites, leg_stats.rewrites, "rewrite counts");
    assert_eq!(inc_stats.queries, leg_stats.queries, "query counts");
    assert_eq!(
        inc_stats.by_inference, leg_stats.by_inference,
        "inference counts"
    );
    assert_eq!(
        inc_stats.unreachable, leg_stats.unreachable,
        "unreachable counts"
    );
    // the decisive check: every pinned constant is identical
    let inc_cells: Vec<_> = inc.cells().collect();
    let leg_cells: Vec<_> = leg.cells().collect();
    assert_eq!(inc_cells.len(), leg_cells.len());
    for ((ia, ca), (ib, cb)) in inc_cells.iter().zip(&leg_cells) {
        assert_eq!(ia, ib);
        assert_eq!(ca, cb, "cell {ia:?} diverged");
    }
    (inc_stats, leg_stats)
}

#[test]
fn engine_matches_legacy_on_seeded_workloads() {
    // a generous conflict budget makes verdict identity exact: every
    // verdict is then logically determined, never an artifact of where
    // the budget fell relative to accumulated solver state
    let base = SatRedundancyOptions {
        conflict_budget: 1_000_000,
        ..Default::default()
    };
    let mut total = SatPassStats::default();
    for (seed, dep, cases) in [(11, 10, 2), (23, 6, 4), (47, 12, 1), (91, 8, 3)] {
        let module = compile(seed, dep, cases);
        let (inc_stats, _) = differential(&module, &base);
        total.absorb(&inc_stats);
    }
    assert!(total.queries > 0, "workloads must generate queries");
    // layer hit counters: memo and prefilter must fire on these shapes
    assert!(total.by_memo > 0, "verdict memo never hit: {total:?}");
    assert!(total.by_prefilter > 0, "sim prefilter never hit: {total:?}");
    assert!(
        total.by_inference + total.by_sim + total.by_sat > 0,
        "no conclusive layer fired: {total:?}"
    );
}

#[test]
fn engine_matches_legacy_with_sat_forced() {
    // sim_threshold 0 pushes every decidable query through the shared
    // incremental solver, exercising model capture + counterexample
    // replay; prefilter off so the replay layer gets first refusal
    let opts = SatRedundancyOptions {
        sim_threshold: 0,
        prefilter_rounds: 0,
        conflict_budget: 1_000_000,
        ..Default::default()
    };
    let mut total = SatPassStats::default();
    for (seed, dep, cases) in [(23, 16, 0), (3, 16, 0), (29, 16, 0), (11, 16, 0)] {
        let module = compile(seed, dep, cases);
        let (inc_stats, _) = differential(&module, &opts);
        total.absorb(&inc_stats);
    }
    assert!(total.by_sat > 0, "SAT layer never decided: {total:?}");
    assert!(
        total.by_cex > 0,
        "counterexample replay never hit: {total:?}"
    );
}

/// Cross-round memo persistence through the full pipeline: round 1
/// proves and pins a dependent-control cone (which `clean` then
/// mutates), round 2 re-queries a *stable* undecidable cone whose
/// carried verdict answers by memo — and the invalidation protocol
/// drops the entries covering the mutated cells, so the pipeline's
/// result is bit-identical to the legacy fresh-solver path.
#[test]
fn cross_round_memo_carries_and_invalidates_through_the_pipeline() {
    use smartly_core::{OptLevel, Pipeline};
    use smartly_netlist::SigSpec;

    let build = || {
        let mut m = Module::new("rounds");
        // a fig3 cone: rewritten in round 1, its select cone cleaned away
        let a = m.add_input("a", 4);
        let b = m.add_input("b", 4);
        let c = m.add_input("c", 4);
        let s = m.add_input("s", 1);
        let r = m.add_input("r", 1);
        let sr = m.or(&s, &r);
        let inner = m.mux(&b, &a, &sr);
        let outer = m.mux(&c, &inner, &s);
        m.add_output("y1", &outer);
        // an independent-control cone: s2&t is undecidable under s2=1
        // (t free), survives every round unchanged, and is re-queried —
        // round 2's query must be answered by the carried memo entry
        let p = m.add_input("p", 4);
        let q = m.add_input("q", 4);
        let u = m.add_input("u", 4);
        let s2 = m.add_input("s2", 1);
        let t = m.add_input("t", 1);
        let st = m.and(&s2, &t);
        let inner2 = m.mux(&q, &p, &st);
        let outer2 = m.mux(&u, &inner2, &s2);
        m.add_output("y2", &outer2);
        // a case chain so restructure has work too
        let sel = m.add_input("sel", 2);
        let w: Vec<SigSpec> = (0..3).map(|i| m.add_input(&format!("w{i}"), 4)).collect();
        let e0 = m.eq(&sel, &SigSpec::const_u64(0, 2));
        let e1 = m.eq(&sel, &SigSpec::const_u64(1, 2));
        let m1 = m.mux(&w[2], &w[1], &e1);
        let m0 = m.mux(&m1, &w[0], &e0);
        m.add_output("y3", &m0);
        m
    };

    // inference off so the dependent cones actually reach the engine
    let sat_base = SatRedundancyOptions {
        inference: false,
        conflict_budget: 1_000_000,
        ..Default::default()
    };
    let run = |incremental: bool| {
        let mut m = build();
        let pipe = Pipeline {
            sat: SatRedundancyOptions {
                incremental,
                ..sat_base
            },
            verify: true,
            ..Default::default()
        };
        let report = pipe.run(&mut m, OptLevel::Full).expect("pipeline");
        (m, report)
    };
    let (m_inc, rep_inc) = run(true);
    let (m_leg, rep_leg) = run(false);

    assert_eq!(rep_inc.area_after, rep_leg.area_after, "areas must match");
    assert_eq!(
        rep_inc.equivalence,
        Some(smartly_aig::EquivResult::Equivalent)
    );
    assert_eq!(
        rep_leg.equivalence,
        Some(smartly_aig::EquivResult::Equivalent)
    );
    assert_eq!(
        smartly_verilog::emit_verilog(&m_inc),
        smartly_verilog::emit_verilog(&m_leg),
        "netlists must be identical"
    );

    // three-round pipeline: the stable cone's round-2 query replays the
    // carried entry, and the fig3 cleanup dirtied round-1 entries
    assert!(
        rep_inc.sat_stats.memo_carryover > 0,
        "no cross-round memo hit: {:?}",
        rep_inc.sat_stats
    );
    assert!(
        rep_inc.sat_stats.memo_invalidated > 0,
        "no stale entry was invalidated: {:?}",
        rep_inc.sat_stats
    );
}
