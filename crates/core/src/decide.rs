//! The hybrid decision procedure (paper §II, last part).
//!
//! "For a smaller number of inputs, simulation is more efficient, while
//! the SAT solver is better suited for handling larger sets of inputs" —
//! [`decide`] enumerates all assignments of the free leaves when there
//! are few, and otherwise Tseitin-encodes the sub-graph and asks
//! `SAT(target = 0)` / `SAT(target = 1)`. One `UNSAT` answer fixes the
//! signal; both `UNSAT` means the path condition itself is unsatisfiable
//! (the branch is unreachable and may take either value).

use crate::subgraph::SubGraph;
use smartly_netlist::{eval_cell, CellInputs, CellKind, Module, NetIndex, Port, SigBit, TriVal};
use smartly_sat::{Lit, SolveResult, TseitinEncoder};
use std::collections::HashMap;

/// Thresholds for the hybrid procedure.
#[derive(Copy, Clone, Debug)]
pub struct DecideOptions {
    /// Free-leaf count at or below which exhaustive simulation is used.
    pub sim_threshold: usize,
    /// Free-leaf count at or below which SAT is attempted; beyond it the
    /// query is skipped entirely (the paper's input-count threshold that
    /// keeps the pass from becoming a bottleneck).
    pub sat_threshold: usize,
    /// Conflict budget per SAT query.
    pub conflict_budget: u64,
    /// Use the fixed Luby restart schedule instead of the EMA-adaptive
    /// controller (ablation baseline; verdicts are identical).
    pub luby_restarts: bool,
    /// Run solver inprocessing (vivification + subsumption at restart
    /// boundaries). On by default; timing-only, never changes verdicts.
    pub inprocessing: bool,
}

impl Default for DecideOptions {
    fn default() -> Self {
        DecideOptions {
            sim_threshold: 10,
            sat_threshold: 64,
            conflict_budget: 2_000,
            luby_restarts: false,
            inprocessing: true,
        }
    }
}

/// The verdict for a target bit.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Decision {
    /// The bit always takes this value under the path condition.
    Const(bool),
    /// Could not be decided (genuinely free, or budget exhausted).
    Unknown,
    /// The path condition is unsatisfiable: the branch never executes.
    Unreachable,
    /// Decision method telemetry is reported separately; this variant is
    /// returned when the sub-graph was too large to attempt at all.
    Skipped,
}

/// Which engine produced a decision (for the ablation statistics).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Engine {
    /// Exhaustive simulation of the free leaves.
    Simulation,
    /// CDCL SAT on the Tseitin-encoded sub-graph.
    Sat,
    /// No engine ran.
    None,
}

/// Which decision engine [`decide`] (and the incremental
/// [`crate::QueryEngine`]) routes a query to — a pure function of the
/// free-leaf count and cone size, so both paths stay in lockstep.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub(crate) enum EngineChoice {
    /// Exhaustive simulation of the free leaves.
    Sim,
    /// CDCL SAT on the encoded sub-graph.
    Sat,
    /// Too large to attempt at all.
    Skip,
}

/// The hybrid engine-selection rule (paper §II): exhaustive simulation
/// costs `2^free × |cells|` — cheap for the small cones the pruned gather
/// produces, ruinous for big ones — so fall back to SAT when the product
/// is large ("the SAT solver is better suited for handling larger sets of
/// inputs"), and skip entirely past the input-count threshold.
pub(crate) fn choose_engine(
    free_count: usize,
    cone_cells: usize,
    options: &DecideOptions,
) -> EngineChoice {
    const SIM_COST_LIMIT: u64 = 2_000_000;
    let sim_cost = 1u64
        .checked_shl(free_count as u32)
        .unwrap_or(u64::MAX)
        .saturating_mul(cone_cells as u64);
    if free_count <= options.sim_threshold && sim_cost <= SIM_COST_LIMIT {
        EngineChoice::Sim
    } else if free_count <= options.sat_threshold {
        EngineChoice::Sat
    } else {
        EngineChoice::Skip
    }
}

/// The free (unassigned, non-constant) leaves of a sub-graph.
pub(crate) fn free_leaves(sub: &SubGraph, assign: &HashMap<SigBit, bool>) -> Vec<SigBit> {
    sub.leaves
        .iter()
        .copied()
        .filter(|b| !assign.contains_key(b) && !b.is_const())
        .collect()
}

/// Decides the sub-graph's target bit under `assign`.
pub fn decide(
    module: &Module,
    index: &NetIndex,
    sub: &SubGraph,
    assign: &HashMap<SigBit, bool>,
    options: &DecideOptions,
) -> (Decision, Engine) {
    let free = free_leaves(sub, assign);
    match choose_engine(free.len(), sub.cells.len(), options) {
        EngineChoice::Sim => (
            simulate(module, index, sub, assign, &free),
            Engine::Simulation,
        ),
        EngineChoice::Sat => (sat_decide(module, index, sub, assign, options), Engine::Sat),
        EngineChoice::Skip => (Decision::Skipped, Engine::None),
    }
}

/// Exhaustive simulation: enumerate free-leaf assignments, evaluate the
/// sub-graph, keep assignments consistent with the known internal bits.
pub(crate) fn simulate(
    module: &Module,
    index: &NetIndex,
    sub: &SubGraph,
    assign: &HashMap<SigBit, bool>,
    free: &[SigBit],
) -> Decision {
    let mut seen_true = false;
    let mut seen_false = false;
    let mut any_consistent = false;

    for m in 0u64..(1u64 << free.len()) {
        let mut values: HashMap<SigBit, TriVal> = HashMap::new();
        for (b, v) in assign {
            values.insert(*b, TriVal::from_bool(*v));
        }
        for (k, b) in free.iter().enumerate() {
            values.insert(*b, TriVal::from_bool((m >> k) & 1 == 1));
        }
        let mut consistent = true;
        for &id in &sub.cells {
            let cell = module.cell(id).expect("live cell");
            let fetch = |spec: Option<&smartly_netlist::SigSpec>| -> Vec<TriVal> {
                spec.map(|s| {
                    s.iter()
                        .map(|b| {
                            let c = index.canon(*b);
                            match c {
                                SigBit::Const(v) => v,
                                _ => values.get(&c).copied().unwrap_or(TriVal::X),
                            }
                        })
                        .collect()
                })
                .unwrap_or_default()
            };
            let inputs = CellInputs {
                a: fetch(cell.port(Port::A)),
                b: fetch(cell.port(Port::B)),
                s: fetch(cell.port(Port::S)),
            };
            let out = eval_cell(cell.kind, &inputs, cell.output().width());
            for (bit, v) in cell.output().iter().zip(out) {
                let c = index.canon(*bit);
                if let Some(prev) = values.get(&c) {
                    // a known (path-condition) bit: check consistency
                    if prev.is_known() && v.is_known() && *prev != v {
                        consistent = false;
                        break;
                    }
                }
                values.insert(c, v);
            }
            if !consistent {
                break;
            }
        }
        if !consistent {
            continue;
        }
        match values.get(&sub.target).copied() {
            Some(TriVal::One) => seen_true = true,
            Some(TriVal::Zero) => seen_false = true,
            _ => {
                // X on the target: can't conclude anything for this vector
                seen_true = true;
                seen_false = true;
            }
        }
        any_consistent = true;
        if seen_true && seen_false {
            return Decision::Unknown;
        }
    }
    if !any_consistent {
        Decision::Unreachable
    } else if seen_true {
        Decision::Const(true)
    } else {
        Decision::Const(false)
    }
}

/// SAT: encode the sub-graph, assert the path condition, query both
/// polarities of the target.
fn sat_decide(
    module: &Module,
    index: &NetIndex,
    sub: &SubGraph,
    assign: &HashMap<SigBit, bool>,
    options: &DecideOptions,
) -> Decision {
    let mut enc = TseitinEncoder::new();
    enc.solver_mut()
        .set_conflict_budget(Some(options.conflict_budget));
    if options.luby_restarts {
        enc.solver_mut()
            .set_restart_mode(smartly_sat::RestartMode::Luby);
    }
    enc.solver_mut().set_inprocessing(options.inprocessing);
    let mut lits: HashMap<SigBit, Lit> = HashMap::new();

    let lit_of = |bit: SigBit, enc: &mut TseitinEncoder, lits: &mut HashMap<SigBit, Lit>| -> Lit {
        let c = index.canon(bit);
        match c {
            SigBit::Const(TriVal::One) => enc.true_lit(),
            SigBit::Const(_) => enc.false_lit(),
            _ => *lits.entry(c).or_insert_with(|| enc.fresh()),
        }
    };

    for &id in &sub.cells {
        let cell = module.cell(id).expect("live cell");
        let a: Vec<Lit> = cell
            .port(Port::A)
            .map(|s| s.iter().map(|b| lit_of(*b, &mut enc, &mut lits)).collect())
            .unwrap_or_default();
        let b: Vec<Lit> = cell
            .port(Port::B)
            .map(|s| s.iter().map(|b| lit_of(*b, &mut enc, &mut lits)).collect())
            .unwrap_or_default();
        let s: Vec<Lit> = cell
            .port(Port::S)
            .map(|sp| sp.iter().map(|b| lit_of(*b, &mut enc, &mut lits)).collect())
            .unwrap_or_default();
        let w = cell.output().width();
        let out = encode_cell(&mut enc, cell.kind, &a, &b, &s, w);
        for (bit, lit) in cell.output().iter().zip(out) {
            let c = index.canon(*bit);
            match lits.get(&c) {
                Some(&existing) => {
                    // bit referenced before its driver was encoded: tie them
                    let eqv = enc.xnor(existing, lit);
                    enc.assert_lit(eqv);
                }
                None => {
                    lits.insert(c, lit);
                }
            }
        }
    }

    // assert the path condition / inferred knowledge
    for (bit, v) in assign {
        let l = lit_of(*bit, &mut enc, &mut lits);
        enc.assert_lit(if *v { l } else { !l });
    }

    let target = lit_of(sub.target, &mut enc, &mut lits);
    let can_be_true = enc.solve_with(&[target]);
    let can_be_false = enc.solve_with(&[!target]);
    match (can_be_true, can_be_false) {
        (SolveResult::Unsat, SolveResult::Unsat) => Decision::Unreachable,
        (SolveResult::Sat, SolveResult::Unsat) => Decision::Const(true),
        (SolveResult::Unsat, SolveResult::Sat) => Decision::Const(false),
        _ => Decision::Unknown,
    }
}

/// Gate-consistency encoding for one cell (bitwise, like the AIG mapper).
pub(crate) fn encode_cell(
    enc: &mut TseitinEncoder,
    kind: CellKind,
    a: &[Lit],
    b: &[Lit],
    s: &[Lit],
    w: usize,
) -> Vec<Lit> {
    use CellKind::*;
    let big_or = |enc: &mut TseitinEncoder, xs: &[Lit]| enc.big_or(xs);
    match kind {
        Not => a.iter().map(|&x| !x).collect(),
        And => a.iter().zip(b).map(|(&x, &y)| enc.and(x, y)).collect(),
        Or => a.iter().zip(b).map(|(&x, &y)| enc.or(x, y)).collect(),
        Xor => a.iter().zip(b).map(|(&x, &y)| enc.xor(x, y)).collect(),
        Xnor => a.iter().zip(b).map(|(&x, &y)| enc.xnor(x, y)).collect(),
        ReduceAnd => vec![{
            let negs: Vec<Lit> = a.iter().map(|&l| !l).collect();
            !enc.big_or(&negs)
        }],
        ReduceOr | ReduceBool => vec![big_or(enc, a)],
        ReduceXor => {
            let mut acc = enc.false_lit();
            for &x in a {
                acc = enc.xor(acc, x);
            }
            vec![acc]
        }
        LogicNot => vec![!big_or(enc, a)],
        LogicAnd => {
            let ra = big_or(enc, a);
            let rb = big_or(enc, b);
            vec![enc.and(ra, rb)]
        }
        LogicOr => {
            let ra = big_or(enc, a);
            let rb = big_or(enc, b);
            vec![enc.or(ra, rb)]
        }
        Eq | Ne => {
            let xnors: Vec<Lit> = a.iter().zip(b).map(|(&x, &y)| enc.xnor(x, y)).collect();
            let negs: Vec<Lit> = xnors.iter().map(|&l| !l).collect();
            let eq = !enc.big_or(&negs);
            vec![if kind == Eq { eq } else { !eq }]
        }
        Lt | Le | Gt | Ge => {
            let mut lt = enc.false_lit();
            let mut gt = enc.false_lit();
            for (&x, &y) in a.iter().zip(b) {
                let xe = enc.xnor(x, y);
                let l_here = enc.and(!x, y);
                let g_here = enc.and(x, !y);
                let lk = enc.and(xe, lt);
                let gk = enc.and(xe, gt);
                lt = enc.or(l_here, lk);
                gt = enc.or(g_here, gk);
            }
            vec![match kind {
                Lt => lt,
                Le => !gt,
                Gt => gt,
                Ge => !lt,
                _ => unreachable!(),
            }]
        }
        Add | Sub => {
            let bb: Vec<Lit> = if kind == Sub {
                b.iter().map(|&x| !x).collect()
            } else {
                b.to_vec()
            };
            let mut carry = if kind == Sub {
                enc.true_lit()
            } else {
                enc.false_lit()
            };
            let mut out = Vec::with_capacity(w);
            for (&x, &y) in a.iter().zip(&bb) {
                let xy = enc.xor(x, y);
                out.push(enc.xor(xy, carry));
                let t1 = enc.and(x, y);
                let t2 = enc.and(xy, carry);
                carry = enc.or(t1, t2);
            }
            out
        }
        Mux => {
            let sel = s[0];
            a.iter().zip(b).map(|(&x, &y)| enc.mux(sel, x, y)).collect()
        }
        Pmux => {
            let mut acc = a.to_vec();
            for i in (0..s.len()).rev() {
                let word = &b[i * w..(i + 1) * w];
                acc = acc
                    .iter()
                    .zip(word)
                    .map(|(&e, &t)| enc.mux(s[i], e, t))
                    .collect();
            }
            acc
        }
        Mul | Shl | Shr | Dff => unreachable!("unsupported kinds are cut from sub-graphs"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subgraph;
    use smartly_netlist::Module;

    fn run(
        m: &Module,
        target: SigBit,
        known: &[(SigBit, bool)],
        opts: &DecideOptions,
    ) -> (Decision, Engine) {
        let index = NetIndex::build(m);
        let ranks: HashMap<_, _> = m
            .topo_order()
            .unwrap()
            .into_iter()
            .enumerate()
            .map(|(i, c)| (c, i))
            .collect();
        let mut assign = HashMap::new();
        for (b, v) in known {
            assign.insert(index.canon(*b), *v);
        }
        let (sub, _) = subgraph::extract(m, &index, &ranks, target, &assign, 16, true);
        decide(m, &index, &sub, &assign, opts)
    }

    fn fig3_module() -> (Module, SigBit, SigBit) {
        let mut m = Module::new("fig3");
        let s = m.add_input("s", 1);
        let r = m.add_input("r", 1);
        let sr = m.or(&s, &r);
        m.add_output("y", &sr);
        (m, sr.bit(0), s.bit(0))
    }

    #[test]
    fn fig3_decided_by_simulation() {
        let (m, sr, s) = fig3_module();
        let opts = DecideOptions::default();
        let (d, e) = run(&m, sr, &[(s, true)], &opts);
        assert_eq!(d, Decision::Const(true));
        assert_eq!(e, Engine::Simulation);
    }

    #[test]
    fn fig3_decided_by_sat() {
        let (m, sr, s) = fig3_module();
        let opts = DecideOptions {
            sim_threshold: 0, // force SAT
            ..Default::default()
        };
        let (d, e) = run(&m, sr, &[(s, true)], &opts);
        assert_eq!(d, Decision::Const(true));
        assert_eq!(e, Engine::Sat);
    }

    #[test]
    fn genuinely_free_signal_is_unknown() {
        let (m, sr, _) = fig3_module();
        for sim_threshold in [0, 10] {
            let opts = DecideOptions {
                sim_threshold,
                ..Default::default()
            };
            let (d, _) = run(&m, sr, &[], &opts);
            assert_eq!(d, Decision::Unknown);
        }
    }

    #[test]
    fn unreachable_path_detected() {
        // known: s=1 and (s|r)=0 — contradictory
        let mut m = Module::new("t");
        let s = m.add_input("s", 1);
        let r = m.add_input("r", 1);
        let sr = m.or(&s, &r);
        let t = m.add_input("t", 1);
        let y = m.and(&sr, &t);
        m.add_output("y", &y);
        for sim_threshold in [0, 10] {
            let opts = DecideOptions {
                sim_threshold,
                ..Default::default()
            };
            let (d, _) = run(&m, y.bit(0), &[(s.bit(0), true), (sr.bit(0), false)], &opts);
            assert_eq!(d, Decision::Unreachable, "sim_threshold {sim_threshold}");
        }
    }

    #[test]
    fn oversized_subgraph_is_skipped() {
        let mut m = Module::new("t");
        let a = m.add_input("a", 80);
        let y = m.reduce_or(&a);
        m.add_output("y", &y);
        let opts = DecideOptions {
            sim_threshold: 4,
            sat_threshold: 8,
            conflict_budget: 100,
            ..Default::default()
        };
        let (d, e) = run(&m, y.bit(0), &[], &opts);
        assert_eq!(d, Decision::Skipped);
        assert_eq!(e, Engine::None);
    }

    #[test]
    fn arithmetic_decided_through_sat() {
        // y = (a + 1 == 0) is true only for a = 0xff; with a's bits free
        // the answer is Unknown; with a pinned it's decided
        let mut m = Module::new("t");
        let a = m.add_input("a", 8);
        let one = smartly_netlist::SigSpec::const_u64(1, 8);
        let sum = m.add(&a, &one);
        let zero = smartly_netlist::SigSpec::zeros(8);
        let y = m.eq(&sum, &zero);
        m.add_output("y", &y);
        let opts = DecideOptions {
            sim_threshold: 0,
            ..Default::default()
        };
        let (d, _) = run(&m, y.bit(0), &[], &opts);
        assert_eq!(d, Decision::Unknown);
        // pin a bit so a can never be 0xff ⇒ y is constant false
        let (d, _) = run(&m, y.bit(0), &[(a.bit(3), false)], &opts);
        assert_eq!(d, Decision::Const(false));
    }

    #[test]
    fn sim_and_sat_agree_on_random_cones() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        for round in 0..15 {
            let mut m = Module::new("t");
            let inputs: Vec<_> = (0..4).map(|i| m.add_input(&format!("i{i}"), 1)).collect();
            let mut pool: Vec<smartly_netlist::SigSpec> = inputs.clone();
            for _ in 0..8 {
                let x = pool[rng.gen_range(0..pool.len())].clone();
                let y = pool[rng.gen_range(0..pool.len())].clone();
                let z = match rng.gen_range(0..4) {
                    0 => m.and(&x, &y),
                    1 => m.or(&x, &y),
                    2 => m.xor(&x, &y),
                    _ => m.not(&x),
                };
                pool.push(z);
            }
            let target = pool.last().unwrap().clone();
            m.add_output("y", &target);
            let known = vec![(inputs[0].bit(0), true)];
            let sim_opts = DecideOptions {
                sim_threshold: 16,
                ..Default::default()
            };
            let sat_opts = DecideOptions {
                sim_threshold: 0,
                ..Default::default()
            };
            let (d1, _) = run(&m, target.bit(0), &known, &sim_opts);
            let (d2, _) = run(&m, target.bit(0), &known, &sat_opts);
            assert_eq!(d1, d2, "round {round}");
        }
    }
}
