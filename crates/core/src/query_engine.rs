//! The incremental SAT query engine: a four-layer funnel that answers
//! "is this bit constant under the path condition?" queries for the
//! redundancy pass (paper §II) without paying a fresh solver per query.
//!
//! [`decide()`](crate::decide::decide) — the legacy path — Tseitin-encodes
//! every sub-graph into a brand-new solver and runs two full CDCL
//! searches. Profiling the public corpus shows that most queries are
//! *refutations* (the target genuinely takes both values), and
//! SAT-sweeping practice answers those without ever reaching a solver.
//! [`QueryEngine`] layers the cheap answers in front:
//!
//! 1. **Cone-verdict memo** — queries are keyed by the canonical
//!    structural hash of ([`subgraph::query_key`]), so a mux tree
//!    replicated across a 32-bit bus pays for one decision, not 32.
//! 2. **Counterexample cache** — every model a SAT call returns is packed
//!    into 64-wide vector words (lane *k* of every bit's word = model
//!    *k*). Replaying the bank through the cone with
//!    [`smartly_sim::ConeSim`] refutes most "is it constant?" queries in
//!    one bit-parallel pass: a lane that satisfies the path condition and
//!    drives the target to each polarity is a complete proof of
//!    `Unknown`.
//! 3. **Random-simulation prefilter** — a handful of deterministic
//!    pseudo-random 64-vector passes knock out queries on genuinely free
//!    cones that the cache has not seen yet.
//! 4. **Incremental SAT** — one shared [`TseitinEncoder`] per module.
//!    Each cell's gate CNF is encoded exactly *once*; the clauses tying a
//!    cell's function to its output net are guarded by a per-cell
//!    *activation literal*, so a query is posed as
//!    `solve_with(activations ∪ path-condition ∪ target)` and retracted
//!    for free when the call returns. Learnt clauses survive the whole
//!    sweep. Exhaustive simulation of small cones (the paper's hybrid
//!    rule, [`choose_engine`]) runs 64 vectors per pass through the same
//!    compiled cone instead of one scalar three-valued evaluation at a
//!    time.
//!
//! Layers 1–3 only ever *refute* (conclude `Unknown`) or miss; every
//! conclusive `Const`/`Unreachable` verdict still comes from exhaustive
//! simulation or SAT, so the funnel returns exactly the verdicts the
//! legacy path would for every query the conflict budget does not cut
//! short (see the differential tests). A budget-limited query can
//! resolve on either side of the limit depending on the shared solver's
//! accumulated learnt clauses — a sound divergence either way, since
//! both modes then report `Unknown` or a correctly proven constant.
//! Guarding only the output-tie clauses keeps out-of-cone cells
//! invisible to a query — a leaf stays as free as it was in a fresh
//! solver.
//!
//! [`subgraph::query_key`]: crate::subgraph::query_key

use crate::decide::{
    choose_engine, encode_cell, free_leaves, simulate, DecideOptions, Decision, EngineChoice,
};
use crate::subgraph::{query_key, SubGraph};
use smartly_netlist::{CellId, Module, NetIndex, Port, SigBit, TriVal};
use smartly_sat::{Lit, SolveResult, TseitinEncoder};
use smartly_sim::{compile_cone, ConeProgram, ConeSim};
use std::collections::HashMap;

/// Which funnel layer terminated a query.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Layer {
    /// The cone-verdict memo replayed an earlier decision.
    Memo,
    /// Counterexample replay refuted constancy.
    CexReplay,
    /// Random-simulation prefilter refuted constancy.
    Prefilter,
    /// Exhaustive simulation decided.
    Simulation,
    /// The incremental SAT solver decided.
    Sat,
    /// No layer ran (query skipped as too large).
    None,
}

/// Tuning for a [`QueryEngine`].
#[derive(Copy, Clone, Debug)]
pub struct QueryEngineOptions {
    /// The hybrid sim/SAT thresholds shared with the legacy path.
    pub decide: DecideOptions,
    /// Number of 64-vector random passes before SAT (0 disables the
    /// prefilter layer).
    pub prefilter_rounds: usize,
    /// Drop and re-create the shared solver once it holds this many
    /// variables — a backstop against superlinear growth on huge modules
    /// (the memo and counterexample bank survive a reset).
    pub reset_vars: usize,
}

impl Default for QueryEngineOptions {
    fn default() -> Self {
        QueryEngineOptions {
            decide: DecideOptions::default(),
            prefilter_rounds: 2,
            reset_vars: 200_000,
        }
    }
}

/// Cumulative per-layer telemetry.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct QueryEngineStats {
    /// Queries posed to the engine.
    pub queries: usize,
    /// Answered by the cone-verdict memo.
    pub by_memo: usize,
    /// Refuted by counterexample replay.
    pub by_cex: usize,
    /// Refuted by the random-simulation prefilter.
    pub by_prefilter: usize,
    /// Reached exhaustive simulation.
    pub by_sim: usize,
    /// Reached the incremental SAT solver.
    pub by_sat: usize,
    /// Individual `solve_with` calls issued (≤ 2 per SAT query; witness
    /// reuse from layers 2–3 skips the matching polarity).
    pub sat_solves: usize,
    /// Models captured into the counterexample bank.
    pub models_cached: usize,
    /// Shared-solver resets triggered by `reset_vars`.
    pub solver_resets: usize,
}

/// Per-module stateful query pipeline; see the [module docs](self).
///
/// One engine serves one sweep over one (immutable) module: it borrows
/// the netlist, so drop it before applying rewrites.
pub struct QueryEngine<'m> {
    module: &'m Module,
    index: &'m NetIndex,
    options: QueryEngineOptions,
    enc: TseitinEncoder,
    /// canonical net bit → its solver variable
    lits: HashMap<SigBit, Lit>,
    /// encoded cell → its activation literal
    acts: HashMap<CellId, Lit>,
    /// counterexample bank: canonical bit → 64 packed model values
    bank: HashMap<SigBit, u64>,
    /// how many bank lanes hold a model (≤ 64)
    bank_filled: u32,
    /// next lane to (over)write
    bank_cursor: u32,
    memo: HashMap<Vec<u64>, Decision>,
    stats: QueryEngineStats,
}

fn mask(v: bool) -> u64 {
    if v {
        u64::MAX
    } else {
        0
    }
}

fn lanes_mask(n: u32) -> u64 {
    if n >= 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

/// SplitMix64: the deterministic plane generator for the prefilter.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl<'m> QueryEngine<'m> {
    /// Creates an engine over one module for one sweep.
    pub fn new(module: &'m Module, index: &'m NetIndex, options: QueryEngineOptions) -> Self {
        QueryEngine {
            module,
            index,
            options,
            enc: TseitinEncoder::new(),
            lits: HashMap::new(),
            acts: HashMap::new(),
            bank: HashMap::new(),
            bank_filled: 0,
            bank_cursor: 0,
            memo: HashMap::new(),
            stats: QueryEngineStats::default(),
        }
    }

    /// Telemetry so far.
    pub fn stats(&self) -> QueryEngineStats {
        self.stats
    }

    /// Decides the sub-graph's target bit under `assign` (canonical keys),
    /// returning the verdict and the layer that produced it.
    ///
    /// Layer order: memo → counterexample replay → random prefilter →
    /// exhaustive simulation or incremental SAT, with the same
    /// sim/SAT/skip routing as [`crate::decide::decide`].
    pub fn decide(&mut self, sub: &SubGraph, assign: &HashMap<SigBit, bool>) -> (Decision, Layer) {
        self.stats.queries += 1;
        let key = query_key(self.module, self.index, sub, assign);
        if let Some(&d) = self.memo.get(&key) {
            self.stats.by_memo += 1;
            return (d, Layer::Memo);
        }
        let free = free_leaves(sub, assign);
        let choice = choose_engine(free.len(), sub.cells.len(), &self.options.decide);
        if choice == EngineChoice::Skip {
            self.memo.insert(key, Decision::Skipped);
            return (Decision::Skipped, Layer::None);
        }

        let prog = compile_cone(self.module, self.index, &sub.cells);
        let target = self.index.canon(sub.target);
        let mut seen_true = false;
        let mut seen_false = false;
        if let Some(tslot) = prog.slot(target) {
            // layer 2: counterexample replay
            if self.bank_filled > 0 {
                let (t, f) = self.replay_bank(&prog, assign, tslot);
                seen_true |= t;
                seen_false |= f;
                if seen_true && seen_false {
                    self.stats.by_cex += 1;
                    self.memo.insert(key, Decision::Unknown);
                    return (Decision::Unknown, Layer::CexReplay);
                }
            }
            // layer 3: random-simulation prefilter
            if !free.is_empty() {
                for round in 0..self.options.prefilter_rounds {
                    let (t, f) = self.replay_random(&prog, assign, tslot, round as u64);
                    seen_true |= t;
                    seen_false |= f;
                    if seen_true && seen_false {
                        self.stats.by_prefilter += 1;
                        self.memo.insert(key, Decision::Unknown);
                        return (Decision::Unknown, Layer::Prefilter);
                    }
                }
            }
        }

        let (d, layer) = match choice {
            EngineChoice::Sim => {
                self.stats.by_sim += 1;
                let d = if prog.has_x() || prog.slot(target).is_none() {
                    // constant-x cones need exact three-valued semantics;
                    // empty cones have nothing to replay
                    simulate(self.module, self.index, sub, assign, &free)
                } else {
                    self.exhaustive(&prog, assign, target, &free)
                };
                (d, Layer::Simulation)
            }
            EngineChoice::Sat => {
                self.stats.by_sat += 1;
                let d = self.sat_layer(sub, &prog, assign, target, seen_true, seen_false);
                (d, Layer::Sat)
            }
            EngineChoice::Skip => unreachable!("handled above"),
        };
        self.memo.insert(key, d);
        (d, layer)
    }

    /// Loads leaf planes (path-condition bits pinned, free bits from
    /// `source`), evaluates the cone, and reports which target polarities
    /// are witnessed by lanes consistent with the path condition.
    fn witnesses(
        &self,
        prog: &ConeProgram,
        assign: &HashMap<SigBit, bool>,
        tslot: u32,
        active: u64,
        source: impl Fn(SigBit, u32) -> u64,
    ) -> (bool, bool) {
        let mut sim = ConeSim::new(prog);
        for &(bit, slot) in prog.leaves() {
            let plane = match assign.get(&bit) {
                Some(&v) => mask(v),
                None => source(bit, slot),
            };
            sim.set_plane(slot, plane);
        }
        sim.eval();
        // a lane is consistent when every in-cone path-condition bit
        // evaluates to its asserted value
        let mut ok = active;
        for (bit, &v) in assign {
            if let Some(slot) = prog.slot(self.index.canon(*bit)) {
                ok &= !(sim.plane(slot) ^ mask(v));
            }
        }
        let t = sim.plane(tslot);
        ((ok & t) != 0, (ok & !t) != 0)
    }

    fn replay_bank(
        &self,
        prog: &ConeProgram,
        assign: &HashMap<SigBit, bool>,
        tslot: u32,
    ) -> (bool, bool) {
        let active = lanes_mask(self.bank_filled);
        self.witnesses(prog, assign, tslot, active, |bit, _| {
            self.bank.get(&bit).copied().unwrap_or(0)
        })
    }

    fn replay_random(
        &self,
        prog: &ConeProgram,
        assign: &HashMap<SigBit, bool>,
        tslot: u32,
        round: u64,
    ) -> (bool, bool) {
        // planes keyed by slot (stable: first-use order in the cone) and
        // round — deterministic across runs, jobs and platforms
        self.witnesses(prog, assign, tslot, u64::MAX, |_, slot| {
            splitmix64(0x5EED_0000_0000_0000 ^ (u64::from(slot) << 8) ^ round)
        })
    }

    /// Exhaustive 64-lane enumeration of the free leaves — the same
    /// verdict [`simulate`] computes, 64 vectors per pass.
    fn exhaustive(
        &self,
        prog: &ConeProgram,
        assign: &HashMap<SigBit, bool>,
        target: SigBit,
        free: &[SigBit],
    ) -> Decision {
        let tslot = prog.slot(target).expect("checked by caller");
        let free_slots: Vec<u32> = free
            .iter()
            .map(|b| prog.slot(*b).expect("free leaf is referenced by the cone"))
            .collect();
        let total: u64 = 1 << free.len();
        let mut seen_true = false;
        let mut seen_false = false;
        let mut any_consistent = false;
        let mut chunk = 0u64;
        while chunk < total {
            let lanes = (total - chunk).min(64) as u32;
            let (t, f) = self.witnesses(prog, assign, tslot, lanes_mask(lanes), |bit, slot| {
                let j = free_slots
                    .iter()
                    .position(|&s| s == slot)
                    .unwrap_or_else(|| panic!("unassigned non-free leaf {bit:?}"));
                let mut plane = 0u64;
                for l in 0..u64::from(lanes) {
                    if ((chunk + l) >> j) & 1 == 1 {
                        plane |= 1 << l;
                    }
                }
                plane
            });
            seen_true |= t;
            seen_false |= f;
            any_consistent |= t || f;
            if seen_true && seen_false {
                return Decision::Unknown;
            }
            chunk += 64;
        }
        if !any_consistent {
            Decision::Unreachable
        } else if seen_true {
            Decision::Const(true)
        } else {
            Decision::Const(false)
        }
    }

    /// The net-bit literal (allocating on first use; constants fold).
    fn lit(&mut self, canonical_bit: SigBit) -> Lit {
        match canonical_bit {
            SigBit::Const(TriVal::One) => self.enc.true_lit(),
            SigBit::Const(_) => self.enc.false_lit(),
            c => {
                if let Some(&l) = self.lits.get(&c) {
                    return l;
                }
                let l = self.enc.fresh();
                self.lits.insert(c, l);
                l
            }
        }
    }

    /// Encodes one cell exactly once: unguarded Tseitin definitions for
    /// the gate function (fresh variables, globally sound), plus
    /// activation-guarded clauses tying the function to the output net —
    /// with the activation literal unasserted, the net stays as free as
    /// it was in a fresh solver.
    fn encode(&mut self, id: CellId) {
        if self.acts.contains_key(&id) {
            return;
        }
        let act = self.enc.fresh();
        let cell = self.module.cell(id).expect("live cell");
        let port_lits = |port: Port, this: &mut Self| -> Vec<Lit> {
            cell.port(port)
                .map(|s| s.iter().map(|b| this.lit(this.index.canon(*b))).collect())
                .unwrap_or_default()
        };
        let a = port_lits(Port::A, self);
        let b = port_lits(Port::B, self);
        let s = port_lits(Port::S, self);
        let w = cell.output().width();
        let out = encode_cell(&mut self.enc, cell.kind, &a, &b, &s, w);
        for (bit, lit) in cell.output().iter().zip(out) {
            let net = self.lit(self.index.canon(*bit));
            self.enc.add_clause([!act, !net, lit]);
            self.enc.add_clause([!act, net, !lit]);
        }
        self.acts.insert(id, act);
    }

    /// Incremental SAT: assume the cone's activation literals, the path
    /// condition and the target polarity; models feed the counterexample
    /// bank. Polarities already witnessed by layers 2–3 are skipped.
    fn sat_layer(
        &mut self,
        sub: &SubGraph,
        prog: &ConeProgram,
        assign: &HashMap<SigBit, bool>,
        target: SigBit,
        seen_true: bool,
        seen_false: bool,
    ) -> Decision {
        if self.enc.num_vars() > self.options.reset_vars {
            self.enc = TseitinEncoder::new();
            self.lits.clear();
            self.acts.clear();
            self.stats.solver_resets += 1;
        }
        for &id in &sub.cells {
            self.encode(id);
        }
        let mut assumptions: Vec<Lit> = sub.cells.iter().map(|id| self.acts[id]).collect();
        let mut path: Vec<(SigBit, bool)> = assign
            .iter()
            .map(|(b, &v)| (self.index.canon(*b), v))
            .collect();
        path.sort_unstable();
        for (bit, v) in path {
            let l = self.lit(bit);
            assumptions.push(if v { l } else { !l });
        }
        let tlit = self.lit(target);
        self.enc
            .solver_mut()
            .set_conflict_budget(Some(self.options.decide.conflict_budget));
        let query = |polarity: Lit, this: &mut Self| -> SolveResult {
            this.stats.sat_solves += 1;
            let mut a = assumptions.clone();
            a.push(polarity);
            let r = this.enc.solve_with(&a);
            if r == SolveResult::Sat {
                this.capture_model(prog);
            }
            r
        };
        let can_be_true = if seen_true {
            SolveResult::Sat
        } else {
            query(tlit, self)
        };
        let can_be_false = if seen_false {
            SolveResult::Sat
        } else {
            query(!tlit, self)
        };
        match (can_be_true, can_be_false) {
            (SolveResult::Unsat, SolveResult::Unsat) => Decision::Unreachable,
            (SolveResult::Sat, SolveResult::Unsat) => Decision::Const(true),
            (SolveResult::Unsat, SolveResult::Sat) => Decision::Const(false),
            _ => Decision::Unknown,
        }
    }

    /// Packs the last model's values for every cone bit into the next
    /// bank lane (a ring over 64 lanes; bits absent from this cone keep
    /// their previous lane values — replay re-verifies every lane, so
    /// stale mixtures cost at most a missed refutation, never a wrong
    /// one).
    fn capture_model(&mut self, prog: &ConeProgram) {
        let lane = self.bank_cursor % 64;
        self.bank_cursor = self.bank_cursor.wrapping_add(1);
        self.bank_filled = (self.bank_filled + 1).min(64);
        self.stats.models_cached += 1;
        for (bit, _) in prog.bits() {
            if let Some(&l) = self.lits.get(&bit) {
                let v = self.enc.solver().model_value(l).unwrap_or(false);
                let plane = self.bank.entry(bit).or_insert(0);
                if v {
                    *plane |= 1 << lane;
                } else {
                    *plane &= !(1 << lane);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decide::decide;
    use crate::subgraph;
    use smartly_netlist::Module;

    fn ranks(m: &Module) -> HashMap<CellId, usize> {
        m.topo_order()
            .unwrap()
            .into_iter()
            .enumerate()
            .map(|(i, c)| (c, i))
            .collect()
    }

    fn extract_for(
        m: &Module,
        index: &NetIndex,
        target: SigBit,
        known: &[(SigBit, bool)],
    ) -> (SubGraph, HashMap<SigBit, bool>) {
        let r = ranks(m);
        let mut assign = HashMap::new();
        for (b, v) in known {
            assign.insert(index.canon(*b), *v);
        }
        let (sub, _) = subgraph::extract(m, index, &r, target, &assign, 16, true);
        (sub, assign)
    }

    fn sat_only() -> QueryEngineOptions {
        QueryEngineOptions {
            decide: DecideOptions {
                sim_threshold: 0,
                ..Default::default()
            },
            prefilter_rounds: 0,
            ..Default::default()
        }
    }

    /// SAT models feed the bank; an isomorphism-breaking sibling query is
    /// then refuted by pure replay.
    #[test]
    fn counterexamples_replay_across_queries() {
        let mut m = Module::new("t");
        let a = m.add_input("a", 1);
        let b = m.add_input("b", 1);
        let x = m.xor(&a, &b);
        let xn = m.xnor(&a, &b);
        m.add_output("o1", &x);
        m.add_output("o2", &xn);
        let index = NetIndex::build(&m);
        let mut eng = QueryEngine::new(&m, &index, sat_only());

        let (sub, assign) = extract_for(&m, &index, index.canon(x.bit(0)), &[]);
        let (d, layer) = eng.decide(&sub, &assign);
        assert_eq!(d, Decision::Unknown);
        assert_eq!(layer, Layer::Sat);
        assert_eq!(eng.stats().models_cached, 2, "one model per polarity");

        // xnor(a, b) is the complement cone: whatever pair of models
        // witnessed xor's two polarities witnesses xnor's two polarities
        let (sub, assign) = extract_for(&m, &index, index.canon(xn.bit(0)), &[]);
        let (d, layer) = eng.decide(&sub, &assign);
        assert_eq!(d, Decision::Unknown);
        assert_eq!(layer, Layer::CexReplay);
        assert_eq!(eng.stats().by_cex, 1);
    }

    /// A poisoned bank must never refute a genuinely constant bit: replay
    /// verifies every lane against the path condition.
    #[test]
    fn replay_never_misrefutes_a_constant_bit() {
        let mut m = Module::new("t");
        let a = m.add_input("a", 1);
        let b = m.add_input("b", 1);
        let x = m.xor(&a, &b);
        m.add_output("o1", &x);
        let s = m.add_input("s", 1);
        let r = m.add_input("r", 1);
        let sr = m.or(&s, &r);
        m.add_output("o2", &sr);
        let index = NetIndex::build(&m);
        let mut eng = QueryEngine::new(&m, &index, sat_only());

        // fill the bank with models over {a, b} (and, lane-stale, zeros
        // for every other bit)
        let (sub, assign) = extract_for(&m, &index, index.canon(x.bit(0)), &[]);
        let _ = eng.decide(&sub, &assign);
        assert!(eng.stats().models_cached > 0);

        // s|r under s=1 is constant true; the bank's lanes pin s=1 via
        // the path condition and must only ever witness `true`
        let (sub, assign) = extract_for(&m, &index, index.canon(sr.bit(0)), &[(s.bit(0), true)]);
        let (d, layer) = eng.decide(&sub, &assign);
        assert_eq!(d, Decision::Const(true));
        assert_eq!(layer, Layer::Sat);
        assert_eq!(eng.stats().by_cex, 0, "replay must not fire");
    }

    /// Bus-replicated structure: the second isomorphic cone is answered
    /// by the verdict memo without touching sim or SAT.
    #[test]
    fn isomorphic_cones_share_a_verdict() {
        let mut m = Module::new("t");
        let a0 = m.add_input("a0", 1);
        let b0 = m.add_input("b0", 1);
        let a1 = m.add_input("a1", 1);
        let b1 = m.add_input("b1", 1);
        let y0 = m.or(&a0, &b0);
        let y1 = m.or(&a1, &b1);
        m.add_output("o0", &y0);
        m.add_output("o1", &y1);
        let index = NetIndex::build(&m);
        let mut eng = QueryEngine::new(&m, &index, QueryEngineOptions::default());

        let (sub, assign) = extract_for(&m, &index, index.canon(y0.bit(0)), &[(a0.bit(0), true)]);
        let (d0, l0) = eng.decide(&sub, &assign);
        assert_eq!(d0, Decision::Const(true));
        assert_ne!(l0, Layer::Memo);

        let (sub, assign) = extract_for(&m, &index, index.canon(y1.bit(0)), &[(a1.bit(0), true)]);
        let (d1, l1) = eng.decide(&sub, &assign);
        assert_eq!(d1, Decision::Const(true));
        assert_eq!(l1, Layer::Memo);
        assert_eq!(eng.stats().by_memo, 1);
    }

    /// A genuinely free cone is refuted by the random prefilter before
    /// any solver or enumeration runs.
    #[test]
    fn prefilter_refutes_free_cones() {
        let mut m = Module::new("t");
        let a = m.add_input("a", 1);
        let b = m.add_input("b", 1);
        let y = m.or(&a, &b);
        m.add_output("o", &y);
        let index = NetIndex::build(&m);
        let mut eng = QueryEngine::new(&m, &index, QueryEngineOptions::default());
        let (sub, assign) = extract_for(&m, &index, index.canon(y.bit(0)), &[]);
        let (d, layer) = eng.decide(&sub, &assign);
        assert_eq!(d, Decision::Unknown);
        assert_eq!(layer, Layer::Prefilter);
        assert_eq!(eng.stats().by_prefilter, 1);
    }

    /// The engine and the legacy fresh-solver path agree verdict-for-
    /// verdict on seeded random cones, through both the sim and the SAT
    /// routes, with and without a shared engine accumulating state.
    #[test]
    fn engine_matches_legacy_decide_on_random_cones() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xC0DE);
        for round in 0..20 {
            let mut m = Module::new("t");
            let inputs: Vec<_> = (0..5).map(|i| m.add_input(&format!("i{i}"), 1)).collect();
            let mut pool: Vec<smartly_netlist::SigSpec> = inputs.clone();
            for _ in 0..10 {
                let x = pool[rng.gen_range(0..pool.len())].clone();
                let y = pool[rng.gen_range(0..pool.len())].clone();
                let z = match rng.gen_range(0..5) {
                    0 => m.and(&x, &y),
                    1 => m.or(&x, &y),
                    2 => m.xor(&x, &y),
                    3 => m.mux(
                        &x,
                        &y,
                        &pool[rng.gen_range(0..pool.len())].clone().slice(0, 1),
                    ),
                    _ => m.not(&x),
                };
                pool.push(z);
            }
            for (i, s) in pool.iter().enumerate().skip(5) {
                m.add_output(&format!("o{i}"), s);
            }
            let index = NetIndex::build(&m);
            for (sim_threshold, prefilter_rounds) in [(16, 2), (0, 2), (0, 0)] {
                let opts = QueryEngineOptions {
                    decide: DecideOptions {
                        sim_threshold,
                        ..Default::default()
                    },
                    prefilter_rounds,
                    ..Default::default()
                };
                // one engine across the whole query stream, like a sweep
                let mut eng = QueryEngine::new(&m, &index, opts);
                for (t, sig) in pool.iter().enumerate().skip(5) {
                    let target = index.canon(sig.bit(0));
                    let known = [(inputs[round % 5].bit(0), round % 2 == 0)];
                    let (sub, assign) = extract_for(&m, &index, target, &known);
                    let (d_eng, _) = eng.decide(&sub, &assign);
                    let (d_leg, _) = decide(&m, &index, &sub, &assign, &opts.decide);
                    assert_eq!(
                        d_eng, d_leg,
                        "round {round} target {t} sim_threshold {sim_threshold}"
                    );
                }
            }
        }
    }
}
