//! The incremental SAT query engine: a four-layer funnel that answers
//! "is this bit constant under the path condition?" queries for the
//! redundancy pass (paper §II) without paying a fresh solver per query.
//!
//! [`decide()`](crate::decide::decide) — the legacy path — Tseitin-encodes
//! every sub-graph into a brand-new solver and runs two full CDCL
//! searches. Profiling the public corpus shows that most queries are
//! *refutations* (the target genuinely takes both values), and
//! SAT-sweeping practice answers those without ever reaching a solver.
//! [`QueryEngine`] layers the cheap answers in front:
//!
//! 1. **Cone-verdict memo** — queries are keyed by the canonical
//!    structural hash of ([`subgraph::query_key`]), so a mux tree
//!    replicated across a 32-bit bus pays for one decision, not 32.
//! 2. **Counterexample cache** — every model a SAT call returns is packed
//!    into 64-wide vector words (lane *k* of every bit's word = model
//!    *k*). Replaying the bank through the cone with
//!    [`smartly_sim::ConeSim`] refutes most "is it constant?" queries in
//!    one bit-parallel pass: a lane that satisfies the path condition and
//!    drives the target to each polarity is a complete proof of
//!    `Unknown`.
//! 3. **Random-simulation prefilter** — a handful of deterministic
//!    pseudo-random 64-vector passes knock out queries on genuinely free
//!    cones that the cache has not seen yet.
//! 4. **Incremental SAT** — one shared [`TseitinEncoder`] per module.
//!    Each cell's gate CNF is encoded exactly *once*; the clauses tying a
//!    cell's function to its output net are guarded by a per-cell
//!    *activation literal*, so a query is posed as
//!    `solve_with(activations ∪ path-condition ∪ target)` and retracted
//!    for free when the call returns. Learnt clauses survive the whole
//!    sweep. Exhaustive simulation of small cones (the paper's hybrid
//!    rule, [`choose_engine`]) runs 64 vectors per pass through the same
//!    compiled cone instead of one scalar three-valued evaluation at a
//!    time.
//!
//! Layers 1–3 only ever *refute* (conclude `Unknown`) or miss; every
//! conclusive `Const`/`Unreachable` verdict still comes from exhaustive
//! simulation or SAT, so the funnel returns exactly the verdicts the
//! legacy path would for every query the conflict budget does not cut
//! short (see the differential tests). A budget-limited query can
//! resolve on either side of the limit depending on the shared solver's
//! accumulated learnt clauses — a sound divergence either way, since
//! both modes then report `Unknown` or a correctly proven constant.
//! Guarding only the output-tie clauses keeps out-of-cone cells
//! invisible to a query — a leaf stays as free as it was in a fresh
//! solver.
//!
//! [`subgraph::query_key`]: crate::subgraph::query_key

use crate::decide::{
    choose_engine, encode_cell, free_leaves, simulate, DecideOptions, Decision, EngineChoice,
};
use crate::subgraph::{query_key, query_key_and_shape, ConeShape, SubGraph};
use smartly_netlist::{CellId, Module, NetIndex, Port, SigBit, TriVal};
use smartly_sat::{Deadline, Lit, SolveResult, SolverStats, TseitinEncoder};
use smartly_sim::{compile_cone, ConeProgram, ConeSim};
use smartly_telemetry::{ArgValue, Histogram, TraceHandle};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;
use std::time::Instant;

/// Which funnel layer terminated a query.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Layer {
    /// The cone-verdict memo replayed an earlier decision.
    Memo,
    /// The design-level verdict store replayed a verdict recorded by an
    /// earlier run (disk-loaded entries only; see [`SharedVerdictStore`]).
    DesignVerdict,
    /// Counterexample replay refuted constancy.
    CexReplay,
    /// Replay of the design-level shared bank's vectors refuted
    /// constancy.
    SharedCex,
    /// Random-simulation prefilter refuted constancy.
    Prefilter,
    /// Exhaustive simulation decided.
    Simulation,
    /// The incremental SAT solver decided.
    Sat,
    /// No layer ran (query skipped as too large).
    None,
}

impl Layer {
    /// Every layer, in funnel order — the index into
    /// [`FunnelProfile::latency_by_layer`] and the canonical order for
    /// rendering per-layer telemetry.
    pub const ALL: [Layer; 8] = [
        Layer::Memo,
        Layer::DesignVerdict,
        Layer::CexReplay,
        Layer::SharedCex,
        Layer::Prefilter,
        Layer::Simulation,
        Layer::Sat,
        Layer::None,
    ];

    /// Stable snake_case name (JSON keys, trace span args).
    pub fn name(self) -> &'static str {
        match self {
            Layer::Memo => "memo",
            Layer::DesignVerdict => "disk_verdict",
            Layer::CexReplay => "cex_replay",
            Layer::SharedCex => "shared_cex",
            Layer::Prefilter => "prefilter",
            Layer::Simulation => "simulation",
            Layer::Sat => "sat",
            Layer::None => "skipped",
        }
    }

    /// Index of this layer in [`Layer::ALL`].
    pub fn index(self) -> usize {
        match self {
            Layer::Memo => 0,
            Layer::DesignVerdict => 1,
            Layer::CexReplay => 2,
            Layer::SharedCex => 3,
            Layer::Prefilter => 4,
            Layer::Simulation => 5,
            Layer::Sat => 6,
            Layer::None => 7,
        }
    }
}

/// Always-on latency/work distributions for the query funnel.
///
/// Recording costs two `Instant::now` calls per query (plus two per SAT
/// solve), so the profile rides inside the regular stats structs rather
/// than behind the `--trace` flag — but like every histogram it may only
/// ever surface in timing JSON and traces, never in a digest.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct FunnelProfile {
    /// Query wall latency (µs), bucketed by the layer that terminated
    /// the query (indexed per [`Layer::index`]).
    pub latency_by_layer: [Histogram; 8],
    /// Wall time (µs) per individual incremental `solve_with` call.
    pub sat_call_us: Histogram,
    /// CDCL propagations per individual solve call.
    pub sat_call_propagations: Histogram,
    /// CDCL conflicts per individual solve call.
    pub sat_call_conflicts: Histogram,
}

impl FunnelProfile {
    /// Component-wise histogram merge.
    pub fn absorb(&mut self, o: &FunnelProfile) {
        for (a, b) in self
            .latency_by_layer
            .iter_mut()
            .zip(o.latency_by_layer.iter())
        {
            a.absorb(b);
        }
        self.sat_call_us.absorb(&o.sat_call_us);
        self.sat_call_propagations.absorb(&o.sat_call_propagations);
        self.sat_call_conflicts.absorb(&o.sat_call_conflicts);
    }

    /// Total queries profiled (sum over all layer histograms).
    pub fn queries(&self) -> u64 {
        self.latency_by_layer.iter().map(|h| h.count()).sum()
    }
}

/// A design-lifetime counterexample bank shared between the query
/// engines of *different modules* (and sweeps), keyed by
/// [`ConeShape::sig`].
///
/// Implementations must be thread-safe: under the driver's worker pool,
/// many module sweeps publish and look up concurrently. The contract
/// that keeps verdicts scheduling-independent is one-sided: a vector a
/// `lookup` returns is only ever *replayed and re-verified* by the
/// querying engine (every lane is checked against that cone's own path
/// condition before it may witness anything), and a refutation
/// concludes `Unknown` — exactly the verdict SAT would return for a
/// genuinely two-valued target. Partial witnesses from shared vectors
/// are never fed into SAT polarity skipping, so shared state cannot
/// directly steer the local solver.
///
/// The precise guarantee is the same one the engine already gives
/// versus the legacy fresh-solver path: every verdict the conflict
/// budget does not cut short is scheduling-independent. A shared-bank
/// hit does skip a SAT call (that is the point), so the local solver
/// accumulates different learnt clauses than it would have — and a
/// *budget-limited* query later in the same sweep can then land on
/// either side of the limit. Both outcomes are sound (`Unknown` or a
/// correctly proven constant), and in practice budgets do not bind on
/// the corpus: CI pins byte-identical digests across `--jobs` settings
/// and bank on/off empirically.
pub trait SharedCexBank: Send + Sync + std::fmt::Debug {
    /// Packed replay vectors for a cone shape: `planes[i]` holds one
    /// 64-lane word for intern index `i` (lane *k* of every index = one
    /// model). `width` is the querying cone's intern-table length;
    /// implementations must return `None` on a width mismatch (a hash
    /// collision between different shapes).
    fn lookup(&self, sig: u64, width: usize) -> Option<SharedVectors>;

    /// Records one model against a cone shape: `values[i]` is the model
    /// value of intern index `i`.
    fn publish(&self, sig: u64, values: &[bool]);
}

/// One shape's packed replay vectors, as returned by
/// [`SharedCexBank::lookup`].
#[derive(Clone, Debug)]
pub struct SharedVectors {
    /// Per-intern-index 64-lane value words.
    pub planes: Vec<u64>,
    /// How many lanes hold a model (≤ 64).
    pub lanes: u32,
}

/// A design-level verdict store shared between the query engines of
/// different modules — the module-agnostic sibling of the per-module
/// [`VerdictMemo`], and the layer a persistent knowledge file warms.
///
/// Keys are canonical [`query_key`](crate::subgraph::query_key)s, so a
/// *conclusive* verdict — one the conflict budget did not cut short —
/// is a pure function of its key and can be replayed by any module of
/// any run whose encoding and budget match. The engine enforces the
/// conclusiveness half of that contract: it only ever publishes
/// verdicts whose every SAT call terminated inside the budget (or that
/// came from exhaustive simulation / verified replay, which have no
/// budget at all). Implementations enforce the matching half by
/// recording the budget and encoding fingerprint next to persisted
/// entries and refusing to serve entries recorded under different ones.
///
/// Determinism: [`SharedVerdictStore::lookup`] must answer from state
/// that is **immutable for the whole design run** (in practice: the
/// entries loaded from disk at startup). Entries published *during* the
/// run are accumulated for saving but never served back — a lookup
/// whose answer depended on what sibling modules happened to publish
/// first would make layer attribution scheduling-dependent inside a
/// counter (`by_disk_verdict`) that is otherwise a pure function of the
/// loaded file and the input design.
pub trait SharedVerdictStore: Send + Sync + std::fmt::Debug {
    /// The recorded verdict for a canonical query key, if one was loaded
    /// from persistent state. Never answers from entries published
    /// during the current run.
    fn lookup(&self, key: &[u64]) -> Option<Decision>;

    /// Records a conclusive verdict for saving. Implementations may
    /// drop duplicates (the verdict for a key is unique) and bound
    /// their size.
    fn publish(&self, key: &[u64], decision: Decision);
}

/// Tuning for a [`QueryEngine`].
#[derive(Copy, Clone, Debug)]
pub struct QueryEngineOptions {
    /// The hybrid sim/SAT thresholds shared with the legacy path.
    pub decide: DecideOptions,
    /// Base number of 64-vector random passes before SAT (0 disables the
    /// prefilter layer entirely).
    pub prefilter_rounds: usize,
    /// Adaptive ceiling: the prefilter scales its round count with the
    /// cone's free-leaf count (one extra round per 16 free leaves over
    /// the base) up to this many rounds; after the base rounds it stops
    /// early once no lane has witnessed *any* target polarity (extension
    /// rounds keep hunting a rare second polarity while one is seen).
    pub prefilter_max_rounds: usize,
    /// Maximum number of distinct cone bits the counterexample bank
    /// tracks; beyond it the oldest-inserted bits are evicted ring-wise
    /// (an evicted bit replays as constant 0, which lane re-verification
    /// turns into at most a missed refutation).
    pub cex_bank_capacity: usize,
    /// Drop and re-create the shared solver once it holds this many
    /// variables — a backstop against superlinear growth on huge modules
    /// (the memo and counterexample bank survive a reset).
    pub reset_vars: usize,
}

impl Default for QueryEngineOptions {
    fn default() -> Self {
        QueryEngineOptions {
            decide: DecideOptions::default(),
            prefilter_rounds: 2,
            prefilter_max_rounds: 8,
            cex_bank_capacity: 4_096,
            reset_vars: 200_000,
        }
    }
}

/// Cumulative per-layer telemetry.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct QueryEngineStats {
    /// Queries posed to the engine.
    pub queries: usize,
    /// Answered by the cone-verdict memo.
    pub by_memo: usize,
    /// Memo answers whose entry was created in an *earlier* pipeline
    /// round (cross-round carryover; a subset of `by_memo`).
    pub memo_carryover: usize,
    /// Answered by a disk-loaded entry of the design-level verdict
    /// store (scheduling-independent: the store's served generation is
    /// immutable during a run).
    pub by_disk_verdict: usize,
    /// Conclusive verdicts published to the design-level verdict store.
    pub verdicts_published: usize,
    /// Refuted by counterexample replay.
    pub by_cex: usize,
    /// Refuted by replaying the design-level shared bank's vectors.
    pub by_shared_cex: usize,
    /// Refuted by the random-simulation prefilter.
    pub by_prefilter: usize,
    /// Random-simulation rounds actually executed (the adaptive
    /// prefilter's work metric; fixed-rounds mode would be
    /// `prefilter_rounds × queries-reaching-the-layer`).
    pub prefilter_rounds: usize,
    /// Reached exhaustive simulation.
    pub by_sim: usize,
    /// Reached the incremental SAT solver.
    pub by_sat: usize,
    /// Individual `solve_with` calls issued (≤ 2 per SAT query; witness
    /// reuse from layers 2–3 skips the matching polarity).
    pub sat_solves: usize,
    /// Models captured into the counterexample bank.
    pub models_cached: usize,
    /// Bits evicted from the bounded counterexample bank.
    pub bank_evictions: usize,
    /// Shared-solver resets triggered by `reset_vars`.
    pub solver_resets: usize,
    /// CDCL search statistics, accumulated across solver resets.
    pub solver: SolverStats,
    /// Always-on latency/work distributions (timing JSON only — never
    /// digest material).
    pub profile: FunnelProfile,
}

/// A cone-verdict memo that outlives a single sweep: the cross-round
/// (and potentially cross-sweep) layer of the cache hierarchy.
///
/// Keys are the canonical structural [`query_key`](crate::subgraph::query_key)s,
/// so a verdict is a pure function of its key — replaying one across
/// rounds is always sound. Entries still record the concrete cells of
/// the cone that produced them so [`VerdictMemo::invalidate`] can drop
/// everything a netlist mutation touched: belt-and-braces against any
/// future keying bug, and memory hygiene (entries for dead cones never
/// match again and would otherwise accumulate across rounds).
#[derive(Clone, Debug, Default)]
pub struct VerdictMemo {
    entries: HashMap<Vec<u64>, MemoEntry>,
    round: u32,
}

#[derive(Clone, Debug)]
struct MemoEntry {
    decision: Decision,
    round: u32,
    cells: Box<[CellId]>,
}

impl VerdictMemo {
    /// An empty memo at round 0.
    pub fn new() -> Self {
        VerdictMemo::default()
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the memo holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Advances the round counter; entries inserted before this call are
    /// *carried* entries, and hits on them count as
    /// [`QueryEngineStats::memo_carryover`].
    pub fn next_round(&mut self) {
        self.round += 1;
    }

    /// Drops every entry whose cone covers a dirty cell; returns how many
    /// were dropped.
    pub fn invalidate(&mut self, dirty: &HashSet<CellId>) -> usize {
        if dirty.is_empty() {
            return 0;
        }
        let before = self.entries.len();
        self.entries
            .retain(|_, e| !e.cells.iter().any(|c| dirty.contains(c)));
        before - self.entries.len()
    }

    fn lookup(&self, key: &[u64]) -> Option<(Decision, bool)> {
        self.entries
            .get(key)
            .map(|e| (e.decision, e.round < self.round))
    }

    fn insert(&mut self, key: Vec<u64>, decision: Decision, cells: &[CellId]) {
        self.entries.insert(
            key,
            MemoEntry {
                decision,
                round: self.round,
                cells: cells.into(),
            },
        );
    }
}

/// Per-module stateful query pipeline; see the [module docs](self).
///
/// One engine serves one sweep over one (immutable) module: it borrows
/// the netlist, so drop it before applying rewrites.
pub struct QueryEngine<'m> {
    module: &'m Module,
    index: &'m NetIndex,
    options: QueryEngineOptions,
    enc: TseitinEncoder,
    /// canonical net bit → its solver variable
    lits: HashMap<SigBit, Lit>,
    /// encoded cell → its activation literal
    acts: HashMap<CellId, Lit>,
    /// counterexample bank: canonical bit → 64 packed model values
    bank: HashMap<SigBit, u64>,
    /// insertion order of bank bits, for bounded ring eviction
    bank_order: VecDeque<SigBit>,
    /// how many bank lanes hold a model (≤ 64)
    bank_filled: u32,
    /// next lane to (over)write
    bank_cursor: u32,
    memo: VerdictMemo,
    /// design-level shared counterexample bank, when attached
    shared: Option<Arc<dyn SharedCexBank>>,
    /// design-level verdict store, when attached
    verdicts: Option<Arc<dyn SharedVerdictStore>>,
    /// solver stats accumulated from solvers dropped at resets
    solver_base: SolverStats,
    stats: QueryEngineStats,
    /// span recorder (disabled by default; see [`QueryEngine::set_trace`])
    trace: TraceHandle,
    /// cooperative cancellation token (never expires by default; see
    /// [`QueryEngine::set_deadline`])
    deadline: Deadline,
}

fn mask(v: bool) -> u64 {
    if v {
        u64::MAX
    } else {
        0
    }
}

fn lanes_mask(n: u32) -> u64 {
    if n >= 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

/// SplitMix64: the deterministic plane generator for the prefilter.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl<'m> QueryEngine<'m> {
    /// Creates an engine over one module for one sweep, with fresh state
    /// and no shared bank.
    pub fn new(module: &'m Module, index: &'m NetIndex, options: QueryEngineOptions) -> Self {
        QueryEngine::with_state(module, index, options, VerdictMemo::new(), None, None)
    }

    /// Creates an engine seeded with a persistent [`VerdictMemo`] (cross-
    /// round carryover), an optional design-level [`SharedCexBank`], and
    /// an optional design-level [`SharedVerdictStore`]. Reclaim the memo
    /// with [`QueryEngine::into_memo`] when the sweep ends.
    pub fn with_state(
        module: &'m Module,
        index: &'m NetIndex,
        options: QueryEngineOptions,
        memo: VerdictMemo,
        shared: Option<Arc<dyn SharedCexBank>>,
        verdicts: Option<Arc<dyn SharedVerdictStore>>,
    ) -> Self {
        QueryEngine {
            module,
            index,
            options,
            enc: TseitinEncoder::new(),
            lits: HashMap::new(),
            acts: HashMap::new(),
            bank: HashMap::new(),
            bank_order: VecDeque::new(),
            bank_filled: 0,
            bank_cursor: 0,
            memo,
            shared,
            verdicts,
            solver_base: SolverStats::default(),
            stats: QueryEngineStats::default(),
            trace: TraceHandle::disabled(),
            deadline: Deadline::none(),
        }
    }

    /// Attaches a span recorder: subsequent queries emit `query` spans
    /// (with layer attribution) and nested `sat_call` spans into it.
    /// Telemetry only — verdicts are identical with or without a
    /// recorder attached.
    pub fn set_trace(&mut self, trace: TraceHandle) {
        self.trace = trace;
    }

    /// Attaches a cooperative [`Deadline`], threaded into the CDCL
    /// solver (polled every few conflicts mid-search) and checked before
    /// each SAT layer entry. Once expired, SAT-bound queries return
    /// budget-limited `Unknown` verdicts — memoized for the sweep but
    /// never published to a design-level store, exactly like conflict-
    /// budget exhaustion, so deadlines can never corrupt a digest or a
    /// knowledge file.
    pub fn set_deadline(&mut self, deadline: Deadline) {
        self.deadline = deadline;
    }

    /// Consumes the engine, handing the verdict memo back for the next
    /// round (the per-sweep state — solver, banks — is dropped).
    pub fn into_memo(self) -> VerdictMemo {
        self.memo
    }

    /// Telemetry so far (solver counters include solvers already dropped
    /// at resets).
    pub fn stats(&self) -> QueryEngineStats {
        let mut s = self.stats;
        s.solver = self.solver_base;
        s.solver.absorb(&self.enc.solver().stats());
        s
    }

    /// Decides the sub-graph's target bit under `assign` (canonical keys),
    /// returning the verdict and the layer that produced it.
    ///
    /// Layer order: memo → counterexample replay → adaptive random
    /// prefilter → shared-bank replay (completing partial local
    /// witnesses) → exhaustive simulation or incremental SAT, with the
    /// same sim/SAT/skip routing as [`crate::decide::decide`].
    pub fn decide(&mut self, sub: &SubGraph, assign: &HashMap<SigBit, bool>) -> (Decision, Layer) {
        let started = Instant::now();
        self.trace
            .begin_with("query", &[("cells", ArgValue::U64(sub.cells.len() as u64))]);
        let (d, layer) = self.decide_inner(sub, assign);
        self.stats.profile.latency_by_layer[layer.index()]
            .record(started.elapsed().as_micros() as u64);
        self.trace
            .end_with(&[("layer", ArgValue::Str(layer.name()))]);
        (d, layer)
    }

    fn decide_inner(
        &mut self,
        sub: &SubGraph,
        assign: &HashMap<SigBit, bool>,
    ) -> (Decision, Layer) {
        self.stats.queries += 1;
        // one cone traversal builds the memo key — and, when a shared
        // bank is attached, the cone shape riding on the same pass
        // (without a bank the shape is never consumed, so the plain key
        // path skips the intern-table and signature work entirely)
        let (key, shape) = if self.shared.is_some() {
            let (key, shape) = query_key_and_shape(self.module, self.index, sub, assign);
            (key, Some(shape))
        } else {
            (query_key(self.module, self.index, sub, assign), None)
        };
        if let Some((d, carried)) = self.memo.lookup(&key) {
            self.stats.by_memo += 1;
            if carried {
                self.stats.memo_carryover += 1;
            }
            return (d, Layer::Memo);
        }
        let free = free_leaves(sub, assign);
        let choice = choose_engine(free.len(), sub.cells.len(), &self.options.decide);
        if choice == EngineChoice::Skip {
            self.memo.insert(key, Decision::Skipped, &sub.cells);
            return (Decision::Skipped, Layer::None);
        }
        // layer 1b: the design-level verdict store — conclusive verdicts
        // recorded by a previous run (disk generation only, so the hit
        // pattern is a pure function of the loaded file and the input)
        // answer isomorphic queries across modules before any per-cone
        // work happens. Deliberately *after* the Skip routing: the store
        // header pins the conflict budget but not the sim/skip
        // thresholds, so a store written under laxer thresholds could
        // otherwise answer a query this configuration skips — and a warm
        // run must decide exactly the query set the cold run decides.
        if let Some(store) = self.verdicts.as_ref() {
            if let Some(d) = store.lookup(&key) {
                self.stats.by_disk_verdict += 1;
                self.memo.insert(key, d, &sub.cells);
                return (d, Layer::DesignVerdict);
            }
        }

        let prog = compile_cone(self.module, self.index, &sub.cells);
        let target = self.index.canon(sub.target);
        let mut seen_true = false;
        let mut seen_false = false;
        if let Some(tslot) = prog.slot(target) {
            // layer 2: counterexample replay
            if self.bank_filled > 0 {
                let (t, f) = self.replay_bank(&prog, assign, tslot);
                seen_true |= t;
                seen_false |= f;
                if seen_true && seen_false {
                    self.stats.by_cex += 1;
                    self.conclude(key, Decision::Unknown, &sub.cells);
                    return (Decision::Unknown, Layer::CexReplay);
                }
            }
            // layer 3: adaptive random-simulation prefilter — rounds
            // scale with the free-leaf count. The extension rounds past
            // the base exist precisely to hunt a not-yet-seen rare
            // polarity, so they keep running while one polarity is
            // witnessed; they stop early only when the base rounds
            // witnessed *nothing* (no lane satisfied the path condition
            // — more random lanes are then equally unlikely to).
            if !free.is_empty() {
                let rounds = self.prefilter_rounds_for(free.len());
                for round in 0..rounds {
                    self.stats.prefilter_rounds += 1;
                    let (t, f) = self.replay_random(&prog, assign, tslot, round as u64);
                    seen_true |= t;
                    seen_false |= f;
                    if seen_true && seen_false {
                        self.stats.by_prefilter += 1;
                        self.conclude(key, Decision::Unknown, &sub.cells);
                        return (Decision::Unknown, Layer::Prefilter);
                    }
                    if !seen_true && !seen_false && round + 1 >= self.options.prefilter_rounds {
                        break;
                    }
                }
            }
            // layer 3b: design-level shared bank — the *completion*
            // layer. By now the cheap local layers have usually
            // witnessed the target's common polarity; what is missing is
            // the rare one, which is exactly what sibling modules'
            // published SAT models carry. Shared witnesses may combine
            // with local ones to finish a refutation (every witness is a
            // verified cone evaluation, so both polarities witnessed
            // proves the verdict SAT would return: `Unknown`), but they
            // are never folded into `seen_true`/`seen_false` — feeding
            // them into the SAT polarity skip below would make this
            // module's solver stream depend on what sibling modules
            // happened to publish first, breaking the jobs-determinism
            // of budget-limited verdicts.
            if let (Some(bank), Some(shape)) = (self.shared.clone(), shape.as_ref()) {
                if let Some(vectors) = bank.lookup(shape.sig, shape.bits.len()) {
                    let (t, f) = self.replay_shared(&prog, assign, tslot, shape, &vectors);
                    if (seen_true || t) && (seen_false || f) {
                        self.stats.by_shared_cex += 1;
                        self.conclude(key, Decision::Unknown, &sub.cells);
                        return (Decision::Unknown, Layer::SharedCex);
                    }
                }
            }
        }

        let (d, layer, conclusive) = match choice {
            EngineChoice::Sim => {
                self.stats.by_sim += 1;
                let _span = self.trace.scope("layer:simulation");
                let d = if prog.has_x() || prog.slot(target).is_none() {
                    // constant-x cones need exact three-valued semantics;
                    // empty cones have nothing to replay
                    simulate(self.module, self.index, sub, assign, &free)
                } else {
                    self.exhaustive(&prog, assign, target, &free)
                };
                // exhaustive simulation has no budget: always conclusive
                (d, Layer::Simulation, true)
            }
            EngineChoice::Sat => {
                self.stats.by_sat += 1;
                let _span = self.trace.scope("layer:sat");
                let (d, budget_limited) = self.sat_layer(
                    sub,
                    &prog,
                    assign,
                    target,
                    shape.as_ref(),
                    seen_true,
                    seen_false,
                );
                (d, Layer::Sat, !budget_limited)
            }
            EngineChoice::Skip => unreachable!("handled above"),
        };
        if conclusive {
            self.conclude(key, d, &sub.cells);
        } else {
            // a budget-limited verdict is state-dependent: sound to memo
            // within this run, never published to the design-level store
            self.memo.insert(key, d, &sub.cells);
        }
        (d, layer)
    }

    /// Records a conclusive verdict — a pure function of its canonical
    /// key — in the local memo and, when a design-level store is
    /// attached, publishes it for cross-run persistence.
    fn conclude(&mut self, key: Vec<u64>, d: Decision, cells: &[CellId]) {
        if let Some(store) = &self.verdicts {
            self.stats.verdicts_published += 1;
            store.publish(&key, d);
        }
        self.memo.insert(key, d, cells);
    }

    /// The adaptive prefilter budget for a cone with `free` free leaves:
    /// the configured base plus one round per 16 leaves, capped. 0 keeps
    /// the layer disabled.
    fn prefilter_rounds_for(&self, free: usize) -> usize {
        let base = self.options.prefilter_rounds;
        if base == 0 {
            return 0;
        }
        (base + free / 16).min(self.options.prefilter_max_rounds.max(base))
    }

    /// Loads leaf planes (path-condition bits pinned, free bits from
    /// `source`), evaluates the cone, and reports which target polarities
    /// are witnessed by lanes consistent with the path condition.
    fn witnesses(
        &self,
        prog: &ConeProgram,
        assign: &HashMap<SigBit, bool>,
        tslot: u32,
        active: u64,
        source: impl Fn(SigBit, u32) -> u64,
    ) -> (bool, bool) {
        let mut sim = ConeSim::new(prog);
        for &(bit, slot) in prog.leaves() {
            let plane = match assign.get(&bit) {
                Some(&v) => mask(v),
                None => source(bit, slot),
            };
            sim.set_plane(slot, plane);
        }
        sim.eval();
        // a lane is consistent when every in-cone path-condition bit
        // evaluates to its asserted value
        let mut ok = active;
        for (bit, &v) in assign {
            if let Some(slot) = prog.slot(self.index.canon(*bit)) {
                ok &= !(sim.plane(slot) ^ mask(v));
            }
        }
        let t = sim.plane(tslot);
        ((ok & t) != 0, (ok & !t) != 0)
    }

    fn replay_bank(
        &self,
        prog: &ConeProgram,
        assign: &HashMap<SigBit, bool>,
        tslot: u32,
    ) -> (bool, bool) {
        let active = lanes_mask(self.bank_filled);
        self.witnesses(prog, assign, tslot, active, |bit, _| {
            self.bank.get(&bit).copied().unwrap_or(0)
        })
    }

    /// Replays the shared bank's per-intern-index planes through this
    /// cone: each leaf maps back to its intern index via the shape's bit
    /// table, and every lane is re-verified against the local path
    /// condition before it may witness a polarity.
    fn replay_shared(
        &self,
        prog: &ConeProgram,
        assign: &HashMap<SigBit, bool>,
        tslot: u32,
        shape: &ConeShape,
        vectors: &SharedVectors,
    ) -> (bool, bool) {
        let idx_of: HashMap<SigBit, usize> = shape
            .bits
            .iter()
            .enumerate()
            .map(|(i, &b)| (b, i))
            .collect();
        self.witnesses(prog, assign, tslot, lanes_mask(vectors.lanes), |bit, _| {
            idx_of
                .get(&bit)
                .and_then(|&i| vectors.planes.get(i).copied())
                .unwrap_or(0)
        })
    }

    fn replay_random(
        &self,
        prog: &ConeProgram,
        assign: &HashMap<SigBit, bool>,
        tslot: u32,
        round: u64,
    ) -> (bool, bool) {
        // planes keyed by slot (stable: first-use order in the cone) and
        // round — deterministic across runs, jobs and platforms
        self.witnesses(prog, assign, tslot, u64::MAX, |_, slot| {
            splitmix64(0x5EED_0000_0000_0000 ^ (u64::from(slot) << 8) ^ round)
        })
    }

    /// Exhaustive 64-lane enumeration of the free leaves — the same
    /// verdict [`simulate`] computes, 64 vectors per pass.
    fn exhaustive(
        &self,
        prog: &ConeProgram,
        assign: &HashMap<SigBit, bool>,
        target: SigBit,
        free: &[SigBit],
    ) -> Decision {
        let tslot = prog.slot(target).expect("checked by caller");
        let free_slots: Vec<u32> = free
            .iter()
            .map(|b| prog.slot(*b).expect("free leaf is referenced by the cone"))
            .collect();
        let total: u64 = 1 << free.len();
        let mut seen_true = false;
        let mut seen_false = false;
        let mut any_consistent = false;
        let mut chunk = 0u64;
        while chunk < total {
            let lanes = (total - chunk).min(64) as u32;
            let (t, f) = self.witnesses(prog, assign, tslot, lanes_mask(lanes), |bit, slot| {
                let j = free_slots
                    .iter()
                    .position(|&s| s == slot)
                    .unwrap_or_else(|| panic!("unassigned non-free leaf {bit:?}"));
                let mut plane = 0u64;
                for l in 0..u64::from(lanes) {
                    if ((chunk + l) >> j) & 1 == 1 {
                        plane |= 1 << l;
                    }
                }
                plane
            });
            seen_true |= t;
            seen_false |= f;
            any_consistent |= t || f;
            if seen_true && seen_false {
                return Decision::Unknown;
            }
            chunk += 64;
        }
        if !any_consistent {
            Decision::Unreachable
        } else if seen_true {
            Decision::Const(true)
        } else {
            Decision::Const(false)
        }
    }

    /// The net-bit literal (allocating on first use; constants fold).
    fn lit(&mut self, canonical_bit: SigBit) -> Lit {
        match canonical_bit {
            SigBit::Const(TriVal::One) => self.enc.true_lit(),
            SigBit::Const(_) => self.enc.false_lit(),
            c => {
                if let Some(&l) = self.lits.get(&c) {
                    return l;
                }
                let l = self.enc.fresh();
                self.lits.insert(c, l);
                l
            }
        }
    }

    /// Encodes one cell exactly once: unguarded Tseitin definitions for
    /// the gate function (fresh variables, globally sound), plus
    /// activation-guarded clauses tying the function to the output net —
    /// with the activation literal unasserted, the net stays as free as
    /// it was in a fresh solver.
    fn encode(&mut self, id: CellId) {
        if self.acts.contains_key(&id) {
            return;
        }
        let act = self.enc.fresh();
        let cell = self.module.cell(id).expect("live cell");
        let port_lits = |port: Port, this: &mut Self| -> Vec<Lit> {
            cell.port(port)
                .map(|s| s.iter().map(|b| this.lit(this.index.canon(*b))).collect())
                .unwrap_or_default()
        };
        let a = port_lits(Port::A, self);
        let b = port_lits(Port::B, self);
        let s = port_lits(Port::S, self);
        let w = cell.output().width();
        let out = encode_cell(&mut self.enc, cell.kind, &a, &b, &s, w);
        for (bit, lit) in cell.output().iter().zip(out) {
            let net = self.lit(self.index.canon(*bit));
            self.enc.add_clause([!act, !net, lit]);
            self.enc.add_clause([!act, net, !lit]);
        }
        self.acts.insert(id, act);
    }

    /// Incremental SAT: assume the cone's activation literals, the path
    /// condition and the target polarity; models feed the counterexample
    /// bank and are published to the shared bank under the cone's shape
    /// signature. Polarities already witnessed by layers 2–3 are skipped.
    ///
    /// The second return is `true` when any executed solve exhausted the
    /// conflict budget — the verdict is then state-dependent and must
    /// not be persisted.
    #[allow(clippy::too_many_arguments)]
    fn sat_layer(
        &mut self,
        sub: &SubGraph,
        prog: &ConeProgram,
        assign: &HashMap<SigBit, bool>,
        target: SigBit,
        shape: Option<&ConeShape>,
        seen_true: bool,
        seen_false: bool,
    ) -> (Decision, bool) {
        // An expired deadline makes every further SAT-bound query a
        // budget-limited Unknown without touching the solver: the sweep
        // finishes its walk on cached layers only, and nothing
        // state-dependent is persisted.
        if self.deadline.expired() {
            return (Decision::Unknown, true);
        }
        if self.enc.num_vars() > self.options.reset_vars {
            self.solver_base.absorb(&self.enc.solver().stats());
            self.enc = TseitinEncoder::new();
            self.lits.clear();
            self.acts.clear();
            self.stats.solver_resets += 1;
        }
        for &id in &sub.cells {
            self.encode(id);
        }
        let mut assumptions: Vec<Lit> = sub.cells.iter().map(|id| self.acts[id]).collect();
        let mut path: Vec<(SigBit, bool)> = assign
            .iter()
            .map(|(b, &v)| (self.index.canon(*b), v))
            .collect();
        path.sort_unstable();
        for (bit, v) in path {
            let l = self.lit(bit);
            assumptions.push(if v { l } else { !l });
        }
        let tlit = self.lit(target);
        self.enc
            .solver_mut()
            .set_conflict_budget(Some(self.options.decide.conflict_budget));
        self.enc.solver_mut().set_deadline(self.deadline.clone());
        if self.options.decide.luby_restarts {
            self.enc
                .solver_mut()
                .set_restart_mode(smartly_sat::RestartMode::Luby);
        }
        self.enc
            .solver_mut()
            .set_inprocessing(self.options.decide.inprocessing);
        let query = |polarity: Lit, this: &mut Self| -> SolveResult {
            this.stats.sat_solves += 1;
            let mut a = assumptions.clone();
            a.push(polarity);
            let base = this.enc.solver().stats();
            let started = Instant::now();
            this.trace.begin("sat_call");
            let r = this.enc.solve_with(&a);
            let delta = this.enc.solver().stats().since(&base);
            this.stats
                .profile
                .sat_call_us
                .record(started.elapsed().as_micros() as u64);
            this.stats
                .profile
                .sat_call_propagations
                .record(delta.propagations);
            this.stats
                .profile
                .sat_call_conflicts
                .record(delta.conflicts);
            this.trace.end_with(&[
                (
                    "result",
                    ArgValue::Str(match r {
                        SolveResult::Sat => "sat",
                        SolveResult::Unsat => "unsat",
                        SolveResult::Unknown => "unknown",
                    }),
                ),
                ("conflicts", ArgValue::U64(delta.conflicts)),
                ("propagations", ArgValue::U64(delta.propagations)),
            ]);
            if r == SolveResult::Sat {
                this.capture_model(prog, shape);
            }
            r
        };
        let can_be_true = if seen_true {
            SolveResult::Sat
        } else {
            query(tlit, self)
        };
        let can_be_false = if seen_false {
            SolveResult::Sat
        } else {
            query(!tlit, self)
        };
        let budget_limited =
            can_be_true == SolveResult::Unknown || can_be_false == SolveResult::Unknown;
        let d = match (can_be_true, can_be_false) {
            (SolveResult::Unsat, SolveResult::Unsat) => Decision::Unreachable,
            (SolveResult::Sat, SolveResult::Unsat) => Decision::Const(true),
            (SolveResult::Unsat, SolveResult::Sat) => Decision::Const(false),
            _ => Decision::Unknown,
        };
        (d, budget_limited)
    }

    /// Packs the last model's values for every cone bit into the next
    /// bank lane (a ring over 64 lanes; bits absent from this cone keep
    /// their previous lane values — replay re-verifies every lane, so
    /// stale mixtures cost at most a missed refutation, never a wrong
    /// one), evicting the oldest tracked bits when the bounded bank
    /// overflows, and publishes the model to the shared bank under the
    /// cone's shape signature.
    fn capture_model(&mut self, prog: &ConeProgram, shape: Option<&ConeShape>) {
        let lane = self.bank_cursor % 64;
        self.bank_cursor = self.bank_cursor.wrapping_add(1);
        self.bank_filled = (self.bank_filled + 1).min(64);
        self.stats.models_cached += 1;
        for (bit, _) in prog.bits() {
            if let Some(&l) = self.lits.get(&bit) {
                let v = self.enc.solver().model_value(l).unwrap_or(false);
                if let Some(plane) = self.bank.get_mut(&bit) {
                    if v {
                        *plane |= 1 << lane;
                    } else {
                        *plane &= !(1 << lane);
                    }
                } else {
                    while self.bank.len() >= self.options.cex_bank_capacity.max(1) {
                        let Some(oldest) = self.bank_order.pop_front() else {
                            break;
                        };
                        if self.bank.remove(&oldest).is_some() {
                            self.stats.bank_evictions += 1;
                        }
                    }
                    self.bank.insert(bit, if v { 1 << lane } else { 0 });
                    self.bank_order.push_back(bit);
                }
            }
        }
        if let (Some(bank), Some(shape)) = (&self.shared, shape) {
            let values: Vec<bool> = shape
                .bits
                .iter()
                .map(|b| {
                    self.lits
                        .get(b)
                        .and_then(|&l| self.enc.solver().model_value(l))
                        .unwrap_or(false)
                })
                .collect();
            bank.publish(shape.sig, &values);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decide::decide;
    use crate::subgraph;
    use smartly_netlist::Module;

    fn ranks(m: &Module) -> HashMap<CellId, usize> {
        m.topo_order()
            .unwrap()
            .into_iter()
            .enumerate()
            .map(|(i, c)| (c, i))
            .collect()
    }

    fn extract_for(
        m: &Module,
        index: &NetIndex,
        target: SigBit,
        known: &[(SigBit, bool)],
    ) -> (SubGraph, HashMap<SigBit, bool>) {
        let r = ranks(m);
        let mut assign = HashMap::new();
        for (b, v) in known {
            assign.insert(index.canon(*b), *v);
        }
        let (sub, _) = subgraph::extract(m, index, &r, target, &assign, 16, true);
        (sub, assign)
    }

    fn sat_only() -> QueryEngineOptions {
        QueryEngineOptions {
            decide: DecideOptions {
                sim_threshold: 0,
                ..Default::default()
            },
            prefilter_rounds: 0,
            ..Default::default()
        }
    }

    /// SAT models feed the bank; an isomorphism-breaking sibling query is
    /// then refuted by pure replay.
    #[test]
    fn counterexamples_replay_across_queries() {
        let mut m = Module::new("t");
        let a = m.add_input("a", 1);
        let b = m.add_input("b", 1);
        let x = m.xor(&a, &b);
        let xn = m.xnor(&a, &b);
        m.add_output("o1", &x);
        m.add_output("o2", &xn);
        let index = NetIndex::build(&m);
        let mut eng = QueryEngine::new(&m, &index, sat_only());

        let (sub, assign) = extract_for(&m, &index, index.canon(x.bit(0)), &[]);
        let (d, layer) = eng.decide(&sub, &assign);
        assert_eq!(d, Decision::Unknown);
        assert_eq!(layer, Layer::Sat);
        assert_eq!(eng.stats().models_cached, 2, "one model per polarity");

        // xnor(a, b) is the complement cone: whatever pair of models
        // witnessed xor's two polarities witnesses xnor's two polarities
        let (sub, assign) = extract_for(&m, &index, index.canon(xn.bit(0)), &[]);
        let (d, layer) = eng.decide(&sub, &assign);
        assert_eq!(d, Decision::Unknown);
        assert_eq!(layer, Layer::CexReplay);
        assert_eq!(eng.stats().by_cex, 1);
    }

    /// A poisoned bank must never refute a genuinely constant bit: replay
    /// verifies every lane against the path condition.
    #[test]
    fn replay_never_misrefutes_a_constant_bit() {
        let mut m = Module::new("t");
        let a = m.add_input("a", 1);
        let b = m.add_input("b", 1);
        let x = m.xor(&a, &b);
        m.add_output("o1", &x);
        let s = m.add_input("s", 1);
        let r = m.add_input("r", 1);
        let sr = m.or(&s, &r);
        m.add_output("o2", &sr);
        let index = NetIndex::build(&m);
        let mut eng = QueryEngine::new(&m, &index, sat_only());

        // fill the bank with models over {a, b} (and, lane-stale, zeros
        // for every other bit)
        let (sub, assign) = extract_for(&m, &index, index.canon(x.bit(0)), &[]);
        let _ = eng.decide(&sub, &assign);
        assert!(eng.stats().models_cached > 0);

        // s|r under s=1 is constant true; the bank's lanes pin s=1 via
        // the path condition and must only ever witness `true`
        let (sub, assign) = extract_for(&m, &index, index.canon(sr.bit(0)), &[(s.bit(0), true)]);
        let (d, layer) = eng.decide(&sub, &assign);
        assert_eq!(d, Decision::Const(true));
        assert_eq!(layer, Layer::Sat);
        assert_eq!(eng.stats().by_cex, 0, "replay must not fire");
    }

    /// Bus-replicated structure: the second isomorphic cone is answered
    /// by the verdict memo without touching sim or SAT.
    #[test]
    fn isomorphic_cones_share_a_verdict() {
        let mut m = Module::new("t");
        let a0 = m.add_input("a0", 1);
        let b0 = m.add_input("b0", 1);
        let a1 = m.add_input("a1", 1);
        let b1 = m.add_input("b1", 1);
        let y0 = m.or(&a0, &b0);
        let y1 = m.or(&a1, &b1);
        m.add_output("o0", &y0);
        m.add_output("o1", &y1);
        let index = NetIndex::build(&m);
        let mut eng = QueryEngine::new(&m, &index, QueryEngineOptions::default());

        let (sub, assign) = extract_for(&m, &index, index.canon(y0.bit(0)), &[(a0.bit(0), true)]);
        let (d0, l0) = eng.decide(&sub, &assign);
        assert_eq!(d0, Decision::Const(true));
        assert_ne!(l0, Layer::Memo);

        let (sub, assign) = extract_for(&m, &index, index.canon(y1.bit(0)), &[(a1.bit(0), true)]);
        let (d1, l1) = eng.decide(&sub, &assign);
        assert_eq!(d1, Decision::Const(true));
        assert_eq!(l1, Layer::Memo);
        assert_eq!(eng.stats().by_memo, 1);
    }

    /// A genuinely free cone is refuted by the random prefilter before
    /// any solver or enumeration runs.
    #[test]
    fn prefilter_refutes_free_cones() {
        let mut m = Module::new("t");
        let a = m.add_input("a", 1);
        let b = m.add_input("b", 1);
        let y = m.or(&a, &b);
        m.add_output("o", &y);
        let index = NetIndex::build(&m);
        let mut eng = QueryEngine::new(&m, &index, QueryEngineOptions::default());
        let (sub, assign) = extract_for(&m, &index, index.canon(y.bit(0)), &[]);
        let (d, layer) = eng.decide(&sub, &assign);
        assert_eq!(d, Decision::Unknown);
        assert_eq!(layer, Layer::Prefilter);
        assert_eq!(eng.stats().by_prefilter, 1);
    }

    /// A minimal thread-safe shared bank for tests: the same ring
    /// semantics as the driver's `KnowledgeBase`, without bounds.
    type TestShapes = HashMap<u64, (usize, Vec<Vec<bool>>)>;

    #[derive(Debug, Default)]
    struct TestBank {
        shapes: std::sync::Mutex<TestShapes>,
    }

    impl SharedCexBank for TestBank {
        fn lookup(&self, sig: u64, width: usize) -> Option<SharedVectors> {
            let shapes = self.shapes.lock().unwrap();
            let (w, models) = shapes.get(&sig)?;
            if *w != width || models.is_empty() {
                return None;
            }
            let mut planes = vec![0u64; width];
            for (lane, model) in models.iter().take(64).enumerate() {
                for (i, &v) in model.iter().enumerate() {
                    if v {
                        planes[i] |= 1 << lane;
                    }
                }
            }
            Some(SharedVectors {
                planes,
                lanes: models.len().min(64) as u32,
            })
        }

        fn publish(&self, sig: u64, values: &[bool]) {
            let mut shapes = self.shapes.lock().unwrap();
            let entry = shapes.entry(sig).or_insert_with(|| (values.len(), vec![]));
            if entry.0 == values.len() {
                entry.1.push(values.to_vec());
            }
        }
    }

    fn xor_module(name: &str) -> (Module, SigBit) {
        let mut m = Module::new(name);
        let a = m.add_input("a", 1);
        let b = m.add_input("b", 1);
        let x = m.xor(&a, &b);
        m.add_output("o", &x);
        let t = x.bit(0);
        (m, t)
    }

    /// Module A's SAT models seed the shared bank; module B's cold
    /// engine refutes the isomorphic query by shared replay alone.
    #[test]
    fn shared_bank_seeds_a_sibling_module() {
        let bank: Arc<TestBank> = Arc::new(TestBank::default());
        let (ma, ta) = xor_module("a");
        let index_a = NetIndex::build(&ma);
        let mut eng_a = QueryEngine::with_state(
            &ma,
            &index_a,
            sat_only(),
            VerdictMemo::new(),
            Some(bank.clone()),
            None,
        );
        let (sub, assign) = extract_for(&ma, &index_a, index_a.canon(ta), &[]);
        let (d, layer) = eng_a.decide(&sub, &assign);
        assert_eq!(d, Decision::Unknown);
        assert_eq!(layer, Layer::Sat);
        assert_eq!(eng_a.stats().models_cached, 2);

        let (mb, tb) = xor_module("b");
        let index_b = NetIndex::build(&mb);
        let mut eng_b = QueryEngine::with_state(
            &mb,
            &index_b,
            sat_only(),
            VerdictMemo::new(),
            Some(bank),
            None,
        );
        let (sub, assign) = extract_for(&mb, &index_b, index_b.canon(tb), &[]);
        let (d, layer) = eng_b.decide(&sub, &assign);
        assert_eq!(d, Decision::Unknown);
        assert_eq!(layer, Layer::SharedCex, "cold module must hit the bank");
        assert_eq!(eng_b.stats().by_shared_cex, 1);
        assert_eq!(eng_b.stats().by_sat, 0);
    }

    /// Shared vectors must never mis-refute a genuinely constant bit:
    /// replay re-verifies every lane against the local path condition.
    #[test]
    fn shared_replay_never_misrefutes_a_constant_bit() {
        let bank: Arc<TestBank> = Arc::new(TestBank::default());
        // module A: free or-cone, publishes models witnessing both
        // polarities of the same shape B will query
        let mut ma = Module::new("a");
        let s = ma.add_input("s", 1);
        let r = ma.add_input("r", 1);
        let sr = ma.or(&s, &r);
        ma.add_output("o", &sr);
        let index_a = NetIndex::build(&ma);
        let mut eng_a = QueryEngine::with_state(
            &ma,
            &index_a,
            sat_only(),
            VerdictMemo::new(),
            Some(bank.clone()),
            None,
        );
        let (sub, assign) = extract_for(&ma, &index_a, index_a.canon(sr.bit(0)), &[]);
        let (d, _) = eng_a.decide(&sub, &assign);
        assert_eq!(d, Decision::Unknown);
        assert!(eng_a.stats().models_cached > 0);

        // module B: the same or-cone but queried under s=1 — constant
        // true; the shared lanes with s=0 must be filtered out
        let mut mb = Module::new("b");
        let s2 = mb.add_input("s", 1);
        let r2 = mb.add_input("r", 1);
        let sr2 = mb.or(&s2, &r2);
        mb.add_output("o", &sr2);
        let index_b = NetIndex::build(&mb);
        let mut eng_b = QueryEngine::with_state(
            &mb,
            &index_b,
            sat_only(),
            VerdictMemo::new(),
            Some(bank),
            None,
        );
        let (sub, assign) = extract_for(
            &mb,
            &index_b,
            index_b.canon(sr2.bit(0)),
            &[(s2.bit(0), true)],
        );
        let (d, layer) = eng_b.decide(&sub, &assign);
        assert_eq!(d, Decision::Const(true));
        assert_eq!(layer, Layer::Sat);
        assert_eq!(
            eng_b.stats().by_shared_cex,
            0,
            "shared replay must not fire"
        );
    }

    /// Minimal design-level verdict store for tests: a fixed disk
    /// generation plus a publish log, mirroring the driver store's
    /// lookup-serves-disk-only contract.
    #[derive(Debug, Default)]
    struct TestVerdicts {
        disk: HashMap<Vec<u64>, Decision>,
        published: std::sync::Mutex<Vec<(Vec<u64>, Decision)>>,
    }

    impl SharedVerdictStore for TestVerdicts {
        fn lookup(&self, key: &[u64]) -> Option<Decision> {
            self.disk.get(key).copied()
        }

        fn publish(&self, key: &[u64], decision: Decision) {
            self.published
                .lock()
                .unwrap()
                .push((key.to_vec(), decision));
        }
    }

    /// Conclusive verdicts are published to the design-level store, and
    /// a second engine (different module, isomorphic cone) warm-started
    /// from those entries answers from the store without touching sim,
    /// SAT, or its own banks.
    #[test]
    fn design_verdict_store_replays_across_engines() {
        let store = Arc::new(TestVerdicts::default());
        let (ma, ta) = xor_module("a");
        let index_a = NetIndex::build(&ma);
        let mut eng_a = QueryEngine::with_state(
            &ma,
            &index_a,
            sat_only(),
            VerdictMemo::new(),
            None,
            Some(store.clone()),
        );
        let (sub, assign) = extract_for(&ma, &index_a, index_a.canon(ta), &[]);
        let (d, layer) = eng_a.decide(&sub, &assign);
        assert_eq!(d, Decision::Unknown);
        assert_eq!(layer, Layer::Sat);
        assert_eq!(eng_a.stats().verdicts_published, 1);
        let published = store.published.lock().unwrap().clone();
        assert_eq!(published.len(), 1);
        assert_eq!(published[0].1, Decision::Unknown);

        // promote the published entries to a fresh store's disk
        // generation — the load path in miniature
        let warm = Arc::new(TestVerdicts {
            disk: published.into_iter().collect(),
            published: std::sync::Mutex::new(Vec::new()),
        });
        let (mb, tb) = xor_module("b");
        let index_b = NetIndex::build(&mb);
        let mut eng_b = QueryEngine::with_state(
            &mb,
            &index_b,
            sat_only(),
            VerdictMemo::new(),
            None,
            Some(warm),
        );
        let (sub, assign) = extract_for(&mb, &index_b, index_b.canon(tb), &[]);
        let (d, layer) = eng_b.decide(&sub, &assign);
        assert_eq!(d, Decision::Unknown);
        assert_eq!(layer, Layer::DesignVerdict, "disk entry must answer");
        let s = eng_b.stats();
        assert_eq!(s.by_disk_verdict, 1);
        assert_eq!(s.by_sat, 0);
        assert_eq!(s.sat_solves, 0);
    }

    /// A budget-limited verdict is state-dependent and must never reach
    /// the persistent store; the same query under a generous budget is
    /// conclusive and published.
    #[test]
    fn budget_limited_verdicts_are_never_published() {
        // add(a,b) == add(b,a): constant true, but the UNSAT proof of
        // "can be false" needs real CDCL search — a 1-conflict budget
        // cuts it short
        let build = || {
            let mut m = Module::new("t");
            let a = m.add_input("a", 8);
            let b = m.add_input("b", 8);
            let s1 = m.add(&a, &b);
            let s2 = m.add(&b, &a);
            let y = m.eq(&s1, &s2);
            m.add_output("y", &y);
            (m, y.bit(0))
        };
        let run = |budget: u64| {
            let (m, t) = build();
            let index = NetIndex::build(&m);
            let store = Arc::new(TestVerdicts::default());
            let opts = QueryEngineOptions {
                decide: DecideOptions {
                    sim_threshold: 0,
                    conflict_budget: budget,
                    ..Default::default()
                },
                prefilter_rounds: 0,
                ..Default::default()
            };
            let mut eng = QueryEngine::with_state(
                &m,
                &index,
                opts,
                VerdictMemo::new(),
                None,
                Some(store.clone()),
            );
            let (sub, assign) = extract_for(&m, &index, index.canon(t), &[]);
            let (d, _) = eng.decide(&sub, &assign);
            let published = store.published.lock().unwrap().len();
            (d, published)
        };
        let (d, published) = run(1);
        assert_eq!(d, Decision::Unknown, "budget 1 must cut the proof short");
        assert_eq!(published, 0, "budget-limited verdicts stay unpublished");
        let (d, published) = run(1_000_000);
        assert_eq!(d, Decision::Const(true));
        assert_eq!(published, 1, "conclusive verdicts are published");
    }

    /// The bounded bank evicts its oldest bits instead of growing without
    /// limit, and eviction stays sound (verdicts unchanged).
    #[test]
    fn bounded_bank_evicts_oldest_bits() {
        let mut m = Module::new("t");
        let sigs: Vec<_> = (0..4)
            .map(|i| {
                let a = m.add_input(&format!("a{i}"), 1);
                let b = m.add_input(&format!("b{i}"), 1);
                // xor chained through a not so each cone has distinct bits
                let x = m.xor(&a, &b);
                let y = m.not(&x);
                m.add_output(&format!("o{i}"), &y);
                y.bit(0)
            })
            .collect();
        let index = NetIndex::build(&m);
        let opts = QueryEngineOptions {
            cex_bank_capacity: 3,
            ..sat_only()
        };
        let mut eng = QueryEngine::new(&m, &index, opts);
        for &t in &sigs {
            let (sub, assign) = extract_for(&m, &index, index.canon(t), &[]);
            let (d, _) = eng.decide(&sub, &assign);
            assert_eq!(d, Decision::Unknown);
        }
        let stats = eng.stats();
        assert!(
            stats.bank_evictions > 0,
            "capacity 3 over 4 distinct cones must evict: {stats:?}"
        );
    }

    /// Verdict memos persist across engine instances (rounds): a carried
    /// entry answers the repeat query, and invalidation drops entries
    /// covering dirty cells.
    #[test]
    fn memo_carries_across_rounds_and_invalidates_on_dirty_cells() {
        let mut m = Module::new("t");
        let a = m.add_input("a", 1);
        let b = m.add_input("b", 1);
        let x = m.xor(&a, &b);
        m.add_output("o", &x);
        let t = x.bit(0);
        // an unrelated gate whose id is NOT in the queried cone
        let p = m.add_input("p", 1);
        let q = m.add_input("q", 1);
        let unrelated_out = m.and(&p, &q);
        m.add_output("u", &unrelated_out);
        let unrelated_id = m
            .cells()
            .find(|(_, c)| c.kind == smartly_netlist::CellKind::And)
            .map(|(id, _)| id)
            .unwrap();
        let index = NetIndex::build(&m);
        let mut eng = QueryEngine::new(&m, &index, QueryEngineOptions::default());
        let (sub, assign) = extract_for(&m, &index, index.canon(t), &[]);
        let cone_cells = sub.cells.clone();
        let _ = eng.decide(&sub, &assign);
        let mut memo = eng.into_memo();
        assert_eq!(memo.len(), 1);

        // round 2: the same query is answered by a carried entry
        memo.next_round();
        let mut eng2 =
            QueryEngine::with_state(&m, &index, QueryEngineOptions::default(), memo, None, None);
        let (d, layer) = eng2.decide(&sub, &assign);
        assert_eq!(d, Decision::Unknown);
        assert_eq!(layer, Layer::Memo);
        assert_eq!(eng2.stats().memo_carryover, 1);
        let mut memo = eng2.into_memo();

        // an unrelated dirty cell keeps the entry; a cone cell drops it
        let unrelated: HashSet<CellId> = [unrelated_id].into();
        assert_eq!(memo.invalidate(&unrelated), 0);
        let dirty: HashSet<CellId> = cone_cells.iter().copied().collect();
        assert_eq!(memo.invalidate(&dirty), 1);
        assert!(memo.is_empty());
    }

    /// The engine and the legacy fresh-solver path agree verdict-for-
    /// verdict on seeded random cones, through both the sim and the SAT
    /// routes, with and without a shared engine accumulating state.
    #[test]
    fn engine_matches_legacy_decide_on_random_cones() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xC0DE);
        for round in 0..20 {
            let mut m = Module::new("t");
            let inputs: Vec<_> = (0..5).map(|i| m.add_input(&format!("i{i}"), 1)).collect();
            let mut pool: Vec<smartly_netlist::SigSpec> = inputs.clone();
            for _ in 0..10 {
                let x = pool[rng.gen_range(0..pool.len())].clone();
                let y = pool[rng.gen_range(0..pool.len())].clone();
                let z = match rng.gen_range(0..5) {
                    0 => m.and(&x, &y),
                    1 => m.or(&x, &y),
                    2 => m.xor(&x, &y),
                    3 => m.mux(
                        &x,
                        &y,
                        &pool[rng.gen_range(0..pool.len())].clone().slice(0, 1),
                    ),
                    _ => m.not(&x),
                };
                pool.push(z);
            }
            for (i, s) in pool.iter().enumerate().skip(5) {
                m.add_output(&format!("o{i}"), s);
            }
            let index = NetIndex::build(&m);
            for (sim_threshold, prefilter_rounds) in [(16, 2), (0, 2), (0, 0)] {
                let opts = QueryEngineOptions {
                    decide: DecideOptions {
                        sim_threshold,
                        ..Default::default()
                    },
                    prefilter_rounds,
                    ..Default::default()
                };
                // one engine across the whole query stream, like a sweep
                let mut eng = QueryEngine::new(&m, &index, opts);
                for (t, sig) in pool.iter().enumerate().skip(5) {
                    let target = index.canon(sig.bit(0));
                    let known = [(inputs[round % 5].bit(0), round % 2 == 0)];
                    let (sub, assign) = extract_for(&m, &index, target, &known);
                    let (d_eng, _) = eng.decide(&sub, &assign);
                    let (d_leg, _) = decide(&m, &index, &sub, &assign, &opts.decide);
                    assert_eq!(
                        d_eng, d_leg,
                        "round {round} target {t} sim_threshold {sim_threshold}"
                    );
                }
            }
        }
    }
}
