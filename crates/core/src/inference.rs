//! Cheap inference rules (paper Table I, extended to the full cell
//! library).
//!
//! The paper lists the `or`-cell rules; the same bidirectional reasoning
//! applies to every supported kind, so this module implements the natural
//! extension (the `and` dual, `not`/`xor`/`xnor` completion, mux branch
//! propagation, `eq` projection, reductions and the `logic_*` gates).
//! Propagation runs a worklist to a fixpoint over a sub-graph; a
//! contradiction means the current path condition is unsatisfiable, i.e.
//! the branch being analyzed is unreachable.

use crate::subgraph::SubGraph;
use smartly_netlist::{CellKind, Module, NetIndex, Port, SigBit, TriVal};
use std::collections::HashMap;

/// Outcome of a propagation run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InferOutcome {
    /// Fixpoint reached; `newly_assigned` bits were added.
    Fixpoint {
        /// Number of bits assigned by the run.
        newly_assigned: usize,
    },
    /// The assignment is self-contradictory (unreachable path).
    Contradiction,
}

/// The value of a bit under the current partial assignment.
fn value(index: &NetIndex, assign: &HashMap<SigBit, bool>, bit: SigBit) -> Option<bool> {
    let c = index.canon(bit);
    match c {
        SigBit::Const(TriVal::One) => Some(true),
        SigBit::Const(TriVal::Zero) => Some(false),
        SigBit::Const(TriVal::X) => None,
        _ => assign.get(&c).copied(),
    }
}

enum SetResult {
    Progress,
    NoChange,
    Clash,
}

fn set(index: &NetIndex, assign: &mut HashMap<SigBit, bool>, bit: SigBit, v: bool) -> SetResult {
    let c = index.canon(bit);
    match c {
        SigBit::Const(TriVal::One) => {
            if v {
                SetResult::NoChange
            } else {
                SetResult::Clash
            }
        }
        SigBit::Const(TriVal::Zero) => {
            if v {
                SetResult::Clash
            } else {
                SetResult::NoChange
            }
        }
        SigBit::Const(TriVal::X) => SetResult::NoChange,
        _ => match assign.get(&c) {
            Some(&old) if old == v => SetResult::NoChange,
            Some(_) => SetResult::Clash,
            None => {
                assign.insert(c, v);
                SetResult::Progress
            }
        },
    }
}

/// Runs the inference rules over `sub` until fixpoint, extending `assign`
/// in place with every newly deduced bit.
pub fn propagate(
    module: &Module,
    index: &NetIndex,
    sub: &SubGraph,
    assign: &mut HashMap<SigBit, bool>,
) -> InferOutcome {
    let mut total = 0usize;
    loop {
        let mut progress = 0usize;
        for &id in &sub.cells {
            let cell = match module.cell(id) {
                Some(c) => c,
                None => continue,
            };
            match infer_cell(module, index, cell, assign) {
                Ok(n) => progress += n,
                Err(()) => return InferOutcome::Contradiction,
            }
        }
        total += progress;
        if progress == 0 {
            return InferOutcome::Fixpoint {
                newly_assigned: total,
            };
        }
    }
}

/// Applies every applicable rule to one cell; returns assigned-bit count
/// or `Err(())` on contradiction.
#[allow(clippy::too_many_lines)]
fn infer_cell(
    _module: &Module,
    index: &NetIndex,
    cell: &smartly_netlist::Cell,
    assign: &mut HashMap<SigBit, bool>,
) -> Result<usize, ()> {
    use CellKind::*;
    let mut n = 0usize;
    macro_rules! put {
        ($bit:expr, $v:expr) => {
            match set(index, assign, $bit, $v) {
                SetResult::Progress => n += 1,
                SetResult::NoChange => {}
                SetResult::Clash => return Err(()),
            }
        };
    }
    let val = |bit: SigBit, assign: &HashMap<SigBit, bool>| value(index, assign, bit);
    let a = cell.port(Port::A).cloned().unwrap_or_default();
    let b = cell.port(Port::B).cloned().unwrap_or_default();
    let s = cell.port(Port::S).cloned().unwrap_or_default();
    let y = cell.output().clone();

    match cell.kind {
        Not => {
            for i in 0..y.width() {
                if let Some(v) = val(a[i], assign) {
                    put!(y[i], !v);
                }
                if let Some(v) = val(y[i], assign) {
                    put!(a[i], !v);
                }
            }
        }
        And | Or => {
            let is_and = cell.kind == And;
            // controlling / identity values, forward and backward
            for i in 0..y.width() {
                let (va, vb, vy) = (val(a[i], assign), val(b[i], assign), val(y[i], assign));
                // forward
                match (is_and, va, vb) {
                    (true, Some(false), _) | (true, _, Some(false)) => put!(y[i], false),
                    (true, Some(true), Some(true)) => put!(y[i], true),
                    (false, Some(true), _) | (false, _, Some(true)) => put!(y[i], true),
                    (false, Some(false), Some(false)) => put!(y[i], false),
                    _ => {}
                }
                // backward (Table I for `or`, dual for `and`)
                match (is_and, vy) {
                    (true, Some(true)) => {
                        put!(a[i], true);
                        put!(b[i], true);
                    }
                    (false, Some(false)) => {
                        put!(a[i], false);
                        put!(b[i], false);
                    }
                    (true, Some(false)) => {
                        if va == Some(true) {
                            put!(b[i], false);
                        }
                        if vb == Some(true) {
                            put!(a[i], false);
                        }
                    }
                    (false, Some(true)) => {
                        if va == Some(false) {
                            put!(b[i], true);
                        }
                        if vb == Some(false) {
                            put!(a[i], true);
                        }
                    }
                    _ => {}
                }
            }
        }
        Xor | Xnor => {
            let invert = cell.kind == Xnor;
            for i in 0..y.width() {
                let (va, vb, vy) = (val(a[i], assign), val(b[i], assign), val(y[i], assign));
                // any two known pin the third
                if let (Some(x), Some(z)) = (va, vb) {
                    put!(y[i], (x ^ z) != invert);
                }
                if let (Some(x), Some(w)) = (va, vy) {
                    put!(b[i], (x ^ w) != invert);
                }
                if let (Some(z), Some(w)) = (vb, vy) {
                    put!(a[i], (z ^ w) != invert);
                }
            }
        }
        Mux => {
            let vs = val(s[0], assign);
            for i in 0..y.width() {
                let (va, vb, vy) = (val(a[i], assign), val(b[i], assign), val(y[i], assign));
                match vs {
                    Some(true) => {
                        if let Some(v) = vb {
                            put!(y[i], v);
                        }
                        if let Some(v) = vy {
                            put!(b[i], v);
                        }
                    }
                    Some(false) => {
                        if let Some(v) = va {
                            put!(y[i], v);
                        }
                        if let Some(v) = vy {
                            put!(a[i], v);
                        }
                    }
                    None => {
                        // both branches agree ⇒ output known
                        if let (Some(x), Some(z)) = (va, vb) {
                            if x == z {
                                put!(y[i], x);
                            }
                        }
                        // output differs from one branch ⇒ select known
                        if let (Some(w), Some(x)) = (vy, va) {
                            if w != x {
                                put!(s[0], true);
                            }
                        }
                        if let (Some(w), Some(z)) = (vy, vb) {
                            if w != z {
                                put!(s[0], false);
                            }
                        }
                    }
                }
            }
        }
        Eq | Ne => {
            let neg = cell.kind == Ne;
            let vy = val(y[0], assign).map(|v| v != neg); // as "equal?"
            let pairs: Vec<(Option<bool>, Option<bool>)> = (0..a.width())
                .map(|i| (val(a[i], assign), val(b[i], assign)))
                .collect();
            // forward: all pairs known ⇒ y; any known mismatch ⇒ y = 0
            if pairs
                .iter()
                .any(|(x, z)| matches!((x, z), (Some(p), Some(q)) if p != q))
            {
                put!(y[0], neg);
            } else if pairs.iter().all(|(x, z)| x.is_some() && z.is_some()) {
                put!(y[0], !neg);
            }
            match vy {
                Some(true) => {
                    // equal: one known side projects onto the other
                    for i in 0..a.width() {
                        if let Some(v) = pairs[i].0 {
                            put!(b[i], v);
                        }
                        if let Some(v) = pairs[i].1 {
                            put!(a[i], v);
                        }
                    }
                }
                Some(false) => {
                    if a.width() == 1 {
                        if let Some(v) = pairs[0].0 {
                            put!(b[0], !v);
                        }
                        if let Some(v) = pairs[0].1 {
                            put!(a[0], !v);
                        }
                    } else {
                        // if all but one pair are known-equal, the last differs
                        let unknown: Vec<usize> = (0..a.width())
                            .filter(|&i| !matches!(pairs[i], (Some(p), Some(q)) if p == q))
                            .collect();
                        if unknown.len() == 1 {
                            let i = unknown[0];
                            if let Some(v) = pairs[i].0 {
                                put!(b[i], !v);
                            }
                            if let Some(v) = pairs[i].1 {
                                put!(a[i], !v);
                            }
                        }
                    }
                }
                None => {}
            }
        }
        ReduceOr | ReduceBool | ReduceAnd | LogicNot => {
            // y related to OR/AND over a's bits (LogicNot = NOR)
            let is_and = cell.kind == ReduceAnd;
            let out_invert = cell.kind == LogicNot;
            let vals: Vec<Option<bool>> = (0..a.width()).map(|i| val(a[i], assign)).collect();
            // vy: y as or/and value
            let vy = val(y[0], assign).map(|v| v != out_invert);
            // forward
            if is_and {
                if vals.contains(&Some(false)) {
                    put!(y[0], out_invert);
                } else if vals.iter().all(|v| *v == Some(true)) {
                    put!(y[0], !out_invert);
                }
            } else if vals.contains(&Some(true)) {
                put!(y[0], !out_invert);
            } else if vals.iter().all(|v| *v == Some(false)) {
                put!(y[0], out_invert);
            }
            // backward
            match (is_and, vy) {
                (true, Some(true)) => {
                    for i in 0..a.width() {
                        put!(a[i], true);
                    }
                }
                (false, Some(false)) => {
                    for i in 0..a.width() {
                        put!(a[i], false);
                    }
                }
                (true, Some(false)) | (false, Some(true)) => {
                    let want = !is_and;
                    let undecided: Vec<usize> =
                        (0..a.width()).filter(|&i| vals[i].is_none()).collect();
                    let rest_blocked =
                        (0..a.width()).all(|i| vals[i] == Some(!want) || vals[i].is_none());
                    if undecided.len() == 1 && rest_blocked {
                        put!(a[undecided[0]], want);
                    }
                }
                _ => {}
            }
        }
        ReduceXor => {
            let vals: Vec<Option<bool>> = (0..a.width()).map(|i| val(a[i], assign)).collect();
            let vy = val(y[0], assign);
            let known_parity = vals.iter().filter_map(|v| *v).fold(false, |acc, v| acc ^ v);
            let unknown: Vec<usize> = (0..a.width()).filter(|&i| vals[i].is_none()).collect();
            if unknown.is_empty() {
                put!(y[0], known_parity);
            } else if unknown.len() == 1 {
                if let Some(w) = vy {
                    put!(a[unknown[0]], w ^ known_parity);
                }
            }
        }
        LogicAnd | LogicOr => {
            let is_and = cell.kind == LogicAnd;
            let ra = reduce_or_value(&a, index, assign);
            let rb = reduce_or_value(&b, index, assign);
            let vy = val(y[0], assign);
            match (is_and, ra, rb) {
                (true, Some(false), _) | (true, _, Some(false)) => put!(y[0], false),
                (true, Some(true), Some(true)) => put!(y[0], true),
                (false, Some(true), _) | (false, _, Some(true)) => put!(y[0], true),
                (false, Some(false), Some(false)) => put!(y[0], false),
                _ => {}
            }
            // backward only for 1-bit operands (the common elaborated form)
            if a.width() == 1 && b.width() == 1 {
                match (is_and, vy) {
                    (true, Some(true)) => {
                        put!(a[0], true);
                        put!(b[0], true);
                    }
                    (false, Some(false)) => {
                        put!(a[0], false);
                        put!(b[0], false);
                    }
                    (true, Some(false)) => {
                        if ra == Some(true) {
                            put!(b[0], false);
                        }
                        if rb == Some(true) {
                            put!(a[0], false);
                        }
                    }
                    (false, Some(true)) => {
                        if ra == Some(false) {
                            put!(b[0], true);
                        }
                        if rb == Some(false) {
                            put!(a[0], true);
                        }
                    }
                    _ => {}
                }
            }
        }
        // comparisons/arithmetic: decided by simulation or SAT instead
        Lt | Le | Gt | Ge | Add | Sub | Pmux => {}
        Mul | Shl | Shr | Dff => {}
    }
    Ok(n)
}

fn reduce_or_value(
    spec: &smartly_netlist::SigSpec,
    index: &NetIndex,
    assign: &HashMap<SigBit, bool>,
) -> Option<bool> {
    let mut all_false = true;
    for b in spec.iter() {
        match value(index, assign, *b) {
            Some(true) => return Some(true),
            Some(false) => {}
            None => all_false = false,
        }
    }
    if all_false {
        Some(false)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subgraph;
    use smartly_netlist::Module;

    fn setup(
        m: &Module,
        target: SigBit,
        known: &[(SigBit, bool)],
    ) -> (NetIndex, SubGraph, HashMap<SigBit, bool>) {
        let index = NetIndex::build(m);
        let ranks: HashMap<_, _> = m
            .topo_order()
            .unwrap()
            .into_iter()
            .enumerate()
            .map(|(i, c)| (c, i))
            .collect();
        let mut assign = HashMap::new();
        for (b, v) in known {
            assign.insert(index.canon(*b), *v);
        }
        let (sub, _) = subgraph::extract(m, &index, &ranks, target, &assign, 16, true);
        (index, sub, assign)
    }

    /// Paper Table I row 1: a = true ⇒ a|b = true (Fig. 3's key step).
    #[test]
    fn or_rule_forward_true() {
        let mut m = Module::new("t");
        let s = m.add_input("s", 1);
        let r = m.add_input("r", 1);
        let sr = m.or(&s, &r);
        m.add_output("y", &sr);
        let (index, sub, mut assign) = setup(&m, sr.bit(0), &[(s.bit(0), true)]);
        let out = propagate(&m, &index, &sub, &mut assign);
        assert!(matches!(out, InferOutcome::Fixpoint { newly_assigned: 1 }));
        assert_eq!(assign.get(&index.canon(sr.bit(0))), Some(&true));
    }

    /// Table I row 4: a|b = false ⇒ a = b = false.
    #[test]
    fn or_rule_backward_false() {
        let mut m = Module::new("t");
        let s = m.add_input("s", 1);
        let r = m.add_input("r", 1);
        let sr = m.or(&s, &r);
        m.add_output("y", &sr);
        let (index, sub, mut assign) = setup(&m, s.bit(0), &[(sr.bit(0), false)]);
        propagate(&m, &index, &sub, &mut assign);
        assert_eq!(assign.get(&index.canon(s.bit(0))), Some(&false));
        assert_eq!(assign.get(&index.canon(r.bit(0))), Some(&false));
    }

    /// Table I rows 5–6: a|b = true with one side false pins the other.
    #[test]
    fn or_rule_one_side() {
        let mut m = Module::new("t");
        let s = m.add_input("s", 1);
        let r = m.add_input("r", 1);
        let sr = m.or(&s, &r);
        m.add_output("y", &sr);
        let (index, sub, mut assign) = setup(&m, r.bit(0), &[(sr.bit(0), true), (s.bit(0), false)]);
        propagate(&m, &index, &sub, &mut assign);
        assert_eq!(assign.get(&index.canon(r.bit(0))), Some(&true));
    }

    #[test]
    fn and_dual_rules() {
        let mut m = Module::new("t");
        let s = m.add_input("s", 1);
        let r = m.add_input("r", 1);
        let sr = m.and(&s, &r);
        m.add_output("y", &sr);
        // y=1 ⇒ both inputs 1
        let (index, sub, mut assign) = setup(&m, s.bit(0), &[(sr.bit(0), true)]);
        propagate(&m, &index, &sub, &mut assign);
        assert_eq!(assign.get(&index.canon(s.bit(0))), Some(&true));
        assert_eq!(assign.get(&index.canon(r.bit(0))), Some(&true));
    }

    #[test]
    fn xor_completion() {
        let mut m = Module::new("t");
        let s = m.add_input("s", 1);
        let r = m.add_input("r", 1);
        let x = m.xor(&s, &r);
        m.add_output("y", &x);
        let (index, sub, mut assign) = setup(&m, r.bit(0), &[(x.bit(0), true), (s.bit(0), true)]);
        propagate(&m, &index, &sub, &mut assign);
        assert_eq!(assign.get(&index.canon(r.bit(0))), Some(&false));
    }

    #[test]
    fn eq_projection() {
        let mut m = Module::new("t");
        let a = m.add_input("a", 2);
        let k = smartly_netlist::SigSpec::const_u64(0b10, 2);
        let e = m.eq(&a, &k);
        m.add_output("y", &e);
        // e known true ⇒ a = 2'b10
        let (index, sub, mut assign) = setup(&m, a.bit(0), &[(e.bit(0), true)]);
        propagate(&m, &index, &sub, &mut assign);
        assert_eq!(assign.get(&index.canon(a.bit(0))), Some(&false));
        assert_eq!(assign.get(&index.canon(a.bit(1))), Some(&true));
    }

    #[test]
    fn contradiction_detected() {
        let mut m = Module::new("t");
        let s = m.add_input("s", 1);
        let r = m.add_input("r", 1);
        let sr = m.or(&s, &r);
        m.add_output("y", &sr);
        // s=1 but s|r = 0: impossible
        let (index, sub, mut assign) = setup(&m, r.bit(0), &[(s.bit(0), true), (sr.bit(0), false)]);
        assert_eq!(
            propagate(&m, &index, &sub, &mut assign),
            InferOutcome::Contradiction
        );
    }

    #[test]
    fn logic_not_rules() {
        let mut m = Module::new("t");
        let a = m.add_input("a", 2);
        let ln = m.logic_not(&a);
        m.add_output("y", &ln);
        // ln = 1 ⇒ all bits of a are 0
        let (index, sub, mut assign) = setup(&m, a.bit(0), &[(ln.bit(0), true)]);
        propagate(&m, &index, &sub, &mut assign);
        assert_eq!(assign.get(&index.canon(a.bit(0))), Some(&false));
        assert_eq!(assign.get(&index.canon(a.bit(1))), Some(&false));
    }

    #[test]
    fn mux_branch_propagation() {
        let mut m = Module::new("t");
        let a = m.add_input("a", 1);
        let b = m.add_input("b", 1);
        let s = m.add_input("s", 1);
        let y = m.mux(&a, &b, &s);
        m.add_output("y", &y);
        // s=1 and b=0 ⇒ y=0
        let (index, sub, mut assign) = setup(&m, y.bit(0), &[(s.bit(0), true), (b.bit(0), false)]);
        propagate(&m, &index, &sub, &mut assign);
        assert_eq!(assign.get(&index.canon(y.bit(0))), Some(&false));
    }

    #[test]
    fn chained_inference_reaches_fixpoint() {
        // (s | r) & t with s=1, t=1 ⇒ output 1 through two cells
        let mut m = Module::new("t");
        let s = m.add_input("s", 1);
        let r = m.add_input("r", 1);
        let t = m.add_input("t", 1);
        let sr = m.or(&s, &r);
        let out = m.and(&sr, &t);
        m.add_output("y", &out);
        let (index, sub, mut assign) = setup(&m, out.bit(0), &[(s.bit(0), true), (t.bit(0), true)]);
        propagate(&m, &index, &sub, &mut assign);
        assert_eq!(assign.get(&index.canon(out.bit(0))), Some(&true));
    }
}
