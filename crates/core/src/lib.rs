//! smaRTLy core: SAT-based redundancy elimination and muxtree
//! restructuring.
//!
//! This crate implements the two optimizations of *"SmaRTLy: RTL
//! Optimization with Logic Inferencing and Structural Rebuilding"*
//! (DAC 2025) on top of the workspace substrates:
//!
//! * [`sat_redundancy`] (paper §II) — traverses multiplexer trees with a
//!   path condition, builds a bounded *sub-graph* around each undecided
//!   control bit ([`subgraph`]), prunes it with the Theorem II.1
//!   influence criterion, propagates the Table I [`inference`] rules, and
//!   decides the bit with exhaustive simulation or a CDCL SAT solver
//!   ([`decide`]). A decided select pins to a constant and the mux
//!   collapses — catching *logically dependent* controls the Yosys
//!   baseline cannot see (paper Fig. 3: `S ? ((S|R) ? A : B) : C`).
//!   Queries run through the stateful [`QueryEngine`] funnel — verdict
//!   memo, counterexample replay, random-simulation prefilter, and one
//!   incremental activation-literal solver per module — instead of a
//!   fresh solver per query ([`query_engine`] has the details).
//! * [`restructure()`](restructure()) (paper §III, Algorithm 1) — rebuilds `case`-shaped
//!   muxtrees (`OnlyEq` + `SingleCtrl`) through an algebraic decision
//!   diagram with greedy per-node bit selection, re-emitting one mux per
//!   ADD node and freeing the `eq` comparators.
//!
//! [`Pipeline`] sequences the passes into the four configurations the
//! paper evaluates (Yosys baseline / SAT / Rebuild / Full) and can verify
//! every rewrite with the AIG equivalence checker.
//!
//! # Example — paper Fig. 3
//!
//! ```
//! use smartly_netlist::Module;
//! use smartly_core::{Pipeline, OptLevel};
//!
//! let mut m = Module::new("fig3");
//! let a = m.add_input("a", 4);
//! let b = m.add_input("b", 4);
//! let c = m.add_input("c", 4);
//! let s = m.add_input("s", 1);
//! let r = m.add_input("r", 1);
//! let sr = m.or(&s, &r);
//! let inner = m.mux(&b, &a, &sr);   // (s|r) ? a : b
//! let outer = m.mux(&c, &inner, &s); // s ? inner : c
//! m.add_output("y", &outer);
//!
//! let report = Pipeline::default().run(&mut m, OptLevel::Full)?;
//! assert_eq!(m.stats().count("mux"), 1); // inner mux eliminated
//! assert!(report.sat_rewrites > 0);
//! # Ok::<(), smartly_netlist::NetlistError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod decide;
pub mod inference;
mod pipeline;
pub mod query_engine;
pub mod restructure;
pub mod sat_pass;
pub mod subgraph;

pub use pipeline::{OptLevel, Pipeline, PipelineReport};
pub use query_engine::{
    FunnelProfile, Layer, QueryEngine, QueryEngineOptions, QueryEngineStats, SharedCexBank,
    SharedVectors, SharedVerdictStore, VerdictMemo,
};
pub use restructure::{restructure, RestructureOptions};
pub use sat_pass::{sat_redundancy, sat_redundancy_with, SatRedundancyOptions, SweepContext};
pub use smartly_sat::Deadline;
