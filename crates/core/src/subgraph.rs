//! Sub-graph extraction around a control bit (paper §II).
//!
//! When the traversal meets an undecided control bit, smaRTLy gathers the
//! gates within distance `k` of it, together with the cones of the known
//! path-condition bits. Theorem II.1 then prunes the collection: a known
//! signal can only influence the target if one is an ancestor of the
//! other or they share a common ancestor — equivalently, if their leaf
//! *supports* intersect (transitively). The paper reports this dismisses
//! about 80% of gathered gates; [`SubgraphStats`] measures exactly that.

use smartly_netlist::{CellId, CellKind, Module, NetIndex, Port, SigBit, TriVal};
use std::collections::{HashMap, HashSet, VecDeque};

/// Cell kinds the inference/decision engines understand. Anything else
/// (sequential elements, multipliers, shifters) becomes a free leaf — a
/// sound over-approximation.
pub fn is_supported(kind: CellKind) -> bool {
    use CellKind::*;
    !matches!(kind, Dff | Mul | Shl | Shr)
}

/// A bounded cone of logic feeding a target bit.
#[derive(Clone, Debug)]
pub struct SubGraph {
    /// Cells in topological order (drivers before readers).
    pub cells: Vec<CellId>,
    /// Free leaf bits: canonical bits consumed by the sub-graph with no
    /// in-graph driver.
    pub leaves: Vec<SigBit>,
    /// The canonical target bit.
    pub target: SigBit,
}

/// Pruning effectiveness counters (for the paper's ~80% claim).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct SubgraphStats {
    /// Gates gathered before Theorem II.1 pruning.
    pub gates_before_prune: usize,
    /// Gates kept afterwards.
    pub gates_after_prune: usize,
}

/// One backward cone: cells within `k` hops plus its leaf support.
#[derive(Clone)]
pub(crate) struct Cone {
    cells: HashSet<CellId>,
    leaves: HashSet<SigBit>,
}

/// Memoizes per-bit cones across the many queries of one pass sweep
/// (cones depend only on the netlist, which is immutable during a sweep).
#[derive(Default)]
pub struct ConeCache {
    map: HashMap<(SigBit, usize), std::rc::Rc<Cone>>,
    balls: HashMap<(SigBit, usize), std::rc::Rc<HashSet<CellId>>>,
}

impl ConeCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        ConeCache::default()
    }

    fn get(
        &mut self,
        module: &Module,
        index: &NetIndex,
        start: SigBit,
        k: usize,
    ) -> std::rc::Rc<Cone> {
        let key = (index.canon(start), k);
        if let Some(c) = self.map.get(&key) {
            return c.clone();
        }
        let c = std::rc::Rc::new(cone(module, index, key.0, k));
        self.map.insert(key, c.clone());
        c
    }

    fn get_ball(
        &mut self,
        module: &Module,
        index: &NetIndex,
        start: SigBit,
        k: usize,
    ) -> std::rc::Rc<HashSet<CellId>> {
        let key = (index.canon(start), k);
        if let Some(b) = self.balls.get(&key) {
            return b.clone();
        }
        let b = std::rc::Rc::new(undirected_ball(module, index, key.0, k));
        self.balls.insert(key, b.clone());
        b
    }
}

/// All cells within `k` *undirected* hops of `start` — the paper's raw
/// gather ("all logical gates within a specified distance k from the
/// control port"), before Theorem II.1 pruning. Sequential cells stop the
/// walk so the gathered region stays a DAG.
fn undirected_ball(module: &Module, index: &NetIndex, start: SigBit, k: usize) -> HashSet<CellId> {
    let mut cells: HashSet<CellId> = HashSet::new();
    let mut queue: VecDeque<(CellId, usize)> = VecDeque::new();
    let enqueue_bit = |bit: SigBit, depth: usize, queue: &mut VecDeque<(CellId, usize)>| {
        let c = index.canon(bit);
        if let Some(d) = index.driver(c) {
            queue.push_back((d.cell, depth));
        }
        for sink in index.fanout(c) {
            if let smartly_netlist::Consumer::Cell(id) = sink.consumer {
                queue.push_back((id, depth));
            }
        }
    };
    enqueue_bit(start, 0, &mut queue);
    while let Some((id, depth)) = queue.pop_front() {
        let Some(cell) = module.cell(id) else {
            continue;
        };
        if !is_supported(cell.kind) {
            continue;
        }
        if !cells.insert(id) || depth >= k {
            continue;
        }
        for (_, spec) in cell.inputs() {
            for b in spec.iter() {
                enqueue_bit(*b, depth + 1, &mut queue);
            }
        }
        for b in cell.output().iter() {
            enqueue_bit(*b, depth + 1, &mut queue);
        }
    }
    cells
}

fn cone(module: &Module, index: &NetIndex, start: SigBit, k: usize) -> Cone {
    let mut cells: HashSet<CellId> = HashSet::new();
    let mut leaves: HashSet<SigBit> = HashSet::new();
    let mut queue: VecDeque<(SigBit, usize)> = VecDeque::new();
    queue.push_back((index.canon(start), 0));
    let mut seen_bits: HashSet<SigBit> = HashSet::new();
    while let Some((bit, depth)) = queue.pop_front() {
        if !seen_bits.insert(bit) {
            continue;
        }
        if bit.is_const() {
            continue;
        }
        let driver = index.driver(bit);
        let stop = match driver {
            None => true,
            Some(d) => {
                let cell = module.cell(d.cell).expect("live driver");
                !is_supported(cell.kind) || depth >= k
            }
        };
        if stop {
            leaves.insert(bit);
            continue;
        }
        let d = driver.expect("checked above");
        if cells.insert(d.cell) {
            let cell = module.cell(d.cell).expect("live driver");
            for (_, spec) in cell.inputs() {
                for b in spec.iter() {
                    queue.push_back((index.canon(*b), depth + 1));
                }
            }
        }
    }
    Cone { cells, leaves }
}

/// Extracts the decision sub-graph for `target` under the path condition
/// `known`, with distance bound `k`.
///
/// With `prune` set, only known bits whose cones share support with the
/// target's cone (transitively — the Theorem II.1 groups) contribute;
/// without it, every known bit's cone is merged (the ablation baseline).
pub fn extract(
    module: &Module,
    index: &NetIndex,
    topo_rank: &HashMap<CellId, usize>,
    target: SigBit,
    known: &HashMap<SigBit, bool>,
    k: usize,
    prune: bool,
) -> (SubGraph, SubgraphStats) {
    let mut cache = ConeCache::new();
    extract_cached(
        module, index, topo_rank, target, known, k, prune, false, &mut cache,
    )
}

/// [`extract`] with a [`ConeCache`] shared across queries of one sweep.
///
/// With `measure_gather` set, `gates_before_prune` counts the paper's raw
/// distance-`k` gather (the undirected ball around the control port) —
/// accurate for the ~80%-dismissed ablation but not free; without it the
/// statistic falls back to the cheap cone-union count.
#[allow(clippy::too_many_arguments)]
pub fn extract_cached(
    module: &Module,
    index: &NetIndex,
    topo_rank: &HashMap<CellId, usize>,
    target: SigBit,
    known: &HashMap<SigBit, bool>,
    k: usize,
    prune: bool,
    measure_gather: bool,
    cache: &mut ConeCache,
) -> (SubGraph, SubgraphStats) {
    let target = index.canon(target);
    let target_cone = cache.get(module, index, target, k);

    // cones of all known bits (gathered set, pre-pruning)
    let known_bits: Vec<SigBit> = known.keys().copied().collect();
    let known_cones: Vec<(SigBit, std::rc::Rc<Cone>)> = known_bits
        .iter()
        .map(|&b| (b, cache.get(module, index, b, k)))
        .collect();

    // the paper's raw gather is the undirected distance-k ball around the
    // control port plus the known-bit cones; Theorem II.1 (below) prunes
    // it to signals that can actually influence the target
    let gates_before_prune = {
        let mut all_cells: HashSet<CellId> = target_cone.cells.clone();
        if measure_gather {
            let ball = cache.get_ball(module, index, target, k);
            all_cells.extend(ball.iter().copied());
        }
        for (_, c) in &known_cones {
            all_cells.extend(c.cells.iter().copied());
        }
        all_cells.len()
    };

    // Theorem II.1 grouping: iteratively admit known bits whose support
    // intersects the accumulated support
    let mut support: HashSet<SigBit> = target_cone.leaves.clone();
    // a known bit that *is* in the cone (internal or leaf) is relevant too
    let mut in_graph_cells: HashSet<CellId> = target_cone.cells.clone();
    let mut leaves: HashSet<SigBit> = target_cone.leaves.clone();

    if prune {
        let mut admitted = vec![false; known_cones.len()];
        loop {
            let mut changed = false;
            for (i, (bit, c)) in known_cones.iter().enumerate() {
                if admitted[i] {
                    continue;
                }
                let touches = support.contains(bit)
                    || c.leaves.iter().any(|l| support.contains(l))
                    || c.cells.iter().any(|cl| in_graph_cells.contains(cl));
                if touches {
                    admitted[i] = true;
                    changed = true;
                    support.extend(c.leaves.iter().copied());
                    support.insert(*bit);
                    in_graph_cells.extend(c.cells.iter().copied());
                    leaves.extend(c.leaves.iter().copied());
                }
            }
            if !changed {
                break;
            }
        }
    } else {
        for (bit, c) in &known_cones {
            support.insert(*bit);
            in_graph_cells.extend(c.cells.iter().copied());
            leaves.extend(c.leaves.iter().copied());
        }
    }

    // drop "leaves" that are actually driven inside the merged graph
    let driven_inside: HashSet<SigBit> = in_graph_cells
        .iter()
        .flat_map(|&id| {
            module
                .cell(id)
                .expect("live cell")
                .output()
                .iter()
                .map(|b| index.canon(*b))
                .collect::<Vec<_>>()
        })
        .collect();
    let leaves: Vec<SigBit> = leaves
        .into_iter()
        .filter(|b| !driven_inside.contains(b))
        .collect();

    let mut cells: Vec<CellId> = in_graph_cells.into_iter().collect();
    cells.sort_by_key(|c| topo_rank.get(c).copied().unwrap_or(usize::MAX));

    let stats = SubgraphStats {
        gates_before_prune,
        gates_after_prune: cells.len(),
    };
    (
        SubGraph {
            cells,
            leaves,
            target,
        },
        stats,
    )
}

/// A canonical, renaming-invariant key for one decision query: the
/// cone's structure with every net bit replaced by a dense first-use
/// index, followed by the target and the path condition restricted to
/// in-cone bits.
///
/// Two isomorphic queries — the same mux-tree shape replicated across a
/// bus, a structure duplicated by generate loops — produce *equal* keys,
/// so a verdict computed for one can be reused for the other (the
/// [`crate::QueryEngine`] memo layer). The key encodes the complete
/// structure, so equal keys can never conflate genuinely different
/// queries; a near-miss in cell ordering merely costs a memo miss.
pub fn query_key(
    module: &Module,
    index: &NetIndex,
    sub: &SubGraph,
    assign: &HashMap<SigBit, bool>,
) -> Vec<u64> {
    query_key_and_shape(module, index, sub, assign).0
}

/// A stable 64-bit fingerprint of the [`query_key`] *encoding scheme*:
/// FNV-1a over every [`CellKind`]'s discriminant and name plus the
/// scheme's sentinel constants.
///
/// Persisted knowledge (the driver's `smartly.kb` store) records this
/// fingerprint in its header. Keys are only comparable between runs
/// that encode cells identically — reordering the `CellKind` enum,
/// adding a variant, or renaming one changes the fingerprint, so a
/// loader that checks it falls back to a cold start instead of
/// replaying verdicts against silently re-numbered keys.
pub fn encoding_fingerprint() -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut fnv = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for kind in CellKind::ALL {
        fnv(&(kind as u64).to_le_bytes());
        fnv(kind.name().as_bytes());
    }
    // the non-kind encoding constants: const bit codes, the wire-id
    // offset, and the port/output/target sentinels
    for sentinel in [0u64, 1, 2, 3, u64::MAX - 64, u64::MAX - 128, u64::MAX - 129] {
        fnv(&sentinel.to_le_bytes());
    }
    h
}

/// The *shape* of a decision cone: the structure-only prefix of its
/// [`query_key`] — cells, connectivity and target with every wire bit
/// replaced by its first-use intern index, but **no path condition** —
/// folded to a 64-bit signature, plus the intern table mapping each
/// index back to this cone's canonical bit.
///
/// Isomorphic cones in *different modules* (bus-replicated peripherals,
/// parameter variants of one block) produce equal signatures with
/// corresponding bits at equal indices, so counterexample vectors
/// recorded against one cone can be replayed through the other: the
/// design-level shared bank keys on `sig` and stores per-index planes.
/// The signature is a hash — a collision can hand a cone someone else's
/// vectors, which costs a wasted replay but never a wrong verdict,
/// because replay re-verifies every lane against the querying cone's own
/// path condition.
#[derive(Clone, Debug)]
pub struct ConeShape {
    /// FNV-1a over the structural key prefix (and the intern count).
    pub sig: u64,
    /// `bits[i]` = the canonical bit interned at index `i`, in first-use
    /// order over the cone's cells.
    pub bits: Vec<SigBit>,
}

/// [`query_key`] and the cone's [`ConeShape`] in one pass (the key's
/// structural prefix is exactly what the shape hashes).
pub fn query_key_and_shape(
    module: &Module,
    index: &NetIndex,
    sub: &SubGraph,
    assign: &HashMap<SigBit, bool>,
) -> (Vec<u64>, ConeShape) {
    // constants encode as 0/1/2; wires as 3 + first-use index
    let mut ids: HashMap<SigBit, u64> = HashMap::new();
    let mut order: Vec<SigBit> = Vec::new();
    let mut intern = |bit: SigBit| -> u64 {
        match index.canon(bit) {
            SigBit::Const(TriVal::Zero) => 0,
            SigBit::Const(TriVal::One) => 1,
            SigBit::Const(TriVal::X) => 2,
            c => {
                let next = ids.len() as u64;
                3 + *ids.entry(c).or_insert_with(|| {
                    order.push(c);
                    next
                })
            }
        }
    };
    let mut key: Vec<u64> = Vec::with_capacity(sub.cells.len() * 8 + assign.len() * 2 + 2);
    for &id in &sub.cells {
        let cell = module.cell(id).expect("live cell");
        key.push(u64::MAX - cell.kind as u64);
        for port in [Port::A, Port::B, Port::S] {
            if let Some(spec) = cell.port(port) {
                key.push(u64::MAX - 64 - port as u64);
                for b in spec.iter() {
                    key.push(intern(*b));
                }
            }
        }
        key.push(u64::MAX - 128);
        for b in cell.output().iter() {
            key.push(intern(*b));
        }
    }
    key.push(u64::MAX - 129);
    key.push(intern(sub.target));

    // the shape signature covers exactly the structural prefix built so
    // far (FNV-1a, stable across processes) plus the intern width
    let mut sig = 0xcbf2_9ce4_8422_2325u64;
    let mut fnv = |x: u64| {
        for byte in x.to_le_bytes() {
            sig ^= u64::from(byte);
            sig = sig.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for &word in &key {
        fnv(word);
    }
    fnv(order.len() as u64);
    let shape = ConeShape { sig, bits: order };

    // the path condition, restricted to bits the cone references (bits
    // outside it cannot influence the verdict), in canonical id order
    let mut pairs: Vec<(u64, bool)> = assign
        .iter()
        .filter_map(|(b, &v)| ids.get(&index.canon(*b)).map(|&i| (3 + i, v)))
        .collect();
    pairs.sort_unstable();
    for (i, v) in pairs {
        key.push(i);
        key.push(u64::from(v));
    }
    (key, shape)
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartly_netlist::Module;

    fn ranks(m: &Module) -> HashMap<CellId, usize> {
        m.topo_order()
            .unwrap()
            .into_iter()
            .enumerate()
            .map(|(i, c)| (c, i))
            .collect()
    }

    #[test]
    fn cone_respects_distance() {
        let mut m = Module::new("t");
        let a = m.add_input("a", 1);
        let n1 = m.not(&a);
        let n2 = m.not(&n1);
        let n3 = m.not(&n2);
        m.add_output("y", &n3);
        let index = NetIndex::build(&m);
        let r = ranks(&m);
        let (sub, _) = extract(
            &m,
            &index,
            &r,
            index.canon(n3.bit(0)),
            &HashMap::new(),
            2,
            true,
        );
        assert_eq!(sub.cells.len(), 2, "depth 2 keeps two inverters");
        // leaf is n1's output (cut) — not the primary input
        assert_eq!(sub.leaves.len(), 1);
        assert_eq!(sub.leaves[0], index.canon(n1.bit(0)));
    }

    #[test]
    fn unsupported_cells_become_leaves() {
        let mut m = Module::new("t");
        let a = m.add_input("a", 4);
        let b = m.add_input("b", 4);
        let prod = m.mul(&a, &b);
        let red = m.reduce_or(&prod);
        m.add_output("y", &red);
        let index = NetIndex::build(&m);
        let r = ranks(&m);
        let (sub, _) = extract(
            &m,
            &index,
            &r,
            index.canon(red.bit(0)),
            &HashMap::new(),
            8,
            true,
        );
        assert_eq!(sub.cells.len(), 1, "multiplier must be cut");
        assert_eq!(sub.leaves.len(), 4, "its outputs become leaves");
    }

    #[test]
    fn pruning_dismisses_unrelated_known_cones() {
        let mut m = Module::new("t");
        // target cone: t = x | y
        let x = m.add_input("x", 1);
        let y = m.add_input("y", 1);
        let t = m.or(&x, &y);
        // related known: k1 = x & z (shares x)
        let z = m.add_input("z", 1);
        let k1 = m.and(&x, &z);
        // unrelated known: k2 = p ^ q (disjoint support)
        let p = m.add_input("p", 1);
        let q = m.add_input("q", 1);
        let k2 = m.xor(&p, &q);
        m.add_output("o1", &t);
        m.add_output("o2", &k1);
        m.add_output("o3", &k2);

        let index = NetIndex::build(&m);
        let r = ranks(&m);
        let mut known = HashMap::new();
        known.insert(index.canon(k1.bit(0)), true);
        known.insert(index.canon(k2.bit(0)), false);

        let (sub, stats) = extract(&m, &index, &r, index.canon(t.bit(0)), &known, 8, true);
        assert_eq!(stats.gates_before_prune, 3);
        assert_eq!(stats.gates_after_prune, 2, "xor cone dismissed");
        assert_eq!(sub.cells.len(), 2);

        // without pruning everything stays
        let (sub2, stats2) = extract(&m, &index, &r, index.canon(t.bit(0)), &known, 8, false);
        assert_eq!(stats2.gates_after_prune, 3);
        assert_eq!(sub2.cells.len(), 3);
    }

    #[test]
    fn transitive_relevance_is_kept() {
        let mut m = Module::new("t");
        let x = m.add_input("x", 1);
        let y = m.add_input("y", 1);
        let z = m.add_input("z", 1);
        let t = m.or(&x, &y); // target over {x,y}
        let k1 = m.and(&y, &z); // shares y with target
        let w = m.add_input("w", 1);
        let k2 = m.xor(&z, &w); // shares z with k1 only
        m.add_output("o1", &t);
        m.add_output("o2", &k1);
        m.add_output("o3", &k2);
        let index = NetIndex::build(&m);
        let r = ranks(&m);
        let mut known = HashMap::new();
        known.insert(index.canon(k1.bit(0)), true);
        known.insert(index.canon(k2.bit(0)), true);
        let (sub, _) = extract(&m, &index, &r, index.canon(t.bit(0)), &known, 8, true);
        assert_eq!(sub.cells.len(), 3, "k2 admitted via k1's support");
    }

    #[test]
    fn query_keys_canonicalize_isomorphic_cones() {
        let mut m = Module::new("t");
        // two copies of (a & b) | c on disjoint nets, plus one xor cone
        let mk = |m: &mut Module, tag: &str| {
            let a = m.add_input(&format!("a{tag}"), 1);
            let b = m.add_input(&format!("b{tag}"), 1);
            let c = m.add_input(&format!("c{tag}"), 1);
            let ab = m.and(&a, &b);
            let y = m.or(&ab, &c);
            m.add_output(&format!("y{tag}"), &y);
            (a, y)
        };
        let (a0, y0) = mk(&mut m, "0");
        let (a1, y1) = mk(&mut m, "1");
        let x = m.add_input("x", 1);
        let z = m.add_input("z", 1);
        let w = m.xor(&x, &z);
        m.add_output("w", &w);

        let index = NetIndex::build(&m);
        let r = ranks(&m);
        let key_of = |target: SigBit, known: &[(SigBit, bool)]| {
            let mut assign = HashMap::new();
            for (b, v) in known {
                assign.insert(index.canon(*b), *v);
            }
            let (sub, _) = extract(&m, &index, &r, index.canon(target), &assign, 8, true);
            query_key(&m, &index, &sub, &assign)
        };
        let k0 = key_of(y0.bit(0), &[(a0.bit(0), true)]);
        let k1 = key_of(y1.bit(0), &[(a1.bit(0), true)]);
        assert_eq!(k0, k1, "replicated structure must share a key");
        // different path-condition value ⇒ different key
        let k1f = key_of(y1.bit(0), &[(a1.bit(0), false)]);
        assert_ne!(k0, k1f);
        // different structure ⇒ different key
        let kw = key_of(w.bit(0), &[]);
        assert_ne!(k0, kw);
    }

    #[test]
    fn cone_shapes_match_across_modules_and_ignore_path_values() {
        // the same (a & b) | c cone built in two separate modules
        let mk = |name: &str| {
            let mut m = Module::new(name);
            let a = m.add_input("a", 1);
            let b = m.add_input("b", 1);
            let c = m.add_input("c", 1);
            let ab = m.and(&a, &b);
            let y = m.or(&ab, &c);
            m.add_output("y", &y);
            (m, a, y)
        };
        let (m0, a0, y0) = mk("alpha");
        let (m1, a1, y1) = mk("beta");
        let shape_of = |m: &Module, target: SigBit, known: &[(SigBit, bool)]| {
            let index = NetIndex::build(m);
            let r = ranks(m);
            let mut assign = HashMap::new();
            for (b, v) in known {
                assign.insert(index.canon(*b), *v);
            }
            let (sub, _) = extract(m, &index, &r, index.canon(target), &assign, 8, true);
            query_key_and_shape(m, &index, &sub, &assign).1
        };
        let s0 = shape_of(&m0, y0.bit(0), &[(a0.bit(0), true)]);
        let s1 = shape_of(&m1, y1.bit(0), &[(a1.bit(0), true)]);
        assert_eq!(s0.sig, s1.sig, "isomorphic cones share a signature");
        assert_eq!(s0.bits.len(), s1.bits.len());
        // the path-condition *value* never enters the shape
        let s1f = shape_of(&m1, y1.bit(0), &[(a1.bit(0), false)]);
        assert_eq!(s0.sig, s1f.sig);
        // intern order puts corresponding bits at corresponding indices
        let i0 = s0.bits.iter().position(|&b| b == a0.bit(0)).unwrap();
        let i1 = s1.bits.iter().position(|&b| b == a1.bit(0)).unwrap();
        assert_eq!(i0, i1);

        // a structurally different cone hashes differently
        let mut m2 = Module::new("gamma");
        let x = m2.add_input("x", 1);
        let z = m2.add_input("z", 1);
        let w = m2.xor(&x, &z);
        m2.add_output("w", &w);
        let s2 = shape_of(&m2, w.bit(0), &[]);
        assert_ne!(s0.sig, s2.sig);
    }

    #[test]
    fn dff_is_a_cut_point() {
        let mut m = Module::new("t");
        let clk = m.add_input("clk", 1);
        let d = m.add_input("d", 1);
        let q = m.dff(&clk, &d);
        let y = m.not(&q);
        m.add_output("y", &y);
        let index = NetIndex::build(&m);
        let r = ranks(&m);
        let (sub, _) = extract(
            &m,
            &index,
            &r,
            index.canon(y.bit(0)),
            &HashMap::new(),
            8,
            true,
        );
        assert_eq!(sub.cells.len(), 1, "graph stops at the dff");
        assert_eq!(sub.leaves.len(), 1);
    }
}
