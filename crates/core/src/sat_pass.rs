//! SAT-based redundancy elimination (paper §II).
//!
//! Traverses multiplexer trees exactly like the Yosys baseline, but when a
//! select is *not* textually decided by an ancestor it asks the full
//! machinery — sub-graph extraction, Theorem II.1 pruning, Table I
//! inference, then exhaustive simulation or SAT — whether the path
//! condition forces its value. Decided selects are pinned to constants;
//! [`smartly_opt::clean_pipeline`] then collapses the dead branches.

use crate::decide::{decide, DecideOptions, Decision, Engine};
use crate::inference::{propagate, InferOutcome};
use crate::query_engine::{
    FunnelProfile, Layer, QueryEngine, QueryEngineOptions, SharedCexBank, SharedVerdictStore,
    VerdictMemo,
};
use crate::subgraph::{extract_cached, ConeCache, SubgraphStats};
use smartly_netlist::{CellId, CellKind, Module, NetIndex, Port, SigBit, SigSpec, TriVal};
use smartly_sat::Deadline;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Configuration for [`sat_redundancy`].
#[derive(Copy, Clone, Debug)]
pub struct SatRedundancyOptions {
    /// Sub-graph distance bound `k` (paper §II).
    pub k: usize,
    /// Free-leaf count at or below which exhaustive simulation decides.
    pub sim_threshold: usize,
    /// Free-leaf count at or below which SAT decides; larger cones skip.
    pub sat_threshold: usize,
    /// SAT conflict budget per query.
    pub conflict_budget: u64,
    /// Apply Theorem II.1 sub-graph pruning (ablation switch).
    pub prune: bool,
    /// Apply Table I inference rules before sim/SAT (ablation switch).
    pub inference: bool,
    /// Hard cap on decide queries per sweep (safety valve).
    pub max_queries: usize,
    /// Skip queries whose extracted sub-graph exceeds this many cells —
    /// the paper's guard against the pass "becoming a bottleneck in the
    /// overall circuit synthesis workflow".
    pub max_subgraph_cells: usize,
    /// Measure the raw distance-`k` gather for the pruning statistics
    /// (paper's ~80% claim); costs extra graph walks, off by default.
    pub measure_gather: bool,
    /// Route queries through the stateful [`QueryEngine`] funnel
    /// (counterexample cache, random prefilter, shared incremental
    /// solver, verdict memo) instead of a fresh solver per query.
    /// Verdicts are identical for every query the conflict budget does
    /// not cut short; a budget-limited `Unknown` can land on either
    /// side of the limit depending on the solver's accumulated state,
    /// and only ever degrades to a missed rewrite, never a wrong one.
    /// `false` is the ablation baseline.
    pub incremental: bool,
    /// Base random-simulation prefilter passes per query (engine mode
    /// only); the engine scales this with the cone's free-leaf count up
    /// to `prefilter_max_rounds`.
    pub prefilter_rounds: usize,
    /// Ceiling for the adaptive prefilter's round count.
    pub prefilter_max_rounds: usize,
    /// Bound on distinct bits tracked by the engine's counterexample
    /// bank (oldest evicted first).
    pub cex_bank_capacity: usize,
    /// Use the solver's fixed Luby restart schedule instead of the
    /// EMA-adaptive controller (ablation baseline).
    pub luby_restarts: bool,
    /// Run solver inprocessing (vivification + subsumption at restart
    /// boundaries). Timing-only: verdicts are identical either way.
    pub inprocessing: bool,
}

impl Default for SatRedundancyOptions {
    fn default() -> Self {
        let engine = QueryEngineOptions::default();
        SatRedundancyOptions {
            k: 6,
            sim_threshold: 10,
            sat_threshold: 64,
            conflict_budget: 2_000,
            prune: true,
            inference: true,
            max_queries: 100_000,
            max_subgraph_cells: 3_000,
            measure_gather: false,
            incremental: true,
            prefilter_rounds: engine.prefilter_rounds,
            prefilter_max_rounds: engine.prefilter_max_rounds,
            cex_bank_capacity: engine.cex_bank_capacity,
            luby_restarts: false,
            inprocessing: true,
        }
    }
}

/// State a [`sat_redundancy_with`] sweep inherits from earlier sweeps of
/// the *same module*: the verdict memo (cross-round carryover) plus the
/// optional design-level shared counterexample bank, and the cell
/// fingerprints backing the dirty-set invalidation protocol.
///
/// [`crate::Pipeline`] keeps one context per module across its rounds;
/// [`SweepContext::begin_round`] must be called before each sweep so
/// entries covering mutated cones are dropped and carryover accounting
/// starts a new round.
#[derive(Clone, Debug, Default)]
pub struct SweepContext {
    /// The persistent cone-verdict memo.
    pub memo: VerdictMemo,
    /// The design-level shared bank, if the caller participates in one.
    pub shared: Option<Arc<dyn SharedCexBank>>,
    /// The design-level verdict store, if the caller participates in one
    /// (serves disk-loaded entries, accumulates this run's conclusive
    /// verdicts for saving).
    pub verdicts: Option<Arc<dyn SharedVerdictStore>>,
    /// Span recorder handed to each sweep's query engine (disabled by
    /// default). `Rc`-based, so a context carrying a live recorder is
    /// deliberately not `Send` — one worker owns one module's sweeps.
    pub trace: smartly_telemetry::TraceHandle,
    /// Cooperative cancellation token handed to each sweep's query
    /// engine (and through it the CDCL solver). [`Deadline::none`] — the
    /// default — costs nothing.
    pub deadline: Deadline,
    /// Cell fingerprints at the end of the previous round, if any.
    fingerprints: Option<HashMap<CellId, u64>>,
}

impl SweepContext {
    /// A context with no carried state, sharing the given design-level
    /// counterexample bank and verdict store (either may be `None`).
    pub fn new(
        shared: Option<Arc<dyn SharedCexBank>>,
        verdicts: Option<Arc<dyn SharedVerdictStore>>,
    ) -> Self {
        SweepContext {
            memo: VerdictMemo::new(),
            shared,
            verdicts,
            trace: smartly_telemetry::TraceHandle::disabled(),
            deadline: Deadline::none(),
            fingerprints: None,
        }
    }

    /// Prepares the context for the next sweep of `module`: diffs the
    /// module's cell fingerprints against the previous round's snapshot,
    /// drops every memo entry whose cone covers a dirty cell, snapshots
    /// the current fingerprints, and advances the round counter. Returns
    /// the number of entries invalidated.
    pub fn begin_round(&mut self, module: &Module) -> usize {
        let current = NetIndex::fingerprints(module);
        let invalidated = match &self.fingerprints {
            Some(prev) => {
                let dirty = NetIndex::dirty_between(prev, &current);
                self.memo.invalidate(&dirty)
            }
            None => 0,
        };
        self.fingerprints = Some(current);
        self.memo.next_round();
        invalidated
    }
}

/// Telemetry from one [`sat_redundancy`] sweep.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct SatPassStats {
    /// Select/data bits pinned to constants.
    pub rewrites: usize,
    /// Decide queries issued.
    pub queries: usize,
    /// Queries answered by the Table I inference rules alone.
    pub by_inference: usize,
    /// Queries answered by exhaustive simulation.
    pub by_sim: usize,
    /// Queries answered by SAT.
    pub by_sat: usize,
    /// Queries answered by the engine's cone-verdict memo (isomorphic
    /// structure seen before; any verdict).
    pub by_memo: usize,
    /// Memo answers from entries carried over from an earlier pipeline
    /// round (a subset of `by_memo`).
    pub memo_carryover: usize,
    /// Queries answered by a disk-loaded entry of the design-level
    /// verdict store (engine mode with a warm-started store attached).
    pub by_disk_verdict: usize,
    /// Conclusive verdicts this sweep published to the design-level
    /// verdict store.
    pub verdicts_published: usize,
    /// Memo entries invalidated by the dirty-set protocol between rounds.
    pub memo_invalidated: usize,
    /// Queries refuted by counterexample replay (engine mode only).
    pub by_cex: usize,
    /// Queries refuted by replaying the design-level shared bank's
    /// vectors (engine mode with a shared bank attached).
    pub by_shared_cex: usize,
    /// Queries refuted by the random-simulation prefilter (engine mode
    /// only).
    pub by_prefilter: usize,
    /// Random-simulation rounds the adaptive prefilter actually ran.
    pub prefilter_rounds: usize,
    /// Bits evicted from the engine's bounded counterexample bank.
    pub bank_evictions: usize,
    /// Branches proven unreachable.
    pub unreachable: usize,
    /// Gates gathered into sub-graphs before pruning (paper ~80% claim).
    pub gates_before_prune: usize,
    /// Gates kept after pruning.
    pub gates_after_prune: usize,
    /// Incremental-solver resets triggered by the variable-count
    /// backstop.
    pub solver_resets: usize,
    /// CDCL conflicts across the sweep's solver(s).
    pub solver_conflicts: u64,
    /// CDCL propagations across the sweep's solver(s).
    pub solver_propagations: u64,
    /// Learnt clauses retained (summed across resets — a growth
    /// indicator, not a live gauge).
    pub solver_learnts: u64,
    /// Learnt clauses that entered the solver's core tier (LBD ≤ 2 or
    /// binary — kept forever).
    pub solver_lbd_core: u64,
    /// Learnt-database reductions the solver performed.
    pub solver_reduces: u64,
    /// Compacting clause-arena garbage collections.
    pub solver_arena_gcs: u64,
    /// Restart rephasings applied (all kinds).
    pub solver_rephases: u64,
    /// Rephasings that restored the best-phase snapshot.
    pub solver_rephase_best: u64,
    /// Rephasings that inverted the best-phase snapshot.
    pub solver_rephase_inverted: u64,
    /// Rephasings that restored the original default phases.
    pub solver_rephase_original: u64,
    /// Cooperative-deadline polls inside the solver's search loop
    /// (`checks × interval` bounds the conflicts a solve ran past its
    /// deadline — the interruption latency).
    pub solver_deadline_checks: u64,
    /// Restarts forced by the solver's EMA controller.
    pub solver_ema_forced: u64,
    /// Pending EMA restarts suppressed by a deep trail.
    pub solver_ema_blocked: u64,
    /// Learnt clauses shrunk or deleted by vivification.
    pub solver_vivified_clauses: u64,
    /// Literals removed from clauses by vivification.
    pub solver_vivified_lits: u64,
    /// Clauses deleted by forward subsumption.
    pub solver_subsumed: u64,
    /// Literals removed by self-subsuming resolution.
    pub solver_strengthened: u64,
    /// Conflicts resolved by a chronological (one-level) backtrack.
    pub solver_chrono_backjumps: u64,
    /// Learnt clauses promoted into a better tier by on-the-fly LBD
    /// recomputation.
    pub solver_promoted: u64,
    /// Per-layer latency and per-SAT-call work distributions (timing
    /// JSON only — never digest material).
    pub profile: FunnelProfile,
}

impl SatPassStats {
    /// One-line human-readable summary of the CDCL solver counters — the
    /// single source for the pipeline report, the corpus solver bench,
    /// and `smartly stats --solver`, so a new counter is threaded through
    /// one format string instead of three.
    pub fn solver_summary(&self) -> String {
        format!(
            "{} conflicts, {} propagations, {} learnts ({} core, {} promoted), {} reduces, {} arena-gcs, {} restarts forced/{} blocked, {} chrono, viv {}c/{}l, sub {}/str {}, {} rephases (best {}/inv {}/orig {}), {} resets",
            self.solver_conflicts,
            self.solver_propagations,
            self.solver_learnts,
            self.solver_lbd_core,
            self.solver_promoted,
            self.solver_reduces,
            self.solver_arena_gcs,
            self.solver_ema_forced,
            self.solver_ema_blocked,
            self.solver_chrono_backjumps,
            self.solver_vivified_clauses,
            self.solver_vivified_lits,
            self.solver_subsumed,
            self.solver_strengthened,
            self.solver_rephases,
            self.solver_rephase_best,
            self.solver_rephase_inverted,
            self.solver_rephase_original,
            self.solver_resets,
        )
    }

    fn absorb_subgraph(&mut self, s: SubgraphStats) {
        self.gates_before_prune += s.gates_before_prune;
        self.gates_after_prune += s.gates_after_prune;
    }

    /// Adds another sweep's counters onto this one.
    pub fn absorb(&mut self, o: &SatPassStats) {
        self.rewrites += o.rewrites;
        self.queries += o.queries;
        self.by_inference += o.by_inference;
        self.by_sim += o.by_sim;
        self.by_sat += o.by_sat;
        self.by_memo += o.by_memo;
        self.memo_carryover += o.memo_carryover;
        self.by_disk_verdict += o.by_disk_verdict;
        self.verdicts_published += o.verdicts_published;
        self.memo_invalidated += o.memo_invalidated;
        self.by_cex += o.by_cex;
        self.by_shared_cex += o.by_shared_cex;
        self.by_prefilter += o.by_prefilter;
        self.prefilter_rounds += o.prefilter_rounds;
        self.bank_evictions += o.bank_evictions;
        self.unreachable += o.unreachable;
        self.gates_before_prune += o.gates_before_prune;
        self.gates_after_prune += o.gates_after_prune;
        self.solver_resets += o.solver_resets;
        self.solver_conflicts += o.solver_conflicts;
        self.solver_propagations += o.solver_propagations;
        self.solver_learnts += o.solver_learnts;
        self.solver_lbd_core += o.solver_lbd_core;
        self.solver_reduces += o.solver_reduces;
        self.solver_arena_gcs += o.solver_arena_gcs;
        self.solver_rephases += o.solver_rephases;
        self.solver_rephase_best += o.solver_rephase_best;
        self.solver_rephase_inverted += o.solver_rephase_inverted;
        self.solver_rephase_original += o.solver_rephase_original;
        self.solver_deadline_checks += o.solver_deadline_checks;
        self.solver_ema_forced += o.solver_ema_forced;
        self.solver_ema_blocked += o.solver_ema_blocked;
        self.solver_vivified_clauses += o.solver_vivified_clauses;
        self.solver_vivified_lits += o.solver_vivified_lits;
        self.solver_subsumed += o.solver_subsumed;
        self.solver_strengthened += o.solver_strengthened;
        self.solver_chrono_backjumps += o.solver_chrono_backjumps;
        self.solver_promoted += o.solver_promoted;
        self.profile.absorb(&o.profile);
    }
}

/// One sweep of SAT-based redundancy elimination; returns telemetry.
///
/// Run [`smartly_opt::clean_pipeline`] afterwards (or use
/// [`crate::Pipeline`]) to realize the collapses, and iterate until
/// `rewrites` is 0. The sweep runs on throwaway state; use
/// [`sat_redundancy_with`] to carry verdict memos across sweeps or
/// participate in a design-level shared bank.
pub fn sat_redundancy(module: &mut Module, options: &SatRedundancyOptions) -> SatPassStats {
    // a throwaway context: no begin_round — fingerprinting the module
    // buys nothing when the memo dies with this call
    let mut ctx = SweepContext::new(None, None);
    sat_redundancy_with(module, options, &mut ctx)
}

/// [`sat_redundancy`] with a persistent [`SweepContext`]: the engine is
/// seeded with the context's verdict memo and shared bank, and the memo
/// (grown by this sweep) is handed back through the context.
///
/// Callers must invoke [`SweepContext::begin_round`] between sweeps of a
/// mutated module so stale cone entries are invalidated first.
pub fn sat_redundancy_with(
    module: &mut Module,
    options: &SatRedundancyOptions,
    ctx: &mut SweepContext,
) -> SatPassStats {
    let index = NetIndex::build(module);
    let topo = match module.topo_order() {
        Ok(t) => t,
        Err(_) => return SatPassStats::default(),
    };
    let ranks: HashMap<CellId, usize> = topo.into_iter().enumerate().map(|(i, c)| (c, i)).collect();

    let mux_cells: Vec<CellId> = module
        .cells()
        .filter(|(_, c)| matches!(c.kind, CellKind::Mux | CellKind::Pmux))
        .map(|(id, _)| id)
        .collect();
    let mux_set: HashSet<CellId> = mux_cells.iter().copied().collect();

    let exclusive_child = |id: CellId| -> bool {
        let cell = module.cell(id).expect("live mux");
        let mut parents: HashSet<(CellId, Port)> = HashSet::new();
        for bit in cell.output().iter() {
            for sink in index.fanout(index.canon(*bit)) {
                match &sink.consumer {
                    smartly_netlist::Consumer::Cell(c)
                        if mux_set.contains(c) && matches!(sink.port, Port::A | Port::B) =>
                    {
                        parents.insert((*c, sink.port));
                    }
                    _ => return false,
                }
            }
        }
        parents.len() == 1
    };

    let driver_mux = |spec: &SigSpec| -> Option<CellId> {
        let first = index.driver(index.canon(spec.bit(0)))?;
        let cell = module.cell(first.cell)?;
        if !matches!(cell.kind, CellKind::Mux | CellKind::Pmux) {
            return None;
        }
        if cell.output().width() != spec.width() || first.offset != 0 {
            return None;
        }
        for (k, bit) in spec.iter().enumerate() {
            let d = index.driver(index.canon(*bit))?;
            if d.cell != first.cell || d.offset as usize != k {
                return None;
            }
        }
        Some(first.cell)
    };

    let roots: Vec<CellId> = mux_cells
        .iter()
        .copied()
        .filter(|&id| !exclusive_child(id))
        .collect();

    let mut stats = SatPassStats::default();
    let mut pins: Vec<(CellId, Port, usize, TriVal)> = Vec::new();
    let mut visited: HashSet<CellId> = HashSet::new();
    let cone_cache = std::cell::RefCell::new(ConeCache::new());
    let decide_opts = DecideOptions {
        sim_threshold: options.sim_threshold,
        sat_threshold: options.sat_threshold,
        conflict_budget: options.conflict_budget,
        luby_restarts: options.luby_restarts,
        inprocessing: options.inprocessing,
    };
    // the stateful query funnel (one per sweep; the netlist is immutable
    // until the pins are applied at the end), seeded from the context's
    // carried memo and shared bank
    let engine: Option<std::cell::RefCell<QueryEngine>> = if options.incremental {
        let mut eng = QueryEngine::with_state(
            module,
            &index,
            QueryEngineOptions {
                decide: decide_opts,
                prefilter_rounds: options.prefilter_rounds,
                prefilter_max_rounds: options.prefilter_max_rounds,
                cex_bank_capacity: options.cex_bank_capacity,
                ..Default::default()
            },
            std::mem::take(&mut ctx.memo),
            ctx.shared.clone(),
            ctx.verdicts.clone(),
        );
        eng.set_trace(ctx.trace.clone());
        eng.set_deadline(ctx.deadline.clone());
        Some(std::cell::RefCell::new(eng))
    } else {
        None
    };

    // resolve a select bit's value under the path condition
    let resolve_select =
        |bit: SigBit, known: &HashMap<SigBit, bool>, stats: &mut SatPassStats| -> Option<bool> {
            let c = index.canon(bit);
            if let SigBit::Const(v) = c {
                return v.to_bool();
            }
            if let Some(&v) = known.get(&c) {
                return Some(v);
            }
            if stats.queries >= options.max_queries {
                return None;
            }
            stats.queries += 1;
            let (sub, sg_stats) = extract_cached(
                module,
                &index,
                &ranks,
                c,
                known,
                options.k,
                options.prune,
                options.measure_gather,
                &mut cone_cache.borrow_mut(),
            );
            stats.absorb_subgraph(sg_stats);
            if sub.cells.len() > options.max_subgraph_cells {
                return None; // too large: forgo the query (paper threshold)
            }
            let mut assign: HashMap<SigBit, bool> =
                known.iter().map(|(b, v)| (index.canon(*b), *v)).collect();
            if options.inference {
                match propagate(module, &index, &sub, &mut assign) {
                    InferOutcome::Contradiction => {
                        stats.unreachable += 1;
                        return Some(false); // unreachable path: any value is sound
                    }
                    InferOutcome::Fixpoint { .. } => {}
                }
                if let Some(&v) = assign.get(&c) {
                    stats.by_inference += 1;
                    return Some(v);
                }
            }
            let (d, engine_used) = match &engine {
                Some(e) => {
                    let (d, layer) = e.borrow_mut().decide(&sub, &assign);
                    match layer {
                        Layer::Memo => stats.by_memo += 1,
                        // by_disk_verdict is copied from the engine's
                        // cumulative stats at the end of the sweep
                        Layer::DesignVerdict => {}
                        Layer::CexReplay => stats.by_cex += 1,
                        Layer::SharedCex => stats.by_shared_cex += 1,
                        Layer::Prefilter => stats.by_prefilter += 1,
                        _ => {}
                    }
                    let mapped = match layer {
                        Layer::Simulation => Engine::Simulation,
                        Layer::Sat => Engine::Sat,
                        _ => Engine::None,
                    };
                    (d, mapped)
                }
                None => decide(module, &index, &sub, &assign, &decide_opts),
            };
            match d {
                Decision::Const(v) => {
                    match engine_used {
                        Engine::Simulation => stats.by_sim += 1,
                        Engine::Sat => stats.by_sat += 1,
                        Engine::None => {}
                    }
                    Some(v)
                }
                Decision::Unreachable => {
                    stats.unreachable += 1;
                    Some(false)
                }
                Decision::Unknown | Decision::Skipped => None,
            }
        };

    // iterative DFS over the tree forest
    struct Frame {
        cell: CellId,
        known: HashMap<SigBit, bool>,
    }
    let mut stack: Vec<Frame> = roots
        .iter()
        .map(|&cell| Frame {
            cell,
            known: HashMap::new(),
        })
        .collect();

    while let Some(Frame { cell: id, known }) = stack.pop() {
        if !visited.insert(id) {
            continue;
        }
        let cell = module.cell(id).expect("live mux").clone();
        let a_spec = cell.port(Port::A).expect("mux A").clone();
        let b_spec = cell.port(Port::B).expect("mux B").clone();
        let s_spec = cell.port(Port::S).expect("mux S").clone();
        let w = cell.output().width();

        // data-port rewriting under direct path knowledge (paper Fig. 2)
        for (port, spec) in [(Port::A, &a_spec), (Port::B, &b_spec)] {
            for (k, bit) in spec.iter().enumerate() {
                if let Some(&v) = known.get(&index.canon(*bit)) {
                    pins.push((id, port, k, TriVal::from_bool(v)));
                    stats.rewrites += 1;
                }
            }
        }

        match cell.kind {
            CellKind::Mux => {
                let s = index.canon(s_spec.bit(0));
                let decided = if s.is_const() {
                    s.as_const().and_then(|v| v.to_bool())
                } else {
                    let r = resolve_select(s, &known, &mut stats);
                    if let Some(v) = r {
                        pins.push((id, Port::S, 0, TriVal::from_bool(v)));
                        stats.rewrites += 1;
                    }
                    r
                };
                match decided {
                    Some(v) => {
                        let live = if v { &b_spec } else { &a_spec };
                        if let Some(child) = driver_mux(live) {
                            if exclusive_child(child) {
                                stack.push(Frame {
                                    cell: child,
                                    known: known.clone(),
                                });
                            }
                        }
                    }
                    None => {
                        for (branch, val) in [(&a_spec, false), (&b_spec, true)] {
                            if let Some(child) = driver_mux(branch) {
                                if exclusive_child(child) {
                                    let mut k2 = known.clone();
                                    if !s.is_const() {
                                        k2.insert(s, val);
                                    }
                                    stack.push(Frame {
                                        cell: child,
                                        known: k2,
                                    });
                                }
                            }
                        }
                    }
                }
            }
            CellKind::Pmux => {
                let n = s_spec.width();
                let mut sel_bits: Vec<SigBit> = Vec::with_capacity(n);
                for i in 0..n {
                    let sb = index.canon(s_spec.bit(i));
                    if !sb.is_const() {
                        if let Some(v) = resolve_select(sb, &known, &mut stats) {
                            pins.push((id, Port::S, i, TriVal::from_bool(v)));
                            stats.rewrites += 1;
                        }
                    }
                    sel_bits.push(sb);
                }
                // default branch: all selects 0
                if let Some(child) = driver_mux(&a_spec) {
                    if exclusive_child(child) {
                        let mut k2 = known.clone();
                        for sb in &sel_bits {
                            if !sb.is_const() {
                                k2.insert(*sb, false);
                            }
                        }
                        stack.push(Frame {
                            cell: child,
                            known: k2,
                        });
                    }
                }
                for i in 0..n {
                    let word = b_spec.slice(i * w, w);
                    if let Some(child) = driver_mux(&word) {
                        if exclusive_child(child) {
                            let mut k2 = known.clone();
                            for sb in sel_bits.iter().take(i) {
                                if !sb.is_const() {
                                    k2.insert(*sb, false);
                                }
                            }
                            if !sel_bits[i].is_const() {
                                k2.insert(sel_bits[i], true);
                            }
                            stack.push(Frame {
                                cell: child,
                                known: k2,
                            });
                        }
                    }
                }
            }
            _ => unreachable!("only mux-like cells are traversed"),
        }
    }

    // fold the engine's telemetry into the sweep stats and hand the memo
    // back to the context, releasing the netlist borrow before mutation
    if let Some(e) = engine {
        let eng = e.into_inner();
        let es = eng.stats();
        stats.memo_carryover = es.memo_carryover;
        stats.by_disk_verdict = es.by_disk_verdict;
        stats.verdicts_published = es.verdicts_published;
        stats.prefilter_rounds = es.prefilter_rounds;
        stats.bank_evictions = es.bank_evictions;
        stats.solver_resets = es.solver_resets;
        stats.solver_conflicts = es.solver.conflicts;
        stats.solver_propagations = es.solver.propagations;
        stats.solver_learnts = es.solver.learnt_clauses;
        stats.solver_lbd_core = es.solver.lbd_core;
        stats.solver_reduces = es.solver.reduces;
        stats.solver_arena_gcs = es.solver.arena_gcs;
        stats.solver_rephases = es.solver.rephases;
        stats.solver_rephase_best = es.solver.rephase_best;
        stats.solver_rephase_inverted = es.solver.rephase_inverted;
        stats.solver_rephase_original = es.solver.rephase_original;
        stats.solver_deadline_checks = es.solver.deadline_checks;
        stats.solver_ema_forced = es.solver.ema_forced;
        stats.solver_ema_blocked = es.solver.ema_blocked;
        stats.solver_vivified_clauses = es.solver.vivified_clauses;
        stats.solver_vivified_lits = es.solver.vivified_lits;
        stats.solver_subsumed = es.solver.subsumed;
        stats.solver_strengthened = es.solver.strengthened;
        stats.solver_chrono_backjumps = es.solver.chrono_backjumps;
        stats.solver_promoted = es.solver.promoted;
        stats.profile = es.profile;
        ctx.memo = eng.into_memo();
    }
    for (id, port, offset, value) in pins {
        if let Some(cell) = module.cell_mut(id) {
            if let Some(spec) = cell.port_mut(port) {
                spec.bits_mut()[offset] = SigBit::Const(value);
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartly_opt::clean_pipeline;

    fn fig3() -> Module {
        let mut m = Module::new("fig3");
        let a = m.add_input("a", 4);
        let b = m.add_input("b", 4);
        let c = m.add_input("c", 4);
        let s = m.add_input("s", 1);
        let r = m.add_input("r", 1);
        let sr = m.or(&s, &r);
        let inner = m.mux(&b, &a, &sr); // (s|r) ? a : b
        let outer = m.mux(&c, &inner, &s); // s ? inner : c
        m.add_output("y", &outer);
        m
    }

    /// Paper Fig. 3: Y = S ? ((S|R) ? A : B) : C ⇒ Y = S ? A : C.
    #[test]
    fn fig3_or_dependent_collapses() {
        let mut m = fig3();
        let stats = sat_redundancy(&mut m, &SatRedundancyOptions::default());
        assert!(stats.rewrites >= 1);
        assert_eq!(stats.by_inference, 1, "Table I should decide this one");
        clean_pipeline(&mut m, 8);
        assert_eq!(m.stats().count("mux"), 1);
        assert_eq!(m.stats().count("or"), 0, "the OR gate is dead too");
        m.validate().unwrap();
    }

    /// Same circuit with inference disabled: sim/SAT must still decide.
    #[test]
    fn fig3_without_inference_uses_sim_or_sat() {
        for sim_threshold in [10, 0] {
            let mut m = fig3();
            let opts = SatRedundancyOptions {
                inference: false,
                sim_threshold,
                ..Default::default()
            };
            let stats = sat_redundancy(&mut m, &opts);
            assert!(stats.by_sim + stats.by_sat >= 1);
            clean_pipeline(&mut m, 8);
            assert_eq!(m.stats().count("mux"), 1);
        }
    }

    /// AND-dependent control: S ? (S&T ? A : B) : C — S&T is NOT decided
    /// by S alone (T free), so nothing may collapse.
    #[test]
    fn independent_control_is_kept() {
        let mut m = Module::new("t");
        let a = m.add_input("a", 4);
        let b = m.add_input("b", 4);
        let c = m.add_input("c", 4);
        let s = m.add_input("s", 1);
        let t = m.add_input("t", 1);
        let st = m.and(&s, &t);
        let inner = m.mux(&b, &a, &st);
        let outer = m.mux(&c, &inner, &s);
        m.add_output("y", &outer);
        let stats = sat_redundancy(&mut m, &SatRedundancyOptions::default());
        let _ = stats;
        clean_pipeline(&mut m, 8);
        assert_eq!(m.stats().count("mux"), 2, "no unsound collapse");
    }

    /// The NOT-dependent case: S ? (!S ? A : B) : C ⇒ S ? B : C.
    #[test]
    fn negated_control_collapses() {
        let mut m = Module::new("t");
        let a = m.add_input("a", 4);
        let b = m.add_input("b", 4);
        let c = m.add_input("c", 4);
        let s = m.add_input("s", 1);
        let ns = m.not(&s);
        let inner = m.mux(&b, &a, &ns); // !s ? a : b
        let outer = m.mux(&c, &inner, &s); // s ? inner : c
        m.add_output("y", &outer);
        let stats = sat_redundancy(&mut m, &SatRedundancyOptions::default());
        assert!(stats.rewrites >= 1);
        clean_pipeline(&mut m, 8);
        assert_eq!(m.stats().count("mux"), 1);
    }

    /// Deeper dependency through two gates: S ? (((S|R)&T ... kept; and
    /// ((S|R)|T) ? A : B collapses.
    #[test]
    fn two_level_dependency() {
        let mut m = Module::new("t");
        let a = m.add_input("a", 2);
        let b = m.add_input("b", 2);
        let c = m.add_input("c", 2);
        let s = m.add_input("s", 1);
        let r = m.add_input("r", 1);
        let t = m.add_input("t", 1);
        let sr = m.or(&s, &r);
        let srt = m.or(&sr, &t);
        let inner = m.mux(&b, &a, &srt);
        let outer = m.mux(&c, &inner, &s);
        m.add_output("y", &outer);
        let stats = sat_redundancy(&mut m, &SatRedundancyOptions::default());
        assert!(stats.rewrites >= 1);
        clean_pipeline(&mut m, 8);
        assert_eq!(m.stats().count("mux"), 1);
    }

    /// Identical-signal case (Fig. 1) is also caught (subsumes baseline).
    #[test]
    fn subsumes_baseline_identical_signal() {
        let mut m = Module::new("t");
        let a = m.add_input("a", 4);
        let b = m.add_input("b", 4);
        let c = m.add_input("c", 4);
        let s = m.add_input("s", 1);
        let inner = m.mux(&b, &a, &s);
        let outer = m.mux(&c, &inner, &s);
        m.add_output("y", &outer);
        let stats = sat_redundancy(&mut m, &SatRedundancyOptions::default());
        assert!(stats.rewrites >= 1);
        clean_pipeline(&mut m, 8);
        assert_eq!(m.stats().count("mux"), 1);
    }

    /// Pruning statistics are recorded.
    #[test]
    fn prune_stats_accumulate() {
        let mut m = fig3();
        let stats = sat_redundancy(&mut m, &SatRedundancyOptions::default());
        assert!(stats.gates_after_prune <= stats.gates_before_prune);
        assert!(stats.queries >= 1);
    }

    /// eq-driven selects: casez-style chain where an earlier arm's
    /// condition makes a later arm's condition impossible.
    #[test]
    fn eq_conditions_over_same_bus() {
        let mut m = Module::new("t");
        let sel = m.add_input("sel", 2);
        let p: Vec<SigSpec> = (0..3).map(|i| m.add_input(&format!("p{i}"), 4)).collect();
        let e0 = m.eq(&sel, &SigSpec::const_u64(0, 2));
        // e1 duplicates e0; y = e0 ? p0 : (e1 ? p1 : p2), so under e0=0
        // the e1 branch is dead — the pass must see through it.
        let e1 = m.eq(&sel, &SigSpec::const_u64(0, 2));
        let inner = m.mux(&p[2], &p[1], &e1);
        let outer = m.mux(&inner, &p[0], &e0);
        m.add_output("y", &outer);
        let stats = sat_redundancy(&mut m, &SatRedundancyOptions::default());
        assert!(stats.rewrites >= 1, "duplicate eq must be seen through");
        clean_pipeline(&mut m, 8);
        assert_eq!(m.stats().count("mux"), 1);
        m.validate().unwrap();
    }
}
