//! Muxtree restructuring (paper §III, Algorithm 1).
//!
//! `case` statements elaborate into chains (or trees) of `mux` cells whose
//! selects are `eq`-against-constant comparisons of a *single* control
//! bus. This pass
//!
//! 1. finds such trees (`OnlyEq` ∧ `SingleCtrl`),
//! 2. collects the priority `pattern → leaf` rules into a complete
//!    function table over the control bits,
//! 3. builds an ADD with the greedy terminal-minimizing bit order
//!    ([`smartly_add::Add::build_greedy`]),
//! 4. applies the `Check(...)` cost gate — removable `eq` comparators,
//!    mux-count delta weighted by data width, rebuilt height — and
//! 5. re-emits one mux per ADD node, selected by *raw control bits*, so
//!    the `eq` cells disconnect and die in `opt_clean` (paper Fig. 7).

use smartly_add::{Add, AddRef, FunctionTable};
use smartly_netlist::{CellId, CellKind, Module, NetIndex, Port, SigBit, SigSpec, TriVal};
use std::collections::{HashMap, HashSet};

/// Configuration for [`restructure`].
#[derive(Copy, Clone, Debug)]
pub struct RestructureOptions {
    /// Maximum distinct control bits per tree (table is `2^width`).
    pub max_ctrl_width: u32,
    /// Minimum estimated AIG-area saving required to rebuild.
    pub min_saving: i64,
    /// Refuse rebuilds whose ADD is deeper than the original chain.
    pub respect_height: bool,
}

impl Default for RestructureOptions {
    fn default() -> Self {
        RestructureOptions {
            max_ctrl_width: 14,
            min_saving: 1,
            respect_height: true,
        }
    }
}

/// Telemetry from one [`restructure`] sweep.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct RestructureStats {
    /// Candidate trees satisfying `OnlyEq` ∧ `SingleCtrl`.
    pub candidates: usize,
    /// Trees actually rebuilt (passed `Check`).
    pub rebuilt: usize,
    /// Mux cells removed across all rebuilds.
    pub muxes_removed: usize,
    /// Mux cells emitted by the rebuilds.
    pub muxes_added: usize,
    /// `eq`-family comparators disconnected (swept by `opt_clean`).
    pub eqs_freed: usize,
}

/// One select condition expressed as a cube over the control universe.
#[derive(Clone, Debug)]
struct Cube {
    /// `(universe index, required value)` pairs.
    lits: Vec<(usize, bool)>,
}

impl Cube {
    fn matches(&self, idx: usize) -> bool {
        self.lits
            .iter()
            .all(|&(bit, v)| ((idx >> bit) & 1 == 1) == v)
    }
}

enum Tree {
    Leaf(SigSpec),
    Node {
        #[allow(dead_code)]
        cell: CellId,
        cube: Cube,
        then_branch: Box<Tree>,
        else_branch: Box<Tree>,
    },
}

struct Collected {
    tree: Tree,
    universe: Vec<SigBit>,
    mux_cells: Vec<CellId>,
    sel_cells: Vec<CellId>,
    width: usize,
    /// cost of the existing structure in 2-to-1 mux equivalents (a
    /// `pmux` over n selects counts as n)
    old_mux_units: usize,
}

/// Rebuilds every profitable `case`-shaped muxtree; returns telemetry.
///
/// Follow with [`smartly_opt::clean_pipeline`] to sweep the freed `eq`
/// cells (Algorithm 1's `RemoveUnusedCell`).
pub fn restructure(module: &mut Module, options: &RestructureOptions) -> RestructureStats {
    let mut stats = RestructureStats::default();
    let index = NetIndex::build(module);

    let mux_cells: Vec<CellId> = module
        .cells()
        .filter(|(_, c)| c.kind == CellKind::Mux)
        .map(|(id, _)| id)
        .collect();
    let mux_set: HashSet<CellId> = mux_cells.iter().copied().collect();

    let exclusive_child = |id: CellId| -> bool {
        let cell = module.cell(id).expect("live mux");
        let mut sinks_seen = 0usize;
        for bit in cell.output().iter() {
            for sink in index.fanout(index.canon(*bit)) {
                match &sink.consumer {
                    smartly_netlist::Consumer::Cell(c)
                        if mux_set.contains(c) && matches!(sink.port, Port::A | Port::B) =>
                    {
                        sinks_seen += 1;
                    }
                    _ => return false,
                }
            }
        }
        sinks_seen == cell.output().width()
    };

    let roots: Vec<CellId> = mux_cells
        .iter()
        .copied()
        .filter(|&id| !exclusive_child(id))
        .collect();

    // pmux cells are single-level candidates of their own
    let pmux_roots: Vec<CellId> = module
        .cells()
        .filter(|(_, c)| c.kind == CellKind::Pmux)
        .map(|(id, _)| id)
        .collect();

    let mut consumed: HashSet<CellId> = HashSet::new();
    for (root, is_pmux) in roots
        .into_iter()
        .map(|r| (r, false))
        .chain(pmux_roots.into_iter().map(|r| (r, true)))
    {
        if consumed.contains(&root) {
            continue;
        }
        let collected = if is_pmux {
            collect_pmux(module, &index, root, options)
        } else {
            collect_tree(module, &index, root, &mux_set, options)
        };
        let Some(collected) = collected else {
            continue;
        };
        if collected.old_mux_units < 2 {
            continue; // single mux: nothing to restructure
        }
        stats.candidates += 1;

        // leaves → terminal ids, then the function table
        let mut leaves: Vec<SigSpec> = Vec::new();
        let width_bits = collected.universe.len() as u32;
        let mut table = FunctionTable::new_filled(width_bits, 0);
        fill_table(
            &collected.tree,
            &mut leaves,
            &mut table,
            &all_indices(width_bits),
        );
        let add = Add::build_greedy(&table);

        // ----- Check(...) -----
        let old_muxes = collected.old_mux_units;
        let new_muxes = add.node_count();
        // eq cells whose entire fanout lies inside this tree are freed
        let removable: Vec<CellId> = collected
            .sel_cells
            .iter()
            .copied()
            .filter(|&sc| {
                let cell = module.cell(sc).expect("live select cell");
                cell.output().iter().all(|b| {
                    index
                        .fanout(index.canon(*b))
                        .iter()
                        .all(|s| match &s.consumer {
                            smartly_netlist::Consumer::Cell(c) => collected.mux_cells.contains(c),
                            smartly_netlist::Consumer::Output(_) => false,
                        })
                })
            })
            .collect();
        // AIG-area cost model: mux ≈ 3 ANDs per data bit; an eq against a
        // constant folds its per-bit xnors away and costs only the k-1
        // ANDs of the reduction tree
        let eq_gain: i64 = removable
            .iter()
            .map(|&sc| {
                let cell = module.cell(sc).expect("live");
                let k = cell.port(Port::A).map(|s| s.width()).unwrap_or(1) as i64;
                (k - 1).max(1)
            })
            .sum();
        let mux_gain = (old_muxes as i64 - new_muxes as i64) * 3 * collected.width as i64;
        let saving = eq_gain + mux_gain;
        let height_ok =
            !options.respect_height || add.depth() <= old_muxes.max(add.width() as usize);
        if saving < options.min_saving || !height_ok {
            continue;
        }

        // ----- Rebuild -----
        let new_out = emit(module, &add, &collected.universe, &leaves);
        let root_out = module.cell(root).expect("live root").output().clone();
        for &id in &collected.mux_cells {
            module.remove_cell(id);
            consumed.insert(id);
        }
        module.connect(root_out, new_out);

        stats.rebuilt += 1;
        stats.muxes_removed += old_muxes;
        stats.muxes_added += new_muxes;
        stats.eqs_freed += removable.len();
    }
    stats
}

fn all_indices(width: u32) -> Vec<usize> {
    (0..(1usize << width)).collect()
}

/// Recursively fills the function table from the decision tree.
fn fill_table(
    tree: &Tree,
    leaves: &mut Vec<SigSpec>,
    table: &mut FunctionTable,
    indices: &[usize],
) {
    match tree {
        Tree::Leaf(spec) => {
            let id = match leaves.iter().position(|l| l == spec) {
                Some(i) => i as u32,
                None => {
                    leaves.push(spec.clone());
                    (leaves.len() - 1) as u32
                }
            };
            for &i in indices {
                table.set(i, id);
            }
        }
        Tree::Node {
            cube,
            then_branch,
            else_branch,
            ..
        } => {
            let (hit, miss): (Vec<usize>, Vec<usize>) =
                indices.iter().partition(|&&i| cube.matches(i));
            fill_table(then_branch, leaves, table, &hit);
            fill_table(else_branch, leaves, table, &miss);
        }
    }
}

/// Emits the rebuilt muxtree; returns the new output spec.
fn emit(module: &mut Module, add: &Add, universe: &[SigBit], leaves: &[SigSpec]) -> SigSpec {
    let mut memo: HashMap<AddRef, SigSpec> = HashMap::new();
    fn walk(
        module: &mut Module,
        add: &Add,
        universe: &[SigBit],
        leaves: &[SigSpec],
        r: AddRef,
        memo: &mut HashMap<AddRef, SigSpec>,
    ) -> SigSpec {
        if let Some(s) = memo.get(&r) {
            return s.clone();
        }
        let out = match r {
            AddRef::Terminal(t) => leaves[t as usize].clone(),
            AddRef::Node(i) => {
                let node = add.node(i);
                let lo = walk(module, add, universe, leaves, node.lo, memo);
                let hi = walk(module, add, universe, leaves, node.hi, memo);
                let sel = SigSpec::from_bit(universe[node.var as usize]);
                module.mux(&lo, &hi, &sel)
            }
        };
        memo.insert(r, out.clone());
        out
    }
    walk(module, add, universe, leaves, add.root(), &mut memo)
}

fn intern(universe: &mut Vec<SigBit>, bit: SigBit, cap: u32) -> Option<usize> {
    if let Some(i) = universe.iter().position(|&b| b == bit) {
        return Some(i);
    }
    if universe.len() as u32 >= cap {
        return None;
    }
    universe.push(bit);
    Some(universe.len() - 1)
}

/// Decodes a select signal into a cube: an `eq(bus, const)` cell, a
/// `logic_not`/`not` (= eq 0), or a raw control bit.
fn select_cube(
    module: &Module,
    index: &NetIndex,
    sel_bit: SigBit,
    universe: &mut Vec<SigBit>,
    sel_cells: &mut Vec<CellId>,
    cap: u32,
) -> Option<Cube> {
    let canon = index.canon(sel_bit);
    let driver = match index.driver(canon) {
        None => {
            // raw control bit
            let i = intern(universe, canon, cap)?;
            return Some(Cube {
                lits: vec![(i, true)],
            });
        }
        Some(d) => d,
    };
    let cell = module.cell(driver.cell)?;
    match cell.kind {
        CellKind::Eq => {
            let a = cell.port(Port::A)?;
            let b = cell.port(Port::B)?;
            // one side constant, other side control bits
            let (konst, bus) = if a.is_fully_const() {
                (a, b)
            } else if b.is_fully_const() {
                (b, a)
            } else {
                return None;
            };
            let mut lits = Vec::new();
            for (kb, sb) in konst.iter().zip(bus.iter()) {
                let want = match kb {
                    SigBit::Const(TriVal::One) => true,
                    SigBit::Const(TriVal::Zero) => false,
                    _ => return None,
                };
                let cb = index.canon(*sb);
                match cb {
                    SigBit::Const(TriVal::One) => {
                        if !want {
                            return Some(Cube {
                                lits: vec![(usize::MAX, true)],
                            }); // never matches; handled by caller
                        }
                    }
                    SigBit::Const(TriVal::Zero) => {
                        if want {
                            return Some(Cube {
                                lits: vec![(usize::MAX, true)],
                            });
                        }
                    }
                    SigBit::Const(TriVal::X) => return None,
                    _ => {
                        let i = intern(universe, cb, cap)?;
                        lits.push((i, want));
                    }
                }
            }
            sel_cells.push(driver.cell);
            Some(Cube { lits })
        }
        CellKind::LogicNot | CellKind::Not if cell.port(Port::A)?.width() == 1 => {
            let a = index.canon(cell.port(Port::A)?.bit(0));
            if a.is_const() {
                return None;
            }
            let i = intern(universe, a, cap)?;
            sel_cells.push(driver.cell);
            Some(Cube {
                lits: vec![(i, false)],
            })
        }
        _ => {
            // raw (non-eq) 1-bit signal: usable as its own control bit,
            // but it is not an eq cell so SingleCtrl over a bus fails
            // only when the universe cap is hit
            let i = intern(universe, canon, cap)?;
            Some(Cube {
                lits: vec![(i, true)],
            })
        }
    }
}

/// Walks a mux chain/tree, checking `OnlyEq` and `SingleCtrl`, and
/// collecting cubes over a shared control-bit universe.
fn collect_tree(
    module: &Module,
    index: &NetIndex,
    root: CellId,
    mux_set: &HashSet<CellId>,
    options: &RestructureOptions,
) -> Option<Collected> {
    let mut universe: Vec<SigBit> = Vec::new();
    let mut mux_cells: Vec<CellId> = Vec::new();
    let mut sel_cells: Vec<CellId> = Vec::new();
    let width = module.cell(root)?.output().width();

    // a child is followed only when it is a mux exclusively feeding us
    let exclusive_mux_driver = |spec: &SigSpec| -> Option<CellId> {
        let first = index.driver(index.canon(spec.bit(0)))?;
        let cell = module.cell(first.cell)?;
        if cell.kind != CellKind::Mux || !mux_set.contains(&first.cell) {
            return None;
        }
        if cell.output().width() != spec.width() || first.offset != 0 {
            return None;
        }
        for (k, bit) in spec.iter().enumerate() {
            let d = index.driver(index.canon(*bit))?;
            if d.cell != first.cell || d.offset as usize != k {
                return None;
            }
        }
        // exclusivity: every sink of the child is this single consumption
        let sink_count: usize = cell
            .output()
            .iter()
            .map(|b| index.fanout(index.canon(*b)).len())
            .sum();
        (sink_count == cell.output().width()).then_some(first.cell)
    };

    #[allow(clippy::too_many_arguments)]
    fn walk(
        module: &Module,
        index: &NetIndex,
        id: CellId,
        universe: &mut Vec<SigBit>,
        mux_cells: &mut Vec<CellId>,
        sel_cells: &mut Vec<CellId>,
        exclusive_mux_driver: &dyn Fn(&SigSpec) -> Option<CellId>,
        cap: u32,
        depth: usize,
    ) -> Option<Tree> {
        if depth > 64 {
            return None;
        }
        let cell = module.cell(id)?;
        let s_spec = cell.port(Port::S)?;
        let cube = select_cube(module, index, s_spec.bit(0), universe, sel_cells, cap)?;
        if cube.lits.iter().any(|&(i, _)| i == usize::MAX) {
            return None; // contradictory eq: leave to opt_const
        }
        mux_cells.push(id);
        let a_spec = cell.port(Port::A)?.clone();
        let b_spec = cell.port(Port::B)?.clone();
        let then_branch = match exclusive_mux_driver(&b_spec) {
            Some(child) => walk(
                module,
                index,
                child,
                universe,
                mux_cells,
                sel_cells,
                exclusive_mux_driver,
                cap,
                depth + 1,
            )?,
            None => Tree::Leaf(canon_spec(index, &b_spec)),
        };
        let else_branch = match exclusive_mux_driver(&a_spec) {
            Some(child) => walk(
                module,
                index,
                child,
                universe,
                mux_cells,
                sel_cells,
                exclusive_mux_driver,
                cap,
                depth + 1,
            )?,
            None => Tree::Leaf(canon_spec(index, &a_spec)),
        };
        Some(Tree::Node {
            cell: id,
            cube,
            then_branch: Box::new(then_branch),
            else_branch: Box::new(else_branch),
        })
    }

    let tree = walk(
        module,
        index,
        root,
        &mut universe,
        &mut mux_cells,
        &mut sel_cells,
        &exclusive_mux_driver,
        options.max_ctrl_width,
        0,
    )?;
    sel_cells.sort_unstable();
    sel_cells.dedup();
    let old_mux_units = mux_cells.len();
    Some(Collected {
        tree,
        universe,
        mux_cells,
        sel_cells,
        width,
        old_mux_units,
    })
}

/// Collects a single `pmux` cell as a restructuring candidate: each
/// select bit must decode to a cube over one control universe; the
/// priority semantics (lowest set select wins, default on none) become a
/// nested decision tree.
fn collect_pmux(
    module: &Module,
    index: &NetIndex,
    id: CellId,
    options: &RestructureOptions,
) -> Option<Collected> {
    let cell = module.cell(id)?;
    let s_spec = cell.port(Port::S)?.clone();
    let a_spec = cell.port(Port::A)?.clone();
    let b_spec = cell.port(Port::B)?.clone();
    let w = cell.output().width();
    let n = s_spec.width();

    let mut universe: Vec<SigBit> = Vec::new();
    let mut sel_cells: Vec<CellId> = Vec::new();
    // priority lowest-index-first: s0 ? w0 : (s1 ? w1 : ... : default)
    let mut tree = Tree::Leaf(canon_spec(index, &a_spec));
    for i in (0..n).rev() {
        let cube = select_cube(
            module,
            index,
            s_spec.bit(i),
            &mut universe,
            &mut sel_cells,
            options.max_ctrl_width,
        )?;
        if cube.lits.iter().any(|&(k, _)| k == usize::MAX) {
            return None; // contradictory eq: opt_const's job
        }
        let word = canon_spec(index, &b_spec.slice(i * w, w));
        tree = Tree::Node {
            cell: id,
            cube,
            then_branch: Box::new(Tree::Leaf(word)),
            else_branch: Box::new(tree),
        };
    }
    sel_cells.sort_unstable();
    sel_cells.dedup();
    Some(Collected {
        tree,
        universe,
        mux_cells: vec![id],
        sel_cells,
        width: w,
        old_mux_units: n,
    })
}

fn canon_spec(index: &NetIndex, spec: &SigSpec) -> SigSpec {
    spec.iter().map(|b| index.canon(*b)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartly_opt::clean_pipeline;

    /// Builds the paper's Listing 1 netlist shape: a chain of 3 eq + 3 mux.
    fn listing1() -> Module {
        let mut m = Module::new("listing1");
        let s = m.add_input("s", 2);
        let p: Vec<SigSpec> = (0..4).map(|i| m.add_input(&format!("p{i}"), 8)).collect();
        let e0 = m.eq(&s, &SigSpec::const_u64(0, 2));
        let e1 = m.eq(&s, &SigSpec::const_u64(1, 2));
        let e2 = m.eq(&s, &SigSpec::const_u64(2, 2));
        // priority chain: e0 ? p0 : (e1 ? p1 : (e2 ? p2 : p3))
        let m2 = m.mux(&p[3], &p[2], &e2);
        let m1 = m.mux(&m2, &p[1], &e1);
        let m0 = m.mux(&m1, &p[0], &e0);
        m.add_output("y", &m0);
        m
    }

    /// Paper Figs. 5–7: the chain keeps 3 muxes but drops all eq cells.
    #[test]
    fn listing1_three_mux_no_eq() {
        let mut m = listing1();
        assert_eq!(m.stats().count("eq"), 3);
        assert_eq!(m.stats().count("mux"), 3);
        let stats = restructure(&mut m, &RestructureOptions::default());
        assert_eq!(stats.candidates, 1);
        assert_eq!(stats.rebuilt, 1);
        assert_eq!(stats.muxes_added, 3, "paper Fig. 7: exactly 3 muxes");
        assert_eq!(stats.eqs_freed, 3);
        clean_pipeline(&mut m, 8);
        assert_eq!(m.stats().count("eq"), 0, "eq cells disconnected and swept");
        assert_eq!(m.stats().count("mux"), 3);
        m.validate().unwrap();
    }

    /// Listing 2 (casez priority): greedy order gives 3 muxes, not 7.
    #[test]
    fn listing2_priority_order() {
        let mut m = Module::new("listing2");
        let s = m.add_input("s", 3);
        let p: Vec<SigSpec> = (0..4).map(|i| m.add_input(&format!("p{i}"), 4)).collect();
        // casez arms compare only the non-wildcard bits
        let e0 = m.eq(&s.slice(2, 1), &SigSpec::const_u64(1, 1)); // 1zz
        let e1 = m.eq(&s.slice(1, 2), &SigSpec::const_u64(0b01, 2)); // 01z
        let e2 = m.eq(&s, &SigSpec::const_u64(0b001, 3)); // 001
        let m2 = m.mux(&p[3], &p[2], &e2);
        let m1 = m.mux(&m2, &p[1], &e1);
        let m0 = m.mux(&m1, &p[0], &e0);
        m.add_output("y", &m0);
        let stats = restructure(&mut m, &RestructureOptions::default());
        assert_eq!(stats.rebuilt, 1);
        assert_eq!(stats.muxes_added, 3, "good assignment needs 3 MUXes");
        clean_pipeline(&mut m, 8);
        assert_eq!(m.stats().count("eq"), 0);
        m.validate().unwrap();
    }

    /// An eq shared with external logic is not counted as freed and the
    /// rebuild decision accounts for that.
    #[test]
    fn externally_shared_eq_not_freed() {
        let mut m = listing1();
        // share e0 with an extra output
        let e0_cell = m
            .cells()
            .find(|(_, c)| c.kind == CellKind::Eq)
            .map(|(id, _)| id)
            .unwrap();
        let e0_out = m.cell(e0_cell).unwrap().output().clone();
        m.add_output("dbg", &e0_out);
        let stats = restructure(&mut m, &RestructureOptions::default());
        assert_eq!(stats.rebuilt, 1);
        assert_eq!(stats.eqs_freed, 2, "the shared eq survives");
        clean_pipeline(&mut m, 8);
        assert_eq!(m.stats().count("eq"), 1);
        m.validate().unwrap();
    }

    /// Trees with non-eq selects that exceed no cap still restructure via
    /// raw control bits (if-chains over single bits).
    #[test]
    fn raw_bit_selects_work() {
        let mut m = Module::new("t");
        let s = m.add_input("s", 2);
        let p: Vec<SigSpec> = (0..3).map(|i| m.add_input(&format!("p{i}"), 4)).collect();
        let s0 = s.slice(0, 1);
        let s1 = s.slice(1, 1);
        // y = s0 ? p0 : (s1 ? p1 : p2)  — already optimal; Check refuses
        let inner = m.mux(&p[2], &p[1], &s1);
        let outer = m.mux(&inner, &p[0], &s0);
        m.add_output("y", &outer);
        let stats = restructure(&mut m, &RestructureOptions::default());
        // candidate recognized, but no saving ⇒ not rebuilt
        assert_eq!(stats.candidates, 1);
        assert_eq!(stats.rebuilt, 0);
        assert_eq!(m.stats().count("mux"), 2);
    }

    /// A wide control bus beyond the cap is skipped.
    #[test]
    fn cap_respected() {
        let mut m = Module::new("t");
        let s = m.add_input("s", 20);
        let p: Vec<SigSpec> = (0..3).map(|i| m.add_input(&format!("p{i}"), 2)).collect();
        let e0 = m.eq(&s, &SigSpec::const_u64(0, 20));
        let e1 = m.eq(&s, &SigSpec::const_u64(1, 20));
        let inner = m.mux(&p[2], &p[1], &e1);
        let outer = m.mux(&inner, &p[0], &e0);
        m.add_output("y", &outer);
        let opts = RestructureOptions {
            max_ctrl_width: 8,
            ..Default::default()
        };
        let stats = restructure(&mut m, &opts);
        assert_eq!(stats.candidates, 0);
        assert_eq!(stats.rebuilt, 0);
    }

    /// A pmux whose selects are eq cells over one bus restructures too
    /// (the extension that makes the Pmux case-lowering flow benefit).
    #[test]
    fn pmux_candidate_rebuilds() {
        let mut m = Module::new("pm");
        let s = m.add_input("s", 2);
        let p: Vec<SigSpec> = (0..4).map(|i| m.add_input(&format!("p{i}"), 8)).collect();
        let e0 = m.eq(&s, &SigSpec::const_u64(0, 2));
        let e1 = m.eq(&s, &SigSpec::const_u64(1, 2));
        let e2 = m.eq(&s, &SigSpec::const_u64(2, 2));
        let mut sels = e0.clone();
        sels.concat(&e1);
        sels.concat(&e2);
        let y = m.pmux(&p[3], &[p[0].clone(), p[1].clone(), p[2].clone()], &sels);
        m.add_output("y", &y);
        let stats = restructure(&mut m, &RestructureOptions::default());
        assert_eq!(stats.candidates, 1);
        assert_eq!(stats.rebuilt, 1);
        assert_eq!(stats.muxes_added, 3, "same optimum as the chain form");
        clean_pipeline(&mut m, 8);
        assert_eq!(m.stats().count("pmux"), 0);
        assert_eq!(m.stats().count("eq"), 0);
        assert_eq!(m.stats().count("mux"), 3);
        m.validate().unwrap();
    }

    /// Functional equivalence of a pmux rebuild, checked by simulation.
    #[test]
    fn pmux_rebuild_preserves_function() {
        let build = |restructured: bool| -> Module {
            let mut m = Module::new("pm");
            let s = m.add_input("s", 2);
            let p: Vec<SigSpec> = (0..4).map(|i| m.add_input(&format!("p{i}"), 4)).collect();
            let e0 = m.eq(&s, &SigSpec::const_u64(0, 2));
            let e1 = m.eq(&s, &SigSpec::const_u64(1, 2));
            let e2 = m.eq(&s, &SigSpec::const_u64(3, 2));
            let mut sels = e0.clone();
            sels.concat(&e1);
            sels.concat(&e2);
            let y = m.pmux(&p[3], &[p[0].clone(), p[1].clone(), p[2].clone()], &sels);
            m.add_output("y", &y);
            if restructured {
                restructure(&mut m, &RestructureOptions::default());
                clean_pipeline(&mut m, 8);
            }
            m
        };
        let orig = build(false);
        let opt = build(true);
        let r = smartly_aig::check_equiv(&orig, &opt, &smartly_aig::EquivOptions::default())
            .expect("cec runs");
        assert_eq!(r, smartly_aig::EquivResult::Equivalent);
    }

    /// Shared duplicate eq cells across arms still collect correctly.
    #[test]
    fn merged_eq_cells_shared_in_tree() {
        let mut m = Module::new("t");
        let s = m.add_input("s", 2);
        let p: Vec<SigSpec> = (0..3).map(|i| m.add_input(&format!("p{i}"), 8)).collect();
        let e0 = m.eq(&s, &SigSpec::const_u64(0, 2));
        // same eq feeds two muxes (post-opt_merge shape)
        let inner = m.mux(&p[2], &p[1], &e0);
        let outer = m.mux(&inner, &p[0], &e0);
        m.add_output("y", &outer);
        let stats = restructure(&mut m, &RestructureOptions::default());
        assert_eq!(stats.candidates, 1);
        // rebuild happens (eq freed outweighs the mux delta)
        assert_eq!(stats.rebuilt, 1);
        clean_pipeline(&mut m, 8);
        assert_eq!(m.stats().count("eq"), 0);
        m.validate().unwrap();
    }
}
