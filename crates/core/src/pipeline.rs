//! The optimization pipeline: the four configurations the paper measures.

use crate::query_engine::{SharedCexBank, SharedVerdictStore};
use crate::restructure::{restructure, RestructureOptions, RestructureStats};
use crate::sat_pass::{sat_redundancy_with, SatPassStats, SatRedundancyOptions, SweepContext};
use smartly_aig::{aig_area, check_equiv, EquivOptions, EquivResult};
use smartly_netlist::{Module, NetlistError};
use smartly_opt::{baseline_optimize, clean_pipeline};
use smartly_sat::Deadline;
use smartly_telemetry::{ArgValue, TraceHandle};
use std::sync::Arc;

/// Which optimizations run (paper Table III columns).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum OptLevel {
    /// Yosys-equivalent: `opt_muxtree` + cleanup only.
    Baseline,
    /// Baseline plus SAT-based redundancy elimination ("SAT").
    SatOnly,
    /// Baseline plus muxtree restructuring ("Rebuild").
    RebuildOnly,
    /// Everything ("Full").
    Full,
}

impl OptLevel {
    /// All four levels in paper order.
    pub const ALL: [OptLevel; 4] = [
        OptLevel::Baseline,
        OptLevel::SatOnly,
        OptLevel::RebuildOnly,
        OptLevel::Full,
    ];

    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            OptLevel::Baseline => "yosys",
            OptLevel::SatOnly => "sat",
            OptLevel::RebuildOnly => "rebuild",
            OptLevel::Full => "full",
        }
    }
}

/// A configured pass sequence.
///
/// See the [crate-level example](crate) for typical use.
#[derive(Clone, Debug)]
pub struct Pipeline {
    /// SAT-pass configuration.
    pub sat: SatRedundancyOptions,
    /// Restructuring configuration.
    pub rebuild: RestructureOptions,
    /// Maximum optimize rounds (each round: rebuild → sat → clean).
    pub rounds: usize,
    /// Check the result against the input with the AIG miter; the outcome
    /// lands in [`PipelineReport::equivalence`].
    pub verify: bool,
    /// Design-level shared counterexample bank this module's sweeps
    /// participate in (see [`SharedCexBank`]); `None` keeps all query
    /// state module-local. The driver attaches one bank per design so
    /// structurally similar modules seed each other's replay vectors.
    pub shared_bank: Option<Arc<dyn SharedCexBank>>,
    /// Design-level verdict store this module's sweeps consult and feed
    /// (see [`SharedVerdictStore`]); `None` keeps verdict reuse
    /// module-local. The driver attaches one store per design so
    /// warm-started runs replay a previous run's conclusive verdicts.
    pub shared_verdicts: Option<Arc<dyn SharedVerdictStore>>,
}

impl Default for Pipeline {
    fn default() -> Self {
        Pipeline {
            sat: SatRedundancyOptions::default(),
            rebuild: RestructureOptions::default(),
            rounds: 3,
            verify: false,
            shared_bank: None,
            shared_verdicts: None,
        }
    }
}

/// What a [`Pipeline::run`] did.
#[derive(Clone, Debug, Default)]
pub struct PipelineReport {
    /// AIG area before any optimization.
    pub area_before: usize,
    /// AIG area afterwards.
    pub area_after: usize,
    /// Rewrites applied by the Yosys-style baseline.
    pub baseline_rewrites: usize,
    /// Select/data pins applied by the SAT pass (summed over rounds).
    pub sat_rewrites: usize,
    /// Aggregated SAT-pass telemetry.
    pub sat_stats: SatPassStats,
    /// Aggregated restructuring telemetry.
    pub rebuild_stats: RestructureStats,
    /// Cells removed by cleanup.
    pub cells_cleaned: usize,
    /// Miter verdict when [`Pipeline::verify`] was set.
    pub equivalence: Option<EquivResult>,
}

impl PipelineReport {
    /// Fractional area reduction relative to the input (0.0–1.0).
    pub fn reduction(&self) -> f64 {
        if self.area_before == 0 {
            0.0
        } else {
            1.0 - self.area_after as f64 / self.area_before as f64
        }
    }
}

impl std::fmt::Display for PipelineReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "AIG area {} -> {} ({:.2}% reduction)",
            self.area_before,
            self.area_after,
            100.0 * self.reduction()
        )?;
        writeln!(
            f,
            "baseline rewrites: {}, SAT rewrites: {} (inference {}, sim {}, sat {}, unreachable {})",
            self.baseline_rewrites,
            self.sat_rewrites,
            self.sat_stats.by_inference,
            self.sat_stats.by_sim,
            self.sat_stats.by_sat,
            self.sat_stats.unreachable,
        )?;
        writeln!(
            f,
            "query funnel: {} queries (memo {} [carryover {}], disk-verdict {}, cex-replay {}, shared-cex {}, prefilter {} in {} rounds)",
            self.sat_stats.queries,
            self.sat_stats.by_memo,
            self.sat_stats.memo_carryover,
            self.sat_stats.by_disk_verdict,
            self.sat_stats.by_cex,
            self.sat_stats.by_shared_cex,
            self.sat_stats.by_prefilter,
            self.sat_stats.prefilter_rounds,
        )?;
        writeln!(f, "solver: {}", self.sat_stats.solver_summary())?;
        writeln!(
            f,
            "restructuring: {}/{} candidates rebuilt, muxes {} -> {}, eq freed {}",
            self.rebuild_stats.rebuilt,
            self.rebuild_stats.candidates,
            self.rebuild_stats.muxes_removed,
            self.rebuild_stats.muxes_added,
            self.rebuild_stats.eqs_freed,
        )?;
        write!(f, "cells cleaned: {}", self.cells_cleaned)?;
        if let Some(eq) = &self.equivalence {
            write!(f, "\nequivalence: {eq:?}")?;
        }
        Ok(())
    }
}

impl Pipeline {
    /// Creates a pipeline with default options.
    pub fn new() -> Self {
        Pipeline::default()
    }

    /// Optimizes `module` in place at the requested level.
    ///
    /// # Errors
    ///
    /// Propagates netlist errors from area computation or (when `verify`
    /// is set) the equivalence check; an inequivalent result is *not* an
    /// error — it is reported in [`PipelineReport::equivalence`].
    pub fn run(
        &self,
        module: &mut Module,
        level: OptLevel,
    ) -> Result<PipelineReport, NetlistError> {
        self.run_traced(module, level, &TraceHandle::disabled())
    }

    /// [`Pipeline::run`] with a span recorder: rounds and passes emit
    /// `round` / `pass:*` spans, and the SAT sweeps' query engines emit
    /// nested `query` / `sat_call` spans into the same handle.
    ///
    /// Telemetry only: the optimization performed — and every counter in
    /// the returned report — is identical with a disabled handle.
    pub fn run_traced(
        &self,
        module: &mut Module,
        level: OptLevel,
        trace: &TraceHandle,
    ) -> Result<PipelineReport, NetlistError> {
        self.run_with_deadline(module, level, trace, &Deadline::none())
    }

    /// [`Pipeline::run_traced`] under a cooperative [`Deadline`]: the
    /// token is checked at every round boundary and threaded through the
    /// sweep context into the query engine and the CDCL search loop
    /// (polled every few conflicts), so an expired wall-clock budget
    /// stops a stuck SAT call mid-flight instead of waiting for the
    /// pass to finish. Interrupted queries degrade to budget-limited
    /// `Unknown` verdicts — missed rewrites, never wrong ones — and are
    /// never published to a design-level verdict store; the driver
    /// reverts deadline-hit modules to their input netlist, so partial
    /// optimization under an expired deadline is never observable.
    pub fn run_with_deadline(
        &self,
        module: &mut Module,
        level: OptLevel,
        trace: &TraceHandle,
        deadline: &Deadline,
    ) -> Result<PipelineReport, NetlistError> {
        let original = if self.verify {
            Some(module.clone())
        } else {
            None
        };
        let mut report = PipelineReport {
            area_before: aig_area(module)?,
            ..Default::default()
        };

        {
            let _span = trace.scope("pass:baseline");
            report.baseline_rewrites += baseline_optimize(module);
        }

        // cross-round sweep state: the verdict memo persists over the
        // rounds below, with begin_round's dirty-set protocol dropping
        // exactly the entries whose cones rebuild/clean/pinning touched,
        // so later rounds skip re-deciding unchanged cones
        let mut sweep_ctx =
            SweepContext::new(self.shared_bank.clone(), self.shared_verdicts.clone());
        sweep_ctx.trace = trace.clone();
        sweep_ctx.deadline = deadline.clone();

        for round in 0..self.rounds {
            if deadline.was_tripped() || deadline.expired() {
                break;
            }
            let _round_span = trace.scope_with("round", &[("index", ArgValue::U64(round as u64))]);
            let mut changed = false;
            if matches!(level, OptLevel::RebuildOnly | OptLevel::Full) {
                let _span = trace.scope("pass:rebuild");
                let st = restructure(module, &self.rebuild);
                changed |= st.rebuilt > 0;
                report.rebuild_stats.candidates += st.candidates;
                report.rebuild_stats.rebuilt += st.rebuilt;
                report.rebuild_stats.muxes_removed += st.muxes_removed;
                report.rebuild_stats.muxes_added += st.muxes_added;
                report.rebuild_stats.eqs_freed += st.eqs_freed;
                report.cells_cleaned += clean_pipeline(module, 8);
            }
            if matches!(level, OptLevel::SatOnly | OptLevel::Full) {
                let _span = trace.scope("pass:sat");
                // the fingerprint pass only pays off when the engine (and
                // therefore the cross-round memo) is actually in play
                if self.sat.incremental {
                    report.sat_stats.memo_invalidated += sweep_ctx.begin_round(module);
                }
                let st = sat_redundancy_with(module, &self.sat, &mut sweep_ctx);
                changed |= st.rewrites > 0;
                report.sat_rewrites += st.rewrites;
                report.sat_stats.absorb(&st);
                report.cells_cleaned += clean_pipeline(module, 8);
                // pinned selects may expose new baseline opportunities
                report.baseline_rewrites += baseline_optimize(module);
            }
            if !changed {
                break;
            }
        }
        {
            let _span = trace.scope("pass:clean");
            report.cells_cleaned += clean_pipeline(module, 8);
        }

        report.area_after = aig_area(module)?;
        if let Some(orig) = original {
            let _span = trace.scope("pass:verify");
            let r = check_equiv(&orig, module, &EquivOptions::default())?;
            report.equivalence = Some(r);
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartly_netlist::SigSpec;

    fn fig3() -> Module {
        let mut m = Module::new("fig3");
        let a = m.add_input("a", 4);
        let b = m.add_input("b", 4);
        let c = m.add_input("c", 4);
        let s = m.add_input("s", 1);
        let r = m.add_input("r", 1);
        let sr = m.or(&s, &r);
        let inner = m.mux(&b, &a, &sr);
        let outer = m.mux(&c, &inner, &s);
        m.add_output("y", &outer);
        m
    }

    fn listing1() -> Module {
        let mut m = Module::new("listing1");
        let s = m.add_input("s", 2);
        let p: Vec<SigSpec> = (0..4).map(|i| m.add_input(&format!("p{i}"), 8)).collect();
        let e0 = m.eq(&s, &SigSpec::const_u64(0, 2));
        let e1 = m.eq(&s, &SigSpec::const_u64(1, 2));
        let e2 = m.eq(&s, &SigSpec::const_u64(2, 2));
        let m2 = m.mux(&p[3], &p[2], &e2);
        let m1 = m.mux(&m2, &p[1], &e1);
        let m0 = m.mux(&m1, &p[0], &e0);
        m.add_output("y", &m0);
        m
    }

    #[test]
    fn full_beats_baseline_on_fig3() {
        let mut base = fig3();
        let mut full = fig3();
        let pipe = Pipeline {
            verify: true,
            ..Default::default()
        };
        let rb = pipe.run(&mut base, OptLevel::Baseline).unwrap();
        let rf = pipe.run(&mut full, OptLevel::Full).unwrap();
        assert!(rf.area_after < rb.area_after);
        assert_eq!(rf.equivalence, Some(EquivResult::Equivalent));
        assert_eq!(rb.equivalence, Some(EquivResult::Equivalent));
    }

    #[test]
    fn rebuild_beats_baseline_on_listing1() {
        let mut base = listing1();
        let mut reb = listing1();
        let pipe = Pipeline {
            verify: true,
            ..Default::default()
        };
        let rb = pipe.run(&mut base, OptLevel::Baseline).unwrap();
        let rr = pipe.run(&mut reb, OptLevel::RebuildOnly).unwrap();
        assert!(
            rr.area_after < rb.area_after,
            "rebuild {} must beat baseline {}",
            rr.area_after,
            rb.area_after
        );
        assert_eq!(rr.equivalence, Some(EquivResult::Equivalent));
        assert_eq!(rr.rebuild_stats.rebuilt, 1);
    }

    #[test]
    fn all_levels_preserve_function() {
        for level in OptLevel::ALL {
            for builder in [fig3 as fn() -> Module, listing1 as fn() -> Module] {
                let mut m = builder();
                let pipe = Pipeline {
                    verify: true,
                    ..Default::default()
                };
                let rep = pipe.run(&mut m, level).unwrap();
                assert_eq!(
                    rep.equivalence,
                    Some(EquivResult::Equivalent),
                    "level {level:?}"
                );
            }
        }
    }

    #[test]
    fn reduction_is_monotone_in_level() {
        // Full ≤ min(Sat, Rebuild) on a circuit with both opportunities
        let build = || {
            let mut m = Module::new("both");
            let s = m.add_input("s", 2);
            let p: Vec<SigSpec> = (0..4).map(|i| m.add_input(&format!("p{i}"), 8)).collect();
            let e0 = m.eq(&s, &SigSpec::const_u64(0, 2));
            let e1 = m.eq(&s, &SigSpec::const_u64(1, 2));
            let e2 = m.eq(&s, &SigSpec::const_u64(2, 2));
            let m2 = m.mux(&p[3], &p[2], &e2);
            let m1 = m.mux(&m2, &p[1], &e1);
            let m0 = m.mux(&m1, &p[0], &e0);
            m.add_output("y1", &m0);
            // plus a Fig. 3 cone
            let q = m.add_input("q", 1);
            let r = m.add_input("r", 1);
            let qr = m.or(&q, &r);
            let inner = m.mux(&p[1], &p[0], &qr);
            let outer = m.mux(&p[2], &inner, &q);
            m.add_output("y2", &outer);
            m
        };
        let mut areas = std::collections::HashMap::new();
        for level in OptLevel::ALL {
            let mut m = build();
            let rep = Pipeline::default().run(&mut m, level).unwrap();
            areas.insert(level, rep.area_after);
        }
        assert!(areas[&OptLevel::SatOnly] <= areas[&OptLevel::Baseline]);
        assert!(areas[&OptLevel::RebuildOnly] <= areas[&OptLevel::Baseline]);
        assert!(areas[&OptLevel::Full] <= areas[&OptLevel::SatOnly]);
        assert!(areas[&OptLevel::Full] <= areas[&OptLevel::RebuildOnly]);
        assert!(areas[&OptLevel::Full] < areas[&OptLevel::Baseline]);
    }
}
