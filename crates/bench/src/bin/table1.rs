//! Regenerates the paper's **Table I** — the inference rules for `or`
//! cells — by actually running the inference engine on a two-input OR and
//! printing which conclusions each premise yields.
//!
//! `cargo run --release -p smartly-bench --bin table1`

use smartly_core::inference::{propagate, InferOutcome};
use smartly_core::subgraph;
use smartly_netlist::{Module, NetIndex, SigBit};
use std::collections::HashMap;

fn demo(premises: &[(&str, bool)], expect: &[(&str, bool)]) -> (String, String, bool) {
    let mut m = Module::new("t");
    let a = m.add_input("a", 1);
    let b = m.add_input("b", 1);
    let y = m.or(&a, &b);
    m.add_output("y", &y);
    let index = NetIndex::build(&m);
    let ranks: HashMap<_, _> = m
        .topo_order()
        .expect("acyclic")
        .into_iter()
        .enumerate()
        .map(|(i, c)| (c, i))
        .collect();

    let bit_of = |name: &str| -> SigBit {
        match name {
            "a" => a.bit(0),
            "b" => b.bit(0),
            _ => index.canon(y.bit(0)),
        }
    };
    let mut assign: HashMap<SigBit, bool> = HashMap::new();
    for (name, v) in premises {
        assign.insert(index.canon(bit_of(name)), *v);
    }
    let (sub, _) = subgraph::extract(&m, &index, &ranks, index.canon(y.bit(0)), &assign, 4, true);
    let outcome = propagate(&m, &index, &sub, &mut assign);
    let ok = !matches!(outcome, InferOutcome::Contradiction)
        && expect
            .iter()
            .all(|(name, v)| assign.get(&index.canon(bit_of(name))) == Some(v));

    let fmt = |items: &[(&str, bool)]| {
        items
            .iter()
            .map(|(n, v)| {
                let lhs = if *n == "y" { "a|b" } else { n };
                format!("{lhs}={}", if *v { "true" } else { "false" })
            })
            .collect::<Vec<_>>()
            .join("  ")
    };
    (fmt(premises), fmt(expect), ok)
}

fn main() {
    println!("Table I — inference rules for OR cells (verified live)");
    println!("{:34} {:28} derived?", "Condition", "Result");
    type Assignments<'a> = Vec<(&'a str, bool)>;
    let rows: Vec<(Assignments, Assignments)> = vec![
        (vec![("a", true)], vec![("y", true)]),
        (vec![("b", true)], vec![("y", true)]),
        (vec![("a", false), ("b", false)], vec![("y", false)]),
        (vec![("y", false)], vec![("a", false), ("b", false)]),
        (vec![("y", true), ("a", false)], vec![("b", true)]),
        (vec![("y", true), ("b", false)], vec![("a", true)]),
    ];
    for (premises, expect) in rows {
        let (c, r, ok) = demo(&premises, &expect);
        println!("{c:34} {r:28} {ok}");
    }
}
