//! Ablations of smaRTLy's design choices:
//!
//! * **A1 — Theorem II.1 sub-graph pruning**: gates gathered vs. kept
//!   (the paper claims ~80% of gates are dismissed) and its effect on
//!   runtime.
//! * **A2 — hybrid decision thresholds**: all-simulation vs. hybrid vs.
//!   all-SAT.
//! * **A3 — ADD bit ordering**: the greedy heuristic vs. fixed orders on
//!   priority-decode tables (paper Listing 2: 3 vs. 7 muxes).
//! * **A5 — design-level shared knowledge base**: the whole corpus as
//!   one multi-module design, optimized with and without the shared
//!   counterexample bank; areas must match exactly.
//!
//! `cargo run --release -p smartly-bench --bin ablation -- [tiny|small|paper]`

use smartly_add::{Add, FunctionTable};
use smartly_bench::scale_from_args;
use smartly_core::{sat_redundancy, SatRedundancyOptions};
use smartly_driver::{optimize_design, DriverOptions};
use smartly_netlist::Design;
use smartly_opt::{baseline_optimize, clean_pipeline};
use smartly_workloads::public_corpus;

fn main() {
    let scale = scale_from_args();

    // ---------------------------------------------------- A1: pruning
    println!("A1 — Theorem II.1 sub-graph pruning (scale: {scale:?})");
    println!(
        "{:14} {:>10} {:>10} {:>10} {:>10} {:>9} {:>9}",
        "case", "gathered", "kept", "dismissed", "rewrites", "t_on(ms)", "t_off(ms)"
    );
    for case in public_corpus(scale).into_iter().take(5) {
        let mut with = case.compile().expect("compiles");
        baseline_optimize(&mut with);
        let mut without = with.clone();

        let t0 = std::time::Instant::now();
        let on = sat_redundancy(
            &mut with,
            &SatRedundancyOptions {
                prune: true,
                measure_gather: true,
                ..Default::default()
            },
        );
        let t_on = t0.elapsed().as_millis();
        clean_pipeline(&mut with, 8);

        let t1 = std::time::Instant::now();
        let off = sat_redundancy(
            &mut without,
            &SatRedundancyOptions {
                prune: false,
                measure_gather: true,
                ..Default::default()
            },
        );
        let t_off = t1.elapsed().as_millis();
        clean_pipeline(&mut without, 8);

        let dismissed = if on.gates_before_prune > 0 {
            100.0 * (1.0 - on.gates_after_prune as f64 / on.gates_before_prune as f64)
        } else {
            0.0
        };
        assert_eq!(on.rewrites, off.rewrites, "pruning must not change results");
        println!(
            "{:14} {:>10} {:>10} {:>9.1}% {:>10} {:>9} {:>9}",
            case.name,
            on.gates_before_prune,
            on.gates_after_prune,
            dismissed,
            on.rewrites,
            t_on,
            t_off
        );
    }

    // ------------------------------------------- A2: hybrid thresholds
    println!("\nA2 — hybrid decision procedure (wb_conmax)");
    println!(
        "{:24} {:>9} {:>7} {:>7} {:>9} {:>8}",
        "configuration", "rewrites", "by_sim", "by_sat", "by_infer", "t(ms)"
    );
    let case = public_corpus(scale)
        .into_iter()
        .find(|c| c.name == "wb_conmax")
        .expect("wb_conmax exists");
    for (name, sim_threshold, inference) in [
        ("hybrid (default)", 10usize, true),
        ("simulation only", 64, true),
        ("SAT only", 0, true),
        ("no Table I inference", 10, false),
    ] {
        let mut m = case.compile().expect("compiles");
        baseline_optimize(&mut m);
        let t = std::time::Instant::now();
        let stats = sat_redundancy(
            &mut m,
            &SatRedundancyOptions {
                sim_threshold,
                inference,
                ..Default::default()
            },
        );
        println!(
            "{:24} {:>9} {:>7} {:>7} {:>9} {:>8}",
            name,
            stats.rewrites,
            stats.by_sim,
            stats.by_sat,
            stats.by_inference,
            t.elapsed().as_millis()
        );
    }

    // ---------------------------------------- A4: query-engine funnel
    println!("\nA4 — incremental query engine vs fresh solver per query");
    println!(
        "{:14} {:>8} {:>6} {:>6} {:>9} {:>8} {:>8}",
        "case", "queries", "memo", "cex", "prefilter", "t_inc", "t_fresh"
    );
    for case in public_corpus(scale).into_iter().take(5) {
        let mut inc = case.compile().expect("compiles");
        baseline_optimize(&mut inc);
        let mut fresh = inc.clone();

        // a generous budget keeps the verdict-identity assert exact: a
        // budget-limited Unknown can land on either side of the limit
        // depending on accumulated solver state
        let a4 = SatRedundancyOptions {
            conflict_budget: 1_000_000,
            ..Default::default()
        };
        let t0 = std::time::Instant::now();
        let on = sat_redundancy(
            &mut inc,
            &SatRedundancyOptions {
                incremental: true,
                ..a4
            },
        );
        let t_inc = t0.elapsed().as_millis();

        let t1 = std::time::Instant::now();
        let off = sat_redundancy(
            &mut fresh,
            &SatRedundancyOptions {
                incremental: false,
                ..a4
            },
        );
        let t_fresh = t1.elapsed().as_millis();
        assert_eq!(on.rewrites, off.rewrites, "funnel must not change results");
        println!(
            "{:14} {:>8} {:>6} {:>6} {:>9} {:>7}ms {:>7}ms",
            case.name, on.queries, on.by_memo, on.by_cex, on.by_prefilter, t_inc, t_fresh
        );
    }

    // ------------------------------ A5: design-level shared knowledge
    println!("\nA5 — design-level shared counterexample bank (whole corpus as one design)");
    println!(
        "{:10} {:>9} {:>11} {:>9} {:>7} {:>7} {:>8}",
        "bank", "queries", "shared-cex", "published", "hits", "t(ms)", "area"
    );
    let pristine: Vec<_> = public_corpus(scale)
        .into_iter()
        .map(|c| c.compile().expect("compiles"))
        .collect();
    let mut areas = Vec::new();
    for share in [true, false] {
        let mut design = Design::from_modules(pristine.clone());
        let opts = DriverOptions {
            share_knowledge: share,
            memoize: false,
            ..Default::default()
        };
        let t = std::time::Instant::now();
        let report = optimize_design(&mut design, &opts).expect("driver");
        let wall = t.elapsed().as_millis();
        let (mut queries, mut shared_cex) = (0usize, 0usize);
        for m in &report.modules {
            if let Some(r) = &m.report {
                queries += r.sat_stats.queries;
                shared_cex += r.sat_stats.by_shared_cex;
            }
        }
        let (published, hits) = report.knowledge.map_or((0, 0), |k| (k.published, k.hits));
        areas.push(report.area_after());
        println!(
            "{:10} {:>9} {:>11} {:>9} {:>7} {:>7} {:>8}",
            if share { "on" } else { "off" },
            queries,
            shared_cex,
            published,
            hits,
            wall,
            report.area_after(),
        );
    }
    assert_eq!(
        areas[0], areas[1],
        "the shared bank must not change emitted areas"
    );

    // the near-miss probe design is where sharing pays: every module
    // needs the same rare-polarity SAT witness, and with the bank on,
    // one module's model answers everyone else's query
    println!("\nA5b — near-miss probe design (8 parameter variants, 4 cones each)");
    println!(
        "{:10} {:>9} {:>11} {:>10} {:>13} {:>7}",
        "bank", "queries", "shared-cex", "published", "propagations", "t(ms)"
    );
    let mut probe_areas = Vec::new();
    for share in [true, false] {
        let mut design = Design::from_modules(smartly_workloads::knowledge_probes(8, 4, 12));
        let opts = DriverOptions {
            share_knowledge: share,
            ..Default::default()
        };
        let t = std::time::Instant::now();
        let report = optimize_design(&mut design, &opts).expect("driver");
        let wall = t.elapsed().as_millis();
        let (mut queries, mut shared_cex, mut props) = (0usize, 0usize, 0u64);
        for m in &report.modules {
            if let Some(r) = &m.report {
                queries += r.sat_stats.queries;
                shared_cex += r.sat_stats.by_shared_cex;
                props += r.sat_stats.solver_propagations;
            }
        }
        let published = report.knowledge.map_or(0, |k| k.published);
        probe_areas.push(report.area_after());
        println!(
            "{:10} {:>9} {:>11} {:>10} {:>13} {:>7}",
            if share { "on" } else { "off" },
            queries,
            shared_cex,
            published,
            props,
            wall,
        );
    }
    assert_eq!(probe_areas[0], probe_areas[1], "probe areas must match");

    // ------------------------------------------------ A3: ADD ordering
    println!("\nA3 — ADD bit ordering on priority decodes (paper Listing 2)");
    println!(
        "{:>6} {:>10} {:>12} {:>12}",
        "width", "greedy", "worst-fixed", "best-fixed"
    );
    for width in 3u32..=8 {
        // one-hot priority decode: bit k set (checked high to low) → leaf k
        let mut cubes = Vec::new();
        for k in (0..width).rev() {
            let mut cube = vec![None; width as usize];
            for j in (k + 1)..width {
                cube[j as usize] = Some(false);
            }
            cube[k as usize] = Some(true);
            cubes.push((cube, width - 1 - k));
        }
        let table = FunctionTable::from_priority_cubes(width, width, &cubes);
        let greedy = Add::build_greedy(&table).node_count();
        let descending: Vec<u32> = (0..width).rev().collect();
        let ascending: Vec<u32> = (0..width).collect();
        let best = Add::build_with_order(&table, &descending).node_count();
        let worst = Add::build_with_order(&table, &ascending).node_count();
        println!("{width:>6} {greedy:>10} {worst:>12} {best:>12}");
    }
}
