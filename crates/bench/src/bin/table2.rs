//! Regenerates the paper's **Table II**: AIG areas on the public corpus —
//! Original, after Yosys, after smaRTLy, and the extra reduction ratio.
//!
//! `cargo run --release -p smartly-bench --bin table2 -- [tiny|small|paper]`

use smartly_bench::{pct, run_level, scale_from_args};
use smartly_core::OptLevel;
use smartly_workloads::public_corpus;

/// The ratios the paper reports, for side-by-side comparison.
const PAPER_RATIO: &[(&str, f64)] = &[
    ("top_cache_axi", 24.92),
    ("pci_bridge32", 6.42),
    ("wb_conmax", 27.79),
    ("mem_ctrl", 0.53),
    ("wb_dma", 13.89),
    ("tv80", 2.31),
    ("usb_funct", 3.64),
    ("ethernet", 1.15),
    ("riscv", 2.14),
    ("ac97_ctrl", 6.69),
];

fn main() {
    let scale = scale_from_args();
    println!("Table II — AIG areas (scale: {scale:?})");
    println!(
        "{:14} {:>9} {:>9} {:>9} {:>8} {:>8}",
        "Case", "Original", "Yosys", "smaRTLy", "Ratio", "paper"
    );
    let mut sum_orig = 0usize;
    let mut sum_yosys = 0usize;
    let mut sum_smartly = 0usize;
    let mut sum_ratio = 0.0;
    let mut sum_paper = 0.0;
    let corpus = public_corpus(scale);
    let n = corpus.len();
    for case in corpus {
        let yosys = run_level(&case, OptLevel::Baseline);
        let full = run_level(&case, OptLevel::Full);
        let ratio = pct(yosys.area_after, full.area_after);
        let paper = PAPER_RATIO
            .iter()
            .find(|(n, _)| *n == case.name)
            .map(|(_, v)| *v)
            .unwrap_or(0.0);
        println!(
            "{:14} {:>9} {:>9} {:>9} {:>7.2}% {:>7.2}%",
            case.name, yosys.area_before, yosys.area_after, full.area_after, ratio, paper
        );
        sum_orig += yosys.area_before;
        sum_yosys += yosys.area_after;
        sum_smartly += full.area_after;
        sum_ratio += ratio;
        sum_paper += paper;
    }
    println!(
        "{:14} {:>9} {:>9} {:>9} {:>7.2}% {:>7.2}%",
        "Average",
        sum_orig / n,
        sum_yosys / n,
        sum_smartly / n,
        sum_ratio / n as f64,
        sum_paper / n as f64,
    );
}
