//! Regenerates the paper's **Table III**: AIG-area reduction relative to
//! the Yosys baseline for each method alone (SAT, Rebuild) and combined
//! (Full).
//!
//! `cargo run --release -p smartly-bench --bin table3 -- [tiny|small|paper]`

use smartly_bench::{pct, run_level, scale_from_args};
use smartly_core::OptLevel;
use smartly_workloads::public_corpus;

/// Paper Table III values (SAT, Rebuild, Full) for comparison.
const PAPER: &[(&str, f64, f64, f64)] = &[
    ("top_cache_axi", 0.01, 24.91, 24.92),
    ("pci_bridge32", 0.71, 2.01, 6.42),
    ("wb_conmax", 19.05, 4.65, 27.79),
    ("mem_ctrl", 0.12, 0.47, 0.53),
    ("wb_dma", 11.52, 0.80, 13.89),
    ("tv80", 0.71, 1.61, 2.31),
    ("usb_funct", 1.60, 1.69, 3.64),
    ("ethernet", 0.49, 0.48, 1.15),
    ("riscv", 0.17, 1.97, 2.14),
    ("ac97_ctrl", 1.34, 5.36, 6.69),
];

fn main() {
    let scale = scale_from_args();
    println!("Table III — reduction vs. Yosys by method (scale: {scale:?})");
    println!(
        "{:14} {:>8} {:>8} {:>8}   paper: {:>6} {:>8} {:>6}",
        "Case", "SAT", "Rebuild", "Full", "SAT", "Rebuild", "Full"
    );
    let mut sums = [0.0f64; 3];
    let mut paper_sums = [0.0f64; 3];
    let corpus = public_corpus(scale);
    let n = corpus.len();
    for case in corpus {
        let yosys = run_level(&case, OptLevel::Baseline);
        let sat = run_level(&case, OptLevel::SatOnly);
        let reb = run_level(&case, OptLevel::RebuildOnly);
        let full = run_level(&case, OptLevel::Full);
        let base = yosys.area_after;
        let r = [
            pct(base, sat.area_after),
            pct(base, reb.area_after),
            pct(base, full.area_after),
        ];
        let p = PAPER
            .iter()
            .find(|(nm, ..)| *nm == case.name)
            .map(|&(_, a, b, c)| [a, b, c])
            .unwrap_or([0.0; 3]);
        println!(
            "{:14} {:>7.2}% {:>7.2}% {:>7.2}%   paper: {:>5.2}% {:>7.2}% {:>5.2}%",
            case.name, r[0], r[1], r[2], p[0], p[1], p[2]
        );
        for k in 0..3 {
            sums[k] += r[k];
            paper_sums[k] += p[k];
        }
    }
    println!(
        "{:14} {:>7.2}% {:>7.2}% {:>7.2}%   paper: {:>5.2}% {:>7.2}% {:>5.2}%",
        "Average",
        sums[0] / n as f64,
        sums[1] / n as f64,
        sums[2] / n as f64,
        paper_sums[0] / n as f64,
        paper_sums[1] / n as f64,
        paper_sums[2] / n as f64,
    );
}
