//! Regenerates the paper's **§IV-B industrial experiment**: on
//! selection-dominated designs the Yosys baseline finds almost nothing
//! while smaRTLy removes dramatically more AIG area (paper: 47.2% more).
//!
//! `cargo run --release -p smartly-bench --bin industrial -- [tiny|small|paper]`

use smartly_bench::{pct, run_level, scale_from_args};
use smartly_core::OptLevel;
use smartly_workloads::{industrial_corpus, IndustrialSpec};

fn main() {
    let scale = scale_from_args();
    let spec = IndustrialSpec {
        scale,
        ..Default::default()
    };
    println!("Industrial suite (scale: {scale:?}; paper reports +47.2% vs Yosys)");
    println!(
        "{:8} {:>9} {:>9} {:>9} {:>8} {:>9} {:>10}",
        "point", "original", "yosys", "smartly", "yosys%", "smartly%", "extra%"
    );
    let corpus = industrial_corpus(&spec);
    let n = corpus.len();
    let mut extra_sum = 0.0;
    for case in &corpus {
        let yosys = run_level(case, OptLevel::Baseline);
        let full = run_level(case, OptLevel::Full);
        let extra = pct(yosys.area_after, full.area_after);
        extra_sum += extra;
        println!(
            "{:8} {:>9} {:>9} {:>9} {:>7.1}% {:>8.1}% {:>9.1}%",
            case.name,
            yosys.area_before,
            yosys.area_after,
            full.area_after,
            pct(yosys.area_before, yosys.area_after),
            pct(full.area_before, full.area_after),
            extra
        );
    }
    println!(
        "\naverage extra reduction vs Yosys: {:.1}%  (paper: 47.2%)",
        extra_sum / n as f64
    );
}
