//! Shared harness code for the table-reproducing binaries and the
//! Criterion benches.
//!
//! Each binary regenerates one artifact of the paper's evaluation:
//!
//! | binary | artifact |
//! |--------|----------|
//! | `table1` | Table I — the `or`-cell inference rules, demonstrated |
//! | `table2` | Table II — AIG areas Original / Yosys / smaRTLy / Ratio |
//! | `table3` | Table III — per-method reduction (SAT / Rebuild / Full) |
//! | `industrial` | §IV-B — the industrial-suite gap |
//! | `ablation` | design-choice ablations (pruning, hybrid, ADD order) |
//!
//! Run e.g. `cargo run --release -p smartly-bench --bin table2 -- paper`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use smartly_core::{OptLevel, Pipeline, PipelineReport};
use smartly_netlist::Module;
use smartly_workloads::{BenchCase, Scale};

/// Parses the common `tiny|small|paper|medium|large` CLI argument
/// (default `paper`).
pub fn scale_from_args() -> Scale {
    std::env::args()
        .nth(1)
        .as_deref()
        .and_then(Scale::from_name)
        .unwrap_or(Scale::Paper)
}

/// One case optimized at one level.
#[derive(Clone, Debug)]
pub struct LevelResult {
    /// Optimization level.
    pub level: OptLevel,
    /// AIG area before any optimization.
    pub area_before: usize,
    /// AIG area afterwards.
    pub area_after: usize,
    /// Wall-clock optimization time in milliseconds.
    pub millis: u128,
    /// The raw pipeline report.
    pub report: PipelineReport,
}

/// Runs `case` at `level` and collects the result.
///
/// # Panics
///
/// Panics if the generated source fails to compile or optimize — a
/// harness bug, covered by the workload tests.
pub fn run_level(case: &BenchCase, level: OptLevel) -> LevelResult {
    let mut module: Module = case.compile().expect("corpus compiles");
    let pipeline = Pipeline::default();
    let start = std::time::Instant::now();
    let report = pipeline.run(&mut module, level).expect("pipeline runs");
    LevelResult {
        level,
        area_before: report.area_before,
        area_after: report.area_after,
        millis: start.elapsed().as_millis(),
        report,
    }
}

/// Runs all four levels on a case.
pub fn run_all_levels(case: &BenchCase) -> Vec<LevelResult> {
    OptLevel::ALL.iter().map(|&l| run_level(case, l)).collect()
}

/// Percentage reduction of `new` relative to `old`.
pub fn pct(old: usize, new: usize) -> f64 {
    if old == 0 {
        0.0
    } else {
        100.0 * (1.0 - new as f64 / old as f64)
    }
}
