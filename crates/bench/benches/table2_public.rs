//! Criterion timing of the full Table II experiment: the complete
//! optimization pipeline per public-corpus case (Tiny scale so `cargo
//! bench` stays fast; the table *values* come from the `table2` binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smartly_core::{OptLevel, Pipeline};
use smartly_workloads::{public_corpus, Scale};

fn bench_pipeline_per_case(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2/full_pipeline");
    group.sample_size(10);
    for case in public_corpus(Scale::Tiny) {
        let module = case.compile().expect("compiles");
        group.bench_with_input(
            BenchmarkId::from_parameter(&case.name),
            &module,
            |b, m| {
                b.iter_batched(
                    || m.clone(),
                    |mut m| {
                        Pipeline::default()
                            .run(&mut m, OptLevel::Full)
                            .expect("pipeline")
                            .area_after
                    },
                    criterion::BatchSize::SmallInput,
                )
            },
        );
    }
    group.finish();
}

fn bench_levels_on_one_case(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2/levels_wb_conmax");
    group.sample_size(10);
    let module = public_corpus(Scale::Tiny)
        .into_iter()
        .find(|c| c.name == "wb_conmax")
        .expect("exists")
        .compile()
        .expect("compiles");
    for level in OptLevel::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(level.name()),
            &level,
            |b, &level| {
                b.iter_batched(
                    || module.clone(),
                    |mut m| {
                        Pipeline::default()
                            .run(&mut m, level)
                            .expect("pipeline")
                            .area_after
                    },
                    criterion::BatchSize::SmallInput,
                )
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline_per_case, bench_levels_on_one_case);
criterion_main!(benches);
