//! Criterion benchmarks for ADD construction: the greedy heuristic vs.
//! fixed variable orders on structured and random tables.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smartly_add::{Add, FunctionTable};

fn priority_decode(width: u32) -> FunctionTable {
    let mut cubes = Vec::new();
    for k in (0..width).rev() {
        let mut cube = vec![None; width as usize];
        for j in (k + 1)..width {
            cube[j as usize] = Some(false);
        }
        cube[k as usize] = Some(true);
        cubes.push((cube, width - 1 - k));
    }
    FunctionTable::from_priority_cubes(width, width, &cubes)
}

fn random_table(width: u32, terminals: u32, seed: u64) -> FunctionTable {
    let mut t = FunctionTable::new_filled(width, 0);
    let mut state = seed | 1;
    for i in 0..(1usize << width) {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        t.set(i, (state % terminals as u64) as u32);
    }
    t
}

fn bench_greedy(c: &mut Criterion) {
    let mut group = c.benchmark_group("add/greedy");
    for width in [6u32, 8, 10] {
        let decode = priority_decode(width);
        group.bench_with_input(
            BenchmarkId::new("priority_decode", width),
            &decode,
            |b, t| b.iter(|| Add::build_greedy(t).node_count()),
        );
        let random = random_table(width, 4, 0xadd);
        group.bench_with_input(BenchmarkId::new("random4", width), &random, |b, t| {
            b.iter(|| Add::build_greedy(t).node_count())
        });
    }
    group.finish();
}

fn bench_fixed_order(c: &mut Criterion) {
    let mut group = c.benchmark_group("add/fixed_order");
    for width in [6u32, 8, 10] {
        let decode = priority_decode(width);
        let order: Vec<u32> = (0..width).rev().collect();
        group.bench_with_input(BenchmarkId::from_parameter(width), &decode, |b, t| {
            b.iter(|| Add::build_with_order(t, &order).node_count())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_greedy, bench_fixed_order);
criterion_main!(benches);
