//! Criterion benchmarks for the redundancy pass's query engine: the
//! incremental four-layer funnel against the legacy fresh-solver path,
//! on the SAT-heavy corpus cases.
//!
//! Excluded from discovery (`autobenches = false`) like the sibling
//! benches until a networked environment can supply `criterion`.

use criterion::{criterion_group, criterion_main, Criterion};
use smartly_core::{sat_redundancy, SatRedundancyOptions};
use smartly_netlist::Module;
use smartly_opt::baseline_optimize;
use smartly_workloads::{public_corpus, Scale};

fn corpus_case(name: &str) -> Module {
    let mut m = public_corpus(Scale::Tiny)
        .into_iter()
        .find(|c| c.name == name)
        .expect("case exists")
        .compile()
        .expect("compiles");
    baseline_optimize(&mut m);
    m
}

fn bench_funnel(c: &mut Criterion) {
    for case in ["wb_conmax", "wb_dma", "pci_bridge32"] {
        let module = corpus_case(case);
        for (tag, incremental) in [("incremental", true), ("fresh", false)] {
            c.bench_function(&format!("query_engine/{case}/{tag}"), |b| {
                b.iter_batched(
                    || module.clone(),
                    |mut m| {
                        sat_redundancy(
                            &mut m,
                            &SatRedundancyOptions {
                                incremental,
                                ..Default::default()
                            },
                        )
                    },
                    criterion::BatchSize::SmallInput,
                )
            });
        }
    }
}

criterion_group!(benches, bench_funnel);
criterion_main!(benches);
