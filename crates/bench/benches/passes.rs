//! Criterion benchmarks for the optimization passes themselves: the
//! Yosys-style baseline, the smaRTLy SAT pass, muxtree restructuring,
//! `aigmap` and the equivalence checker, each on a fixed corpus case.

use criterion::{criterion_group, criterion_main, Criterion};
use smartly_aig::{aigmap, check_equiv, EquivOptions};
use smartly_core::{
    restructure, sat_redundancy, OptLevel, Pipeline, RestructureOptions, SatRedundancyOptions,
};
use smartly_netlist::Module;
use smartly_opt::{baseline_optimize, clean_pipeline, opt_clean, opt_const, CleanOptions};
use smartly_workloads::{public_corpus, Scale};

fn corpus_case(name: &str) -> Module {
    public_corpus(Scale::Tiny)
        .into_iter()
        .find(|c| c.name == name)
        .expect("case exists")
        .compile()
        .expect("compiles")
}

fn bench_baseline(c: &mut Criterion) {
    let module = corpus_case("wb_conmax");
    c.bench_function("passes/baseline_optimize", |b| {
        b.iter_batched(
            || module.clone(),
            |mut m| baseline_optimize(&mut m),
            criterion::BatchSize::SmallInput,
        )
    });
}

fn bench_sat_pass(c: &mut Criterion) {
    let mut module = corpus_case("wb_conmax");
    baseline_optimize(&mut module);
    c.bench_function("passes/sat_redundancy", |b| {
        b.iter_batched(
            || module.clone(),
            |mut m| {
                let stats = sat_redundancy(&mut m, &SatRedundancyOptions::default());
                clean_pipeline(&mut m, 8);
                stats.rewrites
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

fn bench_restructure(c: &mut Criterion) {
    let mut module = corpus_case("top_cache_axi");
    baseline_optimize(&mut module);
    c.bench_function("passes/restructure", |b| {
        b.iter_batched(
            || module.clone(),
            |mut m| {
                let stats = restructure(&mut m, &RestructureOptions::default());
                clean_pipeline(&mut m, 8);
                stats.rebuilt
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

fn bench_cleanup(c: &mut Criterion) {
    let module = corpus_case("mem_ctrl");
    c.bench_function("passes/opt_const+clean", |b| {
        b.iter_batched(
            || module.clone(),
            |mut m| {
                let n = opt_const(&mut m);
                n + opt_clean(&mut m, &CleanOptions::default())
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

fn bench_aigmap(c: &mut Criterion) {
    let module = corpus_case("mem_ctrl");
    c.bench_function("passes/aigmap", |b| {
        b.iter(|| aigmap(&module).expect("maps").area())
    });
}

fn bench_cec(c: &mut Criterion) {
    let original = corpus_case("ac97_ctrl");
    let mut optimized = original.clone();
    Pipeline::default()
        .run(&mut optimized, OptLevel::Full)
        .expect("pipeline");
    c.bench_function("passes/check_equiv", |b| {
        b.iter(|| check_equiv(&original, &optimized, &EquivOptions::default()).expect("cec"))
    });
}

criterion_group!(
    benches,
    bench_baseline,
    bench_sat_pass,
    bench_restructure,
    bench_cleanup,
    bench_aigmap,
    bench_cec
);
criterion_main!(benches);
