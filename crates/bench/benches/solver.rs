//! Criterion micro-benchmarks for the CDCL SAT solver.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smartly_sat::{Lit, SolveResult, Solver, Var};

/// Builds a pigeonhole instance: `n` pigeons into `n-1` holes (UNSAT).
fn pigeonhole(n: usize) -> Solver {
    let m = n - 1;
    let mut s = Solver::new();
    let vars: Vec<Vec<Var>> = (0..n)
        .map(|_| (0..m).map(|_| s.new_var()).collect())
        .collect();
    for row in &vars {
        s.add_clause(row.iter().map(|&v| Lit::pos(v)));
    }
    for j in 0..m {
        for i1 in 0..n {
            for i2 in (i1 + 1)..n {
                s.add_clause([Lit::neg(vars[i1][j]), Lit::neg(vars[i2][j])]);
            }
        }
    }
    s
}

/// Deterministic random 3-SAT at the given clause/variable ratio.
fn random_3sat(nvars: usize, ratio: f64, seed: u64) -> Solver {
    let mut s = Solver::new();
    let vars: Vec<Var> = (0..nvars).map(|_| s.new_var()).collect();
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let nclauses = (nvars as f64 * ratio) as usize;
    for _ in 0..nclauses {
        let lits: Vec<Lit> = (0..3)
            .map(|_| {
                let v = vars[(next() % nvars as u64) as usize];
                Lit::new(v, next() & 1 == 1)
            })
            .collect();
        s.add_clause(lits);
    }
    s
}

fn bench_pigeonhole(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver/pigeonhole");
    for n in [6usize, 7, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut s = pigeonhole(n);
                assert_eq!(s.solve(), SolveResult::Unsat);
            })
        });
    }
    group.finish();
}

fn bench_random_3sat(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver/random3sat");
    // under-constrained (SAT) and near-threshold instances
    for &(nvars, ratio) in &[(100usize, 3.0f64), (100, 4.2), (200, 3.0)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("v{nvars}_r{ratio}")),
            &(nvars, ratio),
            |b, &(nvars, ratio)| {
                b.iter(|| {
                    let mut s = random_3sat(nvars, ratio, 0xbeef);
                    let _ = s.solve();
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_pigeonhole, bench_random_3sat);
criterion_main!(benches);
