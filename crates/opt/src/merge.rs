//! Structural sharing of identical cells (`opt_merge`).

use smartly_netlist::{CellKind, Module, NetIndex, SigSpec};
use std::collections::HashMap;

/// Merges combinational cells with identical kind and (canonicalized)
/// input connections; returns the number of cells removed.
///
/// The survivor is the earliest cell in id order; every duplicate's output
/// is aliased onto the survivor's via a module connection. Flip-flops are
/// not merged so equivalence checking can match them pairwise.
pub fn opt_merge(module: &mut Module) -> usize {
    let index = NetIndex::build(module);
    let mut seen: HashMap<(CellKind, Vec<SigSpec>), smartly_netlist::CellId> = HashMap::new();
    let mut merges: Vec<(smartly_netlist::CellId, smartly_netlist::CellId)> = Vec::new();

    let order = match module.topo_order() {
        Ok(o) => o,
        Err(_) => return 0,
    };
    for id in order {
        let cell = match module.cell(id) {
            Some(c) => c,
            None => continue,
        };
        if cell.kind == CellKind::Dff {
            continue;
        }
        let key_inputs: Vec<SigSpec> = cell
            .kind
            .input_ports()
            .iter()
            .map(|p| {
                cell.port(*p)
                    .map(|s| s.iter().map(|b| index.canon(*b)).collect())
                    .unwrap_or_default()
            })
            .collect();
        let key = (cell.kind, key_inputs);
        match seen.get(&key) {
            Some(&rep) => merges.push((id, rep)),
            None => {
                seen.insert(key, id);
            }
        }
    }

    let count = merges.len();
    for (dup, rep) in merges {
        let rep_out = module.cell(rep).expect("representative").output().clone();
        let dup_out = module.cell(dup).expect("duplicate").output().clone();
        module.remove_cell(dup);
        module.connect(dup_out, rep_out);
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartly_netlist::Module;

    #[test]
    fn merges_identical_eq_cells() {
        let mut m = Module::new("t");
        let a = m.add_input("a", 4);
        let k = SigSpec::const_u64(3, 4);
        let e1 = m.eq(&a, &k);
        let e2 = m.eq(&a, &k);
        let y = m.and(&e1, &e2);
        m.add_output("y", &y);
        assert_eq!(opt_merge(&mut m), 1);
        assert_eq!(m.stats().count("eq"), 1);
        m.validate().unwrap();
    }

    #[test]
    fn chained_merge_via_canonical_bits() {
        let mut m = Module::new("t");
        let a = m.add_input("a", 4);
        let b = m.add_input("b", 4);
        // two identical ANDs, then two XORs reading *different* wires that
        // become identical once the ANDs merge
        let a1 = m.and(&a, &b);
        let a2 = m.and(&a, &b);
        let x1 = m.xor(&a1, &a);
        let x2 = m.xor(&a2, &a);
        let y = m.or(&x1, &x2);
        m.add_output("y", &y);
        // first sweep merges the ANDs; XOR keys differ until then
        assert_eq!(opt_merge(&mut m), 1);
        // second sweep sees canonicalized inputs and merges the XORs
        assert_eq!(opt_merge(&mut m), 1);
        assert_eq!(m.stats().count("xor"), 1);
        m.validate().unwrap();
    }

    #[test]
    fn different_cells_not_merged() {
        let mut m = Module::new("t");
        let a = m.add_input("a", 4);
        let b = m.add_input("b", 4);
        let y1 = m.and(&a, &b);
        let y2 = m.or(&a, &b);
        m.add_output("y1", &y1);
        m.add_output("y2", &y2);
        assert_eq!(opt_merge(&mut m), 0);
    }

    #[test]
    fn dffs_never_merge() {
        let mut m = Module::new("t");
        let clk = m.add_input("clk", 1);
        let d = m.add_input("d", 4);
        let q1 = m.dff(&clk, &d);
        let q2 = m.dff(&clk, &d);
        m.add_output("q1", &q1);
        m.add_output("q2", &q2);
        assert_eq!(opt_merge(&mut m), 0);
        assert_eq!(m.stats().count("dff"), 2);
    }
}
