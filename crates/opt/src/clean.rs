//! Dead-cell sweeping (`opt_clean`).

use smartly_netlist::{CellKind, Module, NetIndex, PortDir, SigBit};
use std::collections::HashSet;

/// Options for [`opt_clean`].
#[derive(Copy, Clone, Debug)]
pub struct CleanOptions {
    /// Keep flip-flops even when their `Q` is unread.
    ///
    /// Defaults to `true` so that original/optimized netlists keep
    /// pairwise-matchable flip-flops for equivalence checking; the area
    /// metric excludes them either way.
    pub keep_dffs: bool,
}

impl Default for CleanOptions {
    fn default() -> Self {
        CleanOptions { keep_dffs: true }
    }
}

/// Removes cells not backward-reachable from any module output.
///
/// Mark-and-sweep: roots are the drivers of output-port bits (plus every
/// flip-flop when [`CleanOptions::keep_dffs`] is set); anything a live
/// cell reads is live. Whole dead cones disappear in one call — this is
/// the paper's `RemoveUnusedCell()` step from Algorithm 1.
pub fn opt_clean(module: &mut Module, options: &CleanOptions) -> usize {
    let index = NetIndex::build(module);
    let mut live: HashSet<smartly_netlist::CellId> = HashSet::new();
    let mut stack: Vec<smartly_netlist::CellId> = Vec::new();

    let mark_driver = |bit: SigBit, stack: &mut Vec<smartly_netlist::CellId>| {
        if let Some(drv) = index.driver(index.canon(bit)) {
            stack.push(drv.cell);
        }
    };

    // roots: output ports
    for p in module.ports() {
        if p.dir == PortDir::Output {
            let w = module.wire(p.wire).width;
            for i in 0..w {
                mark_driver(SigBit::Wire(p.wire, i), &mut stack);
            }
        }
    }
    // roots: flip-flops (kept alive by default)
    if options.keep_dffs {
        for (id, cell) in module.cells() {
            if cell.kind == CellKind::Dff {
                stack.push(id);
            }
        }
    }

    while let Some(id) = stack.pop() {
        if !live.insert(id) {
            continue;
        }
        let cell = module.cell(id).expect("live cell");
        for (_, spec) in cell.inputs() {
            for bit in spec.iter() {
                if let Some(drv) = index.driver(index.canon(*bit)) {
                    if !live.contains(&drv.cell) {
                        stack.push(drv.cell);
                    }
                }
            }
        }
    }

    let mut removed = 0usize;
    for id in module.cell_ids() {
        if !live.contains(&id) {
            module.remove_cell(id);
            removed += 1;
        }
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartly_netlist::Module;

    #[test]
    fn removes_dead_cone() {
        let mut m = Module::new("t");
        let a = m.add_input("a", 4);
        let b = m.add_input("b", 4);
        let live = m.and(&a, &b);
        m.add_output("y", &live);
        // dead cone: three chained cells nobody reads
        let d1 = m.or(&a, &b);
        let d2 = m.xor(&d1, &b);
        let _d3 = m.not(&d2);
        assert_eq!(m.live_cell_count(), 4);
        let removed = opt_clean(&mut m, &CleanOptions::default());
        assert_eq!(removed, 3);
        assert_eq!(m.live_cell_count(), 1);
        m.validate().unwrap();
    }

    #[test]
    fn keeps_live_through_connections() {
        let mut m = Module::new("t");
        let a = m.add_input("a", 4);
        let y = m.not(&a);
        let w = m.auto_wire(4);
        let ws = smartly_netlist::SigSpec::from_wire(w, 4);
        m.connect(ws.clone(), y);
        m.add_output("out", &ws);
        assert_eq!(opt_clean(&mut m, &CleanOptions::default()), 0);
        assert_eq!(m.live_cell_count(), 1);
    }

    #[test]
    fn dffs_kept_by_default_swept_on_request() {
        let mut m = Module::new("t");
        let clk = m.add_input("clk", 1);
        let d = m.add_input("d", 4);
        let _q = m.dff(&clk, &d); // unread
        assert_eq!(opt_clean(&mut m, &CleanOptions::default()), 0);
        assert_eq!(m.live_cell_count(), 1);
        let removed = opt_clean(&mut m, &CleanOptions { keep_dffs: false });
        assert_eq!(removed, 1);
        assert_eq!(m.live_cell_count(), 0);
    }

    #[test]
    fn partial_use_keeps_cell() {
        let mut m = Module::new("t");
        let a = m.add_input("a", 4);
        let y = m.not(&a); // 4-bit result, only bit 0 used
        m.add_output("out", &y.slice(0, 1));
        assert_eq!(opt_clean(&mut m, &CleanOptions::default()), 0);
        assert_eq!(m.live_cell_count(), 1);
    }

    #[test]
    fn logic_feeding_only_kept_dff_stays_live() {
        let mut m = Module::new("t");
        let clk = m.add_input("clk", 1);
        let a = m.add_input("a", 4);
        let b = m.add_input("b", 4);
        let d = m.and(&a, &b);
        let _q = m.dff(&clk, &d); // Q unread, but dff kept ⇒ AND stays
        assert_eq!(opt_clean(&mut m, &CleanOptions::default()), 0);
        assert_eq!(m.live_cell_count(), 2);
    }
}
