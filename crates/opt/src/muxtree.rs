//! The Yosys-style `opt_muxtree` baseline.
//!
//! Traverses multiplexer trees from their roots, monitoring the values of
//! visited control ports, and
//!
//! 1. pins the select of a descendant mux whose control signal was already
//!    decided by an **identical** ancestor signal (paper Fig. 1), and
//! 2. rewrites data-port bits that carry an already-decided control signal
//!    to the decided constant (paper Fig. 2).
//!
//! The actual collapse (select = constant ⇒ pass-through) is left to
//! [`crate::opt_const`], mirroring how Yosys splits the work between
//! `opt_muxtree` and `opt_expr`. The pass only descends into muxes that
//! are *exclusively* consumed by a single parent data port — a shared
//! subtree sees more than one path condition, so no path-specific rewrite
//! is sound there (such muxes are simply treated as roots of their own).

use smartly_netlist::{CellId, CellKind, Module, NetIndex, Port, SigBit, SigSpec, TriVal};
use std::collections::{HashMap, HashSet};

/// One baseline muxtree sweep; returns the number of rewrites applied
/// (pinned selects + data-bit substitutions).
///
/// Run [`crate::clean_pipeline`] afterwards to realize the removals, or
/// use [`crate::baseline_optimize`] which does both to a fixpoint.
pub fn opt_muxtree(module: &mut Module) -> usize {
    let index = NetIndex::build(module);
    let mux_cells: Vec<CellId> = module
        .cells()
        .filter(|(_, c)| matches!(c.kind, CellKind::Mux | CellKind::Pmux))
        .map(|(id, _)| id)
        .collect();
    let mux_set: HashSet<CellId> = mux_cells.iter().copied().collect();

    // a mux is an exclusive child if its entire output is read by exactly
    // one sink, and that sink is a data port (A/B) of another mux cell
    let exclusive_child = |id: CellId| -> bool {
        let cell = module.cell(id).expect("live mux");
        let out = cell.output();
        let mut parents: HashSet<(CellId, Port)> = HashSet::new();
        for bit in out.iter() {
            let sinks = index.fanout(index.canon(*bit));
            for sink in sinks {
                match &sink.consumer {
                    smartly_netlist::Consumer::Cell(c)
                        if mux_set.contains(c) && matches!(sink.port, Port::A | Port::B) =>
                    {
                        parents.insert((*c, sink.port));
                    }
                    _ => return false,
                }
            }
        }
        parents.len() == 1
    };

    let roots: Vec<CellId> = mux_cells
        .iter()
        .copied()
        .filter(|&id| !exclusive_child(id))
        .collect();

    // rewrites to apply after traversal: (cell, port, bit offset, value)
    let mut pin_bits: Vec<(CellId, Port, usize, TriVal)> = Vec::new();
    let mut visited: HashSet<CellId> = HashSet::new();

    // returns the driving mux cell if `spec` is exactly the full output of
    // an exclusive child mux
    let driver_mux = |spec: &SigSpec| -> Option<CellId> {
        let first = index.driver(index.canon(spec.bit(0)))?;
        let cell = module.cell(first.cell)?;
        if !matches!(cell.kind, CellKind::Mux | CellKind::Pmux) {
            return None;
        }
        if cell.output().width() != spec.width() || first.offset != 0 {
            return None;
        }
        for (k, bit) in spec.iter().enumerate() {
            let d = index.driver(index.canon(*bit))?;
            if d.cell != first.cell || d.offset as usize != k {
                return None;
            }
        }
        Some(first.cell)
    };

    struct Traversal<'a> {
        module: &'a Module,
        index: &'a NetIndex,
        pin_bits: Vec<(CellId, Port, usize, TriVal)>,
        visited: HashSet<CellId>,
    }

    impl<'a> Traversal<'a> {
        fn visit(
            &mut self,
            id: CellId,
            known: &HashMap<SigBit, bool>,
            driver_mux: &dyn Fn(&SigSpec) -> Option<CellId>,
            exclusive_child: &dyn Fn(CellId) -> bool,
        ) {
            if !self.visited.insert(id) {
                return;
            }
            let cell = self.module.cell(id).expect("live mux");
            let s_spec = cell.port(Port::S).expect("mux select").clone();
            let a_spec = cell.port(Port::A).expect("mux A").clone();
            let b_spec = cell.port(Port::B).expect("mux B").clone();
            let w = cell.output().width();

            // (2) data-port rewriting under the current path condition
            for (port, spec) in [(Port::A, &a_spec), (Port::B, &b_spec)] {
                for (k, bit) in spec.iter().enumerate() {
                    if let Some(&v) = known.get(&self.index.canon(*bit)) {
                        self.pin_bits.push((id, port, k, TriVal::from_bool(v)));
                    }
                }
            }

            match cell.kind {
                CellKind::Mux => {
                    let s = self.index.canon(s_spec.bit(0));
                    if let Some(&v) = known.get(&s) {
                        // (1) select already decided by an ancestor
                        self.pin_bits.push((id, Port::S, 0, TriVal::from_bool(v)));
                        // only the live branch continues this path
                        let live = if v { &b_spec } else { &a_spec };
                        if let Some(child) = driver_mux(live) {
                            if exclusive_child(child) {
                                self.visit(child, known, driver_mux, exclusive_child);
                            }
                        }
                        return;
                    }
                    if !s.is_const() {
                        for (branch, val) in [(&a_spec, false), (&b_spec, true)] {
                            if let Some(child) = driver_mux(branch) {
                                if exclusive_child(child) {
                                    let mut k2 = known.clone();
                                    k2.insert(s, val);
                                    self.visit(child, &k2, driver_mux, exclusive_child);
                                }
                            }
                        }
                    }
                }
                CellKind::Pmux => {
                    let n = s_spec.width();
                    // select bits decided by ancestors get pinned
                    let mut sel_bits: Vec<SigBit> = Vec::with_capacity(n);
                    for i in 0..n {
                        let sb = self.index.canon(s_spec.bit(i));
                        if let Some(&v) = known.get(&sb) {
                            self.pin_bits.push((id, Port::S, i, TriVal::from_bool(v)));
                        }
                        sel_bits.push(sb);
                    }
                    // default branch: all selects are 0
                    if let Some(child) = driver_mux(&a_spec) {
                        if exclusive_child(child) {
                            let mut k2 = known.clone();
                            for sb in &sel_bits {
                                if !sb.is_const() {
                                    k2.insert(*sb, false);
                                }
                            }
                            self.visit(child, &k2, driver_mux, exclusive_child);
                        }
                    }
                    // word i: sel_i = 1, sel_j = 0 for j < i (priority)
                    for i in 0..n {
                        let word = b_spec.slice(i * w, w);
                        if let Some(child) = driver_mux(&word) {
                            if exclusive_child(child) {
                                let mut k2 = known.clone();
                                for (j, sb) in sel_bits.iter().enumerate().take(i) {
                                    let _ = j;
                                    if !sb.is_const() {
                                        k2.insert(*sb, false);
                                    }
                                }
                                if !sel_bits[i].is_const() {
                                    k2.insert(sel_bits[i], true);
                                }
                                self.visit(child, &k2, driver_mux, exclusive_child);
                            }
                        }
                    }
                }
                _ => unreachable!("only mux-like cells are visited"),
            }
        }
    }

    let mut tr = Traversal {
        module,
        index: &index,
        pin_bits: Vec::new(),
        visited: HashSet::new(),
    };
    for root in roots {
        let known = HashMap::new();
        tr.visit(root, &known, &driver_mux, &exclusive_child);
    }
    pin_bits.append(&mut tr.pin_bits);
    visited.extend(tr.visited);

    // apply the rewrites
    let count = pin_bits.len();
    for (id, port, offset, value) in pin_bits {
        if let Some(cell) = module.cell_mut(id) {
            if let Some(spec) = cell.port_mut(port) {
                spec.bits_mut()[offset] = SigBit::Const(value);
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline_optimize;
    use smartly_netlist::Module;

    /// Paper Fig. 1: Y = S ? (S ? A : B) : C collapses to Y = S ? A : C.
    #[test]
    fn fig1_same_ctrl() {
        let mut m = Module::new("fig1");
        let a = m.add_input("a", 4);
        let b = m.add_input("b", 4);
        let c = m.add_input("c", 4);
        let s = m.add_input("s", 1);
        // inner: S=1 → a (paper Y=S?A:B); our mux is Y=S?B:A
        let inner = m.mux(&b, &a, &s);
        let outer = m.mux(&c, &inner, &s);
        m.add_output("y", &outer);
        assert_eq!(m.stats().count("mux"), 2);
        let n = baseline_optimize(&mut m);
        assert!(n > 0);
        assert_eq!(m.stats().count("mux"), 1, "inner mux must collapse");
        m.validate().unwrap();
    }

    /// Paper Fig. 2: Y = S ? (A ? S : B) : C — the inner data port S is 1
    /// on that path, so it becomes a constant.
    #[test]
    fn fig2_data_port() {
        let mut m = Module::new("fig2");
        let a = m.add_input("a", 1);
        let b = m.add_input("b", 1);
        let c = m.add_input("c", 1);
        let s = m.add_input("s", 1);
        // inner: A ? S : B  → mux(a=B, b=S, s=A)
        let inner = m.mux(&b, &s, &a);
        // outer: S ? inner : C
        let outer = m.mux(&c, &inner, &s);
        m.add_output("y", &outer);
        let n = opt_muxtree(&mut m);
        assert!(n >= 1, "data-port bit must be rewritten");
        // the inner mux's B port is now constant 1
        let inner_cell = m.cells().find(|(_, cell)| {
            cell.kind == CellKind::Mux
                && cell.port(Port::B).unwrap().bit(0) == SigBit::Const(TriVal::One)
        });
        assert!(inner_cell.is_some());
        m.validate().unwrap();
    }

    /// A mux shared by two parents must not be rewritten path-specifically.
    #[test]
    fn shared_subtree_is_left_alone() {
        let mut m = Module::new("shared");
        let a = m.add_input("a", 4);
        let b = m.add_input("b", 4);
        let c = m.add_input("c", 4);
        let s = m.add_input("s", 1);
        let t = m.add_input("t", 1);
        let shared = m.mux(&a, &b, &s); // fans out twice
        let y1 = m.mux(&c, &shared, &s); // path s=1 would pin shared
        let y2 = m.mux(&shared, &c, &t); // but this path says nothing
        m.add_output("y1", &y1);
        m.add_output("y2", &y2);
        let n = opt_muxtree(&mut m);
        assert_eq!(n, 0, "shared mux must not be touched");
        assert_eq!(m.stats().count("mux"), 3);
    }

    /// Deep chain of same-select muxes collapses to one.
    #[test]
    fn deep_chain_collapses() {
        let mut m = Module::new("chain");
        let s = m.add_input("s", 1);
        let xs: Vec<SigSpec> = (0..6).map(|i| m.add_input(&format!("x{i}"), 2)).collect();
        // y = s ? (s ? (s ? x0 : x1) : x2) : x3 ... nested on the s=1 side
        let mut cur = xs[0].clone();
        for x in xs.iter().skip(1) {
            cur = m.mux(x, &cur, &s);
        }
        m.add_output("y", &cur);
        assert_eq!(m.stats().count("mux"), 5);
        baseline_optimize(&mut m);
        assert_eq!(m.stats().count("mux"), 1);
        m.validate().unwrap();
    }

    /// Different control signals: the baseline must do nothing (this is
    /// exactly the paper's Fig. 3 motivation for the SAT pass).
    #[test]
    fn fig3_dependent_controls_untouched_by_baseline() {
        let mut m = Module::new("fig3");
        let a = m.add_input("a", 4);
        let b = m.add_input("b", 4);
        let c = m.add_input("c", 4);
        let s = m.add_input("s", 1);
        let r = m.add_input("r", 1);
        let sr = m.or(&s, &r);
        let inner = m.mux(&b, &a, &sr); // (s|r) ? a : b
        let outer = m.mux(&c, &inner, &s); // s ? inner : c
        m.add_output("y", &outer);
        let n = opt_muxtree(&mut m);
        assert_eq!(n, 0, "baseline cannot see through the OR gate");
        assert_eq!(m.stats().count("mux"), 2);
    }

    /// Pmux: ancestor-decided select bits are pinned.
    #[test]
    fn pmux_select_pinned_by_ancestor() {
        let mut m = Module::new("pm");
        let d = m.add_input("d", 2);
        let w0 = m.add_input("w0", 2);
        let w1 = m.add_input("w1", 2);
        let s = m.add_input("s", 1);
        let t = m.add_input("t", 1);
        let sels = {
            let mut sp = s.clone();
            sp.concat(&t);
            sp
        };
        let inner = m.pmux(&d, &[w0.clone(), w1.clone()], &sels);
        // outer: s ? inner : d  — on that path s=1 ⇒ inner's word 0 wins
        let outer = m.mux(&d, &inner, &s);
        m.add_output("y", &outer);
        let n = opt_muxtree(&mut m);
        assert!(n >= 1);
        baseline_optimize(&mut m);
        // inner pmux should now be gone (its select pinned to 1 at bit 0)
        assert_eq!(m.stats().count("pmux"), 0);
        m.validate().unwrap();
    }
}
