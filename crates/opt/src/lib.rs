//! Baseline netlist optimization passes.
//!
//! These are the re-implementations of the Yosys machinery the paper
//! compares against and builds on:
//!
//! * [`opt_muxtree`] — the *baseline*: traverses multiplexer trees
//!   monitoring visited control ports and eliminates never-active branches
//!   when a select is decided by an **identical** ancestor signal (paper
//!   Figs. 1–2). SmaRTLy's SAT pass strictly generalizes this.
//! * [`opt_const`] — constant folding / pass-through collapsing (the
//!   `opt_expr` analogue); it is what actually deletes a mux once a pass
//!   pins its select.
//! * [`opt_clean`] — dead-cell sweeping (`RemoveUnusedCell` in the paper's
//!   Algorithm 1).
//! * [`opt_merge`] — word-level structural sharing of identical cells.
//!
//! [`clean_pipeline`] chains const folding and sweeping to a fixpoint —
//! every optimization pass in the workspace ends with it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clean;
mod const_fold;
mod merge;
mod muxtree;

pub use clean::{opt_clean, CleanOptions};
pub use const_fold::opt_const;
pub use merge::opt_merge;
pub use muxtree::opt_muxtree;

use smartly_netlist::Module;

/// Runs `opt_const` + `opt_clean` to a fixpoint (at most `max_iters`
/// rounds) and returns the total number of changes.
///
/// This is the cleanup tail shared by the baseline and the smaRTLy passes;
/// flip-flops are preserved (see [`CleanOptions::keep_dffs`]) so that
/// equivalence checking can match them pairwise.
pub fn clean_pipeline(module: &mut Module, max_iters: usize) -> usize {
    let mut total = 0;
    for _ in 0..max_iters {
        let c1 = opt_const(module);
        let c2 = opt_clean(module, &CleanOptions::default());
        total += c1 + c2;
        if c1 + c2 == 0 {
            break;
        }
    }
    total
}

/// Runs the full Yosys-style baseline: `opt_muxtree` followed by the
/// cleanup fixpoint. Returns the number of muxtree rewrites.
pub fn baseline_optimize(module: &mut Module) -> usize {
    let mut total = 0;
    loop {
        let n = opt_muxtree(module);
        let merged = opt_merge(module);
        clean_pipeline(module, 8);
        total += n;
        if n == 0 && merged == 0 {
            break;
        }
    }
    total
}
