//! Constant folding and pass-through collapsing (`opt_const`).

use smartly_netlist::{
    eval_cell, CellInputs, CellKind, Module, NetIndex, Port, SigBit, SigSpec, TriVal,
};
use std::collections::HashMap;

/// One constant-folding sweep; returns the number of cells folded or
/// simplified. Run to a fixpoint via [`crate::clean_pipeline`].
///
/// Handled rewrites:
///
/// * any cell with fully-constant inputs evaluates via
///   [`smartly_netlist::eval_cell`] and is replaced by a constant
///   connection;
/// * `mux` with a constant select (what the muxtree passes produce)
///   collapses to the selected branch; `mux` with identical branches
///   collapses outright;
/// * uniform-constant operands of `and`/`or`/`xor` collapse
///   (`a & 0 = 0`, `a & 1 = a`, ...);
/// * `eq` of bitwise-identical specs folds to 1; contradictory constant
///   bits fold to 0; 1-bit `eq a, 1` collapses to `a`;
/// * `pmux` drops constant-0 selects and truncates at a constant-1 select.
pub fn opt_const(module: &mut Module) -> usize {
    let index = NetIndex::build(module);
    let order = match module.topo_order() {
        Ok(o) => o,
        Err(_) => return 0,
    };
    // constants discovered during this sweep, on canonical bits
    let mut consts: HashMap<SigBit, TriVal> = HashMap::new();
    let mut changes = 0usize;

    for id in order {
        let cell = match module.cell(id) {
            Some(c) => c.clone(),
            None => continue,
        };
        if cell.kind == CellKind::Dff {
            continue;
        }
        let resolve = |spec: &SigSpec| -> SigSpec {
            spec.iter()
                .map(|b| {
                    let c = index.canon(*b);
                    match c {
                        SigBit::Const(_) => c,
                        _ => match consts.get(&c) {
                            Some(&v) => SigBit::Const(v),
                            None => c,
                        },
                    }
                })
                .collect()
        };
        let a = cell.port(Port::A).map(&resolve).unwrap_or_default();
        let b = cell.port(Port::B).map(&resolve).unwrap_or_default();
        let s = cell.port(Port::S).map(resolve).unwrap_or_default();
        let out_spec = cell.output().clone();
        let w = out_spec.width();

        let replace_with =
            |module: &mut Module, src: SigSpec, consts: &mut HashMap<SigBit, TriVal>| -> bool {
                debug_assert_eq!(src.width(), w);
                module.remove_cell(id);
                for (dst, sbit) in out_spec.iter().zip(src.iter()) {
                    let canon_dst = index.canon(*dst);
                    if let SigBit::Const(v) = sbit {
                        consts.insert(canon_dst, *v);
                    }
                }
                module.connect(out_spec.clone(), src);
                true
            };

        // 1. full constant evaluation
        if a.is_fully_const() && b.is_fully_const() && s.is_fully_const() {
            let inputs = CellInputs {
                a: a.as_const_trivals().unwrap_or_default(),
                b: b.as_const_trivals().unwrap_or_default(),
                s: s.as_const_trivals().unwrap_or_default(),
            };
            let out = eval_cell(cell.kind, &inputs, w);
            let src: SigSpec = out.into_iter().map(SigBit::Const).collect();
            changes += usize::from(replace_with(module, src, &mut consts));
            continue;
        }

        match cell.kind {
            CellKind::Mux => {
                match s.bit(0) {
                    SigBit::Const(TriVal::Zero) => {
                        changes += usize::from(replace_with(module, a, &mut consts));
                        continue;
                    }
                    SigBit::Const(TriVal::One) => {
                        changes += usize::from(replace_with(module, b, &mut consts));
                        continue;
                    }
                    _ => {}
                }
                if a == b {
                    changes += usize::from(replace_with(module, a, &mut consts));
                    continue;
                }
            }
            CellKind::And | CellKind::Or | CellKind::Xor => {
                let fold = |konst: &SigSpec, other: &SigSpec| -> Option<SigSpec> {
                    if !konst.is_fully_def() {
                        return None;
                    }
                    let all_zero = konst.as_const_u64() == Some(0);
                    let all_one = konst.iter().all(|b| *b == SigBit::Const(TriVal::One));
                    match cell.kind {
                        CellKind::And if all_zero => Some(SigSpec::zeros(w as u32)),
                        CellKind::And if all_one => Some(other.clone()),
                        CellKind::Or if all_one => Some(SigSpec::ones(w as u32)),
                        CellKind::Or if all_zero => Some(other.clone()),
                        CellKind::Xor if all_zero => Some(other.clone()),
                        _ => None,
                    }
                };
                let folded = if a.is_fully_const() {
                    fold(&a, &b)
                } else if b.is_fully_const() {
                    fold(&b, &a)
                } else if a == b {
                    match cell.kind {
                        CellKind::And | CellKind::Or => Some(a.clone()),
                        CellKind::Xor => Some(SigSpec::zeros(w as u32)),
                        _ => None,
                    }
                } else {
                    None
                };
                if let Some(src) = folded {
                    changes += usize::from(replace_with(module, src, &mut consts));
                    continue;
                }
            }
            CellKind::Eq | CellKind::Ne => {
                let neg = cell.kind == CellKind::Ne;
                if a == b {
                    let v = SigSpec::const_u64(u64::from(!neg), 1);
                    changes += usize::from(replace_with(module, v, &mut consts));
                    continue;
                }
                // contradictory known bits ⇒ never equal
                let contradiction = a.iter().zip(b.iter()).any(|(x, y)| {
                    matches!(
                        (x, y),
                        (SigBit::Const(TriVal::Zero), SigBit::Const(TriVal::One))
                            | (SigBit::Const(TriVal::One), SigBit::Const(TriVal::Zero))
                    )
                });
                if contradiction {
                    let v = SigSpec::const_u64(u64::from(neg), 1);
                    changes += usize::from(replace_with(module, v, &mut consts));
                    continue;
                }
                // 1-bit eq against constant: wire or inverter
                if w == 1 && a.width() == 1 {
                    let (konst, sig) = match (a.bit(0), b.bit(0)) {
                        (SigBit::Const(v), other) if v.is_known() => (Some(v), other),
                        (other, SigBit::Const(v)) if v.is_known() => (Some(v), other),
                        _ => (None, a.bit(0)),
                    };
                    if let Some(v) = konst {
                        let want_one = (v == TriVal::One) != neg;
                        if want_one {
                            // y = sig
                            changes += usize::from(replace_with(
                                module,
                                SigSpec::from_bit(sig),
                                &mut consts,
                            ));
                            continue;
                        } else {
                            // y = !sig : rewrite the cell into a Not
                            let c = module.cell_mut(id).expect("live cell");
                            c.kind = CellKind::Not;
                            c.set_port(Port::A, SigSpec::from_bit(sig));
                            c.set_port(Port::Y, out_spec.clone());
                            // drop stale B binding by rebuilding connections
                            let mut fresh =
                                smartly_netlist::Cell::new(CellKind::Not, c.name.clone());
                            fresh.set_port(Port::A, SigSpec::from_bit(sig));
                            fresh.set_port(Port::Y, out_spec.clone());
                            *c = fresh;
                            changes += 1;
                            continue;
                        }
                    }
                }
            }
            CellKind::Pmux => {
                let n = s.width();
                let mut new_sels: Vec<SigBit> = Vec::new();
                let mut new_words: Vec<SigSpec> = Vec::new();
                let mut default = a.clone();
                let mut changed = false;
                for i in 0..n {
                    match s.bit(i) {
                        SigBit::Const(TriVal::Zero) => {
                            changed = true; // dropped
                        }
                        SigBit::Const(TriVal::One) => {
                            // everything after (and the default) is dead
                            default = b.slice(i * w, w);
                            changed = true;
                            break;
                        }
                        bit => {
                            new_sels.push(bit);
                            new_words.push(b.slice(i * w, w));
                        }
                    }
                }
                if changed {
                    if new_sels.is_empty() {
                        changes += usize::from(replace_with(module, default, &mut consts));
                    } else if new_sels.len() == 1 {
                        // degenerate pmux: a plain mux
                        let c = module.cell_mut(id).expect("live cell");
                        let mut fresh = smartly_netlist::Cell::new(CellKind::Mux, c.name.clone());
                        fresh.set_port(Port::A, default);
                        fresh.set_port(Port::B, new_words.pop().expect("one word"));
                        fresh.set_port(Port::S, SigSpec::from_bit(new_sels[0]));
                        fresh.set_port(Port::Y, out_spec.clone());
                        *c = fresh;
                        changes += 1;
                    } else {
                        let mut bspec = SigSpec::new();
                        for word in &new_words {
                            bspec.concat(word);
                        }
                        let c = module.cell_mut(id).expect("live cell");
                        c.set_port(Port::A, default);
                        c.set_port(Port::B, bspec);
                        c.set_port(Port::S, SigSpec::from_bits(new_sels));
                        changes += 1;
                    }
                    continue;
                }
            }
            _ => {}
        }
    }
    changes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clean_pipeline;
    use smartly_netlist::Module;

    #[test]
    fn folds_constant_adder() {
        let mut m = Module::new("t");
        let x = SigSpec::const_u64(5, 8);
        let y = SigSpec::const_u64(7, 8);
        let sum = m.add(&x, &y);
        m.add_output("y", &sum);
        let n = opt_const(&mut m);
        assert_eq!(n, 1);
        assert_eq!(m.live_cell_count(), 0);
        // the output now aliases a constant 12
        let idx = NetIndex::build(&m);
        let out = m.find_wire("y").unwrap();
        let v = (0..8)
            .map(|i| idx.canon(SigBit::Wire(out, i)))
            .collect::<SigSpec>();
        assert_eq!(v.as_const_u64(), Some(12));
    }

    #[test]
    fn collapses_mux_with_const_select() {
        let mut m = Module::new("t");
        let a = m.add_input("a", 4);
        let b = m.add_input("b", 4);
        let one = SigSpec::const_u64(1, 1);
        let y = m.mux(&a, &b, &one);
        m.add_output("y", &y);
        assert_eq!(opt_const(&mut m), 1);
        let idx = NetIndex::build(&m);
        let out = m.find_wire("y").unwrap();
        // output aliases b
        assert_eq!(idx.canon(SigBit::Wire(out, 0)), b.bit(0));
    }

    #[test]
    fn and_with_zero_folds() {
        let mut m = Module::new("t");
        let a = m.add_input("a", 4);
        let y = m.and(&a, &SigSpec::zeros(4));
        m.add_output("y", &y);
        assert_eq!(opt_const(&mut m), 1);
        assert_eq!(m.live_cell_count(), 0);
    }

    #[test]
    fn eq_identical_folds_to_one() {
        let mut m = Module::new("t");
        let a = m.add_input("a", 4);
        let y = m.eq(&a, &a);
        m.add_output("y", &y);
        assert_eq!(opt_const(&mut m), 1);
        let idx = NetIndex::build(&m);
        let out = m.find_wire("y").unwrap();
        assert_eq!(idx.canon(SigBit::Wire(out, 0)), SigBit::Const(TriVal::One));
    }

    #[test]
    fn eq1_against_const_becomes_wire_or_not() {
        let mut m = Module::new("t");
        let a = m.add_input("a", 1);
        let y1 = m.eq(&a, &SigSpec::const_u64(1, 1));
        let y0 = m.eq(&a, &SigSpec::const_u64(0, 1));
        m.add_output("y1", &y1);
        m.add_output("y0", &y0);
        assert_eq!(opt_const(&mut m), 2);
        let stats = m.stats();
        assert_eq!(stats.count("eq"), 0);
        assert_eq!(stats.count("not"), 1);
    }

    #[test]
    fn pmux_with_const_selects_simplifies() {
        let mut m = Module::new("t");
        let d = m.add_input("d", 4);
        let w0 = m.add_input("w0", 4);
        let w1 = m.add_input("w1", 4);
        let s1 = m.add_input("s1", 1);
        // selects: [const 0, s1, const 1] word2 wins unless s1
        let sels = SigSpec::from_bits(vec![
            SigBit::Const(TriVal::Zero),
            s1.bit(0),
            SigBit::Const(TriVal::One),
        ]);
        let w2 = m.add_input("w2", 4);
        let y = m.pmux(&d, &[w0.clone(), w1.clone(), w2.clone()], &sels);
        m.add_output("y", &y);
        assert_eq!(opt_const(&mut m), 1);
        // now a plain mux: s1 ? w1 : w2
        let stats = m.stats();
        assert_eq!(stats.count("pmux"), 0);
        assert_eq!(stats.count("mux"), 1);
    }

    #[test]
    fn chain_folds_to_fixpoint() {
        let mut m = Module::new("t");
        let a = m.add_input("a", 4);
        // ((a & 0) | a) ^ 0  ==  a
        let z = m.and(&a, &SigSpec::zeros(4));
        let o = m.or(&z, &a);
        let y = m.xor(&o, &SigSpec::zeros(4));
        m.add_output("y", &y);
        clean_pipeline(&mut m, 8);
        assert_eq!(m.live_cell_count(), 0);
        let idx = NetIndex::build(&m);
        let out = m.find_wire("y").unwrap();
        assert_eq!(idx.canon(SigBit::Wire(out, 0)), a.bit(0));
    }
}
