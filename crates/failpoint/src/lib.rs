//! A deterministic, dependency-free fail-point registry for chaos
//! testing.
//!
//! Production code marks fault-injection seams with
//! [`check("site.name")`](check) (or [`check_arg`] when the site wants
//! to discriminate by a runtime argument such as a module name). A
//! check is a **zero-cost no-op unless the registry is armed**: the
//! fast path is a single relaxed atomic load, no lock, no allocation.
//!
//! Arming happens either programmatically ([`arm`], [`arm_spec_list`])
//! or — for release binaries — through the `SMARTLY_FAILPOINTS`
//! environment variable, parsed once on first use:
//!
//! ```text
//! SMARTLY_FAILPOINTS="persist.save.io=hit:1;driver.module.panic=always@case_chain"
//! ```
//!
//! Triggers fire on **deterministic hit counts**, never on wall time,
//! so a chaos run armed with the same spec on the same workload fires
//! the same faults every time:
//!
//! | action       | fires…                                             |
//! |--------------|----------------------------------------------------|
//! | `off`        | never (site stays registered, hits still counted)  |
//! | `always`     | on every matching check                            |
//! | `hit:N`      | exactly on the Nth matching check (1-based)        |
//! | `after:N`    | on every matching check past the Nth               |
//! | `every:N`    | on every Nth matching check                        |
//! | `p:A/B:SEED` | when `splitmix64(SEED ^ hit) % B < A` — a seeded,  |
//! |              | reproducible pseudo-random rate                    |
//!
//! An action may carry an `@FILTER` suffix: the site then only counts
//! and fires for [`check_arg`] calls whose argument *contains* the
//! filter substring, which is how a chaos test targets one module of a
//! multi-module design.
//!
//! Site families currently wired into the tree:
//!
//! * `persist.save.*` — knowledge-store save path (`persist.save.io`,
//!   `persist.save.rename`, `persist.save.backoff` injecting IO
//!   errors, rename failures, and retry-backoff observation);
//! * `driver.module.*` — per-module driver seams
//!   (`driver.module.panic`, `driver.module.deadline`);
//! * `server.journal.*` — the `smartly serve` job journal
//!   (`server.journal.append`, `server.journal.fsync` — a fired
//!   accept-path append rejects the submit as non-durable);
//! * `server.accept` — admission control (injects `overloaded`
//!   rejections to drill client retry handling).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

/// Environment variable consulted on first registry use.
pub const ENV_VAR: &str = "SMARTLY_FAILPOINTS";

/// How an armed site decides whether a given hit fires.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Action {
    Off,
    Always,
    Hit(u64),
    After(u64),
    Every(u64),
    Prob { num: u64, den: u64, seed: u64 },
}

#[derive(Clone, Debug)]
struct SiteState {
    action: Action,
    /// Substring filter on the `check_arg` argument; `None` matches all.
    filter: Option<String>,
    /// Matching checks observed so far.
    hits: u64,
    /// Matching checks that fired.
    fired: u64,
}

struct Registry {
    /// Fast-path gate: `false` means no site is armed and every check
    /// returns immediately without touching the lock.
    any_armed: AtomicBool,
    sites: Mutex<HashMap<String, SiteState>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        let reg = Registry {
            any_armed: AtomicBool::new(false),
            sites: Mutex::new(HashMap::new()),
        };
        if let Ok(spec) = std::env::var(ENV_VAR) {
            if let Err(e) = arm_list_into(&reg, &spec) {
                eprintln!("warning: ignoring malformed {ENV_VAR}: {e}");
            }
        }
        reg
    })
}

/// SplitMix64: the deterministic mixer behind `p:` triggers.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn parse_action(spec: &str) -> Result<(Action, Option<String>), String> {
    let (action, filter) = match spec.split_once('@') {
        Some((a, f)) => (a, Some(f.to_string())),
        None => (spec, None),
    };
    let parse_n = |s: &str, what: &str| -> Result<u64, String> {
        s.parse::<u64>()
            .map_err(|_| format!("bad {what} count in failpoint action '{spec}'"))
    };
    let action = match action {
        "off" => Action::Off,
        "always" => Action::Always,
        _ => {
            if let Some(n) = action.strip_prefix("hit:") {
                Action::Hit(parse_n(n, "hit")?.max(1))
            } else if let Some(n) = action.strip_prefix("after:") {
                Action::After(parse_n(n, "after")?)
            } else if let Some(n) = action.strip_prefix("every:") {
                Action::Every(parse_n(n, "every")?.max(1))
            } else if let Some(rest) = action.strip_prefix("p:") {
                let (frac, seed) = rest
                    .rsplit_once(':')
                    .ok_or_else(|| format!("missing seed in failpoint action '{spec}'"))?;
                let (num, den) = frac
                    .split_once('/')
                    .ok_or_else(|| format!("missing denominator in failpoint action '{spec}'"))?;
                Action::Prob {
                    num: parse_n(num, "numerator")?,
                    den: parse_n(den, "denominator")?.max(1),
                    seed: parse_n(seed, "seed")?,
                }
            } else {
                return Err(format!("unknown failpoint action '{spec}'"));
            }
        }
    };
    Ok((action, filter))
}

fn arm_into(reg: &Registry, site: &str, spec: &str) -> Result<(), String> {
    let (action, filter) = parse_action(spec)?;
    let mut sites = reg.sites.lock().expect("failpoint registry poisoned");
    sites.insert(
        site.to_string(),
        SiteState {
            action,
            filter,
            hits: 0,
            fired: 0,
        },
    );
    reg.any_armed.store(true, Ordering::Release);
    Ok(())
}

fn arm_list_into(reg: &Registry, list: &str) -> Result<(), String> {
    for entry in list.split([';', ',']) {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let (site, spec) = entry
            .split_once('=')
            .ok_or_else(|| format!("failpoint entry '{entry}' is missing '='"))?;
        arm_into(reg, site.trim(), spec.trim())?;
    }
    Ok(())
}

/// Arms `site` with an action spec (`"always"`, `"hit:3"`,
/// `"after:2@mod_a"`, …). Replaces any previous arming of the site and
/// resets its hit counter.
pub fn arm(site: &str, spec: &str) -> Result<(), String> {
    arm_into(registry(), site, spec)
}

/// Arms a whole `site=action` list, `;`- or `,`-separated — the same
/// grammar as the `SMARTLY_FAILPOINTS` environment variable.
pub fn arm_spec_list(list: &str) -> Result<(), String> {
    arm_list_into(registry(), list)
}

/// Disarms one site (its hit history is discarded).
pub fn disarm(site: &str) {
    let reg = registry();
    let mut sites = reg.sites.lock().expect("failpoint registry poisoned");
    sites.remove(site);
    if sites.is_empty() {
        reg.any_armed.store(false, Ordering::Release);
    }
}

/// Disarms every site and restores the zero-cost fast path.
pub fn disarm_all() {
    let reg = registry();
    let mut sites = reg.sites.lock().expect("failpoint registry poisoned");
    sites.clear();
    reg.any_armed.store(false, Ordering::Release);
}

/// Whether any site is currently armed (the fast-path gate).
pub fn armed() -> bool {
    registry().any_armed.load(Ordering::Acquire)
}

/// Matching checks a site has observed since arming. Zero for unarmed
/// sites.
pub fn hit_count(site: &str) -> u64 {
    let sites = registry()
        .sites
        .lock()
        .expect("failpoint registry poisoned");
    sites.get(site).map_or(0, |s| s.hits)
}

/// Matching checks that fired since arming. Zero for unarmed sites.
pub fn fired_count(site: &str) -> u64 {
    let sites = registry()
        .sites
        .lock()
        .expect("failpoint registry poisoned");
    sites.get(site).map_or(0, |s| s.fired)
}

/// A fail-point check with no argument: returns `true` when the armed
/// trigger for `site` says this hit fires. Equivalent to
/// `check_arg(site, "")`.
#[inline]
pub fn check(site: &str) -> bool {
    check_arg(site, "")
}

/// A fail-point check discriminated by `arg` (e.g. a module name).
/// Returns `false` immediately — one relaxed atomic load — unless the
/// registry is armed.
#[inline]
pub fn check_arg(site: &str, arg: &str) -> bool {
    let reg = registry();
    if !reg.any_armed.load(Ordering::Relaxed) {
        return false;
    }
    check_slow(reg, site, arg)
}

#[cold]
fn check_slow(reg: &Registry, site: &str, arg: &str) -> bool {
    let mut sites = reg.sites.lock().expect("failpoint registry poisoned");
    let Some(state) = sites.get_mut(site) else {
        return false;
    };
    if let Some(filter) = &state.filter {
        if !arg.contains(filter.as_str()) {
            return false;
        }
    }
    state.hits += 1;
    let fire = match state.action {
        Action::Off => false,
        Action::Always => true,
        Action::Hit(n) => state.hits == n,
        Action::After(n) => state.hits > n,
        Action::Every(n) => state.hits.is_multiple_of(n),
        Action::Prob { num, den, seed } => splitmix64(seed ^ state.hits) % den < num,
    };
    if fire {
        state.fired += 1;
    }
    fire
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as TestMutex;

    /// The registry is process-global; serialize tests that arm it.
    static TEST_LOCK: TestMutex<()> = TestMutex::new(());

    fn guard() -> std::sync::MutexGuard<'static, ()> {
        let g = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        disarm_all();
        g
    }

    #[test]
    fn unarmed_checks_are_false_and_uncounted() {
        let _g = guard();
        assert!(!check("never.armed"));
        assert!(!armed());
        assert_eq!(hit_count("never.armed"), 0);
    }

    #[test]
    fn hit_trigger_fires_exactly_once_on_the_nth_check() {
        let _g = guard();
        arm("s.hit", "hit:3").unwrap();
        let fires: Vec<bool> = (0..5).map(|_| check("s.hit")).collect();
        assert_eq!(fires, vec![false, false, true, false, false]);
        assert_eq!(hit_count("s.hit"), 5);
        assert_eq!(fired_count("s.hit"), 1);
    }

    #[test]
    fn always_after_and_every_triggers() {
        let _g = guard();
        arm("s.always", "always").unwrap();
        assert!(check("s.always") && check("s.always"));
        arm("s.after", "after:2").unwrap();
        let fires: Vec<bool> = (0..4).map(|_| check("s.after")).collect();
        assert_eq!(fires, vec![false, false, true, true]);
        arm("s.every", "every:2").unwrap();
        let fires: Vec<bool> = (0..4).map(|_| check("s.every")).collect();
        assert_eq!(fires, vec![false, true, false, true]);
    }

    #[test]
    fn arg_filter_gates_counting_and_firing() {
        let _g = guard();
        arm("s.filt", "hit:1@target").unwrap();
        assert!(!check_arg("s.filt", "other_module"));
        assert_eq!(hit_count("s.filt"), 0);
        assert!(check_arg("s.filt", "my_target_module"));
        assert!(!check_arg("s.filt", "my_target_module"));
        assert_eq!(hit_count("s.filt"), 2);
    }

    #[test]
    fn seeded_probabilistic_trigger_is_reproducible() {
        let _g = guard();
        arm("s.prob", "p:1/4:42").unwrap();
        let a: Vec<bool> = (0..64).map(|_| check("s.prob")).collect();
        arm("s.prob", "p:1/4:42").unwrap();
        let b: Vec<bool> = (0..64).map(|_| check("s.prob")).collect();
        assert_eq!(a, b);
        let fired = a.iter().filter(|&&f| f).count();
        assert!(fired > 0 && fired < 64, "rate trigger degenerate: {fired}");
    }

    #[test]
    fn spec_list_parses_and_off_counts_without_firing() {
        let _g = guard();
        arm_spec_list("a.one = hit:1 ; b.two = off,").unwrap();
        assert!(check("a.one"));
        assert!(!check("b.two"));
        assert_eq!(hit_count("b.two"), 1);
        disarm("a.one");
        assert!(armed());
        disarm("b.two");
        assert!(!armed());
    }

    #[test]
    fn malformed_specs_are_rejected() {
        let _g = guard();
        assert!(arm("s", "hit:x").is_err());
        assert!(arm("s", "bogus").is_err());
        assert!(arm("s", "p:1/2").is_err());
        assert!(arm_spec_list("missing-equals").is_err());
        assert!(!armed());
    }
}
