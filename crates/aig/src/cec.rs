//! SAT-based combinational equivalence checking (CEC).
//!
//! Both designs are mapped through one [`SharedMapper`], so structurally
//! identical cones fold to the *same* AIG literal and compare for free;
//! random simulation filters easy bugs; only genuinely rewritten cones
//! reach the CDCL solver, one miter per differing output bit.

use crate::graph::{AigLit, AigNode};
use crate::map::{aigmap, SharedMapper};
use smartly_netlist::{Module, NetlistError};
use smartly_sat::{Lit, SolveResult, TseitinEncoder};
use std::collections::HashMap;

/// Options for [`check_equiv`].
#[derive(Copy, Clone, Debug)]
pub struct EquivOptions {
    /// Random simulation vectors tried before SAT (cheap bug filter).
    pub sim_vectors: usize,
    /// Optional conflict budget per output bit (`None` = complete check).
    pub conflict_budget: Option<u64>,
    /// Seed for the random pre-filter.
    pub seed: u64,
}

impl Default for EquivOptions {
    fn default() -> Self {
        EquivOptions {
            sim_vectors: 64,
            conflict_budget: None,
            seed: 0x5eed_cafe,
        }
    }
}

/// Outcome of an equivalence check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EquivResult {
    /// All outputs proven equal.
    Equivalent,
    /// A differing output was found, with the input assignment exposing it.
    NotEquivalent {
        /// Output port (or `dff$k` cut point) that differs.
        output: String,
        /// Bit index within that output.
        bit: usize,
        /// Input values (`name` → value) demonstrating the difference.
        counterexample: HashMap<String, u64>,
    },
    /// The conflict budget ran out before a verdict.
    Unknown {
        /// Output being checked when the budget expired.
        output: String,
        /// Bit index within that output.
        bit: usize,
    },
}

/// Checks combinational equivalence of two modules.
///
/// Requirements (all hold for netlists derived by the optimization passes
/// in this workspace):
///
/// * identical input port names and widths,
/// * identical output port names and widths,
/// * identical flip-flop count, matched in cell order.
///
/// # Errors
///
/// Returns [`NetlistError::NotFound`] on port or flip-flop mismatches, and
/// propagates mapping errors (cyclic logic, undriven wires).
pub fn check_equiv(
    gold: &Module,
    gate: &Module,
    options: &EquivOptions,
) -> Result<EquivResult, NetlistError> {
    // strict interface check on the modules themselves
    let gold_inputs: Vec<(String, u32)> = gold
        .input_ports()
        .map(|p| (p.name.clone(), gold.wire(p.wire).width))
        .collect();
    let gate_inputs: Vec<(String, u32)> = gate
        .input_ports()
        .map(|p| (p.name.clone(), gate.wire(p.wire).width))
        .collect();
    for (name, w) in &gold_inputs {
        if !gate_inputs.iter().any(|(n, ww)| n == name && ww == w) {
            return Err(NetlistError::NotFound {
                module: gate.name.clone(),
                name: format!("matching input '{name}'"),
            });
        }
    }
    for (name, w) in &gate_inputs {
        if !gold_inputs.iter().any(|(n, ww)| n == name && ww == w) {
            return Err(NetlistError::NotFound {
                module: gold.name.clone(),
                name: format!("matching input '{name}'"),
            });
        }
    }

    let mut sm = SharedMapper::new();
    let outs_a = sm.map_module(gold)?;
    let outs_b = sm.map_module(gate)?;

    if outs_a.len() != outs_b.len() {
        return Err(NetlistError::NotFound {
            module: gate.name.clone(),
            name: "matching output set (flip-flop counts differ?)".to_string(),
        });
    }
    let out_b_map: HashMap<&str, &Vec<AigLit>> =
        outs_b.iter().map(|(n, l)| (n.as_str(), l)).collect();
    let mut pairs: Vec<(String, usize, AigLit, AigLit)> = Vec::new();
    for (name, lits_a) in &outs_a {
        let lits_b = out_b_map
            .get(name.as_str())
            .ok_or_else(|| NetlistError::NotFound {
                module: gate.name.clone(),
                name: format!("matching output '{name}'"),
            })?;
        if lits_a.len() != lits_b.len() {
            return Err(NetlistError::NotFound {
                module: gate.name.clone(),
                name: format!("output '{name}' with matching width"),
            });
        }
        for (bit, (&la, &lb)) in lits_a.iter().zip(lits_b.iter()).enumerate() {
            if la != lb {
                pairs.push((name.clone(), bit, la, lb));
            }
        }
    }
    if pairs.is_empty() {
        return Ok(EquivResult::Equivalent); // structurally identical
    }

    // random-simulation pre-filter on the shared graph
    if let Some((name, bit, cex)) = random_prefilter(&sm, &pairs, options) {
        return Ok(EquivResult::NotEquivalent {
            output: name,
            bit,
            counterexample: cex,
        });
    }

    // SAT miters, sharing one incremental solver and one encoded graph
    let mut enc = TseitinEncoder::new();
    enc.solver_mut()
        .set_conflict_budget(options.conflict_budget);
    // flattened input node order → solver literal
    let mut input_vars: Vec<Lit> = Vec::new();
    let mut input_names: Vec<(String, usize)> = Vec::new();
    for (name, lits) in sm.inputs() {
        for bit in 0..lits.len() {
            input_vars.push(enc.fresh());
            input_names.push((name.clone(), bit));
        }
    }
    let mut memo: Vec<Option<Lit>> = vec![None; sm.aig().node_count()];

    for (name, bit, la, lb) in pairs {
        let sa = encode_cone(&sm, &mut enc, &mut memo, &input_vars, la);
        let sb = encode_cone(&sm, &mut enc, &mut memo, &input_vars, lb);
        if sa == sb {
            continue;
        }
        let miter = enc.xor(sa, sb);
        match enc.solve_with(&[miter]) {
            SolveResult::Unsat => {}
            SolveResult::Unknown => {
                return Ok(EquivResult::Unknown { output: name, bit });
            }
            SolveResult::Sat => {
                let mut cex: HashMap<String, u64> = HashMap::new();
                for ((iname, ibit), var) in input_names.iter().zip(&input_vars) {
                    if *ibit < 64 && enc.solver().model_value(*var) == Some(true) {
                        *cex.entry(iname.clone()).or_default() |= 1 << ibit;
                    } else {
                        cex.entry(iname.clone()).or_default();
                    }
                }
                return Ok(EquivResult::NotEquivalent {
                    output: name,
                    bit,
                    counterexample: cex,
                });
            }
        }
    }
    Ok(EquivResult::Equivalent)
}

/// Iterative post-order Tseitin encoding of one cone of the shared graph.
fn encode_cone(
    sm: &SharedMapper,
    enc: &mut TseitinEncoder,
    memo: &mut [Option<Lit>],
    input_vars: &[Lit],
    root: AigLit,
) -> Lit {
    // input nodes are numbered in creation order; precompute lazily:
    // node index → position among inputs. Inputs are created before any
    // AND that uses them, so a linear scan per call would be wasteful —
    // instead we derive the input ordinal by counting Input nodes.
    // (memoized via the same `memo` table.)
    let mut stack: Vec<u32> = vec![root.node()];
    while let Some(&n) = stack.last() {
        if memo[n as usize].is_some() {
            stack.pop();
            continue;
        }
        match sm.aig().node(AigLit::from_node(n)) {
            AigNode::Const => {
                memo[n as usize] = Some(enc.false_lit());
                stack.pop();
            }
            AigNode::Input => {
                let ordinal = sm
                    .aig()
                    .input_ordinal(n)
                    .expect("input node has an ordinal");
                memo[n as usize] = Some(input_vars[ordinal]);
                stack.pop();
            }
            AigNode::And(a, b) => {
                let need_a = memo[a.node() as usize].is_none();
                let need_b = memo[b.node() as usize].is_none();
                if need_a {
                    stack.push(a.node());
                }
                if need_b {
                    stack.push(b.node());
                }
                if !need_a && !need_b {
                    let la = apply(memo[a.node() as usize].expect("encoded"), a);
                    let lb = apply(memo[b.node() as usize].expect("encoded"), b);
                    memo[n as usize] = Some(enc.and(la, lb));
                    stack.pop();
                }
            }
        }
    }
    apply(memo[root.node() as usize].expect("encoded root"), root)
}

fn apply(base: Lit, l: AigLit) -> Lit {
    if l.is_complement() {
        !base
    } else {
        base
    }
}

/// Cheap random-vector filter on the shared graph.
#[allow(clippy::type_complexity)]
fn random_prefilter(
    sm: &SharedMapper,
    pairs: &[(String, usize, AigLit, AigLit)],
    options: &EquivOptions,
) -> Option<(String, usize, HashMap<String, u64>)> {
    let mut state = options.seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let n_inputs: usize = sm.inputs().iter().map(|(_, l)| l.len()).sum();
    for _ in 0..options.sim_vectors {
        let flat: Vec<bool> = (0..n_inputs).map(|_| next() & 1 == 1).collect();
        let roots: Vec<AigLit> = pairs.iter().flat_map(|&(_, _, a, b)| [a, b]).collect();
        let vals = sm.aig().eval(&flat, &roots);
        for (k, (name, bit, _, _)) in pairs.iter().enumerate() {
            if vals[2 * k] != vals[2 * k + 1] {
                // reconstruct named counterexample
                let mut cex: HashMap<String, u64> = HashMap::new();
                let mut idx = 0usize;
                for (iname, lits) in sm.inputs() {
                    let mut v = 0u64;
                    for b in 0..lits.len() {
                        if b < 64 && flat[idx] {
                            v |= 1 << b;
                        }
                        idx += 1;
                    }
                    cex.insert(iname.clone(), v);
                }
                return Some((name.clone(), *bit, cex));
            }
        }
    }
    None
}

/// Convenience: area of a module after `aigmap` (the paper's metric).
///
/// # Errors
///
/// Propagates [`aigmap`] errors.
pub fn aig_area(module: &Module) -> Result<usize, NetlistError> {
    Ok(aigmap(module)?.area())
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartly_netlist::{Module, SigSpec};

    fn mux_module(swap: bool) -> Module {
        let mut m = Module::new(if swap { "b" } else { "a" });
        let a = m.add_input("a", 4);
        let b = m.add_input("b", 4);
        let s = m.add_input("s", 1);
        let y = if swap {
            // y = s ? b : a  via AND/OR gates instead of a mux cell
            let mask = SigSpec::from_bits(vec![s.bit(0); 4]);
            let not_mask = m.not(&mask);
            let t1 = m.and(&b, &mask);
            let t2 = m.and(&a, &not_mask);
            m.or(&t1, &t2)
        } else {
            m.mux(&a, &b, &s)
        };
        m.add_output("y", &y);
        m
    }

    #[test]
    fn equivalent_structures_pass() {
        let m1 = mux_module(false);
        let m2 = mux_module(true);
        let r = check_equiv(&m1, &m2, &EquivOptions::default()).unwrap();
        assert_eq!(r, EquivResult::Equivalent);
    }

    #[test]
    fn identical_modules_short_circuit() {
        let m1 = mux_module(false);
        let m2 = mux_module(false);
        let r = check_equiv(&m1, &m2, &EquivOptions::default()).unwrap();
        assert_eq!(r, EquivResult::Equivalent);
    }

    #[test]
    fn inequivalent_detected_with_counterexample() {
        let mut m1 = Module::new("a");
        let a = m1.add_input("a", 4);
        let b = m1.add_input("b", 4);
        let y = m1.and(&a, &b);
        m1.add_output("y", &y);

        let mut m2 = Module::new("b");
        let a = m2.add_input("a", 4);
        let b = m2.add_input("b", 4);
        let y = m2.or(&a, &b);
        m2.add_output("y", &y);

        match check_equiv(&m1, &m2, &EquivOptions::default()).unwrap() {
            EquivResult::NotEquivalent {
                output,
                counterexample,
                ..
            } => {
                assert_eq!(output, "y");
                let av = counterexample["a"];
                let bv = counterexample["b"];
                assert_ne!(av & bv, av | bv);
            }
            other => panic!("expected NotEquivalent, got {other:?}"),
        }
    }

    #[test]
    fn sat_catches_rare_difference() {
        // differ only when a == 0xffff: random sim over 4 vectors will
        // almost surely miss it, SAT must find it
        let mut m1 = Module::new("a");
        let a = m1.add_input("a", 16);
        let ones = SigSpec::ones(16);
        let y = m1.eq(&a, &ones);
        m1.add_output("y", &y);

        let mut m2 = Module::new("b");
        let _a = m2.add_input("a", 16);
        m2.add_output("y", &SigSpec::zeros(1));

        let opts = EquivOptions {
            sim_vectors: 4,
            ..Default::default()
        };
        match check_equiv(&m1, &m2, &opts).unwrap() {
            EquivResult::NotEquivalent { counterexample, .. } => {
                assert_eq!(counterexample["a"], 0xffff);
            }
            other => panic!("expected NotEquivalent, got {other:?}"),
        }
    }

    #[test]
    fn port_mismatch_is_error() {
        let mut m1 = Module::new("a");
        let a = m1.add_input("a", 4);
        m1.add_output("y", &a);
        let mut m2 = Module::new("b");
        let b = m2.add_input("b", 4);
        m2.add_output("y", &b);
        assert!(check_equiv(&m1, &m2, &EquivOptions::default()).is_err());
    }

    #[test]
    fn sequential_equivalence_via_cut_points() {
        // register + increment, written two ways
        let build = |via_sub: bool| {
            let mut m = Module::new("c");
            let clk = m.add_input("clk", 1);
            let d = m.add_input("d", 4);
            let q = m.dff(&clk, &d);
            let one = SigSpec::const_u64(1, 4);
            let y = if via_sub {
                let minus1 = SigSpec::const_u64(0xF, 4);
                m.sub(&q, &minus1)
            } else {
                m.add(&q, &one)
            };
            m.add_output("y", &y);
            m
        };
        let r = check_equiv(&build(false), &build(true), &EquivOptions::default()).unwrap();
        assert_eq!(r, EquivResult::Equivalent);
    }

    #[test]
    fn deep_xor_chain_fast_path() {
        // two identical deep chains: must short-circuit structurally
        let build = || {
            let mut m = Module::new("deep");
            let a = m.add_input("a", 8);
            let b = m.add_input("b", 8);
            let mut acc = a.clone();
            for _ in 0..200 {
                acc = m.xor(&acc, &b);
                acc = m.add(&acc, &a);
            }
            m.add_output("y", &acc);
            m
        };
        let t = std::time::Instant::now();
        let r = check_equiv(&build(), &build(), &EquivOptions::default()).unwrap();
        assert_eq!(r, EquivResult::Equivalent);
        assert!(
            t.elapsed().as_millis() < 2_000,
            "structural fast path must avoid SAT"
        );
    }
}
