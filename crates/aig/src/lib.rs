//! And-Inverter Graphs: the paper's area metric and equivalence checker.
//!
//! The smaRTLy evaluation converts optimized netlists to AIGs with Yosys'
//! `aigmap` and reports **AIG area = number of AND2 nodes**, flip-flops
//! excluded. This crate provides:
//!
//! * [`Aig`] — a structurally hashed and-inverter graph with constant
//!   folding;
//! * [`aigmap`] — word-level netlist → AIG lowering (flip-flop `Q` pins
//!   become AIG inputs, `D` pins become latch outputs, so the metric and
//!   the equivalence check both operate on the combinational transition
//!   logic, matching the paper);
//! * [`check_equiv`] — SAT-based combinational equivalence checking over
//!   a miter of two mapped designs (the paper: "All the results generated
//!   by our program passed equivalence checking").
//!
//! # Example
//!
//! ```
//! use smartly_netlist::Module;
//! use smartly_aig::aigmap;
//!
//! let mut m = Module::new("t");
//! let a = m.add_input("a", 4);
//! let b = m.add_input("b", 4);
//! let y = m.and(&a, &b);
//! m.add_output("y", &y);
//! let mapped = aigmap(&m)?;
//! assert_eq!(mapped.area(), 4); // one AND2 per bit
//! # Ok::<(), smartly_netlist::NetlistError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aiger;
mod cec;
mod graph;
mod map;

pub use aiger::{parse_aag, write_aag, AagFile, ParseAagError};
pub use cec::{aig_area, check_equiv, EquivOptions, EquivResult};
pub use graph::{Aig, AigLit, AigNode};
pub use map::{aigmap, MappedAig, SharedMapper};
