//! AIGER interchange (ASCII `aag` format).
//!
//! [`write_aag`] serializes a [`MappedAig`] so external tools (ABC,
//! aigtoaig, equivalence checkers) can consume the graphs this crate
//! produces; [`parse_aag`] reads them back. Latches are emitted for the
//! `dff$k` cut-point pairs, reconnecting the sequential behavior that
//! [`crate::aigmap`] cuts for the area metric.

use crate::graph::{Aig, AigLit, AigNode};
use crate::map::MappedAig;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Errors from [`parse_aag`].
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseAagError {
    /// Missing or malformed `aag M I L O A` header.
    BadHeader(String),
    /// A malformed body line.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// Offending content.
        content: String,
    },
    /// A literal exceeds the declared maximum index.
    LiteralOutOfRange {
        /// 1-based line number.
        line: usize,
        /// The literal.
        literal: u64,
    },
}

impl std::fmt::Display for ParseAagError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseAagError::BadHeader(h) => write!(f, "bad aag header: {h}"),
            ParseAagError::BadLine { line, content } => {
                write!(f, "bad aag line {line}: {content}")
            }
            ParseAagError::LiteralOutOfRange { line, literal } => {
                write!(f, "literal {literal} out of range on line {line}")
            }
        }
    }
}

impl std::error::Error for ParseAagError {}

/// A parsed AIGER file: graph plus port literal lists.
#[derive(Clone, Debug)]
pub struct AagFile {
    /// The graph.
    pub aig: Aig,
    /// Input literals in file order.
    pub inputs: Vec<AigLit>,
    /// `(current_state, next_state)` latch pairs.
    pub latches: Vec<(AigLit, AigLit)>,
    /// Output literals in file order.
    pub outputs: Vec<AigLit>,
}

/// Serializes a mapped design as ASCII AIGER (`aag`).
///
/// Ordering: module input ports first (flattened bit order), then one
/// latch per flip-flop bit (`dff$k` input/output pairs), then module
/// output ports. Symbol-table entries carry the original port names.
pub fn write_aag(mapped: &MappedAig) -> String {
    // AIGER numbers variables densely: 0 = const, inputs, then ANDs.
    // Our Aig is already in that order (inputs created before ANDs is not
    // guaranteed across map_module calls, so renumber defensively).
    let aig = &mapped.aig;
    let mut var_of: HashMap<u32, u64> = HashMap::new();
    let mut next_var = 0u64;
    var_of.insert(0, 0); // constant node

    let mut inputs_flat: Vec<(String, usize, AigLit)> = Vec::new();
    for (name, lits) in mapped.port_inputs() {
        for (bit, &l) in lits.iter().enumerate() {
            inputs_flat.push((name.clone(), bit, l));
        }
    }
    // latch current-state bits are the dff$k pseudo-inputs
    let mut latch_inputs: Vec<AigLit> = Vec::new();
    let mut latch_nexts: Vec<AigLit> = Vec::new();
    for (name, lits) in mapped.inputs() {
        if name.starts_with("dff$") {
            latch_inputs.extend(lits.iter().copied());
        }
    }
    for (name, lits) in mapped.outputs() {
        if name.starts_with("dff$") {
            latch_nexts.extend(lits.iter().copied());
        }
    }
    debug_assert_eq!(latch_inputs.len(), latch_nexts.len());

    for (_, _, l) in &inputs_flat {
        next_var += 1;
        var_of.insert(l.node(), next_var);
    }
    for l in &latch_inputs {
        next_var += 1;
        var_of.insert(l.node(), next_var);
    }
    // ANDs in topological (index) order
    let mut ands: Vec<(u32, AigLit, AigLit)> = Vec::new();
    for (idx, node) in aig.nodes() {
        if let AigNode::And(a, b) = node {
            next_var += 1;
            var_of.insert(idx, next_var);
            ands.push((idx, a, b));
        }
    }

    let lit_code = |l: AigLit, var_of: &HashMap<u32, u64>| -> u64 {
        2 * var_of[&l.node()] + u64::from(l.is_complement())
    };

    let outputs_flat: Vec<(String, usize, AigLit)> = mapped
        .port_outputs()
        .iter()
        .flat_map(|(name, lits)| {
            lits.iter()
                .enumerate()
                .map(|(bit, &l)| (name.clone(), bit, l))
                .collect::<Vec<_>>()
        })
        .collect();

    let mut out = String::new();
    writeln!(
        out,
        "aag {} {} {} {} {}",
        next_var,
        inputs_flat.len(),
        latch_inputs.len(),
        outputs_flat.len(),
        ands.len()
    )
    .expect("write");
    for (_, _, l) in &inputs_flat {
        writeln!(out, "{}", lit_code(*l, &var_of)).expect("write");
    }
    for (cur, next) in latch_inputs.iter().zip(&latch_nexts) {
        writeln!(
            out,
            "{} {}",
            lit_code(*cur, &var_of),
            lit_code(*next, &var_of)
        )
        .expect("write");
    }
    for (_, _, l) in &outputs_flat {
        writeln!(out, "{}", lit_code(*l, &var_of)).expect("write");
    }
    for (idx, a, b) in &ands {
        writeln!(
            out,
            "{} {} {}",
            2 * var_of[idx],
            lit_code(*a, &var_of),
            lit_code(*b, &var_of)
        )
        .expect("write");
    }
    // symbol table
    for (i, (name, bit, _)) in inputs_flat.iter().enumerate() {
        writeln!(out, "i{i} {name}[{bit}]").expect("write");
    }
    for (i, (name, bit, _)) in outputs_flat.iter().enumerate() {
        writeln!(out, "o{i} {name}[{bit}]").expect("write");
    }
    writeln!(out, "c\nemitted by smartly-aig").expect("write");
    out
}

/// Parses ASCII AIGER (`aag`) into a fresh graph.
///
/// # Errors
///
/// Returns [`ParseAagError`] on malformed headers, lines, or
/// out-of-range literals.
pub fn parse_aag(text: &str) -> Result<AagFile, ParseAagError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines
        .next()
        .ok_or_else(|| ParseAagError::BadHeader("empty file".to_string()))?;
    let mut parts = header.split_whitespace();
    if parts.next() != Some("aag") {
        return Err(ParseAagError::BadHeader(header.to_string()));
    }
    let nums: Vec<u64> = parts.filter_map(|t| t.parse().ok()).collect();
    if nums.len() != 5 {
        return Err(ParseAagError::BadHeader(header.to_string()));
    }
    let (max_var, ni, nl, no, na) = (nums[0], nums[1], nums[2], nums[3], nums[4]);

    let mut aig = Aig::new();
    // map aag variable -> AigLit (positive)
    let mut lit_of_var: HashMap<u64, AigLit> = HashMap::new();
    lit_of_var.insert(0, AigLit::FALSE);

    let decode = |code: u64,
                  lit_of_var: &HashMap<u64, AigLit>,
                  line: usize|
     -> Result<AigLit, ParseAagError> {
        let var = code / 2;
        if var > max_var {
            return Err(ParseAagError::LiteralOutOfRange {
                line,
                literal: code,
            });
        }
        let base = lit_of_var
            .get(&var)
            .copied()
            .ok_or(ParseAagError::LiteralOutOfRange {
                line,
                literal: code,
            })?;
        Ok(if code % 2 == 1 { !base } else { base })
    };

    fn take_line<'a>(
        what: &str,
        lines: &mut std::iter::Enumerate<std::str::Lines<'a>>,
    ) -> Result<(usize, &'a str), ParseAagError> {
        lines
            .next()
            .ok_or_else(|| ParseAagError::BadHeader(format!("truncated before {what}")))
    }

    let mut inputs = Vec::with_capacity(ni as usize);
    let mut input_codes = Vec::new();
    for _ in 0..ni {
        let (n, l) = take_line("inputs", &mut lines)?;
        let code: u64 = l.trim().parse().map_err(|_| ParseAagError::BadLine {
            line: n + 1,
            content: l.to_string(),
        })?;
        let lit = aig.add_input();
        lit_of_var.insert(code / 2, lit);
        input_codes.push(code);
        inputs.push(lit);
    }
    let mut latch_raw = Vec::with_capacity(nl as usize);
    for _ in 0..nl {
        let (n, l) = take_line("latches", &mut lines)?;
        let mut it = l.split_whitespace();
        let cur: u64 =
            it.next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| ParseAagError::BadLine {
                    line: n + 1,
                    content: l.to_string(),
                })?;
        let next: u64 =
            it.next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| ParseAagError::BadLine {
                    line: n + 1,
                    content: l.to_string(),
                })?;
        let lit = aig.add_input(); // latch output behaves as an input
        lit_of_var.insert(cur / 2, lit);
        latch_raw.push((lit, next, n + 1));
    }
    let mut output_raw = Vec::with_capacity(no as usize);
    for _ in 0..no {
        let (n, l) = take_line("outputs", &mut lines)?;
        let code: u64 = l.trim().parse().map_err(|_| ParseAagError::BadLine {
            line: n + 1,
            content: l.to_string(),
        })?;
        output_raw.push((code, n + 1));
    }
    for _ in 0..na {
        let (n, l) = take_line("ands", &mut lines)?;
        let mut it = l.split_whitespace();
        let mut next_num = || -> Result<u64, ParseAagError> {
            it.next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| ParseAagError::BadLine {
                    line: n + 1,
                    content: l.to_string(),
                })
        };
        let y = next_num()?;
        let a = next_num()?;
        let b = next_num()?;
        let la = decode(a, &lit_of_var, n + 1)?;
        let lb = decode(b, &lit_of_var, n + 1)?;
        let ly = aig.and(la, lb);
        lit_of_var.insert(y / 2, ly);
    }
    // resolve deferred references (next-state and outputs may point at ANDs)
    let mut latches = Vec::with_capacity(latch_raw.len());
    for (cur, next_code, line) in latch_raw {
        latches.push((cur, decode(next_code, &lit_of_var, line)?));
    }
    let mut outputs = Vec::with_capacity(output_raw.len());
    for (code, line) in output_raw {
        outputs.push(decode(code, &lit_of_var, line)?);
    }
    Ok(AagFile {
        aig,
        inputs,
        latches,
        outputs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::aigmap;
    use smartly_netlist::Module;

    fn sample() -> MappedAig {
        let mut m = Module::new("t");
        let a = m.add_input("a", 2);
        let b = m.add_input("b", 2);
        let clk = m.add_input("clk", 1);
        let x = m.xor(&a, &b);
        let q = m.dff(&clk, &x);
        let y = m.and(&q, &a);
        m.add_output("y", &y);
        aigmap(&m).expect("maps")
    }

    #[test]
    fn writes_wellformed_header() {
        let mapped = sample();
        let text = write_aag(&mapped);
        let first = text.lines().next().expect("header");
        let nums: Vec<&str> = first.split_whitespace().collect();
        assert_eq!(nums[0], "aag");
        assert_eq!(nums.len(), 6);
        // I = a(2) + b(2) + clk(1); L = 2 (one per dff bit)
        assert_eq!(nums[2], "5");
        assert_eq!(nums[3], "2");
    }

    #[test]
    fn round_trip_preserves_function() {
        let mapped = sample();
        let text = write_aag(&mapped);
        let parsed = parse_aag(&text).expect("parses back");
        assert_eq!(parsed.inputs.len(), 5);
        assert_eq!(parsed.latches.len(), 2);
        assert_eq!(parsed.outputs.len(), 2);
        // compare on all input assignments (5 real + 2 latch state = 7 bits)
        let orig_inputs: usize = mapped.inputs().iter().map(|(_, l)| l.len()).sum();
        assert_eq!(orig_inputs, 7);
        let orig_roots: Vec<AigLit> = mapped
            .outputs()
            .iter()
            .flat_map(|(_, l)| l.iter().copied())
            .collect();
        let new_roots: Vec<AigLit> = parsed
            .outputs
            .iter()
            .copied()
            .chain(parsed.latches.iter().map(|&(_, n)| n))
            .collect();
        for m in 0u32..(1 << 7) {
            let bits: Vec<bool> = (0..7).map(|i| (m >> i) & 1 == 1).collect();
            let a = mapped.aig.eval(&bits, &orig_roots);
            let b = parsed.aig.eval(&bits, &new_roots);
            assert_eq!(a, b, "assignment {m:07b}");
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_aag("").is_err());
        assert!(parse_aag("aig 1 1 0 1 0\n2\n2\n").is_err());
        assert!(parse_aag("aag 1 1 0 1\n").is_err());
        assert!(matches!(
            parse_aag("aag 1 1 0 1 0\n2\n9\n"),
            Err(ParseAagError::LiteralOutOfRange { .. })
        ));
    }

    #[test]
    fn symbol_table_carries_port_names() {
        let mapped = sample();
        let text = write_aag(&mapped);
        assert!(text.contains("i0 a[0]"));
        assert!(text.contains("o0 y[0]"));
    }
}
