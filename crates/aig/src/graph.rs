//! The structurally hashed and-inverter graph.

use std::collections::HashMap;

/// A literal into an [`Aig`]: node index with a complement bit.
///
/// `AigLit(0)` is constant **false**, `AigLit(1)` constant **true**.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AigLit(u32);

impl AigLit {
    /// Constant false.
    pub const FALSE: AigLit = AigLit(0);
    /// Constant true.
    pub const TRUE: AigLit = AigLit(1);

    fn new(node: u32, complement: bool) -> Self {
        AigLit(node << 1 | u32::from(complement))
    }

    /// The positive literal of a node index.
    pub fn from_node(node: u32) -> Self {
        AigLit::new(node, false)
    }

    /// The node this literal points at.
    pub fn node(self) -> u32 {
        self.0 >> 1
    }

    /// Whether the literal is complemented.
    pub fn is_complement(self) -> bool {
        self.0 & 1 == 1
    }

    /// Whether this is one of the two constants.
    pub fn is_const(self) -> bool {
        self.node() == 0
    }

    /// The constant value, if constant.
    pub fn as_const(self) -> Option<bool> {
        self.is_const().then(|| self.is_complement())
    }
}

impl std::ops::Not for AigLit {
    type Output = AigLit;
    fn not(self) -> AigLit {
        AigLit(self.0 ^ 1)
    }
}

/// An AND node (or input/constant placeholder).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum AigNode {
    /// The constant-false node (index 0 only).
    Const,
    /// A primary input.
    Input,
    /// A two-input AND gate.
    And(AigLit, AigLit),
}

/// A structurally hashed AIG.
///
/// ANDs are canonicalized (ordered fanins, constant/identity folding) and
/// deduplicated, so building the same function twice yields the same
/// literal — the `aigmap`-level equivalent of Yosys' strashing.
#[derive(Clone, Debug, Default)]
pub struct Aig {
    nodes: Vec<AigNode>,
    strash: HashMap<(AigLit, AigLit), u32>,
    /// node indices of inputs, in creation order
    inputs: Vec<u32>,
}

impl Aig {
    /// Creates an AIG containing only the constant node.
    pub fn new() -> Self {
        Aig {
            nodes: vec![AigNode::Const],
            strash: HashMap::new(),
            inputs: Vec::new(),
        }
    }

    /// Number of primary inputs.
    pub fn input_count(&self) -> usize {
        self.inputs.len()
    }

    /// The creation-order ordinal of an input node, if `node` is one.
    pub fn input_ordinal(&self, node: u32) -> Option<usize> {
        self.inputs.binary_search(&node).ok()
    }

    /// Total node count (constant + inputs + ANDs).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The node behind a literal.
    pub fn node(&self, lit: AigLit) -> AigNode {
        self.nodes[lit.node() as usize]
    }

    /// Adds a primary input and returns its positive literal.
    pub fn add_input(&mut self) -> AigLit {
        let idx = self.nodes.len() as u32;
        self.nodes.push(AigNode::Input);
        self.inputs.push(idx);
        AigLit::new(idx, false)
    }

    /// AND with structural hashing and folding.
    pub fn and(&mut self, a: AigLit, b: AigLit) -> AigLit {
        // constant / trivial folding
        if a == AigLit::FALSE || b == AigLit::FALSE || a == !b {
            return AigLit::FALSE;
        }
        if a == AigLit::TRUE {
            return b;
        }
        if b == AigLit::TRUE || a == b {
            return a;
        }
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        if let Some(&idx) = self.strash.get(&(a, b)) {
            return AigLit::new(idx, false);
        }
        let idx = self.nodes.len() as u32;
        self.nodes.push(AigNode::And(a, b));
        self.strash.insert((a, b), idx);
        AigLit::new(idx, false)
    }

    /// OR via De Morgan.
    pub fn or(&mut self, a: AigLit, b: AigLit) -> AigLit {
        !self.and(!a, !b)
    }

    /// XOR (two ANDs + OR = 3 AND nodes worst case).
    pub fn xor(&mut self, a: AigLit, b: AigLit) -> AigLit {
        let t1 = self.and(a, !b);
        let t2 = self.and(!a, b);
        self.or(t1, t2)
    }

    /// XNOR.
    pub fn xnor(&mut self, a: AigLit, b: AigLit) -> AigLit {
        !self.xor(a, b)
    }

    /// If-then-else: `s ? t : e`.
    pub fn mux(&mut self, s: AigLit, t: AigLit, e: AigLit) -> AigLit {
        let pt = self.and(s, t);
        let pe = self.and(!s, e);
        self.or(pt, pe)
    }

    /// Conjunction of many literals (balanced tree).
    pub fn big_and(&mut self, lits: &[AigLit]) -> AigLit {
        match lits.len() {
            0 => AigLit::TRUE,
            1 => lits[0],
            _ => {
                let mid = lits.len() / 2;
                let l = self.big_and(&lits[..mid]);
                let r = self.big_and(&lits[mid..]);
                self.and(l, r)
            }
        }
    }

    /// Disjunction of many literals (balanced tree).
    pub fn big_or(&mut self, lits: &[AigLit]) -> AigLit {
        let negs: Vec<AigLit> = lits.iter().map(|&l| !l).collect();
        !self.big_and(&negs)
    }

    /// Counts AND nodes reachable from `roots` (the paper's area metric).
    pub fn count_ands(&self, roots: &[AigLit]) -> usize {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack: Vec<u32> = roots.iter().map(|l| l.node()).collect();
        let mut count = 0;
        while let Some(n) = stack.pop() {
            if seen[n as usize] {
                continue;
            }
            seen[n as usize] = true;
            if let AigNode::And(a, b) = self.nodes[n as usize] {
                count += 1;
                stack.push(a.node());
                stack.push(b.node());
            }
        }
        count
    }

    /// Evaluates `roots` under an input assignment (`inputs[i]` = value of
    /// the `i`-th input in creation order).
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is shorter than the number of inputs.
    pub fn eval(&self, inputs: &[bool], roots: &[AigLit]) -> Vec<bool> {
        let mut values = vec![false; self.nodes.len()];
        let mut input_idx = 0;
        for (i, node) in self.nodes.iter().enumerate() {
            match node {
                AigNode::Const => values[i] = false,
                AigNode::Input => {
                    values[i] = inputs[input_idx];
                    input_idx += 1;
                }
                AigNode::And(a, b) => {
                    let va = values[a.node() as usize] ^ a.is_complement();
                    let vb = values[b.node() as usize] ^ b.is_complement();
                    values[i] = va && vb;
                }
            }
        }
        roots
            .iter()
            .map(|l| values[l.node() as usize] ^ l.is_complement())
            .collect()
    }

    /// Iterates over all nodes in index order.
    pub fn nodes(&self) -> impl Iterator<Item = (u32, AigNode)> + '_ {
        self.nodes.iter().enumerate().map(|(i, &n)| (i as u32, n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_folding() {
        let mut g = Aig::new();
        let a = g.add_input();
        assert_eq!(g.and(a, AigLit::FALSE), AigLit::FALSE);
        assert_eq!(g.and(a, AigLit::TRUE), a);
        assert_eq!(g.and(a, a), a);
        assert_eq!(g.and(a, !a), AigLit::FALSE);
        assert_eq!(g.or(a, AigLit::TRUE), AigLit::TRUE);
        assert_eq!(g.xor(a, AigLit::FALSE), a);
        assert_eq!(g.xor(a, AigLit::TRUE), !a);
    }

    #[test]
    fn strash_dedups() {
        let mut g = Aig::new();
        let a = g.add_input();
        let b = g.add_input();
        let y1 = g.and(a, b);
        let y2 = g.and(b, a); // commuted
        assert_eq!(y1, y2);
        assert_eq!(g.count_ands(&[y1]), 1);
    }

    #[test]
    fn xor_truth_table() {
        let mut g = Aig::new();
        let a = g.add_input();
        let b = g.add_input();
        let y = g.xor(a, b);
        for (av, bv) in [(false, false), (true, false), (false, true), (true, true)] {
            assert_eq!(g.eval(&[av, bv], &[y])[0], av ^ bv);
        }
    }

    #[test]
    fn mux_truth_table() {
        let mut g = Aig::new();
        let s = g.add_input();
        let t = g.add_input();
        let e = g.add_input();
        let y = g.mux(s, t, e);
        for i in 0..8u32 {
            let sv = i & 1 == 1;
            let tv = i & 2 == 2;
            let ev = i & 4 == 4;
            assert_eq!(
                g.eval(&[sv, tv, ev], &[y])[0],
                if sv { tv } else { ev },
                "case {i}"
            );
        }
    }

    #[test]
    fn area_counts_only_reachable() {
        let mut g = Aig::new();
        let a = g.add_input();
        let b = g.add_input();
        let y = g.and(a, b);
        let _dead = g.xor(a, b); // 3 nodes, unreachable from y
        assert_eq!(g.count_ands(&[y]), 1);
    }

    #[test]
    fn big_gates() {
        let mut g = Aig::new();
        let xs: Vec<AigLit> = (0..5).map(|_| g.add_input()).collect();
        let all = g.big_and(&xs);
        let any = g.big_or(&xs);
        assert_eq!(g.eval(&[true; 5], &[all, any]), vec![true, true]);
        assert_eq!(g.eval(&[false; 5], &[all, any]), vec![false, false]);
        assert_eq!(
            g.eval(&[true, false, true, true, true], &[all, any]),
            vec![false, true]
        );
    }
}
