//! Word-level netlist → AIG lowering (`aigmap`).

use crate::graph::{Aig, AigLit};
use smartly_netlist::{CellKind, Module, NetIndex, NetlistError, Port, SigBit, SigSpec, TriVal};
use std::collections::HashMap;

/// A module lowered to an AIG, with named port bindings.
///
/// Flip-flops are cut: each `dff` contributes pseudo-inputs (its `Q` bits,
/// named `dff$<k>`) and pseudo-outputs (its `D` bits, named `dff$<k>`), so
/// the graph is purely combinational — exactly the transition logic whose
/// AND-count the paper reports as *AIG area*.
#[derive(Clone, Debug)]
pub struct MappedAig {
    /// The underlying graph.
    pub aig: Aig,
    inputs: Vec<(String, Vec<AigLit>)>,
    outputs: Vec<(String, Vec<AigLit>)>,
    num_port_inputs: usize,
    num_port_outputs: usize,
}

impl MappedAig {
    /// AIG area: AND nodes reachable from any output (ports and flip-flop
    /// `D` pins), flip-flops themselves excluded — the paper's metric.
    pub fn area(&self) -> usize {
        let roots: Vec<AigLit> = self
            .outputs
            .iter()
            .flat_map(|(_, lits)| lits.iter().copied())
            .collect();
        self.aig.count_ands(&roots)
    }

    /// All inputs `(name, bits)` in creation order: module input ports
    /// first, then `dff$<k>` pseudo-inputs.
    pub fn inputs(&self) -> &[(String, Vec<AigLit>)] {
        &self.inputs
    }

    /// All outputs `(name, bits)`: module output ports first, then
    /// `dff$<k>` pseudo-outputs.
    pub fn outputs(&self) -> &[(String, Vec<AigLit>)] {
        &self.outputs
    }

    /// Real (port) inputs only.
    pub fn port_inputs(&self) -> &[(String, Vec<AigLit>)] {
        &self.inputs[..self.num_port_inputs]
    }

    /// Real (port) outputs only.
    pub fn port_outputs(&self) -> &[(String, Vec<AigLit>)] {
        &self.outputs[..self.num_port_outputs]
    }

    /// Looks up an input by name.
    pub fn input(&self, name: &str) -> Option<&[AigLit]> {
        self.inputs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, l)| l.as_slice())
    }

    /// Looks up an output by name.
    pub fn output(&self, name: &str) -> Option<&[AigLit]> {
        self.outputs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, l)| l.as_slice())
    }

    /// Evaluates all outputs for named input values (two-valued).
    ///
    /// # Panics
    ///
    /// Panics if a name in `values` is unknown; missing inputs default to 0.
    pub fn eval_u64(&self, values: &HashMap<String, u64>) -> HashMap<String, u64> {
        for name in values.keys() {
            assert!(
                self.input(name).is_some(),
                "unknown input '{name}' in eval_u64"
            );
        }
        // inputs are in creation order; rebuild the flat input vector
        let mut flat: Vec<bool> = Vec::new();
        for (name, lits) in &self.inputs {
            let v = values.get(name).copied().unwrap_or(0);
            for bit in 0..lits.len() {
                flat.push((v >> bit) & 1 == 1);
            }
        }
        let mut out = HashMap::new();
        for (name, lits) in &self.outputs {
            let bits = self.aig.eval(&flat, lits);
            let mut v = 0u64;
            for (i, b) in bits.iter().enumerate() {
                if *b {
                    v |= 1 << i;
                }
            }
            out.insert(name.clone(), v);
        }
        out
    }
}

/// Maps one or more modules into a **single** structurally hashed AIG
/// with inputs shared by name.
///
/// This is the miter construction trick that makes equivalence checking
/// fast: when two modules are mapped through the same `SharedMapper`,
/// cones that are structurally identical fold to the *same* literal, so
/// only genuinely rewritten logic ever reaches the SAT solver.
///
/// # Example
///
/// ```
/// use smartly_netlist::Module;
/// use smartly_aig::SharedMapper;
///
/// let build = |name: &str| {
///     let mut m = Module::new(name);
///     let a = m.add_input("a", 4);
///     let b = m.add_input("b", 4);
///     let y = m.and(&a, &b);
///     m.add_output("y", &y);
///     m
/// };
/// let mut sm = SharedMapper::new();
/// let oa = sm.map_module(&build("m1"))?;
/// let ob = sm.map_module(&build("m2"))?;
/// assert_eq!(oa[0].1, ob[0].1, "identical cones share literals");
/// # Ok::<(), smartly_netlist::NetlistError>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct SharedMapper {
    aig: Aig,
    named_inputs: HashMap<String, Vec<AigLit>>,
    input_order: Vec<(String, Vec<AigLit>)>,
}

impl SharedMapper {
    /// Creates an empty mapper.
    pub fn new() -> Self {
        SharedMapper {
            aig: Aig::new(),
            named_inputs: HashMap::new(),
            input_order: Vec::new(),
        }
    }

    /// The shared graph.
    pub fn aig(&self) -> &Aig {
        &self.aig
    }

    /// Inputs in creation order (shared across mapped modules).
    pub fn inputs(&self) -> &[(String, Vec<AigLit>)] {
        &self.input_order
    }

    fn input_lits(&mut self, name: &str, width: usize) -> Result<Vec<AigLit>, NetlistError> {
        if let Some(lits) = self.named_inputs.get(name) {
            if lits.len() != width {
                return Err(NetlistError::NotFound {
                    module: String::new(),
                    name: format!("input '{name}' with matching width"),
                });
            }
            return Ok(lits.clone());
        }
        let lits: Vec<AigLit> = (0..width).map(|_| self.aig.add_input()).collect();
        self.named_inputs.insert(name.to_string(), lits.clone());
        self.input_order.push((name.to_string(), lits.clone()));
        Ok(lits)
    }

    /// Maps `module` into the shared graph; returns its outputs (ports
    /// first, then `dff$<k>` pseudo-outputs).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] for cyclic logic,
    /// [`NetlistError::NotFound`] for undriven consumed bits or when a
    /// port name is reused with a different width.
    pub fn map_module(
        &mut self,
        module: &Module,
    ) -> Result<Vec<(String, Vec<AigLit>)>, NetlistError> {
        let index = NetIndex::build(module);
        let order = module.topo_order()?;
        let mut lit_of: HashMap<SigBit, AigLit> = HashMap::new();

        // 1. module input ports (shared by name)
        for p in module.input_ports() {
            let w = module.wire(p.wire).width;
            let lits = self.input_lits(&p.name, w as usize)?;
            for (i, l) in lits.iter().enumerate() {
                lit_of.insert(SigBit::Wire(p.wire, i as u32), *l);
            }
        }

        // 2. flip-flop Q pins: shared `dff$<k>` pseudo-inputs, matched by
        // cell order across modules
        let mut dff_cells = Vec::new();
        for (id, cell) in module.cells() {
            if cell.kind == CellKind::Dff {
                dff_cells.push(id);
            }
        }
        for (k, &id) in dff_cells.iter().enumerate() {
            let cell = module.cell(id).expect("live dff");
            let q = cell.port(Port::Q).expect("dff Q bound");
            let lits = self.input_lits(&format!("dff${k}"), q.width())?;
            for (bit, l) in q.iter().zip(lits) {
                lit_of.insert(index.canon(*bit), l);
            }
        }

        // 3. combinational cells in topological order
        let resolve = |spec: &SigSpec,
                       lit_of: &HashMap<SigBit, AigLit>|
         -> Result<Vec<AigLit>, NetlistError> {
            spec.iter()
                .map(|b| match index.canon(*b) {
                    SigBit::Const(TriVal::One) => Ok(AigLit::TRUE),
                    SigBit::Const(_) => Ok(AigLit::FALSE),
                    wire_bit => {
                        lit_of
                            .get(&wire_bit)
                            .copied()
                            .ok_or_else(|| NetlistError::NotFound {
                                module: module.name.clone(),
                                name: format!("driver of {wire_bit:?}"),
                            })
                    }
                })
                .collect()
        };

        for id in order {
            let cell = module.cell(id).expect("live cell");
            if cell.kind == CellKind::Dff {
                continue;
            }
            let a = cell
                .port(Port::A)
                .map(|s| resolve(s, &lit_of))
                .transpose()?
                .unwrap_or_default();
            let b = cell
                .port(Port::B)
                .map(|s| resolve(s, &lit_of))
                .transpose()?
                .unwrap_or_default();
            let s = cell
                .port(Port::S)
                .map(|sp| resolve(sp, &lit_of))
                .transpose()?
                .unwrap_or_default();
            let w = cell.output().width();
            let out = map_cell(&mut self.aig, cell.kind, &a, &b, &s, w);
            for (bit, lit) in cell.output().iter().zip(out) {
                lit_of.insert(index.canon(*bit), lit);
            }
        }

        // 4. outputs: ports then dff D pins
        let mut outputs: Vec<(String, Vec<AigLit>)> = Vec::new();
        for p in module.output_ports() {
            let w = module.wire(p.wire).width;
            let spec = SigSpec::from_wire(p.wire, w);
            outputs.push((p.name.clone(), resolve(&spec, &lit_of)?));
        }
        for (k, &id) in dff_cells.iter().enumerate() {
            let cell = module.cell(id).expect("live dff");
            let d = cell.port(Port::D).expect("dff D bound");
            outputs.push((format!("dff${k}"), resolve(d, &lit_of)?));
        }
        Ok(outputs)
    }
}

/// Lowers `module` to an AIG (the Yosys `aigmap` equivalent).
///
/// Unknown constants (`x`) lower to **0**, matching the two-valued
/// simulator. Each cell kind uses the standard decomposition (ripple-carry
/// adders, borrow-chain comparators, barrel shifters, priority-chain
/// `pmux`).
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalCycle`] for cyclic logic, and
/// [`NetlistError::NotFound`] if a consumed wire bit has no driver.
pub fn aigmap(module: &Module) -> Result<MappedAig, NetlistError> {
    let mut sm = SharedMapper::new();
    let outputs = sm.map_module(module)?;
    let num_port_outputs = module.output_ports().count();
    let num_port_inputs = module.input_ports().count();
    Ok(MappedAig {
        aig: sm.aig,
        inputs: sm.input_order,
        outputs,
        num_port_inputs,
        num_port_outputs,
    })
}

fn map_cell(
    aig: &mut Aig,
    kind: CellKind,
    a: &[AigLit],
    b: &[AigLit],
    s: &[AigLit],
    w: usize,
) -> Vec<AigLit> {
    use CellKind::*;
    match kind {
        Not => a.iter().map(|&x| !x).collect(),
        And => a.iter().zip(b).map(|(&x, &y)| aig.and(x, y)).collect(),
        Or => a.iter().zip(b).map(|(&x, &y)| aig.or(x, y)).collect(),
        Xor => a.iter().zip(b).map(|(&x, &y)| aig.xor(x, y)).collect(),
        Xnor => a.iter().zip(b).map(|(&x, &y)| aig.xnor(x, y)).collect(),
        ReduceAnd => vec![aig.big_and(a)],
        ReduceOr | ReduceBool => vec![aig.big_or(a)],
        ReduceXor => {
            let mut acc = AigLit::FALSE;
            for &x in a {
                acc = aig.xor(acc, x);
            }
            vec![acc]
        }
        LogicNot => vec![!aig.big_or(a)],
        LogicAnd => {
            let ra = aig.big_or(a);
            let rb = aig.big_or(b);
            vec![aig.and(ra, rb)]
        }
        LogicOr => {
            let ra = aig.big_or(a);
            let rb = aig.big_or(b);
            vec![aig.or(ra, rb)]
        }
        Add => add_vec(aig, a, b, AigLit::FALSE),
        Sub => {
            let nb: Vec<AigLit> = b.iter().map(|&x| !x).collect();
            add_vec(aig, a, &nb, AigLit::TRUE)
        }
        Mul => {
            let mut acc = vec![AigLit::FALSE; w];
            for (j, &bj) in b.iter().enumerate().take(w) {
                let partial: Vec<AigLit> = (0..w)
                    .map(|i| {
                        if i >= j {
                            aig.and(a[i - j], bj)
                        } else {
                            AigLit::FALSE
                        }
                    })
                    .collect();
                acc = add_vec(aig, &acc, &partial, AigLit::FALSE);
            }
            acc
        }
        Shl | Shr => {
            let mut cur = a.to_vec();
            for (k, &bk) in b.iter().enumerate() {
                let amount = 1usize << k.min(31);
                let mut next = Vec::with_capacity(w);
                for i in 0..w {
                    let shifted = if kind == Shl {
                        if i >= amount {
                            cur[i - amount]
                        } else {
                            AigLit::FALSE
                        }
                    } else if i + amount < w {
                        cur[i + amount]
                    } else {
                        AigLit::FALSE
                    };
                    next.push(aig.mux(bk, shifted, cur[i]));
                }
                cur = next;
            }
            cur
        }
        Eq | Ne => {
            let xnors: Vec<AigLit> = a.iter().zip(b).map(|(&x, &y)| aig.xnor(x, y)).collect();
            let eq = aig.big_and(&xnors);
            vec![if kind == Eq { eq } else { !eq }]
        }
        Lt | Le | Gt | Ge => {
            let mut lt = AigLit::FALSE;
            let mut gt = AigLit::FALSE;
            for (&x, &y) in a.iter().zip(b) {
                let xe = aig.xnor(x, y);
                let l_here = aig.and(!x, y);
                let g_here = aig.and(x, !y);
                let lk = aig.and(xe, lt);
                let gk = aig.and(xe, gt);
                lt = aig.or(l_here, lk);
                gt = aig.or(g_here, gk);
            }
            vec![match kind {
                Lt => lt,
                Le => !gt,
                Gt => gt,
                Ge => !lt,
                _ => unreachable!(),
            }]
        }
        Mux => {
            let sel = s[0];
            a.iter().zip(b).map(|(&x, &y)| aig.mux(sel, y, x)).collect()
        }
        Pmux => {
            // priority chain: lowest select bit wins
            let mut acc = a.to_vec();
            for i in (0..s.len()).rev() {
                let word = &b[i * w..(i + 1) * w];
                acc = acc
                    .iter()
                    .zip(word)
                    .map(|(&e, &t)| aig.mux(s[i], t, e))
                    .collect();
            }
            acc
        }
        Dff => unreachable!("dffs are cut before mapping"),
    }
}

/// Ripple-carry addition.
fn add_vec(aig: &mut Aig, a: &[AigLit], b: &[AigLit], carry_in: AigLit) -> Vec<AigLit> {
    let mut out = Vec::with_capacity(a.len());
    let mut carry = carry_in;
    for (&x, &y) in a.iter().zip(b) {
        let xy = aig.xor(x, y);
        out.push(aig.xor(xy, carry));
        let t1 = aig.and(x, y);
        let t2 = aig.and(xy, carry);
        carry = aig.or(t1, t2);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartly_netlist::Module;

    #[test]
    fn and_module_area() {
        let mut m = Module::new("t");
        let a = m.add_input("a", 4);
        let b = m.add_input("b", 4);
        let y = m.and(&a, &b);
        m.add_output("y", &y);
        let mapped = aigmap(&m).unwrap();
        assert_eq!(mapped.area(), 4);
    }

    #[test]
    fn mux_is_three_ands_per_bit() {
        let mut m = Module::new("t");
        let a = m.add_input("a", 1);
        let b = m.add_input("b", 1);
        let s = m.add_input("s", 1);
        let y = m.mux(&a, &b, &s);
        m.add_output("y", &y);
        let mapped = aigmap(&m).unwrap();
        assert_eq!(mapped.area(), 3);
    }

    #[test]
    fn dff_cut_excludes_ff_from_area() {
        let mut m = Module::new("t");
        let clk = m.add_input("clk", 1);
        let d = m.add_input("d", 8);
        let q = m.dff(&clk, &d);
        m.add_output("q", &q);
        let mapped = aigmap(&m).unwrap();
        assert_eq!(mapped.area(), 0); // pure wiring, no ANDs
        assert_eq!(mapped.inputs().len(), 3); // clk, d, dff$0
        assert_eq!(mapped.outputs().len(), 2); // q, dff$0
    }

    #[test]
    fn eval_matches_semantics_add() {
        let mut m = Module::new("t");
        let a = m.add_input("a", 8);
        let b = m.add_input("b", 8);
        let y = m.add(&a, &b);
        m.add_output("y", &y);
        let mapped = aigmap(&m).unwrap();
        for (x, z) in [(3u64, 5u64), (255, 1), (127, 127), (0, 0)] {
            let mut vals = HashMap::new();
            vals.insert("a".to_string(), x);
            vals.insert("b".to_string(), z);
            let out = mapped.eval_u64(&vals);
            assert_eq!(out["y"], (x + z) & 0xff);
        }
    }

    #[test]
    fn strash_shares_identical_cones() {
        let mut m = Module::new("t");
        let a = m.add_input("a", 4);
        let b = m.add_input("b", 4);
        let y1 = m.and(&a, &b);
        let y2 = m.and(&a, &b); // structurally identical cell
        m.add_output("y1", &y1);
        m.add_output("y2", &y2);
        let mapped = aigmap(&m).unwrap();
        assert_eq!(mapped.area(), 4); // shared, not 8
    }

    #[test]
    fn x_maps_to_zero() {
        let mut m = Module::new("t");
        let a = m.add_input("a", 1);
        let y = m.and(&a, &SigSpec::xes(1));
        m.add_output("y", &y);
        let mapped = aigmap(&m).unwrap();
        assert_eq!(mapped.area(), 0); // a & 0 folds away
        let mut vals = HashMap::new();
        vals.insert("a".to_string(), 1u64);
        assert_eq!(mapped.eval_u64(&vals)["y"], 0);
    }
}
