//! Randomized tests: the CDCL solver against brute force, and encoder laws.
//!
//! Formerly written with `proptest`; the offline build environment cannot
//! fetch it, so each property now runs as a seeded loop over the vendored
//! deterministic RNG — same laws, reproducible cases.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use smartly_sat::{Lit, SolveResult, Solver, TseitinEncoder, Var};

const CASES: usize = 48;

/// A random clause set over `nvars` variables: 1..24 clauses of 1..4 lits.
fn random_clauses(rng: &mut StdRng, nvars: usize) -> Vec<Vec<i32>> {
    let nclauses = rng.gen_range(1..24usize);
    (0..nclauses)
        .map(|_| {
            let len = rng.gen_range(1..4usize);
            (0..len)
                .map(|_| {
                    let v = rng.gen_range(1..=nvars as i32);
                    if rng.gen_bool(0.5) {
                        v
                    } else {
                        -v
                    }
                })
                .collect()
        })
        .collect()
}

fn brute_force_sat(nvars: usize, clauses: &[Vec<i32>]) -> bool {
    'assign: for m in 0u32..(1 << nvars) {
        for c in clauses {
            let sat = c.iter().any(|&l| {
                let val = (m >> (l.unsigned_abs() - 1)) & 1 == 1;
                if l > 0 {
                    val
                } else {
                    !val
                }
            });
            if !sat {
                continue 'assign;
            }
        }
        return true;
    }
    false
}

fn lit_of(l: i32) -> Lit {
    Lit::new(Var::from_index(l.unsigned_abs() as usize - 1), l > 0)
}

fn load(clauses: &[Vec<i32>], nvars: usize) -> Solver {
    let mut s = Solver::new();
    for _ in 0..nvars {
        s.new_var();
    }
    for c in clauses {
        s.add_clause(c.iter().map(|&l| lit_of(l)));
    }
    s
}

/// The solver agrees with brute force on every random instance, and SAT
/// answers come with a genuinely satisfying model.
#[test]
fn agrees_with_brute_force() {
    let mut rng = StdRng::seed_from_u64(0x7361_7470_726f_7001);
    for _ in 0..CASES {
        let nvars = 8;
        let clauses = random_clauses(&mut rng, nvars);
        let expected = brute_force_sat(nvars, &clauses);
        let mut s = load(&clauses, nvars);
        let got = s.solve();
        assert_eq!(
            got,
            if expected {
                SolveResult::Sat
            } else {
                SolveResult::Unsat
            },
            "clauses {clauses:?}"
        );
        if got == SolveResult::Sat {
            for c in &clauses {
                let sat = c.iter().any(|&l| s.model_value(lit_of(l)) == Some(true));
                assert!(sat, "model violates clause {c:?}");
            }
        }
    }
}

/// Under assumptions, answers are consistent with adding the assumptions
/// as unit clauses.
#[test]
fn assumptions_match_units() {
    let mut rng = StdRng::seed_from_u64(0x7361_7470_726f_7002);
    for _ in 0..CASES {
        let nvars = 6;
        let clauses = random_clauses(&mut rng, nvars);
        let asm_bits = rng.gen_range(0u8..8);
        let assumptions: Vec<i32> = (0..3)
            .map(|i| {
                let v = i + 1; // distinct variables 1..=3
                if (asm_bits >> i) & 1 == 1 {
                    v
                } else {
                    -v
                }
            })
            .collect();
        let mut s = load(&clauses, nvars);
        let asm_lits: Vec<Lit> = assumptions.iter().map(|&l| lit_of(l)).collect();
        let with_assumptions = s.solve_with(&asm_lits);

        let mut augmented: Vec<Vec<i32>> = clauses.clone();
        for &l in &assumptions {
            augmented.push(vec![l]);
        }
        let expected = brute_force_sat(nvars, &augmented);
        assert_eq!(
            with_assumptions,
            if expected {
                SolveResult::Sat
            } else {
                SolveResult::Unsat
            }
        );
        // the solver stays reusable after assumption solving
        let plain = s.solve();
        assert_eq!(
            plain,
            if brute_force_sat(nvars, &clauses) {
                SolveResult::Sat
            } else {
                SolveResult::Unsat
            }
        );
    }
}

/// Tseitin-encoded random AND/OR/XOR trees evaluate like their reference
/// interpretation for every input assignment.
#[test]
fn encoder_matches_reference() {
    type Reference = Box<dyn Fn(&[bool]) -> bool>;
    let mut rng = StdRng::seed_from_u64(0x7361_7470_726f_7003);
    for _ in 0..CASES {
        let ops: Vec<u8> = (0..rng.gen_range(1..6usize))
            .map(|_| rng.gen_range(0u8..3))
            .collect();
        let inputs = rng.gen_range(0u8..16);
        let mut enc = TseitinEncoder::new();
        let leaves: Vec<Lit> = (0..4).map(|_| enc.fresh()).collect();
        let mut acc = leaves[0];
        let mut reference: Reference = Box::new(|v: &[bool]| v[0]);
        for (i, op) in ops.iter().enumerate() {
            let leaf = leaves[(i + 1) % 4];
            let leaf_idx = (i + 1) % 4;
            let prev = reference;
            reference = match op {
                0 => {
                    acc = enc.and(acc, leaf);
                    Box::new(move |v| prev(v) && v[leaf_idx])
                }
                1 => {
                    acc = enc.or(acc, leaf);
                    Box::new(move |v| prev(v) || v[leaf_idx])
                }
                _ => {
                    acc = enc.xor(acc, leaf);
                    Box::new(move |v| prev(v) ^ v[leaf_idx])
                }
            };
        }
        let vals: Vec<bool> = (0..4).map(|i| (inputs >> i) & 1 == 1).collect();
        let expect = reference(&vals);
        let mut asms: Vec<Lit> = leaves
            .iter()
            .zip(&vals)
            .map(|(&l, &v)| if v { l } else { !l })
            .collect();
        asms.push(if expect { !acc } else { acc });
        assert_eq!(enc.solve_with(&asms), SolveResult::Unsat);
    }
}

/// DIMACS write/parse round-trips preserve satisfiability.
#[test]
fn dimacs_round_trip() {
    let mut rng = StdRng::seed_from_u64(0x7361_7470_726f_7004);
    for _ in 0..CASES {
        let nvars = 7;
        let clauses = random_clauses(&mut rng, nvars);
        let lit_clauses: Vec<Vec<Lit>> = clauses
            .iter()
            .map(|c| c.iter().map(|&l| lit_of(l)).collect())
            .collect();
        let text = smartly_sat::write_dimacs(nvars, &lit_clauses);
        let mut parsed = smartly_sat::parse_dimacs(&text).expect("round-trips");
        let expected = brute_force_sat(nvars, &clauses);
        assert_eq!(
            parsed.solver.solve(),
            if expected {
                SolveResult::Sat
            } else {
                SolveResult::Unsat
            }
        );
    }
}
