//! Differential suite for the arena solver: seeded random 3-SAT pinned
//! against exhaustive checking, plus regressions for learnt-database
//! reduction and arena GC under assumption-scoped solving (clause GC
//! must never drop reason clauses or core-tier learnts).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use smartly_sat::{Lit, SolveResult, Solver, Var};

fn lit_of(l: i32) -> Lit {
    Lit::new(Var::from_index(l.unsigned_abs() as usize - 1), l > 0)
}

/// Random 3-SAT instance: `nclauses` clauses of exactly 3 distinct vars.
fn random_3sat(rng: &mut StdRng, nvars: usize, nclauses: usize) -> Vec<Vec<i32>> {
    (0..nclauses)
        .map(|_| {
            let mut vars: Vec<i32> = Vec::with_capacity(3);
            while vars.len() < 3 {
                let v = rng.gen_range(1..=nvars as i32);
                if !vars.contains(&v) {
                    vars.push(v);
                }
            }
            vars.into_iter()
                .map(|v| if rng.gen_bool(0.5) { v } else { -v })
                .collect()
        })
        .collect()
}

fn brute_force_sat(nvars: usize, clauses: &[Vec<i32>]) -> bool {
    assert!(nvars <= 20, "exhaustive check caps at 20 vars");
    'assign: for m in 0u32..(1 << nvars) {
        for c in clauses {
            let sat = c.iter().any(|&l| {
                let val = (m >> (l.unsigned_abs() - 1)) & 1 == 1;
                if l > 0 {
                    val
                } else {
                    !val
                }
            });
            if !sat {
                continue 'assign;
            }
        }
        return true;
    }
    false
}

fn load(clauses: &[Vec<i32>], nvars: usize) -> Solver {
    let mut s = Solver::new();
    for _ in 0..nvars {
        s.new_var();
    }
    for c in clauses {
        s.add_clause(c.iter().map(|&l| lit_of(l)));
    }
    s
}

fn check_model(s: &Solver, clauses: &[Vec<i32>]) {
    for c in clauses {
        let sat = c.iter().any(|&l| s.model_value(lit_of(l)) == Some(true));
        assert!(sat, "model violates clause {c:?}");
    }
}

/// Seeded random 3-SAT around the phase-transition ratio: the arena
/// solver's SAT/UNSAT verdicts match exhaustive checking on every
/// instance up to 20 variables, and SAT answers carry a valid model.
#[test]
fn random_3sat_matches_exhaustive_up_to_20_vars() {
    let mut rng = StdRng::seed_from_u64(0x35A7_D1FF ^ 0x1234_5678_9abc_def0);
    for round in 0..40 {
        // sweep sizes including the 20-var ceiling; clause ratio ~4.3
        // hovers around the hard SAT/UNSAT boundary
        let nvars = 8 + (round % 13); // 8..=20
        let nclauses = (nvars as f64 * 4.3) as usize;
        let clauses = random_3sat(&mut rng, nvars, nclauses);
        let expected = brute_force_sat(nvars, &clauses);
        let mut s = load(&clauses, nvars);
        let got = s.solve();
        assert_eq!(
            got,
            if expected {
                SolveResult::Sat
            } else {
                SolveResult::Unsat
            },
            "round {round}: {clauses:?}"
        );
        if got == SolveResult::Sat {
            check_model(&s, &clauses);
        }
    }
}

/// The same verdict equivalence holds under random assumption prefixes,
/// and the solver stays reusable afterwards.
#[test]
fn random_3sat_under_assumptions_matches_exhaustive() {
    let mut rng = StdRng::seed_from_u64(0xA550_35A7);
    for round in 0..30 {
        let nvars = 10 + (round % 9); // 10..=18
        let clauses = random_3sat(&mut rng, nvars, nvars * 4);
        let mut s = load(&clauses, nvars);
        for _ in 0..3 {
            let k = rng.gen_range(0..4usize);
            let mut asm: Vec<i32> = Vec::new();
            for v in 1..=k as i32 {
                asm.push(if rng.gen_bool(0.5) { v } else { -v });
            }
            let mut augmented = clauses.clone();
            augmented.extend(asm.iter().map(|&l| vec![l]));
            let expected = brute_force_sat(nvars, &augmented);
            let asm_lits: Vec<Lit> = asm.iter().map(|&l| lit_of(l)).collect();
            let got = s.solve_with(&asm_lits);
            assert_eq!(
                got,
                if expected {
                    SolveResult::Sat
                } else {
                    SolveResult::Unsat
                },
                "round {round} asm {asm:?}: {clauses:?}"
            );
            if got == SolveResult::Sat {
                check_model(&s, &augmented);
            }
        }
    }
}

fn pigeonhole(s: &mut Solver, n: usize, m: usize) -> Vec<Lit> {
    let nv = n * m;
    while s.num_vars() < nv {
        s.new_var();
    }
    let lit = |i: usize, j: usize| Lit::pos(Var::from_index(i * m + j));
    for i in 0..n {
        s.add_clause((0..m).map(|j| lit(i, j)));
    }
    for j in 0..m {
        for i1 in 0..n {
            for i2 in (i1 + 1)..n {
                s.add_clause([!lit(i1, j), !lit(i2, j)]);
            }
        }
    }
    (0..m).map(|j| lit(0, j)).collect()
}

/// Reduce-under-assumptions regression: a conflict-heavy instance solved
/// repeatedly under assumptions must reduce its learnt database (and
/// keep core-tier glue clauses) without ever invalidating a verdict —
/// reason clauses are locked against deletion and the compacting GC
/// forwards every watcher/reason reference.
#[test]
fn reduce_under_assumptions_never_drops_reasons_or_core() {
    let mut s = Solver::new();
    let first_row = pigeonhole(&mut s, 7, 6);
    // php(7,6) under each "pigeon 0 in hole j" assumption is still
    // UNSAT, and the shared learnt database grows across the calls
    for &a in &first_row {
        assert_eq!(s.solve_with(&[a]), SolveResult::Unsat);
    }
    let st = s.stats();
    assert!(st.conflicts > 500, "expected heavy search: {st:?}");
    assert!(st.reduces > 0, "learnt DB must have reduced: {st:?}");
    assert!(st.lbd_core > 0, "glue clauses must have been kept: {st:?}");
    // the database survived reductions/GC in a consistent state: the
    // unconditional verdict is still provable, and a satisfiable
    // sibling instance added afterwards still solves
    assert_eq!(s.solve(), SolveResult::Unsat);

    let mut s2 = Solver::new();
    pigeonhole(&mut s2, 6, 6); // 6 pigeons into 6 holes: satisfiable
    assert_eq!(s2.solve(), SolveResult::Sat);
}

/// Arena GC fires under sustained load and verdicts stay exact: solving
/// a stream of shifted pigeonhole instances in one solver accumulates
/// and reclaims learnt clauses.
#[test]
fn arena_gc_reclaims_without_changing_verdicts() {
    let mut s = Solver::new();
    pigeonhole(&mut s, 8, 7);
    assert_eq!(s.solve(), SolveResult::Unsat);
    let st = s.stats();
    assert!(st.reduces > 0, "php(8,7) must reduce: {st:?}");
    assert!(st.arena_gcs > 0, "reduction must have compacted: {st:?}");
}
