//! Differential suite for the arena solver: seeded random 3-SAT pinned
//! against exhaustive checking, plus regressions for learnt-database
//! reduction and arena GC under assumption-scoped solving (clause GC
//! must never drop reason clauses or core-tier learnts).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use smartly_sat::{Lit, RestartMode, SolveResult, Solver, Var, INPROCESS_INTERVAL};

fn lit_of(l: i32) -> Lit {
    Lit::new(Var::from_index(l.unsigned_abs() as usize - 1), l > 0)
}

/// Random 3-SAT instance: `nclauses` clauses of exactly 3 distinct vars.
fn random_3sat(rng: &mut StdRng, nvars: usize, nclauses: usize) -> Vec<Vec<i32>> {
    (0..nclauses)
        .map(|_| {
            let mut vars: Vec<i32> = Vec::with_capacity(3);
            while vars.len() < 3 {
                let v = rng.gen_range(1..=nvars as i32);
                if !vars.contains(&v) {
                    vars.push(v);
                }
            }
            vars.into_iter()
                .map(|v| if rng.gen_bool(0.5) { v } else { -v })
                .collect()
        })
        .collect()
}

fn brute_force_sat(nvars: usize, clauses: &[Vec<i32>]) -> bool {
    assert!(nvars <= 20, "exhaustive check caps at 20 vars");
    'assign: for m in 0u32..(1 << nvars) {
        for c in clauses {
            let sat = c.iter().any(|&l| {
                let val = (m >> (l.unsigned_abs() - 1)) & 1 == 1;
                if l > 0 {
                    val
                } else {
                    !val
                }
            });
            if !sat {
                continue 'assign;
            }
        }
        return true;
    }
    false
}

fn load(clauses: &[Vec<i32>], nvars: usize) -> Solver {
    let mut s = Solver::new();
    for _ in 0..nvars {
        s.new_var();
    }
    for c in clauses {
        s.add_clause(c.iter().map(|&l| lit_of(l)));
    }
    s
}

fn check_model(s: &Solver, clauses: &[Vec<i32>]) {
    for c in clauses {
        let sat = c.iter().any(|&l| s.model_value(lit_of(l)) == Some(true));
        assert!(sat, "model violates clause {c:?}");
    }
}

/// Seeded random 3-SAT around the phase-transition ratio: the arena
/// solver's SAT/UNSAT verdicts match exhaustive checking on every
/// instance up to 20 variables, and SAT answers carry a valid model.
#[test]
fn random_3sat_matches_exhaustive_up_to_20_vars() {
    let mut rng = StdRng::seed_from_u64(0x35A7_D1FF ^ 0x1234_5678_9abc_def0);
    for round in 0..40 {
        // sweep sizes including the 20-var ceiling; clause ratio ~4.3
        // hovers around the hard SAT/UNSAT boundary
        let nvars = 8 + (round % 13); // 8..=20
        let nclauses = (nvars as f64 * 4.3) as usize;
        let clauses = random_3sat(&mut rng, nvars, nclauses);
        let expected = brute_force_sat(nvars, &clauses);
        let mut s = load(&clauses, nvars);
        let got = s.solve();
        assert_eq!(
            got,
            if expected {
                SolveResult::Sat
            } else {
                SolveResult::Unsat
            },
            "round {round}: {clauses:?}"
        );
        if got == SolveResult::Sat {
            check_model(&s, &clauses);
        }
    }
}

/// The same verdict equivalence holds under random assumption prefixes,
/// and the solver stays reusable afterwards.
#[test]
fn random_3sat_under_assumptions_matches_exhaustive() {
    let mut rng = StdRng::seed_from_u64(0xA550_35A7);
    for round in 0..30 {
        let nvars = 10 + (round % 9); // 10..=18
        let clauses = random_3sat(&mut rng, nvars, nvars * 4);
        let mut s = load(&clauses, nvars);
        for _ in 0..3 {
            let k = rng.gen_range(0..4usize);
            let mut asm: Vec<i32> = Vec::new();
            for v in 1..=k as i32 {
                asm.push(if rng.gen_bool(0.5) { v } else { -v });
            }
            let mut augmented = clauses.clone();
            augmented.extend(asm.iter().map(|&l| vec![l]));
            let expected = brute_force_sat(nvars, &augmented);
            let asm_lits: Vec<Lit> = asm.iter().map(|&l| lit_of(l)).collect();
            let got = s.solve_with(&asm_lits);
            assert_eq!(
                got,
                if expected {
                    SolveResult::Sat
                } else {
                    SolveResult::Unsat
                },
                "round {round} asm {asm:?}: {clauses:?}"
            );
            if got == SolveResult::Sat {
                check_model(&s, &augmented);
            }
        }
    }
}

fn pigeonhole(s: &mut Solver, n: usize, m: usize) -> Vec<Lit> {
    let nv = n * m;
    while s.num_vars() < nv {
        s.new_var();
    }
    let lit = |i: usize, j: usize| Lit::pos(Var::from_index(i * m + j));
    for i in 0..n {
        s.add_clause((0..m).map(|j| lit(i, j)));
    }
    for j in 0..m {
        for i1 in 0..n {
            for i2 in (i1 + 1)..n {
                s.add_clause([!lit(i1, j), !lit(i2, j)]);
            }
        }
    }
    (0..m).map(|j| lit(0, j)).collect()
}

/// Reduce-under-assumptions regression: a conflict-heavy instance solved
/// repeatedly under assumptions must reduce its learnt database (and
/// keep core-tier glue clauses) without ever invalidating a verdict —
/// reason clauses are locked against deletion and the compacting GC
/// forwards every watcher/reason reference.
#[test]
fn reduce_under_assumptions_never_drops_reasons_or_core() {
    let mut s = Solver::new();
    let first_row = pigeonhole(&mut s, 7, 6);
    // php(7,6) under each "pigeon 0 in hole j" assumption is still
    // UNSAT, and the shared learnt database grows across the calls
    for &a in &first_row {
        assert_eq!(s.solve_with(&[a]), SolveResult::Unsat);
    }
    let st = s.stats();
    assert!(st.conflicts > 500, "expected heavy search: {st:?}");
    assert!(st.reduces > 0, "learnt DB must have reduced: {st:?}");
    assert!(st.lbd_core > 0, "glue clauses must have been kept: {st:?}");
    // the database survived reductions/GC in a consistent state: the
    // unconditional verdict is still provable, and a satisfiable
    // sibling instance added afterwards still solves
    assert_eq!(s.solve(), SolveResult::Unsat);

    let mut s2 = Solver::new();
    pigeonhole(&mut s2, 6, 6); // 6 pigeons into 6 holes: satisfiable
    assert_eq!(s2.solve(), SolveResult::Sat);
}

/// Arena GC fires under sustained load and verdicts stay exact: solving
/// a stream of shifted pigeonhole instances in one solver accumulates
/// and reclaims learnt clauses.
#[test]
fn arena_gc_reclaims_without_changing_verdicts() {
    let mut s = Solver::new();
    pigeonhole(&mut s, 8, 7);
    assert_eq!(s.solve(), SolveResult::Unsat);
    let st = s.stats();
    assert!(st.reduces > 0, "php(8,7) must reduce: {st:?}");
    assert!(st.arena_gcs > 0, "reduction must have compacted: {st:?}");
}

/// A long-lived incremental solver (selector-guarded random 3-SAT
/// instances sharing one learnt database) accumulates enough conflicts
/// to run inprocessing mid-stream, and every verdict — plain or under an
/// assumption prefix — still matches exhaustive checking. This is the
/// differential gate for vivification/subsumption soundness: a single
/// wrongly shrunk clause would flip some later instance's verdict.
#[test]
fn incremental_selector_stream_with_inprocessing_matches_exhaustive() {
    const NVARS: usize = 12;
    let mut rng = StdRng::seed_from_u64(0x1A_7E57_ED5E);
    let mut s = Solver::new();
    for _ in 0..NVARS {
        s.new_var();
    }
    // selector-guard each instance: clause ∨ ¬sel, activated by
    // assuming sel — the standard incremental encoding, so all
    // instances share variables, learnts, and inprocessing passes
    let mut selectors: Vec<Var> = Vec::new();
    let mut instances: Vec<Vec<Vec<i32>>> = Vec::new();
    for _ in 0..24 {
        let clauses = random_3sat(&mut rng, NVARS, (NVARS as f64 * 4.4) as usize);
        let sel = s.new_var();
        for c in &clauses {
            let lits = c
                .iter()
                .map(|&l| lit_of(l))
                .chain(std::iter::once(Lit::neg(sel)));
            s.add_clause(lits);
        }
        selectors.push(sel);
        instances.push(clauses);
    }
    let verify_all = |s: &mut Solver, rng: &mut StdRng, pass: &str| {
        for (i, clauses) in instances.iter().enumerate() {
            let expected = brute_force_sat(NVARS, clauses);
            let got = s.solve_with(&[Lit::pos(selectors[i])]);
            assert_eq!(
                got,
                if expected {
                    SolveResult::Sat
                } else {
                    SolveResult::Unsat
                },
                "{pass} instance {i}: {clauses:?}"
            );
            if got == SolveResult::Sat {
                check_model(s, clauses);
            }
            // the same instance under a random assumption prefix
            let k = rng.gen_range(1..4usize);
            let asm: Vec<i32> = (1..=k as i32)
                .map(|v| if rng.gen_bool(0.5) { v } else { -v })
                .collect();
            let mut augmented = clauses.clone();
            augmented.extend(asm.iter().map(|&l| vec![l]));
            let expected = brute_force_sat(NVARS, &augmented);
            let mut asm_lits = vec![Lit::pos(selectors[i])];
            asm_lits.extend(asm.iter().map(|&l| lit_of(l)));
            let got = s.solve_with(&asm_lits);
            assert_eq!(
                got,
                if expected {
                    SolveResult::Sat
                } else {
                    SolveResult::Unsat
                },
                "{pass} instance {i} asm {asm:?}: {clauses:?}"
            );
            if got == SolveResult::Sat {
                check_model(s, &augmented);
            }
        }
    };
    verify_all(&mut s, &mut rng, "cold");

    // Now make the same solver grind: selector-guarded pigeonhole
    // gadgets on fresh variables push the shared database across
    // several inprocessing boundaries (vivification and subsumption
    // sweep over *all* clauses, including the random instances above).
    for _ in 0..4 {
        let base = s.num_vars();
        let (n, m) = (7, 6);
        while s.num_vars() < base + n * m {
            s.new_var();
        }
        let sel = s.new_var();
        let lit = |i: usize, j: usize| Lit::pos(Var::from_index(base + i * m + j));
        for i in 0..n {
            s.add_clause((0..m).map(|j| lit(i, j)).chain([Lit::neg(sel)]));
        }
        for j in 0..m {
            for i1 in 0..n {
                for i2 in (i1 + 1)..n {
                    s.add_clause([!lit(i1, j), !lit(i2, j), Lit::neg(sel)]);
                }
            }
        }
        assert_eq!(s.solve_with(&[Lit::pos(sel)]), SolveResult::Unsat);
    }
    let st = s.stats();
    assert!(
        st.conflicts > INPROCESS_INTERVAL,
        "gadgets must cross an inprocessing boundary: {st:?}"
    );
    assert!(
        st.vivified_clauses + st.subsumed + st.strengthened > 0,
        "inprocessing must have touched the shared database: {st:?}"
    );

    // The verdicts that matter: every random instance still answers
    // exactly as before the database was vivified/subsumed/compacted.
    verify_all(&mut s, &mut rng, "post-inprocessing");
}

/// The fixed Luby schedule (inprocessing off) and the default EMA
/// controller (inprocessing on) are interchangeable on verdicts: both
/// agree with exhaustive checking on every seeded instance, differing
/// only in search effort.
#[test]
fn luby_and_ema_restart_modes_agree_on_random_3sat() {
    let mut rng = StdRng::seed_from_u64(0x1B1_0E3A);
    for round in 0..24 {
        let nvars = 8 + (round % 12); // 8..=19
        let clauses = random_3sat(&mut rng, nvars, (nvars as f64 * 4.3) as usize);
        let expected = if brute_force_sat(nvars, &clauses) {
            SolveResult::Sat
        } else {
            SolveResult::Unsat
        };
        let mut ema = load(&clauses, nvars);
        let mut luby = load(&clauses, nvars);
        luby.set_restart_mode(RestartMode::Luby);
        luby.set_inprocessing(false);
        assert_eq!(ema.solve(), expected, "ema round {round}: {clauses:?}");
        assert_eq!(luby.solve(), expected, "luby round {round}: {clauses:?}");
    }
}

/// Regression pin: a conflict-heavy UNSAT proof under the default
/// configuration demonstrably exercises the whole hygiene loop — EMA
/// restarts fire, vivification shrinks tier2 learnts, the subsumption
/// sweep deletes redundant clauses, and on-the-fly LBD recomputation
/// promotes clauses into better tiers.
#[test]
fn default_config_exercises_inprocessing_on_pigeonhole() {
    let mut s = Solver::new();
    pigeonhole(&mut s, 8, 7);
    assert_eq!(s.solve(), SolveResult::Unsat);
    let st = s.stats();
    assert!(st.ema_forced > 0, "EMA restarts must fire: {st:?}");
    assert!(st.vivified_clauses > 0, "vivification must fire: {st:?}");
    assert!(st.subsumed > 0, "subsumption must fire: {st:?}");
    assert!(st.promoted > 0, "tier promotion must fire: {st:?}");
}
