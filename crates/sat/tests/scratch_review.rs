use smartly_sat::{Lit, SolveResult, Solver, Var};

fn lit_of(l: i32) -> Lit {
    Lit::new(Var::from_index(l.unsigned_abs() as usize - 1), l > 0)
}

#[test]
fn duplicate_assumptions_with_conflict() {
    // 3 vars: a=1, x=2, y=3; UNSAT core over x,y so any decision on x
    // conflicts. Duplicated assumptions open dummy decision levels, so
    // the conflicting decision lands at level 4 > nvars.
    let mut s = Solver::new();
    for _ in 0..3 {
        s.new_var();
    }
    for c in [[2, 3], [-2, 3], [2, -3], [-2, -3]] {
        s.add_clause(c.iter().map(|&l| lit_of(l)));
    }
    let a = lit_of(1);
    let r = s.solve_with(&[a, a, a]);
    assert_eq!(r, SolveResult::Unsat);
}
