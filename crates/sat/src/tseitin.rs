//! Gate-consistency (Tseitin) encoding on top of [`Solver`].
//!
//! The smaRTLy redundancy-elimination pass encodes a circuit sub-graph into
//! CNF and asks whether a control bit can take each polarity. This module
//! provides the per-gate constraint builders, with constant folding so that
//! encoding a partially-known cone stays cheap.

use crate::{Lit, SolveResult, Solver, Var};

/// Incrementally encodes gates into a wrapped [`Solver`].
///
/// # Example
///
/// ```
/// use smartly_sat::{TseitinEncoder, SolveResult};
///
/// let mut enc = TseitinEncoder::new();
/// let a = enc.fresh();
/// let b = enc.fresh();
/// let y = enc.and(a, b);
/// enc.assert_lit(y);
/// // y forces both a and b
/// assert_eq!(enc.solve_with(&[!a]), SolveResult::Unsat);
/// assert_eq!(enc.solve_with(&[a, b]), SolveResult::Sat);
/// ```
#[derive(Debug)]
pub struct TseitinEncoder {
    solver: Solver,
    true_lit: Lit,
}

impl Default for TseitinEncoder {
    fn default() -> Self {
        TseitinEncoder::new()
    }
}

impl TseitinEncoder {
    /// Creates an encoder with a constant-true literal pre-asserted.
    pub fn new() -> Self {
        let mut solver = Solver::new();
        let t = Lit::pos(solver.new_var());
        solver.add_clause([t]);
        TseitinEncoder {
            solver,
            true_lit: t,
        }
    }

    /// The literal that is always true.
    pub fn true_lit(&self) -> Lit {
        self.true_lit
    }

    /// The literal that is always false.
    pub fn false_lit(&self) -> Lit {
        !self.true_lit
    }

    /// Turns a boolean constant into a literal.
    pub fn const_lit(&self, value: bool) -> Lit {
        if value {
            self.true_lit
        } else {
            !self.true_lit
        }
    }

    /// Allocates a free input literal.
    pub fn fresh(&mut self) -> Lit {
        Lit::pos(self.solver.new_var())
    }

    fn known(&self, l: Lit) -> Option<bool> {
        if l == self.true_lit {
            Some(true)
        } else if l == !self.true_lit {
            Some(false)
        } else {
            self.solver
                .fixed_value(l.var())
                .map(|v| if l.is_neg() { !v } else { v })
        }
    }

    /// Encodes `y = a AND b`.
    pub fn and(&mut self, a: Lit, b: Lit) -> Lit {
        match (self.known(a), self.known(b)) {
            (Some(false), _) | (_, Some(false)) => return self.false_lit(),
            (Some(true), _) => return b,
            (_, Some(true)) => return a,
            _ => {}
        }
        if a == b {
            return a;
        }
        if a == !b {
            return self.false_lit();
        }
        let y = self.fresh();
        self.solver.add_clause([!y, a]);
        self.solver.add_clause([!y, b]);
        self.solver.add_clause([y, !a, !b]);
        y
    }

    /// Encodes `y = a OR b`.
    pub fn or(&mut self, a: Lit, b: Lit) -> Lit {
        !self.and(!a, !b)
    }

    /// Encodes `y = a XOR b`.
    pub fn xor(&mut self, a: Lit, b: Lit) -> Lit {
        match (self.known(a), self.known(b)) {
            (Some(x), _) => return if x { !b } else { b },
            (_, Some(x)) => return if x { !a } else { a },
            _ => {}
        }
        if a == b {
            return self.false_lit();
        }
        if a == !b {
            return self.true_lit();
        }
        let y = self.fresh();
        self.solver.add_clause([!y, a, b]);
        self.solver.add_clause([!y, !a, !b]);
        self.solver.add_clause([y, !a, b]);
        self.solver.add_clause([y, a, !b]);
        y
    }

    /// Encodes `y = a XNOR b` (equality).
    pub fn xnor(&mut self, a: Lit, b: Lit) -> Lit {
        !self.xor(a, b)
    }

    /// Encodes `y = s ? b : a` (matching the netlist `mux` convention).
    pub fn mux(&mut self, s: Lit, a: Lit, b: Lit) -> Lit {
        match self.known(s) {
            Some(true) => return b,
            Some(false) => return a,
            None => {}
        }
        if a == b {
            return a;
        }
        let y = self.fresh();
        self.solver.add_clause([!s, !b, y]);
        self.solver.add_clause([!s, b, !y]);
        self.solver.add_clause([s, !a, y]);
        self.solver.add_clause([s, a, !y]);
        // redundant but propagation-strengthening clauses
        self.solver.add_clause([!a, !b, y]);
        self.solver.add_clause([a, b, !y]);
        y
    }

    /// Encodes the conjunction of many literals.
    pub fn big_and(&mut self, lits: &[Lit]) -> Lit {
        match lits.len() {
            0 => self.true_lit(),
            1 => lits[0],
            _ => {
                let mut acc = lits[0];
                for &l in &lits[1..] {
                    acc = self.and(acc, l);
                }
                acc
            }
        }
    }

    /// Encodes the disjunction of many literals.
    pub fn big_or(&mut self, lits: &[Lit]) -> Lit {
        let negs: Vec<Lit> = lits.iter().map(|&l| !l).collect();
        !self.big_and(&negs)
    }

    /// Permanently asserts `l`.
    pub fn assert_lit(&mut self, l: Lit) {
        self.solver.add_clause([l]);
    }

    /// Adds an arbitrary clause.
    pub fn add_clause(&mut self, lits: impl IntoIterator<Item = Lit>) -> bool {
        self.solver.add_clause(lits)
    }

    /// Solves under assumptions.
    pub fn solve_with(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.solver.solve_with(assumptions)
    }

    /// Access to the underlying solver.
    pub fn solver(&self) -> &Solver {
        &self.solver
    }

    /// Mutable access to the underlying solver (e.g. to set budgets).
    pub fn solver_mut(&mut self) -> &mut Solver {
        &mut self.solver
    }

    /// Variable count including the constant.
    pub fn num_vars(&self) -> usize {
        self.solver.num_vars()
    }
}

/// Convenience: allocate `n` fresh input literals.
pub fn fresh_inputs(enc: &mut TseitinEncoder, n: usize) -> Vec<Lit> {
    (0..n).map(|_| enc.fresh()).collect()
}

/// Re-export for gate-level identities in tests.
#[doc(hidden)]
pub fn var_of(l: Lit) -> Var {
    l.var()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exhaustively checks a 2-input gate encoding against a truth table.
    fn check_gate2(f: impl Fn(&mut TseitinEncoder, Lit, Lit) -> Lit, table: [bool; 4]) {
        for (i, &expect) in table.iter().enumerate() {
            let av = i & 1 == 1;
            let bv = i & 2 == 2;
            let mut enc = TseitinEncoder::new();
            let a = enc.fresh();
            let b = enc.fresh();
            let y = f(&mut enc, a, b);
            let asm = [Lit::new(a.var(), av), Lit::new(b.var(), bv)];
            // y must equal expect: asserting the opposite is UNSAT
            let opposite = if expect { !y } else { y };
            let mut asms = asm.to_vec();
            asms.push(opposite);
            assert_eq!(enc.solve_with(&asms), SolveResult::Unsat, "case {i}");
            let agree = if expect { y } else { !y };
            let mut asms = asm.to_vec();
            asms.push(agree);
            assert_eq!(enc.solve_with(&asms), SolveResult::Sat, "case {i}");
        }
    }

    #[test]
    fn and_truth_table() {
        check_gate2(|e, a, b| e.and(a, b), [false, false, false, true]);
    }

    #[test]
    fn or_truth_table() {
        check_gate2(|e, a, b| e.or(a, b), [false, true, true, true]);
    }

    #[test]
    fn xor_truth_table() {
        check_gate2(|e, a, b| e.xor(a, b), [false, true, true, false]);
    }

    #[test]
    fn xnor_truth_table() {
        check_gate2(|e, a, b| e.xnor(a, b), [true, false, false, true]);
    }

    #[test]
    fn mux_truth_table() {
        // y = s ? b : a over all 8 combinations
        for i in 0..8 {
            let sv = i & 1 == 1;
            let av = i & 2 == 2;
            let bv = i & 4 == 4;
            let expect = if sv { bv } else { av };
            let mut enc = TseitinEncoder::new();
            let s = enc.fresh();
            let a = enc.fresh();
            let b = enc.fresh();
            let y = enc.mux(s, a, b);
            let asms = vec![
                Lit::new(s.var(), sv),
                Lit::new(a.var(), av),
                Lit::new(b.var(), bv),
                if expect { !y } else { y },
            ];
            let mut e = enc;
            assert_eq!(e.solve_with(&asms), SolveResult::Unsat, "case {i}");
        }
    }

    #[test]
    fn constant_folding_shortcuts() {
        let mut enc = TseitinEncoder::new();
        let a = enc.fresh();
        let t = enc.true_lit();
        let f = enc.false_lit();
        assert_eq!(enc.and(a, t), a);
        assert_eq!(enc.and(a, f), f);
        assert_eq!(enc.or(a, t), t);
        assert_eq!(enc.or(a, f), a);
        assert_eq!(enc.xor(a, f), a);
        assert_eq!(enc.xor(a, t), !a);
        assert_eq!(enc.and(a, a), a);
        assert_eq!(enc.and(a, !a), f);
        assert_eq!(enc.mux(t, a, f), f);
        assert_eq!(enc.mux(f, a, f), a);
    }

    #[test]
    fn big_gates() {
        let mut enc = TseitinEncoder::new();
        let xs = fresh_inputs(&mut enc, 5);
        let all = enc.big_and(&xs);
        let any = enc.big_or(&xs);
        // all true ⇒ both outputs true
        let mut asms: Vec<Lit> = xs.clone();
        asms.push(!all);
        assert_eq!(enc.solve_with(&asms), SolveResult::Unsat);
        let mut asms: Vec<Lit> = xs.iter().map(|&l| !l).collect();
        asms.push(any);
        assert_eq!(enc.solve_with(&asms), SolveResult::Unsat);
    }
}
