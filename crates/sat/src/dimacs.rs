//! DIMACS CNF interchange: parse `cnf` problems into a [`Solver`] and
//! write clause sets back out.
//!
//! Only the classic `p cnf <vars> <clauses>` header, `c` comments and
//! zero-terminated clause lines are supported — enough to exchange
//! problems with MiniSAT-family solvers.

use crate::{Lit, Solver, Var};
use std::fmt::Write as _;

/// A parsed DIMACS problem: the solver plus the variable count declared
/// in the header (variables are pre-allocated even if unused).
#[derive(Debug)]
pub struct DimacsProblem {
    /// Solver loaded with all clauses.
    pub solver: Solver,
    /// Declared variable count.
    pub num_vars: usize,
    /// Parsed clause count.
    pub num_clauses: usize,
}

/// Errors from [`parse_dimacs`].
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseDimacsError {
    /// The `p cnf` header is missing or malformed.
    BadHeader(String),
    /// A token could not be read as a literal.
    BadLiteral {
        /// 1-based line number.
        line: usize,
        /// The offending token.
        token: String,
    },
    /// A literal references a variable beyond the header's count.
    VarOutOfRange {
        /// 1-based line number.
        line: usize,
        /// The out-of-range variable (1-based, DIMACS numbering).
        var: i64,
    },
}

impl std::fmt::Display for ParseDimacsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseDimacsError::BadHeader(h) => write!(f, "bad DIMACS header: {h}"),
            ParseDimacsError::BadLiteral { line, token } => {
                write!(f, "bad literal '{token}' on line {line}")
            }
            ParseDimacsError::VarOutOfRange { line, var } => {
                write!(f, "variable {var} out of range on line {line}")
            }
        }
    }
}

impl std::error::Error for ParseDimacsError {}

/// Parses DIMACS CNF text.
///
/// # Errors
///
/// Returns [`ParseDimacsError`] for a malformed header, unreadable
/// literals, or out-of-range variables.
pub fn parse_dimacs(text: &str) -> Result<DimacsProblem, ParseDimacsError> {
    let mut solver = Solver::new();
    let mut num_vars = 0usize;
    let mut num_clauses = 0usize;
    let mut seen_header = false;
    let mut current: Vec<Lit> = Vec::new();

    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('p') {
            let mut parts = rest.split_whitespace();
            if parts.next() != Some("cnf") {
                return Err(ParseDimacsError::BadHeader(line.to_string()));
            }
            num_vars = parts
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| ParseDimacsError::BadHeader(line.to_string()))?;
            let _declared_clauses: usize = parts
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| ParseDimacsError::BadHeader(line.to_string()))?;
            for _ in 0..num_vars {
                solver.new_var();
            }
            seen_header = true;
            continue;
        }
        if !seen_header {
            return Err(ParseDimacsError::BadHeader(
                "missing p cnf line".to_string(),
            ));
        }
        for token in line.split_whitespace() {
            let v: i64 = token.parse().map_err(|_| ParseDimacsError::BadLiteral {
                line: lineno + 1,
                token: token.to_string(),
            })?;
            if v == 0 {
                solver.add_clause(current.drain(..));
                num_clauses += 1;
            } else {
                let idx = v.unsigned_abs() - 1;
                if idx >= num_vars as u64 {
                    return Err(ParseDimacsError::VarOutOfRange {
                        line: lineno + 1,
                        var: v,
                    });
                }
                current.push(Lit::new(Var(idx as u32), v > 0));
            }
        }
    }
    if !current.is_empty() {
        solver.add_clause(current.drain(..));
        num_clauses += 1;
    }
    Ok(DimacsProblem {
        solver,
        num_vars,
        num_clauses,
    })
}

/// Writes a clause set as DIMACS CNF text.
pub fn write_dimacs(num_vars: usize, clauses: &[Vec<Lit>]) -> String {
    let mut out = String::new();
    writeln!(out, "p cnf {} {}", num_vars, clauses.len()).expect("write");
    for clause in clauses {
        for l in clause {
            let v = l.var().index() as i64 + 1;
            let signed = if l.is_neg() { -v } else { v };
            write!(out, "{signed} ").expect("write");
        }
        writeln!(out, "0").expect("write");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SolveResult;

    #[test]
    fn parses_and_solves_sat_instance() {
        let text = "c a comment\np cnf 3 3\n1 2 0\n-1 3 0\n-2 -3 0\n";
        let mut p = parse_dimacs(text).expect("parses");
        assert_eq!(p.num_vars, 3);
        assert_eq!(p.num_clauses, 3);
        assert_eq!(p.solver.solve(), SolveResult::Sat);
    }

    #[test]
    fn parses_unsat_instance() {
        let text = "p cnf 1 2\n1 0\n-1 0\n";
        let mut p = parse_dimacs(text).expect("parses");
        assert_eq!(p.solver.solve(), SolveResult::Unsat);
    }

    #[test]
    fn multiline_clause_and_trailing() {
        // clause split over two lines, last clause missing the newline
        let text = "p cnf 2 2\n1\n2 0\n-1 -2 0";
        let p = parse_dimacs(text).expect("parses");
        assert_eq!(p.num_clauses, 2);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(matches!(
            parse_dimacs("p sat 3 1\n1 0\n"),
            Err(ParseDimacsError::BadHeader(_))
        ));
        assert!(matches!(
            parse_dimacs("1 0\n"),
            Err(ParseDimacsError::BadHeader(_))
        ));
        assert!(matches!(
            parse_dimacs("p cnf 2 1\n1 x 0\n"),
            Err(ParseDimacsError::BadLiteral { .. })
        ));
        assert!(matches!(
            parse_dimacs("p cnf 2 1\n5 0\n"),
            Err(ParseDimacsError::VarOutOfRange { .. })
        ));
    }

    #[test]
    fn write_round_trips() {
        let v: Vec<Var> = (0..3).map(Var).collect();
        let clauses = vec![vec![Lit::pos(v[0]), Lit::neg(v[1])], vec![Lit::pos(v[2])]];
        let text = write_dimacs(3, &clauses);
        let p = parse_dimacs(&text).expect("round-trips");
        assert_eq!(p.num_vars, 3);
        assert_eq!(p.num_clauses, 2);
    }
}
