//! Cooperative cancellation for long-running solves.
//!
//! A [`Deadline`] is a cheap, cloneable token threaded from the driver's
//! wall-clock budget down into [`Solver::search`](crate::Solver)'s
//! conflict loop, where it is polled every few conflicts alongside the
//! conflict budget. Expiry surfaces exactly like budget exhaustion
//! ([`SolveResult::Unknown`](crate::SolveResult)): the caller's
//! budget-limited degradation path handles both, so a stuck SAT call is
//! interrupted mid-flight without inventing a new failure mode.
//!
//! Two expiry sources exist:
//!
//! * [`Deadline::after`] — a wall-clock instant, the production path;
//! * [`Deadline::after_checks`] — a countdown of `expired()` polls,
//!   which makes deadline expiry *deterministic* for tests and chaos
//!   harnesses (no dependence on machine speed).
//!
//! Expiry latches: once a clone of the token has observed expiry, every
//! clone reports expired forever after, so one interrupted solve cannot
//! be followed by a sibling that sneaks past the same deadline.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Debug)]
enum Mode {
    /// Expires when `Instant::now()` reaches the instant.
    Wall(Instant),
    /// Expires after N `expired()` polls (deterministic test mode).
    Checks(AtomicU64),
}

#[derive(Debug)]
struct Inner {
    mode: Mode,
    /// Latched once expiry is first observed by any clone.
    tripped: AtomicBool,
}

/// A shared cancellation token; see the [module docs](self).
///
/// `Deadline::none()` (the `Default`) carries no allocation and its
/// checks are free — callers can thread a `Deadline` unconditionally.
#[derive(Clone, Debug, Default)]
pub struct Deadline(Option<Arc<Inner>>);

impl Deadline {
    /// A deadline that never expires.
    pub fn none() -> Deadline {
        Deadline(None)
    }

    /// A deadline `budget` of wall-clock time from now.
    pub fn after(budget: Duration) -> Deadline {
        Deadline::at(Instant::now() + budget)
    }

    /// A deadline at an absolute instant.
    pub fn at(instant: Instant) -> Deadline {
        Deadline(Some(Arc::new(Inner {
            mode: Mode::Wall(instant),
            tripped: AtomicBool::new(false),
        })))
    }

    /// A deterministic deadline that expires on the `checks`-th call to
    /// [`expired`](Deadline::expired) (counted across all clones).
    pub fn after_checks(checks: u64) -> Deadline {
        Deadline(Some(Arc::new(Inner {
            mode: Mode::Checks(AtomicU64::new(checks)),
            tripped: AtomicBool::new(false),
        })))
    }

    /// Whether this token can ever expire.
    pub fn is_none(&self) -> bool {
        self.0.is_none()
    }

    /// Polls the deadline. Latches: once `true`, always `true`.
    pub fn expired(&self) -> bool {
        let Some(inner) = &self.0 else {
            return false;
        };
        if inner.tripped.load(Ordering::Relaxed) {
            return true;
        }
        let hit = match &inner.mode {
            Mode::Wall(at) => Instant::now() >= *at,
            Mode::Checks(remaining) => {
                // Saturating countdown: every poll consumes one check.
                remaining
                    .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |r| {
                        Some(r.saturating_sub(1))
                    })
                    .unwrap_or(0)
                    <= 1
            }
        };
        if hit {
            inner.tripped.store(true, Ordering::Relaxed);
        }
        hit
    }

    /// Whether any clone of this token has already observed expiry —
    /// without consuming a poll. This is how the driver distinguishes
    /// "pipeline finished" from "pipeline was interrupted mid-flight".
    pub fn was_tripped(&self) -> bool {
        self.0
            .as_ref()
            .is_some_and(|i| i.tripped.load(Ordering::Relaxed))
    }

    /// Trips the deadline now, regardless of its mode: every clone
    /// observes expiry from its next poll on. This is the external
    /// cancellation edge — a draining server trips the tokens of
    /// in-flight jobs so a solve that still has hours of wall budget
    /// left unwinds through the ordinary budget-limited path instead of
    /// holding up shutdown. A `Deadline::none()` token has no shared
    /// state and cannot be tripped (it stays infallible by design).
    pub fn trip(&self) {
        if let Some(inner) = &self.0 {
            inner.tripped.store(true, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_expires() {
        let d = Deadline::none();
        assert!(d.is_none());
        assert!(!d.expired());
        assert!(!d.was_tripped());
    }

    #[test]
    fn check_countdown_expires_deterministically_and_latches() {
        let d = Deadline::after_checks(3);
        assert!(!d.expired());
        assert!(!d.expired());
        assert!(d.expired());
        assert!(d.expired(), "expiry must latch");
        assert!(d.was_tripped());
    }

    #[test]
    fn clones_share_the_countdown_and_the_latch() {
        let d = Deadline::after_checks(2);
        let c = d.clone();
        assert!(!c.expired());
        assert!(d.expired());
        assert!(c.was_tripped());
        assert!(c.expired());
    }

    #[test]
    fn elapsed_wall_deadline_expires() {
        let d = Deadline::after(Duration::ZERO);
        assert!(!d.is_none());
        assert!(d.expired());
        assert!(d.was_tripped());
    }

    #[test]
    fn distant_wall_deadline_does_not_expire_or_trip() {
        let d = Deadline::after(Duration::from_secs(3600));
        assert!(!d.is_none());
        assert!(!d.expired());
        assert!(!d.expired(), "wall polls consume no countdown");
        assert!(!d.was_tripped());
    }

    #[test]
    fn wall_trip_latch_is_set_by_polling_not_by_time() {
        // the instant is already past, but no clone has polled yet:
        // was_tripped must stay false until expiry is *observed*
        let d = Deadline::at(Instant::now());
        let c = d.clone();
        assert!(!d.was_tripped());
        assert!(!c.was_tripped());
        // first poll observes expiry and latches it for every clone
        assert!(d.expired());
        assert!(c.was_tripped(), "latch is shared across clones");
        assert!(c.expired());
    }

    #[test]
    fn trip_cancels_wall_and_check_deadlines_everywhere() {
        // a wall deadline hours away: tripping expires it immediately
        let d = Deadline::after(Duration::from_secs(3600));
        let c = d.clone();
        c.trip();
        assert!(d.was_tripped());
        assert!(d.expired());
        assert!(c.expired());

        // same for a check-countdown deadline with polls to spare
        let d = Deadline::after_checks(1_000);
        d.trip();
        assert!(d.expired());
        assert!(d.was_tripped());

        // a none token has nothing to trip and stays infallible
        let none = Deadline::none();
        none.trip();
        assert!(!none.expired());
        assert!(!none.was_tripped());
    }
}
