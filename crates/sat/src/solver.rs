//! The CDCL search engine.

use crate::heap::ActivityHeap;
use crate::{Lit, Var};

/// Result of a [`Solver::solve`] call.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SolveResult {
    /// A satisfying assignment was found (see [`Solver::model_value`]).
    Sat,
    /// The formula (under the given assumptions) is unsatisfiable.
    Unsat,
    /// The conflict budget was exhausted before an answer was found.
    Unknown,
}

/// Cumulative search statistics.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Number of conflicts encountered.
    pub conflicts: u64,
    /// Number of branching decisions.
    pub decisions: u64,
    /// Number of literals propagated.
    pub propagations: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Number of learnt clauses currently in the database.
    pub learnt_clauses: u64,
    /// Number of best-phase rephasings applied at restarts.
    pub rephases: u64,
}

/// Adds the other stats' monotone counters onto this one (used to carry
/// telemetry across solver resets; `learnt_clauses` is a gauge and is
/// summed like the rest — callers accumulating across resets want the
/// total clauses ever learnt and retained at each reset point).
impl SolverStats {
    /// Component-wise sum.
    pub fn absorb(&mut self, o: &SolverStats) {
        self.conflicts += o.conflicts;
        self.decisions += o.decisions;
        self.propagations += o.propagations;
        self.restarts += o.restarts;
        self.learnt_clauses += o.learnt_clauses;
        self.rephases += o.rephases;
    }
}

#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum LBool {
    True,
    False,
    Undef,
}

#[derive(Clone, Debug)]
struct Clause {
    lits: Vec<Lit>,
    learnt: bool,
    deleted: bool,
    activity: f64,
}

#[derive(Copy, Clone, Debug)]
struct Watcher {
    cref: u32,
    blocker: Lit,
}

/// A CDCL SAT solver; see the [crate docs](crate) for an example.
///
/// The solver is incremental: clauses may be added between `solve` calls,
/// and [`Solver::solve_with`] checks satisfiability under assumptions
/// without permanently asserting them.
#[derive(Clone, Debug)]
pub struct Solver {
    clauses: Vec<Clause>,
    watches: Vec<Vec<Watcher>>,
    assigns: Vec<LBool>,
    level: Vec<u32>,
    reason: Vec<Option<u32>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    cla_inc: f64,
    order: ActivityHeap,
    polarity: Vec<bool>,
    /// Best-phase cache: the full assignment at the deepest trail this
    /// `solve_with` call had reached when a conflict struck (snapshotted
    /// at the conflict boundary, before unwinding). Restarts rephase
    /// `polarity` from this snapshot, so search resumes near the most
    /// satisfied assignment seen instead of wherever the last backtrack
    /// happened to leave the phases — the progress-saving refinement of
    /// plain polarity caching (cf. splr's per-var `phase` / batsat's
    /// `phase_saving`). Assumption-scoped queries over a shared formula
    /// benefit most: each call re-walks the same prefix.
    best_phase: Vec<bool>,
    /// Trail depth at which `best_phase` was last improved.
    best_trail: usize,
    seen: Vec<bool>,
    ok: bool,
    model: Vec<bool>,
    stats: SolverStats,
    conflict_budget: Option<u64>,
    num_learnts: usize,
    max_learnts: f64,
}

const VAR_DECAY: f64 = 1.0 / 0.95;
const CLA_DECAY: f64 = 1.0 / 0.999;
const RESTART_FIRST: u64 = 100;

impl Default for Solver {
    fn default() -> Self {
        Solver::new()
    }
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Self {
        Solver {
            clauses: Vec::new(),
            watches: Vec::new(),
            assigns: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            cla_inc: 1.0,
            order: ActivityHeap::new(),
            polarity: Vec::new(),
            best_phase: Vec::new(),
            best_trail: 0,
            seen: Vec::new(),
            ok: true,
            model: Vec::new(),
            stats: SolverStats::default(),
            conflict_budget: None,
            num_learnts: 0,
            max_learnts: 0.0,
        }
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assigns.len() as u32);
        self.assigns.push(LBool::Undef);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        self.polarity.push(false);
        self.best_phase.push(false);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.order.insert(v.0, &self.activity);
        v
    }

    /// Number of variables allocated.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Search statistics so far.
    pub fn stats(&self) -> SolverStats {
        let mut s = self.stats;
        s.learnt_clauses = self.num_learnts as u64;
        s
    }

    /// Limits the number of conflicts per `solve` call; `None` removes the
    /// limit. When the budget runs out, `solve` returns
    /// [`SolveResult::Unknown`].
    pub fn set_conflict_budget(&mut self, budget: Option<u64>) {
        self.conflict_budget = budget;
    }

    fn value_var(&self, v: Var) -> LBool {
        self.assigns[v.index()]
    }

    fn value_lit(&self, l: Lit) -> LBool {
        match self.assigns[l.var().index()] {
            LBool::Undef => LBool::Undef,
            LBool::True => {
                if l.is_neg() {
                    LBool::False
                } else {
                    LBool::True
                }
            }
            LBool::False => {
                if l.is_neg() {
                    LBool::True
                } else {
                    LBool::False
                }
            }
        }
    }

    /// Adds a clause; returns `false` if the solver became trivially
    /// unsatisfiable (empty clause at level 0).
    ///
    /// Duplicate literals are removed and tautologies are dropped.
    ///
    /// # Panics
    ///
    /// Panics if called while the solver is not at decision level 0
    /// (cannot happen through the public API) or if a literal references an
    /// unallocated variable.
    pub fn add_clause(&mut self, lits: impl IntoIterator<Item = Lit>) -> bool {
        assert_eq!(self.decision_level(), 0, "clauses are added at level 0");
        if !self.ok {
            return false;
        }
        let mut ps: Vec<Lit> = lits.into_iter().collect();
        for l in &ps {
            assert!(l.var().index() < self.num_vars(), "unallocated variable");
        }
        ps.sort();
        ps.dedup();
        // tautology / false-literal elimination at level 0
        let mut out: Vec<Lit> = Vec::with_capacity(ps.len());
        let mut i = 0;
        while i < ps.len() {
            let l = ps[i];
            if i + 1 < ps.len() && ps[i + 1] == !l {
                return true; // tautology: l and !l adjacent after sort
            }
            match self.value_lit(l) {
                LBool::True => return true, // already satisfied
                LBool::False => {}          // drop falsified literal
                LBool::Undef => out.push(l),
            }
            i += 1;
        }
        match out.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.unchecked_enqueue(out[0], None);
                if self.propagate().is_some() {
                    self.ok = false;
                }
                self.ok
            }
            _ => {
                self.attach_clause(out, false);
                true
            }
        }
    }

    fn attach_clause(&mut self, lits: Vec<Lit>, learnt: bool) -> u32 {
        debug_assert!(lits.len() >= 2);
        let cref = self.clauses.len() as u32;
        self.watches[lits[0].code()].push(Watcher {
            cref,
            blocker: lits[1],
        });
        self.watches[lits[1].code()].push(Watcher {
            cref,
            blocker: lits[0],
        });
        if learnt {
            self.num_learnts += 1;
        }
        self.clauses.push(Clause {
            lits,
            learnt,
            deleted: false,
            activity: 0.0,
        });
        cref
    }

    fn detach_clause(&mut self, cref: u32) {
        let (l0, l1) = {
            let c = &self.clauses[cref as usize];
            (c.lits[0], c.lits[1])
        };
        // Position lookup + swap_remove: O(1) removal once found, instead
        // of `retain`'s full compaction of the watch list. Clause-DB
        // reduction detaches half the learnts at once, so this runs hot.
        for code in [l0.code(), l1.code()] {
            let ws = &mut self.watches[code];
            if let Some(pos) = ws.iter().position(|w| w.cref == cref) {
                ws.swap_remove(pos);
            }
        }
    }

    fn decision_level(&self) -> usize {
        self.trail_lim.len()
    }

    fn unchecked_enqueue(&mut self, l: Lit, from: Option<u32>) {
        debug_assert_eq!(self.value_lit(l), LBool::Undef);
        let v = l.var().index();
        self.assigns[v] = if l.is_neg() {
            LBool::False
        } else {
            LBool::True
        };
        self.level[v] = self.decision_level() as u32;
        self.reason[v] = from;
        self.trail.push(l);
    }

    /// Unit propagation; returns the conflicting clause if any.
    fn propagate(&mut self) -> Option<u32> {
        let mut conflict = None;
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let false_lit = !p;
            // clauses watching `false_lit` must be fixed up
            let mut ws = std::mem::take(&mut self.watches[false_lit.code()]);
            let mut i = 0;
            'watchers: while i < ws.len() {
                let w = ws[i];
                // fast path: blocker already true
                if self.value_lit(w.blocker) == LBool::True {
                    i += 1;
                    continue;
                }
                let cref = w.cref;
                // make sure the false literal is at position 1
                {
                    let c = &mut self.clauses[cref as usize];
                    if c.lits[0] == false_lit {
                        c.lits.swap(0, 1);
                    }
                    debug_assert_eq!(c.lits[1], false_lit);
                }
                let first = self.clauses[cref as usize].lits[0];
                if first != w.blocker && self.value_lit(first) == LBool::True {
                    ws[i] = Watcher {
                        cref,
                        blocker: first,
                    };
                    i += 1;
                    continue;
                }
                // look for a new literal to watch
                let len = self.clauses[cref as usize].lits.len();
                for k in 2..len {
                    let lk = self.clauses[cref as usize].lits[k];
                    if self.value_lit(lk) != LBool::False {
                        let c = &mut self.clauses[cref as usize];
                        c.lits.swap(1, k);
                        self.watches[lk.code()].push(Watcher {
                            cref,
                            blocker: first,
                        });
                        ws.swap_remove(i);
                        continue 'watchers;
                    }
                }
                // no new watch: clause is unit or conflicting
                ws[i] = Watcher {
                    cref,
                    blocker: first,
                };
                i += 1;
                if self.value_lit(first) == LBool::False {
                    conflict = Some(cref);
                    self.qhead = self.trail.len();
                    break;
                }
                self.unchecked_enqueue(first, Some(cref));
            }
            self.watches[false_lit.code()] = ws;
            if conflict.is_some() {
                break;
            }
        }
        conflict
    }

    fn var_bump(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.order.bump(v.0, &self.activity);
    }

    fn cla_bump(&mut self, cref: u32) {
        let c = &mut self.clauses[cref as usize];
        c.activity += self.cla_inc;
        if c.activity > 1e20 {
            for cl in &mut self.clauses {
                cl.activity *= 1e-20;
            }
            self.cla_inc *= 1e-20;
        }
    }

    fn abstract_level(&self, v: Var) -> u32 {
        1 << (self.level[v.index()] & 31)
    }

    /// 1-UIP conflict analysis with deep clause minimization.
    /// Returns (learnt clause with asserting literal first, backtrack level).
    fn analyze(&mut self, mut confl: u32) -> (Vec<Lit>, usize) {
        let mut learnt: Vec<Lit> = vec![Lit(0)]; // slot for asserting literal
        let mut path_count = 0u32;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let mut to_clear: Vec<Var> = Vec::new();

        loop {
            self.cla_bump(confl);
            let start = if p.is_none() { 0 } else { 1 };
            let lits: Vec<Lit> = self.clauses[confl as usize].lits[start..].to_vec();
            for q in lits {
                let v = q.var();
                if !self.seen[v.index()] && self.level[v.index()] > 0 {
                    self.var_bump(v);
                    self.seen[v.index()] = true;
                    to_clear.push(v);
                    if self.level[v.index()] as usize >= self.decision_level() {
                        path_count += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // next marked literal on the trail
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let pl = self.trail[index];
            p = Some(pl);
            self.seen[pl.var().index()] = false;
            path_count -= 1;
            if path_count == 0 {
                break;
            }
            confl = self.reason[pl.var().index()].expect("non-decision must have a reason");
        }
        learnt[0] = !p.expect("asserting literal");

        // deep minimization: drop literals implied by the rest
        let abstract_levels = learnt[1..]
            .iter()
            .fold(0u32, |acc, l| acc | self.abstract_level(l.var()));
        let mut keep: Vec<Lit> = vec![learnt[0]];
        for &l in &learnt[1..] {
            if self.reason[l.var().index()].is_none()
                || !self.lit_redundant(l, abstract_levels, &mut to_clear)
            {
                keep.push(l);
            }
        }
        let mut learnt = keep;

        for v in to_clear {
            self.seen[v.index()] = false;
        }

        // compute backtrack level; move the max-level literal to slot 1
        let bt_level = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var().index()] as usize
        };
        (learnt, bt_level)
    }

    /// Checks whether `p` is redundant w.r.t. the currently-seen literals
    /// (MiniSAT `litRedundant`, iterative).
    fn lit_redundant(&mut self, p: Lit, abstract_levels: u32, to_clear: &mut Vec<Var>) -> bool {
        let mut stack = vec![p];
        let top = to_clear.len();
        while let Some(q) = stack.pop() {
            let cref = self.reason[q.var().index()].expect("reason checked by caller");
            let lits: Vec<Lit> = self.clauses[cref as usize].lits[1..].to_vec();
            for l in lits {
                let v = l.var();
                if !self.seen[v.index()] && self.level[v.index()] > 0 {
                    if self.reason[v.index()].is_some()
                        && (self.abstract_level(v) & abstract_levels) != 0
                    {
                        self.seen[v.index()] = true;
                        to_clear.push(v);
                        stack.push(l);
                    } else {
                        // cannot remove: undo the marks made in this call
                        for v2 in to_clear.drain(top..) {
                            self.seen[v2.index()] = false;
                        }
                        return false;
                    }
                }
            }
        }
        true
    }

    fn cancel_until(&mut self, level: usize) {
        if self.decision_level() <= level {
            return;
        }
        let lim = self.trail_lim[level];
        for i in (lim..self.trail.len()).rev() {
            let l = self.trail[i];
            let v = l.var();
            self.polarity[v.index()] = !l.is_neg();
            self.assigns[v.index()] = LBool::Undef;
            self.reason[v.index()] = None;
            self.order.insert(v.0, &self.activity);
        }
        self.trail.truncate(lim);
        self.trail_lim.truncate(level);
        self.qhead = self.trail.len();
    }

    fn pick_branch_var(&mut self) -> Option<Var> {
        while let Some(v) = self.order.pop_max(&self.activity) {
            if self.assigns[v as usize] == LBool::Undef {
                return Some(Var(v));
            }
        }
        None
    }

    fn reduce_db(&mut self) {
        // collect learnt, non-locked clause refs ordered by activity
        let mut refs: Vec<u32> = (0..self.clauses.len() as u32)
            .filter(|&c| {
                let cl = &self.clauses[c as usize];
                cl.learnt && !cl.deleted && cl.lits.len() > 2 && !self.is_locked(c)
            })
            .collect();
        refs.sort_by(|&a, &b| {
            self.clauses[a as usize]
                .activity
                .partial_cmp(&self.clauses[b as usize].activity)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let target = refs.len() / 2;
        for &cref in refs.iter().take(target) {
            self.detach_clause(cref);
            self.clauses[cref as usize].deleted = true;
            self.num_learnts -= 1;
        }
    }

    fn is_locked(&self, cref: u32) -> bool {
        let first = self.clauses[cref as usize].lits[0];
        self.reason[first.var().index()] == Some(cref) && self.value_lit(first) == LBool::True
    }

    /// Solves the current formula with no assumptions.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_with(&[])
    }

    /// Solves under `assumptions` (literals forced true for this call only).
    ///
    /// After the call the solver is back at decision level 0 and can be
    /// reused; learnt clauses are kept.
    pub fn solve_with(&mut self, assumptions: &[Lit]) -> SolveResult {
        if !self.ok {
            return SolveResult::Unsat;
        }
        for l in assumptions {
            assert!(
                l.var().index() < self.num_vars(),
                "assumption on unallocated variable"
            );
        }
        self.max_learnts = (self.clause_count() as f64 / 3.0).max(100.0);
        let budget_start = self.stats.conflicts;
        // the best-phase snapshot is per call: polarity carries the
        // previous call's final phases in, and restarts inside this call
        // rephase toward this call's own deepest trail
        self.best_trail = 0;
        let mut restarts = 0u64;
        let result = loop {
            let limit = RESTART_FIRST * luby(restarts);
            match self.search(limit, assumptions, budget_start) {
                SearchOutcome::Sat => break SolveResult::Sat,
                SearchOutcome::Unsat => break SolveResult::Unsat,
                SearchOutcome::Restart => {
                    restarts += 1;
                    self.stats.restarts += 1;
                    self.max_learnts *= 1.05;
                    // progress saving: resume near the most satisfied
                    // assignment this call has seen (skipped while no
                    // snapshot exists yet)
                    if self.best_trail > 0 {
                        self.stats.rephases += 1;
                        self.polarity.copy_from_slice(&self.best_phase);
                    }
                }
                SearchOutcome::BudgetExhausted => break SolveResult::Unknown,
            }
        };
        if result == SolveResult::Sat {
            self.model = self.assigns.iter().map(|&a| a == LBool::True).collect();
        }
        self.cancel_until(0);
        result
    }

    fn clause_count(&self) -> usize {
        self.clauses
            .iter()
            .filter(|c| !c.deleted && !c.learnt)
            .count()
    }

    fn search(
        &mut self,
        conflict_limit: u64,
        assumptions: &[Lit],
        budget_start: u64,
    ) -> SearchOutcome {
        let mut conflicts_here = 0u64;
        loop {
            if let Some(confl) = self.propagate() {
                // best-phase snapshot at the conflict boundary, before
                // the trail unwinds: one full copy per depth-record
                // conflict (snapshotting at every quiescence instead
                // would cost a copy per decision — quadratic on the
                // first descent of every assumption-scoped call)
                if self.trail.len() > self.best_trail {
                    for &l in &self.trail {
                        self.best_phase[l.var().index()] = !l.is_neg();
                    }
                    self.best_trail = self.trail.len();
                }
                self.stats.conflicts += 1;
                conflicts_here += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    return SearchOutcome::Unsat;
                }
                // conflict below/at the assumption prefix ⇒ UNSAT under assumptions
                if self.decision_level() <= assumptions.len() {
                    // analyze to be sure the conflict does not depend on
                    // assumption-free levels; a simple sound answer:
                    let (learnt, bt) = self.analyze(confl);
                    if bt < assumptions.len() {
                        // learnt clause asserts at a level inside the
                        // assumption prefix: record it and retry there
                        self.cancel_until(bt);
                        self.record_learnt(learnt);
                        if self.decision_level() == 0 && self.propagate().is_some() {
                            self.ok = false;
                            return SearchOutcome::Unsat;
                        }
                        continue;
                    }
                    self.cancel_until(bt);
                    self.record_learnt(learnt);
                    continue;
                }
                let (learnt, bt) = self.analyze(confl);
                self.cancel_until(bt);
                self.record_learnt(learnt);
                self.var_inc *= VAR_DECAY;
                self.cla_inc *= CLA_DECAY;
                if let Some(b) = self.conflict_budget {
                    if self.stats.conflicts - budget_start >= b {
                        self.cancel_until(0);
                        return SearchOutcome::BudgetExhausted;
                    }
                }
                if conflicts_here >= conflict_limit {
                    self.cancel_until(0);
                    return SearchOutcome::Restart;
                }
                if self.num_learnts as f64 >= self.max_learnts {
                    self.reduce_db();
                }
            } else {
                // establish assumptions in order
                if self.decision_level() < assumptions.len() {
                    let p = assumptions[self.decision_level()];
                    match self.value_lit(p) {
                        LBool::True => {
                            // already implied: open a dummy level
                            self.trail_lim.push(self.trail.len());
                        }
                        LBool::False => {
                            return SearchOutcome::Unsat;
                        }
                        LBool::Undef => {
                            self.trail_lim.push(self.trail.len());
                            self.unchecked_enqueue(p, None);
                        }
                    }
                    continue;
                }
                match self.pick_branch_var() {
                    None => return SearchOutcome::Sat,
                    Some(v) => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        let phase = self.polarity[v.index()];
                        self.unchecked_enqueue(Lit::new(v, phase), None);
                    }
                }
            }
        }
    }

    fn record_learnt(&mut self, learnt: Vec<Lit>) {
        if learnt.len() == 1 {
            self.cancel_until(0);
            if self.value_lit(learnt[0]) == LBool::Undef {
                self.unchecked_enqueue(learnt[0], None);
            } else if self.value_lit(learnt[0]) == LBool::False {
                self.ok = false;
            }
        } else {
            let first = learnt[0];
            let cref = self.attach_clause(learnt, true);
            self.cla_bump(cref);
            self.unchecked_enqueue(first, Some(cref));
        }
    }

    /// The value of `l` in the last satisfying model.
    ///
    /// Returns `None` before any successful `solve` or for variables
    /// allocated afterwards.
    pub fn model_value(&self, l: Lit) -> Option<bool> {
        self.model
            .get(l.var().index())
            .map(|&b| if l.is_neg() { !b } else { b })
    }

    /// Whether the clause set is already known unsatisfiable.
    pub fn is_ok(&self) -> bool {
        self.ok
    }

    /// Value of a variable fixed at decision level 0 (by propagation),
    /// independent of any model.
    pub fn fixed_value(&self, v: Var) -> Option<bool> {
        if self.level[v.index()] == 0 {
            match self.value_var(v) {
                LBool::True => Some(true),
                LBool::False => Some(false),
                LBool::Undef => None,
            }
        } else {
            None
        }
    }
}

enum SearchOutcome {
    Sat,
    Unsat,
    Restart,
    BudgetExhausted,
}

/// The Luby restart sequence (1,1,2,1,1,2,4,...).
fn luby(mut i: u64) -> u64 {
    // find the finite subsequence containing index i
    let mut size = 1u64;
    let mut seq = 0u32;
    while size < i + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    while size - 1 != i {
        size = (size - 1) / 2;
        seq -= 1;
        i %= size;
    }
    1u64 << seq
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(i: i32, s: &mut Solver) -> Lit {
        while s.num_vars() <= i.unsigned_abs() as usize {
            s.new_var();
        }
        let v = Var(i.unsigned_abs() - 1);
        if i < 0 {
            Lit::neg(v)
        } else {
            Lit::pos(v)
        }
    }

    fn cnf(s: &mut Solver, clauses: &[&[i32]]) {
        for c in clauses {
            let ls: Vec<Lit> = c.iter().map(|&i| lit(i, s)).collect();
            s.add_clause(ls);
        }
    }

    #[test]
    fn luby_sequence() {
        let expect = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        for (i, &e) in expect.iter().enumerate() {
            assert_eq!(luby(i as u64), e, "luby({i})");
        }
    }

    #[test]
    fn trivial_sat() {
        let mut s = Solver::new();
        cnf(&mut s, &[&[1, 2], &[-1, 2]]);
        let l2 = lit(2, &mut s);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.model_value(l2), Some(true));
    }

    #[test]
    fn trivial_unsat() {
        let mut s = Solver::new();
        cnf(&mut s, &[&[1], &[-1]]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn unit_chain_propagates() {
        let mut s = Solver::new();
        cnf(&mut s, &[&[1], &[-1, 2], &[-2, 3], &[-3, 4]]);
        let ls: Vec<Lit> = (1..=4).map(|i| lit(i, &mut s)).collect();
        assert_eq!(s.solve(), SolveResult::Sat);
        for l in ls {
            assert_eq!(s.model_value(l), Some(true));
        }
    }

    #[test]
    fn pigeonhole_3_into_2_unsat() {
        // p_ij: pigeon i in hole j; vars laid out 1..=6
        let mut s = Solver::new();
        let var = |i: usize, j: usize| (i * 2 + j + 1) as i32;
        for i in 0..3 {
            let c: Vec<i32> = (0..2).map(|j| var(i, j)).collect();
            cnf(&mut s, &[&c]);
        }
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in (i1 + 1)..3 {
                    cnf(&mut s, &[&[-var(i1, j), -var(i2, j)]]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn pigeonhole_5_into_4_unsat() {
        let mut s = Solver::new();
        let n = 5usize;
        let m = 4usize;
        let var = |i: usize, j: usize| (i * m + j + 1) as i32;
        for i in 0..n {
            let c: Vec<i32> = (0..m).map(|j| var(i, j)).collect();
            cnf(&mut s, &[&c]);
        }
        for j in 0..m {
            for i1 in 0..n {
                for i2 in (i1 + 1)..n {
                    cnf(&mut s, &[&[-var(i1, j), -var(i2, j)]]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert!(s.stats().conflicts > 0);
    }

    #[test]
    fn xor_chain_sat_with_parity() {
        // x1 ^ x2 = 1, x2 ^ x3 = 1, x1 ^ x3 = 0 : satisfiable
        let mut s = Solver::new();
        cnf(
            &mut s,
            &[&[1, 2], &[-1, -2], &[2, 3], &[-2, -3], &[1, -3], &[-1, 3]],
        );
        let (l1, l2, l3) = (lit(1, &mut s), lit(2, &mut s), lit(3, &mut s));
        assert_eq!(s.solve(), SolveResult::Sat);
        let x1 = s.model_value(l1).unwrap();
        let x2 = s.model_value(l2).unwrap();
        let x3 = s.model_value(l3).unwrap();
        assert!(x1 ^ x2);
        assert!(x2 ^ x3);
        assert!(!(x1 ^ x3));
    }

    #[test]
    fn assumptions_flip_outcome() {
        let mut s = Solver::new();
        cnf(&mut s, &[&[1, 2]]);
        let a = lit(-1, &mut s);
        let b = lit(-2, &mut s);
        assert_eq!(s.solve_with(&[a, b]), SolveResult::Unsat);
        let l2 = lit(2, &mut s);
        assert_eq!(s.solve_with(&[a]), SolveResult::Sat);
        assert_eq!(s.model_value(l2), Some(true));
        // solver still reusable without assumptions
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn incremental_add_after_solve() {
        let mut s = Solver::new();
        cnf(&mut s, &[&[1, 2]]);
        assert_eq!(s.solve(), SolveResult::Sat);
        cnf(&mut s, &[&[-1], &[-2]]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn budget_returns_unknown() {
        // php(7,6) is hard enough to exceed a 5-conflict budget
        let mut s = Solver::new();
        let n = 7usize;
        let m = 6usize;
        let var = |i: usize, j: usize| (i * m + j + 1) as i32;
        for i in 0..n {
            let c: Vec<i32> = (0..m).map(|j| var(i, j)).collect();
            cnf(&mut s, &[&c]);
        }
        for j in 0..m {
            for i1 in 0..n {
                for i2 in (i1 + 1)..n {
                    cnf(&mut s, &[&[-var(i1, j), -var(i2, j)]]);
                }
            }
        }
        s.set_conflict_budget(Some(5));
        assert_eq!(s.solve(), SolveResult::Unknown);
        s.set_conflict_budget(None);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn restart_heavy_search_rephases_from_best_phase() {
        // php(6,5): unsatisfiable and hard enough to restart several
        // times, so best-phase rephasing must both fire and leave the
        // verdict untouched
        let mut s = Solver::new();
        let n = 6usize;
        let m = 5usize;
        let var = |i: usize, j: usize| (i * m + j + 1) as i32;
        for i in 0..n {
            let c: Vec<i32> = (0..m).map(|j| var(i, j)).collect();
            cnf(&mut s, &[&c]);
        }
        for j in 0..m {
            for i1 in 0..n {
                for i2 in (i1 + 1)..n {
                    cnf(&mut s, &[&[-var(i1, j), -var(i2, j)]]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert!(s.stats().restarts > 0, "instance must restart");
        assert!(s.stats().rephases > 0, "rephasing must fire");
        assert!(s.stats().rephases <= s.stats().restarts);
    }

    #[test]
    fn solver_stats_absorb_sums_counters() {
        let mut a = SolverStats {
            conflicts: 1,
            decisions: 2,
            propagations: 3,
            restarts: 4,
            learnt_clauses: 5,
            rephases: 6,
        };
        a.absorb(&a.clone());
        assert_eq!(a.conflicts, 2);
        assert_eq!(a.propagations, 6);
        assert_eq!(a.rephases, 12);
    }

    #[test]
    fn duplicate_and_tautology_handling() {
        let mut s = Solver::new();
        let a = lit(1, &mut s);
        // tautology is dropped silently
        assert!(s.add_clause([a, !a]));
        // duplicates collapse
        assert!(s.add_clause([a, a, a]));
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.model_value(a), Some(true));
    }

    #[test]
    fn fixed_value_at_level0() {
        let mut s = Solver::new();
        cnf(&mut s, &[&[1], &[-1, 2]]);
        // adding the clauses already propagates at level 0
        assert_eq!(s.fixed_value(Var(0)), Some(true));
        assert_eq!(s.fixed_value(Var(1)), Some(true));
    }

    /// Brute-force model count comparison on random small CNFs.
    #[test]
    fn agrees_with_brute_force() {
        let mut seed = 0x243F6A8885A308D3u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for round in 0..60 {
            let nvars = 4 + (next() % 6) as usize; // 4..=9
            let nclauses = 6 + (next() % 24) as usize;
            let mut clauses: Vec<Vec<i32>> = Vec::new();
            for _ in 0..nclauses {
                let len = 1 + (next() % 3) as usize;
                let mut c = Vec::new();
                for _ in 0..len {
                    let v = (next() % nvars as u64) as i32 + 1;
                    let sign = if next() % 2 == 0 { 1 } else { -1 };
                    c.push(v * sign);
                }
                clauses.push(c);
            }
            // brute force
            let mut any = false;
            'assign: for m in 0..(1u32 << nvars) {
                for c in &clauses {
                    let sat = c.iter().any(|&l| {
                        let v = l.unsigned_abs() as usize - 1;
                        let val = (m >> v) & 1 == 1;
                        if l > 0 {
                            val
                        } else {
                            !val
                        }
                    });
                    if !sat {
                        continue 'assign;
                    }
                }
                any = true;
                break;
            }
            let mut s = Solver::new();
            let refs: Vec<&[i32]> = clauses.iter().map(|c| c.as_slice()).collect();
            cnf(&mut s, &refs);
            let expected = if any {
                SolveResult::Sat
            } else {
                SolveResult::Unsat
            };
            assert_eq!(s.solve(), expected, "round {round}: {clauses:?}");
            if expected == SolveResult::Sat {
                // verify the model actually satisfies the clauses
                for c in &clauses {
                    let sat = c.iter().any(|&l| {
                        let v = Var(l.unsigned_abs() - 1);
                        let want = l > 0;
                        s.model_value(Lit::pos(v)) == Some(want)
                    });
                    assert!(sat, "model violates {c:?}");
                }
            }
        }
    }
}
