//! The CDCL search engine.
//!
//! # Data layout
//!
//! Clauses live in a single flat `u32` arena ([`Solver::arena`]): two
//! header words (size/learnt/tier/LBD packed into one, the activity as
//! `f32` bits in the other) followed by the literal codes, so unit
//! propagation walks contiguous memory instead of chasing one heap
//! allocation per clause. A clause reference is the word offset of its
//! header. Deleting a clause only flips a header bit and counts the
//! freed words; a compacting GC ([`Solver::garbage_collect`]) rebuilds
//! the arena once a quarter of it is garbage, forwarding watcher and
//! reason references through the old activity slots.
//!
//! # Learnt-clause management
//!
//! Learnt clauses are tiered by their literal-block distance (LBD,
//! Audemard & Simon's glucose metric) computed at learn time: **core**
//! (LBD ≤ 2 or binary — kept forever), **tier2** (LBD ≤ 6), and
//! **local**. When the live non-core learnt count passes an adaptive
//! limit, [`Solver::reduce_db`] deletes the worst half of the non-core
//! tiers (local before tier2, high LBD before low, low activity before
//! high), never touching reason ("locked") clauses.
//!
//! # Restart control
//!
//! The default restart policy is Glucose-style adaptive control
//! ([`RestartMode::Ema`]): fast and slow exponential moving averages of
//! learnt-clause LBD *force* a restart when recent conflicts are much
//! worse than the long-run average (`ema_forced`), and a trail-depth
//! EMA *blocks* a pending restart while the solver is assigning far
//! more variables than usual — it is probably closing in on a model
//! (`ema_blocked`). The fixed Luby schedule survives behind
//! [`RestartMode::Luby`] as the ablation baseline. Conflict analysis
//! additionally backtracks *chronologically* (one level) instead of
//! jumping to the assertion level when the jump would discard a large
//! stretch of trail (`chrono_backjumps`, CaDiCaL's `C` heuristic).
//!
//! # Inprocessing
//!
//! At restart boundaries (every [`INPROCESS_INTERVAL`] conflicts, while
//! enabled via [`Solver::set_inprocessing`]) the solver runs bounded
//! clause-hygiene passes over the arena: **vivification** re-propagates
//! tier2 learnts literal by literal under the current level-0 state and
//! shrinks or deletes them (`vivified_clauses` / `vivified_lits`), and a
//! signature-indexed occurrence sweep applies **forward subsumption**
//! (`subsumed`) and **self-subsuming resolution** (`strengthened`).
//! Both passes carry work budgets and poll the cooperative [`Deadline`]
//! so they stay incremental and interruptible. On top of that, conflict
//! analysis recomputes the LBD of every learnt clause it resolves with
//! and *promotes* improving clauses into better tiers (`promoted`), so
//! good learnts migrate into core instead of only decaying outward.
//!
//! # Rephasing
//!
//! On top of best-phase saving (the deepest-trail snapshot), restarts
//! walk a CaDiCaL-style aspiration schedule that alternates the best
//! phases with their inversion and the original defaults, so search
//! periodically explores the complement of its best basin instead of
//! re-descending it forever.

use crate::deadline::Deadline;
use crate::heap::ActivityHeap;
use crate::{Lit, Var};

/// Restart policy of the search loop; see the [module docs](self).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum RestartMode {
    /// Glucose-style adaptive control: fast/slow EMAs of learnt-clause
    /// LBD force restarts when recent conflicts are much worse than the
    /// long-run average, and a trail-depth EMA blocks them while the
    /// solver looks close to a model. The default.
    #[default]
    Ema,
    /// The fixed Luby schedule (the pre-EMA baseline, kept for
    /// ablation runs).
    Luby,
}

/// Result of a [`Solver::solve`] call.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SolveResult {
    /// A satisfying assignment was found (see [`Solver::model_value`]).
    Sat,
    /// The formula (under the given assumptions) is unsatisfiable.
    Unsat,
    /// The conflict budget was exhausted before an answer was found.
    Unknown,
}

/// Cumulative search statistics.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Number of conflicts encountered.
    pub conflicts: u64,
    /// Number of branching decisions.
    pub decisions: u64,
    /// Number of literals propagated.
    pub propagations: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Number of learnt clauses currently in the database.
    pub learnt_clauses: u64,
    /// Number of rephasings applied at restarts (all kinds).
    pub rephases: u64,
    /// Rephasings that restored the best-phase snapshot.
    pub rephase_best: u64,
    /// Rephasings that inverted the best-phase snapshot.
    pub rephase_inverted: u64,
    /// Rephasings that restored the original default phases.
    pub rephase_original: u64,
    /// Learnt clauses that entered the core tier (LBD ≤ 2 or binary).
    pub lbd_core: u64,
    /// Learnt-database reductions performed.
    pub reduces: u64,
    /// Compacting arena garbage collections performed.
    pub arena_gcs: u64,
    /// Cooperative-deadline polls performed inside `search` (one per
    /// [`DEADLINE_CHECK_INTERVAL`] conflicts while a deadline is set)
    /// and inside the inprocessing passes; `checks × interval` bounds
    /// how many conflicts a stuck solve ran past its deadline — the
    /// interruption latency.
    pub deadline_checks: u64,
    /// Restarts forced by the EMA controller (fast LBD ≫ slow LBD).
    pub ema_forced: u64,
    /// Pending EMA restarts suppressed by a deep trail (the blocking
    /// heuristic: the solver looked close to a model).
    pub ema_blocked: u64,
    /// Learnt clauses shrunk or deleted by vivification.
    pub vivified_clauses: u64,
    /// Literals removed from clauses by vivification.
    pub vivified_lits: u64,
    /// Clauses deleted because another clause subsumes them.
    pub subsumed: u64,
    /// Literals removed by self-subsuming resolution.
    pub strengthened: u64,
    /// Conflicts resolved by a chronological (one-level) backtrack
    /// instead of a long backjump to the assertion level.
    pub chrono_backjumps: u64,
    /// Learnt clauses promoted into a better tier by on-the-fly LBD
    /// recomputation during conflict analysis.
    pub promoted: u64,
}

/// Adds the other stats' monotone counters onto this one (used to carry
/// telemetry across solver resets; `learnt_clauses` is a gauge and is
/// summed like the rest — callers accumulating across resets want the
/// total clauses ever learnt and retained at each reset point).
impl SolverStats {
    /// Component-wise sum.
    pub fn absorb(&mut self, o: &SolverStats) {
        self.conflicts += o.conflicts;
        self.decisions += o.decisions;
        self.propagations += o.propagations;
        self.restarts += o.restarts;
        self.learnt_clauses += o.learnt_clauses;
        self.rephases += o.rephases;
        self.rephase_best += o.rephase_best;
        self.rephase_inverted += o.rephase_inverted;
        self.rephase_original += o.rephase_original;
        self.lbd_core += o.lbd_core;
        self.reduces += o.reduces;
        self.arena_gcs += o.arena_gcs;
        self.deadline_checks += o.deadline_checks;
        self.ema_forced += o.ema_forced;
        self.ema_blocked += o.ema_blocked;
        self.vivified_clauses += o.vivified_clauses;
        self.vivified_lits += o.vivified_lits;
        self.subsumed += o.subsumed;
        self.strengthened += o.strengthened;
        self.chrono_backjumps += o.chrono_backjumps;
        self.promoted += o.promoted;
    }

    /// Work done since `base` was snapshotted: the per-call delta the
    /// telemetry histograms feed on. Saturating on every field so a
    /// solver reset between the snapshots (which can shrink the
    /// `learnt_clauses` gauge) never underflows.
    pub fn since(&self, base: &SolverStats) -> SolverStats {
        SolverStats {
            conflicts: self.conflicts.saturating_sub(base.conflicts),
            decisions: self.decisions.saturating_sub(base.decisions),
            propagations: self.propagations.saturating_sub(base.propagations),
            restarts: self.restarts.saturating_sub(base.restarts),
            learnt_clauses: self.learnt_clauses.saturating_sub(base.learnt_clauses),
            rephases: self.rephases.saturating_sub(base.rephases),
            rephase_best: self.rephase_best.saturating_sub(base.rephase_best),
            rephase_inverted: self.rephase_inverted.saturating_sub(base.rephase_inverted),
            rephase_original: self.rephase_original.saturating_sub(base.rephase_original),
            lbd_core: self.lbd_core.saturating_sub(base.lbd_core),
            reduces: self.reduces.saturating_sub(base.reduces),
            arena_gcs: self.arena_gcs.saturating_sub(base.arena_gcs),
            deadline_checks: self.deadline_checks.saturating_sub(base.deadline_checks),
            ema_forced: self.ema_forced.saturating_sub(base.ema_forced),
            ema_blocked: self.ema_blocked.saturating_sub(base.ema_blocked),
            vivified_clauses: self.vivified_clauses.saturating_sub(base.vivified_clauses),
            vivified_lits: self.vivified_lits.saturating_sub(base.vivified_lits),
            subsumed: self.subsumed.saturating_sub(base.subsumed),
            strengthened: self.strengthened.saturating_sub(base.strengthened),
            chrono_backjumps: self.chrono_backjumps.saturating_sub(base.chrono_backjumps),
            promoted: self.promoted.saturating_sub(base.promoted),
        }
    }
}

#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum LBool {
    True,
    False,
    Undef,
}

#[derive(Copy, Clone, Debug)]
struct Watcher {
    cref: u32,
    /// A literal of the clause other than the watched one; when it is
    /// already true the clause is satisfied and propagation never
    /// touches the arena (MiniSAT 2.2's "blocker").
    blocker: Lit,
}

// ---------------------------------------------------------------------
// Clause arena: header word 0 packs size | LBD | tier | learnt | deleted,
// header word 1 holds the activity as f32 bits (or the forwarding
// reference during GC), then `size` literal codes follow contiguously.
// ---------------------------------------------------------------------

/// Words before the literals of a clause.
const HEADER_WORDS: usize = 2;
/// Bits 0..20 of the header: clause size (≤ ~1M literals).
const SIZE_BITS: u32 = 20;
const SIZE_MASK: u32 = (1 << SIZE_BITS) - 1;
/// Bits 20..28: LBD, saturated at 255.
const LBD_SHIFT: u32 = 20;
const LBD_MAX: u32 = 0xFF;
/// Bits 28..30: tier.
const TIER_SHIFT: u32 = 28;
const TIER_MASK: u32 = 0b11;
/// Bit 30: learnt flag.
const LEARNT_BIT: u32 = 1 << 30;
/// Bit 31: deleted (awaiting GC).
const DELETED_BIT: u32 = 1 << 31;

/// Learnt tiers, stored in the header. Originals carry `TIER_CORE`.
const TIER_CORE: u32 = 0;
const TIER_TIER2: u32 = 1;
const TIER_LOCAL: u32 = 2;

/// LBD at or below which a learnt clause is core (kept forever).
const CORE_LBD: u32 = 2;
/// LBD at or below which a learnt clause is tier2 (reduced reluctantly).
const TIER2_LBD: u32 = 6;

fn pack_header(size: usize, learnt: bool, tier: u32, lbd: u32) -> u32 {
    debug_assert!(size as u32 <= SIZE_MASK);
    let mut h = size as u32;
    h |= lbd.min(LBD_MAX) << LBD_SHIFT;
    h |= (tier & TIER_MASK) << TIER_SHIFT;
    if learnt {
        h |= LEARNT_BIT;
    }
    h
}

/// A CDCL SAT solver; see the [crate docs](crate) for an example.
///
/// The solver is incremental: clauses may be added between `solve` calls,
/// and [`Solver::solve_with`] checks satisfiability under assumptions
/// without permanently asserting them.
#[derive(Clone, Debug)]
pub struct Solver {
    /// The flat clause store; see the module docs for the layout.
    arena: Vec<u32>,
    /// Words occupied by deleted clauses, pending compaction.
    garbage: usize,
    watches: Vec<Vec<Watcher>>,
    assigns: Vec<LBool>,
    level: Vec<u32>,
    reason: Vec<Option<u32>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    cla_inc: f64,
    /// Deferred VSIDS rescale flags: bumps only set these; the walk over
    /// every activity happens once per conflict at a safe point instead
    /// of inside the bump loop (relative order is scale-invariant, so
    /// deferral never perturbs the heap).
    var_rescale_pending: bool,
    cla_rescale_pending: bool,
    order: ActivityHeap,
    polarity: Vec<bool>,
    /// Best-phase cache: the full assignment at the deepest trail this
    /// `solve_with` call had reached when a conflict struck (snapshotted
    /// at the conflict boundary, before unwinding). Restarts rephase
    /// `polarity` from this snapshot, so search resumes near the most
    /// satisfied assignment seen instead of wherever the last backtrack
    /// happened to leave the phases — the progress-saving refinement of
    /// plain polarity caching (cf. splr's per-var `phase` / batsat's
    /// `phase_saving`). Assumption-scoped queries over a shared formula
    /// benefit most: each call re-walks the same prefix.
    best_phase: Vec<bool>,
    /// Trail depth at which `best_phase` was last improved.
    best_trail: usize,
    /// Position in the aspiration-rephasing schedule (advances once per
    /// applied rephase, across `solve_with` calls).
    rephase_index: u64,
    seen: Vec<bool>,
    /// Level-stamp scratch for LBD computation (indexed by level).
    lbd_seen: Vec<u32>,
    lbd_stamp: u32,
    ok: bool,
    model: Vec<bool>,
    stats: SolverStats,
    conflict_budget: Option<u64>,
    deadline: Deadline,
    /// Live original (problem) clauses in the arena.
    num_originals: usize,
    /// Live non-core learnt clauses (the reducible population).
    num_learnts: usize,
    /// Live core-tier learnt clauses (kept forever, not reducible).
    num_core: usize,
    max_learnts: f64,
    /// Restart policy (EMA-adaptive by default, Luby for ablation).
    restart_mode: RestartMode,
    /// Whether inprocessing runs at restart boundaries.
    inprocessing: bool,
    /// Fast (recent-window) EMA of learnt-clause LBD.
    ema_lbd_fast: f64,
    /// Slow (long-run) EMA of learnt-clause LBD.
    ema_lbd_slow: f64,
    /// EMA of the assigned-trail depth at conflicts.
    ema_trail: f64,
    /// LBD samples absorbed so far: the EMAs run bias-corrected (plain
    /// running mean until a window's worth of samples arrived), so the
    /// slow average behaves like Glucose's global mean early on instead
    /// of anchoring at whatever the first conflict's LBD happened to be.
    ema_samples: u64,
    /// Total-conflict threshold past which the next restart boundary
    /// runs an inprocessing pass.
    next_inprocess: u64,
    /// Conflicts between inprocessing passes; starts at
    /// [`INPROCESS_INTERVAL`] and doubles after each pass (capped), so
    /// hygiene cost amortizes: short solves pay for at most one cheap
    /// early pass, long solves sweep repeatedly but ever more rarely.
    inprocess_interval: u64,
    /// Rotating start index into the vivification candidate list, so
    /// successive bounded passes cover different clauses.
    vivify_cursor: u32,
}

const VAR_DECAY: f64 = 1.0 / 0.95;
const CLA_DECAY: f64 = 1.0 / 0.999;
const RESTART_FIRST: u64 = 100;
/// Conflicts between cooperative [`Deadline`] polls inside `search`.
/// Small enough that interruption latency is a handful of conflicts,
/// large enough that an `Instant::now()` every interval is noise next to
/// the propagations those conflicts cost.
pub const DEADLINE_CHECK_INTERVAL: u64 = 16;
/// Conflicts before the *first* inprocessing pass (vivification + the
/// subsumption sweep), applied at the first restart boundary past the
/// threshold while enabled via [`Solver::set_inprocessing`]. The
/// interval doubles after every pass (capped at 64×), so hygiene cost
/// amortizes instead of growing linearly with solve length.
pub const INPROCESS_INTERVAL: u64 = 500;
/// Smoothing factor of the fast (recent-window) learnt-LBD average.
const EMA_FAST_ALPHA: f64 = 1.0 / 32.0;
/// Smoothing factor of the slow (long-run) learnt-LBD average.
const EMA_SLOW_ALPHA: f64 = 1.0 / 8192.0;
/// Smoothing factor of the assigned-trail-depth average. Deliberately
/// much faster than the slow LBD average: incremental solving shifts
/// the trail scale whenever the active instance changes, and a stale
/// depth average would block every pending restart (starving
/// inprocessing and rephasing, which only run at restart boundaries).
const EMA_TRAIL_ALPHA: f64 = 1.0 / 256.0;
/// Force a restart once the fast LBD average exceeds the slow one by
/// this factor: recent learnt clauses are much worse than the long-run
/// average, so the current basin is probably barren.
const EMA_FORCE_RATIO: f64 = 1.10;
/// Block a pending forced restart when the conflict's trail is this
/// much deeper than the running average: the solver is assigning far
/// more variables than usual and may be closing in on a model.
const EMA_BLOCK_RATIO: f64 = 1.4;
/// Conflicts a restart epoch must last before the EMA controller may
/// force the next restart (the fast average needs a few samples).
const EMA_MIN_CONFLICTS: u64 = 32;
/// Total conflicts before trail-deepness blocking engages — the trail
/// EMA is meaningless until it has seen some samples.
const EMA_BLOCK_WARMUP: u64 = 100;
/// A backjump that would discard more than this many decision levels
/// backtracks chronologically (one level) instead, preserving the
/// still-plausibly-useful trail segment below the conflict.
const CHRONO_BACKTRACK_GAP: usize = 500;
/// Vivification probes only clauses of this size or smaller: long
/// clauses cost a propagation per literal and almost never shrink.
const VIVIFY_MAX_SIZE: usize = 32;
/// Clauses vivified per inprocessing pass (a rotating cursor spreads
/// coverage across passes).
const VIVIFY_CLAUSE_BUDGET: usize = 128;
/// Literal comparisons per subsumption sweep.
const SUBSUME_LIT_BUDGET: usize = 200_000;
/// Work items between cooperative deadline polls inside the
/// inprocessing passes.
const INPROCESS_POLL_INTERVAL: usize = 16;
/// The aspiration-rephasing schedule walked at restarts (CaDiCaL-style:
/// best phases dominate, with periodic excursions to their inversion and
/// the original defaults).
const REPHASE_SCHEDULE: [RephaseKind; 6] = [
    RephaseKind::Best,
    RephaseKind::Inverted,
    RephaseKind::Best,
    RephaseKind::Original,
    RephaseKind::Best,
    RephaseKind::Best,
];

#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum RephaseKind {
    Best,
    Inverted,
    Original,
}

impl Default for Solver {
    fn default() -> Self {
        Solver::new()
    }
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Self {
        Solver {
            arena: Vec::new(),
            garbage: 0,
            watches: Vec::new(),
            assigns: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            cla_inc: 1.0,
            var_rescale_pending: false,
            cla_rescale_pending: false,
            order: ActivityHeap::new(),
            polarity: Vec::new(),
            best_phase: Vec::new(),
            best_trail: 0,
            rephase_index: 0,
            seen: Vec::new(),
            lbd_seen: vec![0],
            lbd_stamp: 0,
            ok: true,
            model: Vec::new(),
            stats: SolverStats::default(),
            conflict_budget: None,
            deadline: Deadline::none(),
            num_originals: 0,
            num_learnts: 0,
            num_core: 0,
            max_learnts: 0.0,
            restart_mode: RestartMode::Ema,
            inprocessing: true,
            ema_lbd_fast: 0.0,
            ema_lbd_slow: 0.0,
            ema_trail: 0.0,
            ema_samples: 0,
            next_inprocess: INPROCESS_INTERVAL,
            inprocess_interval: INPROCESS_INTERVAL,
            vivify_cursor: 0,
        }
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assigns.len() as u32);
        self.assigns.push(LBool::Undef);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        self.polarity.push(false);
        self.best_phase.push(false);
        self.seen.push(false);
        self.lbd_seen.push(0);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.order.insert(v.0, &self.activity);
        v
    }

    /// Number of variables allocated.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Search statistics so far.
    pub fn stats(&self) -> SolverStats {
        let mut s = self.stats;
        s.learnt_clauses = (self.num_learnts + self.num_core) as u64;
        s
    }

    /// Limits the number of conflicts per `solve` call; `None` removes the
    /// limit. When the budget runs out, `solve` returns
    /// [`SolveResult::Unknown`].
    pub fn set_conflict_budget(&mut self, budget: Option<u64>) {
        self.conflict_budget = budget;
    }

    /// Installs a cooperative [`Deadline`], polled every
    /// [`DEADLINE_CHECK_INTERVAL`] conflicts inside `search` alongside
    /// the conflict budget. Expiry makes `solve` return
    /// [`SolveResult::Unknown`] — the same degradation path as budget
    /// exhaustion. [`Deadline::none`] removes the deadline.
    pub fn set_deadline(&mut self, deadline: Deadline) {
        self.deadline = deadline;
    }

    /// Selects the restart policy ([`RestartMode::Ema`] by default).
    pub fn set_restart_mode(&mut self, mode: RestartMode) {
        self.restart_mode = mode;
    }

    /// Enables or disables inprocessing (vivification + subsumption at
    /// restart boundaries). On by default; both settings only change
    /// how fast answers arrive, never which answers — verdicts are
    /// identical either way.
    pub fn set_inprocessing(&mut self, on: bool) {
        self.inprocessing = on;
    }

    fn value_var(&self, v: Var) -> LBool {
        self.assigns[v.index()]
    }

    fn value_lit(&self, l: Lit) -> LBool {
        match self.assigns[l.var().index()] {
            LBool::Undef => LBool::Undef,
            LBool::True => {
                if l.is_neg() {
                    LBool::False
                } else {
                    LBool::True
                }
            }
            LBool::False => {
                if l.is_neg() {
                    LBool::True
                } else {
                    LBool::False
                }
            }
        }
    }

    // -- arena accessors ------------------------------------------------

    fn clause_size(&self, cref: u32) -> usize {
        (self.arena[cref as usize] & SIZE_MASK) as usize
    }

    fn clause_lit(&self, cref: u32, i: usize) -> Lit {
        Lit(self.arena[cref as usize + HEADER_WORDS + i])
    }

    fn clause_is_learnt(&self, cref: u32) -> bool {
        self.arena[cref as usize] & LEARNT_BIT != 0
    }

    fn clause_is_deleted(&self, cref: u32) -> bool {
        self.arena[cref as usize] & DELETED_BIT != 0
    }

    fn clause_activity(&self, cref: u32) -> f32 {
        f32::from_bits(self.arena[cref as usize + 1])
    }

    fn set_clause_activity(&mut self, cref: u32, a: f32) {
        self.arena[cref as usize + 1] = a.to_bits();
    }

    /// Allocates a clause in the arena and returns its reference.
    fn alloc_clause(&mut self, lits: &[Lit], learnt: bool, lbd: u32) -> u32 {
        assert!(
            lits.len() as u32 <= SIZE_MASK,
            "clause exceeds the arena size field"
        );
        let tier = if !learnt || lbd <= CORE_LBD || lits.len() == 2 {
            // originals carry the core tag too; the learnt bit keeps
            // them out of every learnt-only path
            TIER_CORE
        } else if lbd <= TIER2_LBD {
            TIER_TIER2
        } else {
            TIER_LOCAL
        };
        let cref = self.arena.len() as u32;
        self.arena.push(pack_header(lits.len(), learnt, tier, lbd));
        self.arena.push(0f32.to_bits());
        for l in lits {
            self.arena.push(l.0);
        }
        if learnt {
            if tier == TIER_CORE {
                self.num_core += 1;
                self.stats.lbd_core += 1;
            } else {
                self.num_learnts += 1;
            }
        } else {
            self.num_originals += 1;
        }
        cref
    }

    /// Adds a clause; returns `false` if the solver became trivially
    /// unsatisfiable (empty clause at level 0).
    ///
    /// Duplicate literals are removed and tautologies are dropped.
    ///
    /// # Panics
    ///
    /// Panics if called while the solver is not at decision level 0
    /// (cannot happen through the public API) or if a literal references an
    /// unallocated variable.
    pub fn add_clause(&mut self, lits: impl IntoIterator<Item = Lit>) -> bool {
        assert_eq!(self.decision_level(), 0, "clauses are added at level 0");
        if !self.ok {
            return false;
        }
        let mut ps: Vec<Lit> = lits.into_iter().collect();
        for l in &ps {
            assert!(l.var().index() < self.num_vars(), "unallocated variable");
        }
        ps.sort();
        ps.dedup();
        // tautology / false-literal elimination at level 0
        let mut out: Vec<Lit> = Vec::with_capacity(ps.len());
        let mut i = 0;
        while i < ps.len() {
            let l = ps[i];
            if i + 1 < ps.len() && ps[i + 1] == !l {
                return true; // tautology: l and !l adjacent after sort
            }
            match self.value_lit(l) {
                LBool::True => return true, // already satisfied
                LBool::False => {}          // drop falsified literal
                LBool::Undef => out.push(l),
            }
            i += 1;
        }
        match out.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.unchecked_enqueue(out[0], None);
                if self.propagate().is_some() {
                    self.ok = false;
                }
                self.ok
            }
            _ => {
                self.attach_clause(&out, false, 0);
                true
            }
        }
    }

    fn attach_clause(&mut self, lits: &[Lit], learnt: bool, lbd: u32) -> u32 {
        debug_assert!(lits.len() >= 2);
        let cref = self.alloc_clause(lits, learnt, lbd);
        self.watches[lits[0].code()].push(Watcher {
            cref,
            blocker: lits[1],
        });
        self.watches[lits[1].code()].push(Watcher {
            cref,
            blocker: lits[0],
        });
        cref
    }

    fn detach_clause(&mut self, cref: u32) {
        let (l0, l1) = (self.clause_lit(cref, 0), self.clause_lit(cref, 1));
        // Position lookup + swap_remove: O(1) removal once found, instead
        // of `retain`'s full compaction of the watch list. Clause-DB
        // reduction detaches half the learnts at once, so this runs hot.
        for code in [l0.code(), l1.code()] {
            let ws = &mut self.watches[code];
            if let Some(pos) = ws.iter().position(|w| w.cref == cref) {
                ws.swap_remove(pos);
            }
        }
    }

    /// Marks a (detached) clause deleted; the words are reclaimed by the
    /// next [`Solver::garbage_collect`].
    fn free_clause(&mut self, cref: u32) {
        debug_assert!(!self.clause_is_deleted(cref));
        let size = self.clause_size(cref);
        self.arena[cref as usize] |= DELETED_BIT;
        self.garbage += HEADER_WORDS + size;
    }

    fn decision_level(&self) -> usize {
        self.trail_lim.len()
    }

    fn unchecked_enqueue(&mut self, l: Lit, from: Option<u32>) {
        debug_assert_eq!(self.value_lit(l), LBool::Undef);
        let v = l.var().index();
        self.assigns[v] = if l.is_neg() {
            LBool::False
        } else {
            LBool::True
        };
        self.level[v] = self.decision_level() as u32;
        self.reason[v] = from;
        self.trail.push(l);
    }

    /// Unit propagation; returns the conflicting clause if any.
    ///
    /// Watch lists are compacted in place with a read/write cursor pair:
    /// watchers that stay (satisfied blocker, updated blocker, unit or
    /// conflict) are moved down at most once and the list is truncated at
    /// the end — no `mem::take`/re-push round trip, and the arena is not
    /// touched at all when the blocking literal is already true.
    fn propagate(&mut self) -> Option<u32> {
        let mut conflict = None;
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let false_lit = !p;
            let fcode = false_lit.code();
            let n = self.watches[fcode].len();
            let mut i = 0usize; // read cursor
            let mut j = 0usize; // write cursor
            'watchers: while i < n {
                let w = self.watches[fcode][i];
                // fast path: blocker already true — clause satisfied,
                // watcher kept, arena untouched
                if self.value_lit(w.blocker) == LBool::True {
                    self.watches[fcode][j] = w;
                    i += 1;
                    j += 1;
                    continue;
                }
                let cref = w.cref;
                let base = cref as usize + HEADER_WORDS;
                // make sure the false literal is at position 1
                if self.arena[base] == false_lit.0 {
                    self.arena.swap(base, base + 1);
                }
                debug_assert_eq!(self.arena[base + 1], false_lit.0);
                let first = Lit(self.arena[base]);
                if first != w.blocker && self.value_lit(first) == LBool::True {
                    self.watches[fcode][j] = Watcher {
                        cref,
                        blocker: first,
                    };
                    i += 1;
                    j += 1;
                    continue;
                }
                // look for a new literal to watch
                let size = (self.arena[cref as usize] & SIZE_MASK) as usize;
                for k in 2..size {
                    let lk = Lit(self.arena[base + k]);
                    if self.value_lit(lk) != LBool::False {
                        self.arena.swap(base + 1, base + k);
                        // `lk` is not false while `false_lit` is, so this
                        // push never targets the list being compacted
                        self.watches[lk.code()].push(Watcher {
                            cref,
                            blocker: first,
                        });
                        i += 1; // watcher moved away: not re-written
                        continue 'watchers;
                    }
                }
                // no new watch: clause is unit or conflicting
                self.watches[fcode][j] = Watcher {
                    cref,
                    blocker: first,
                };
                i += 1;
                j += 1;
                if self.value_lit(first) == LBool::False {
                    conflict = Some(cref);
                    self.qhead = self.trail.len();
                    // keep the unvisited suffix: slide it down
                    while i < n {
                        self.watches[fcode][j] = self.watches[fcode][i];
                        i += 1;
                        j += 1;
                    }
                    break;
                }
                self.unchecked_enqueue(first, Some(cref));
            }
            self.watches[fcode].truncate(j);
            if conflict.is_some() {
                break;
            }
        }
        conflict
    }

    fn var_bump(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > 1e100 {
            // rescaling preserves relative order, so it is deferred to
            // one pass per conflict instead of running inside the
            // bump-per-literal loop of conflict analysis
            self.var_rescale_pending = true;
        }
        self.order.bump(v.0, &self.activity);
    }

    fn cla_bump(&mut self, cref: u32) {
        if !self.clause_is_learnt(cref) {
            return; // original clauses are never reduced: activity unused
        }
        let a = self.clause_activity(cref) + self.cla_inc as f32;
        self.set_clause_activity(cref, a);
        if a > 1e20 {
            self.cla_rescale_pending = true;
        }
    }

    /// Applies any rescale requested by `var_bump`/`cla_bump` since the
    /// last conflict: one pass each, hoisted out of the bump hot paths.
    fn apply_pending_rescales(&mut self) {
        if self.var_rescale_pending {
            self.var_rescale_pending = false;
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        if self.cla_rescale_pending {
            self.cla_rescale_pending = false;
            let mut off = 0usize;
            while off < self.arena.len() {
                let h = self.arena[off];
                let size = (h & SIZE_MASK) as usize;
                if h & LEARNT_BIT != 0 && h & DELETED_BIT == 0 {
                    let a = f32::from_bits(self.arena[off + 1]) * 1e-20;
                    self.arena[off + 1] = a.to_bits();
                }
                off += HEADER_WORDS + size;
            }
            self.cla_inc *= 1e-20;
        }
    }

    fn abstract_level(&self, v: Var) -> u32 {
        1 << (self.level[v.index()] & 31)
    }

    /// Literal-block distance: the number of distinct decision levels
    /// among the clause's literals (glucose's quality metric; smaller is
    /// better, ≤ 2 is "glue").
    fn lbd_of(&mut self, lits: &[Lit]) -> u32 {
        self.lbd_stamp = self.lbd_stamp.wrapping_add(1);
        if self.lbd_stamp == 0 {
            // wrapped: clear the stamps so stale matches are impossible
            self.lbd_seen.iter_mut().for_each(|s| *s = 0);
            self.lbd_stamp = 1;
        }
        let mut lbd = 0u32;
        for l in lits {
            let lvl = self.level[l.var().index()] as usize;
            if lvl >= self.lbd_seen.len() {
                // duplicated assumptions open dummy decision levels, so
                // the level count can exceed the per-var table size
                self.lbd_seen.resize(lvl + 1, 0);
            }
            if self.lbd_seen[lvl] != self.lbd_stamp {
                self.lbd_seen[lvl] = self.lbd_stamp;
                lbd += 1;
            }
        }
        lbd
    }

    /// 1-UIP conflict analysis with deep clause minimization.
    /// Returns (learnt clause with asserting literal first, backtrack
    /// level, LBD of the learnt clause).
    fn analyze(&mut self, mut confl: u32) -> (Vec<Lit>, usize, u32) {
        let mut learnt: Vec<Lit> = vec![Lit(0)]; // slot for asserting literal
        let mut path_count = 0u32;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let mut to_clear: Vec<Var> = Vec::new();

        loop {
            self.cla_bump(confl);
            if self.clause_is_learnt(confl) {
                // on-the-fly LBD recomputation: a clause useful enough
                // to resolve with gets its quality re-measured, and an
                // improved clause is promoted into a better tier
                self.recompute_lbd_and_promote(confl);
            }
            let start = if p.is_none() { 0 } else { 1 };
            let size = self.clause_size(confl);
            for k in start..size {
                let q = self.clause_lit(confl, k);
                let v = q.var();
                if !self.seen[v.index()] && self.level[v.index()] > 0 {
                    self.var_bump(v);
                    self.seen[v.index()] = true;
                    to_clear.push(v);
                    if self.level[v.index()] as usize >= self.decision_level() {
                        path_count += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // next marked literal on the trail
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let pl = self.trail[index];
            p = Some(pl);
            self.seen[pl.var().index()] = false;
            path_count -= 1;
            if path_count == 0 {
                break;
            }
            confl = self.reason[pl.var().index()].expect("non-decision must have a reason");
        }
        learnt[0] = !p.expect("asserting literal");

        // deep minimization: drop literals implied by the rest
        let abstract_levels = learnt[1..]
            .iter()
            .fold(0u32, |acc, l| acc | self.abstract_level(l.var()));
        let mut keep: Vec<Lit> = vec![learnt[0]];
        for &l in &learnt[1..] {
            if self.reason[l.var().index()].is_none()
                || !self.lit_redundant(l, abstract_levels, &mut to_clear)
            {
                keep.push(l);
            }
        }
        let mut learnt = keep;

        for v in to_clear {
            self.seen[v.index()] = false;
        }

        // LBD at learn time (before unwinding destroys the levels)
        let lbd = self.lbd_of(&learnt);

        // compute backtrack level; move the max-level literal to slot 1
        let bt_level = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var().index()] as usize
        };
        (learnt, bt_level, lbd)
    }

    /// Checks whether `p` is redundant w.r.t. the currently-seen literals
    /// (MiniSAT `litRedundant`, iterative).
    fn lit_redundant(&mut self, p: Lit, abstract_levels: u32, to_clear: &mut Vec<Var>) -> bool {
        let mut stack = vec![p];
        let top = to_clear.len();
        while let Some(q) = stack.pop() {
            let cref = self.reason[q.var().index()].expect("reason checked by caller");
            let size = self.clause_size(cref);
            for k in 1..size {
                let l = self.clause_lit(cref, k);
                let v = l.var();
                if !self.seen[v.index()] && self.level[v.index()] > 0 {
                    if self.reason[v.index()].is_some()
                        && (self.abstract_level(v) & abstract_levels) != 0
                    {
                        self.seen[v.index()] = true;
                        to_clear.push(v);
                        stack.push(l);
                    } else {
                        // cannot remove: undo the marks made in this call
                        for v2 in to_clear.drain(top..) {
                            self.seen[v2.index()] = false;
                        }
                        return false;
                    }
                }
            }
        }
        true
    }

    fn cancel_until(&mut self, level: usize) {
        if self.decision_level() <= level {
            return;
        }
        let lim = self.trail_lim[level];
        for i in (lim..self.trail.len()).rev() {
            let l = self.trail[i];
            let v = l.var();
            self.polarity[v.index()] = !l.is_neg();
            self.assigns[v.index()] = LBool::Undef;
            self.reason[v.index()] = None;
            self.order.insert(v.0, &self.activity);
        }
        self.trail.truncate(lim);
        self.trail_lim.truncate(level);
        self.qhead = self.trail.len();
    }

    fn pick_branch_var(&mut self) -> Option<Var> {
        while let Some(v) = self.order.pop_max(&self.activity) {
            if self.assigns[v as usize] == LBool::Undef {
                return Some(Var(v));
            }
        }
        None
    }

    /// Halves the non-core learnt population: local-tier clauses go
    /// before tier2, higher LBD before lower, lower activity before
    /// higher. Core-tier clauses, binary clauses and reason ("locked")
    /// clauses are never deleted. Compacts the arena afterwards when a
    /// quarter of it is garbage.
    fn reduce_db(&mut self) {
        self.stats.reduces += 1;
        // (cref, tier, lbd, activity) of every reducible learnt
        let mut refs: Vec<(u32, u32, u32, f32)> = Vec::with_capacity(self.num_learnts);
        let mut off = 0usize;
        while off < self.arena.len() {
            let h = self.arena[off];
            let size = (h & SIZE_MASK) as usize;
            let cref = off as u32;
            if h & LEARNT_BIT != 0
                && h & DELETED_BIT == 0
                && (h >> TIER_SHIFT) & TIER_MASK != TIER_CORE
                && size > 2
                && !self.is_locked(cref)
            {
                refs.push((
                    cref,
                    (h >> TIER_SHIFT) & TIER_MASK,
                    (h >> LBD_SHIFT) & LBD_MAX,
                    self.clause_activity(cref),
                ));
            }
            off += HEADER_WORDS + size;
        }
        // victims first; cref as the deterministic tiebreaker
        refs.sort_by(|a, b| {
            b.1.cmp(&a.1)
                .then(b.2.cmp(&a.2))
                .then(a.3.partial_cmp(&b.3).unwrap_or(std::cmp::Ordering::Equal))
                .then(a.0.cmp(&b.0))
        });
        let target = refs.len() / 2;
        for &(cref, ..) in refs.iter().take(target) {
            self.detach_clause(cref);
            self.free_clause(cref);
            self.num_learnts -= 1;
        }
        if self.garbage * 4 > self.arena.len() {
            self.garbage_collect();
        }
    }

    /// Compacts the arena: live clauses move down contiguously, watcher
    /// and reason references are forwarded through the old activity
    /// slots, and the freed words are reclaimed.
    fn garbage_collect(&mut self) {
        self.stats.arena_gcs += 1;
        let mut new_arena: Vec<u32> = Vec::with_capacity(self.arena.len() - self.garbage);
        let mut off = 0usize;
        while off < self.arena.len() {
            let h = self.arena[off];
            let total = HEADER_WORDS + (h & SIZE_MASK) as usize;
            if h & DELETED_BIT == 0 {
                let new_cref = new_arena.len() as u32;
                new_arena.extend_from_slice(&self.arena[off..off + total]);
                // forward pointer for the remap passes below
                self.arena[off + 1] = new_cref;
            }
            off += total;
        }
        let old = &self.arena;
        for ws in &mut self.watches {
            for w in ws.iter_mut() {
                debug_assert!(old[w.cref as usize] & DELETED_BIT == 0);
                w.cref = old[w.cref as usize + 1];
            }
        }
        for r in self.reason.iter_mut().flatten() {
            debug_assert!(old[*r as usize] & DELETED_BIT == 0);
            *r = old[*r as usize + 1];
        }
        self.arena = new_arena;
        self.garbage = 0;
    }

    fn is_locked(&self, cref: u32) -> bool {
        let first = self.clause_lit(cref, 0);
        self.reason[first.var().index()] == Some(cref) && self.value_lit(first) == LBool::True
    }

    /// Recomputes the LBD of a live learnt clause against the current
    /// decision levels and, when it improved, rewrites the header and
    /// promotes the clause into the better tier (local → tier2 → core).
    /// Promotion is one-way: a temporarily bad level distribution never
    /// demotes a clause.
    fn recompute_lbd_and_promote(&mut self, cref: u32) {
        let h = self.arena[cref as usize];
        let old_lbd = (h >> LBD_SHIFT) & LBD_MAX;
        let old_tier = (h >> TIER_SHIFT) & TIER_MASK;
        if old_lbd <= CORE_LBD && old_tier == TIER_CORE {
            return; // already as good as it gets
        }
        // inline LBD stamping over the arena literals (the slice-based
        // `lbd_of` would need a copy here)
        self.lbd_stamp = self.lbd_stamp.wrapping_add(1);
        if self.lbd_stamp == 0 {
            self.lbd_seen.iter_mut().for_each(|s| *s = 0);
            self.lbd_stamp = 1;
        }
        let size = (h & SIZE_MASK) as usize;
        let base = cref as usize + HEADER_WORDS;
        let mut lbd = 0u32;
        for k in 0..size {
            let lvl = self.level[Lit(self.arena[base + k]).var().index()] as usize;
            if lvl >= self.lbd_seen.len() {
                self.lbd_seen.resize(lvl + 1, 0);
            }
            if self.lbd_seen[lvl] != self.lbd_stamp {
                self.lbd_seen[lvl] = self.lbd_stamp;
                lbd += 1;
            }
        }
        if lbd >= old_lbd {
            return;
        }
        let new_tier = if lbd <= CORE_LBD {
            TIER_CORE
        } else if lbd <= TIER2_LBD {
            TIER_TIER2.min(old_tier)
        } else {
            old_tier
        };
        let mut h2 = h & !(LBD_MAX << LBD_SHIFT) & !(TIER_MASK << TIER_SHIFT);
        h2 |= lbd << LBD_SHIFT;
        h2 |= new_tier << TIER_SHIFT;
        self.arena[cref as usize] = h2;
        if new_tier < old_tier {
            self.stats.promoted += 1;
            if new_tier == TIER_CORE {
                self.num_learnts -= 1;
                self.num_core += 1;
                self.stats.lbd_core += 1;
            }
        }
    }

    /// Decrements the live-population counter for `cref`'s class. Must
    /// run before [`Solver::free_clause`] flips the deleted bit.
    fn count_removed(&mut self, cref: u32) {
        let h = self.arena[cref as usize];
        debug_assert_eq!(h & DELETED_BIT, 0);
        if h & LEARNT_BIT == 0 {
            self.num_originals -= 1;
        } else if (h >> TIER_SHIFT) & TIER_MASK == TIER_CORE {
            self.num_core -= 1;
        } else {
            self.num_learnts -= 1;
        }
    }

    /// Detaches and frees a live clause, keeping the population
    /// counters consistent (unlike `reduce_db`, which batches its own
    /// accounting).
    fn remove_clause(&mut self, cref: u32) {
        self.detach_clause(cref);
        self.count_removed(cref);
        self.free_clause(cref);
    }

    /// Converts a learnt clause into an irredundant (original-status)
    /// one: once a learnt subsumes an original, the original's
    /// constraint survives only through the learnt, which must
    /// therefore never be reduced away.
    fn make_irredundant(&mut self, cref: u32) {
        let h = self.arena[cref as usize];
        if h & LEARNT_BIT == 0 {
            return;
        }
        if (h >> TIER_SHIFT) & TIER_MASK == TIER_CORE {
            self.num_core -= 1;
        } else {
            self.num_learnts -= 1;
        }
        self.num_originals += 1;
        // TIER_CORE is 0: clearing the tier bits tags it core
        self.arena[cref as usize] = h & !LEARNT_BIT & !(TIER_MASK << TIER_SHIFT);
    }

    // -- inprocessing ---------------------------------------------------

    /// One bounded clause-hygiene step at a restart boundary (decision
    /// level 0): vivification, then the subsumption sweep, then a GC if
    /// the passes left enough garbage behind. Returns `true` when the
    /// cooperative deadline expired mid-pass — the caller degrades to
    /// [`SolveResult::Unknown`], same as an in-search expiry.
    fn inprocess(&mut self) -> bool {
        debug_assert_eq!(self.decision_level(), 0);
        if self.vivify_pass() {
            return true;
        }
        if self.ok && self.subsume_pass() {
            return true;
        }
        if self.garbage * 4 > self.arena.len() {
            self.garbage_collect();
        }
        false
    }

    /// Polls the deadline from inside an inprocessing pass; returns
    /// `true` on expiry.
    fn inprocess_deadline_expired(&mut self) -> bool {
        if self.deadline.is_none() {
            return false;
        }
        self.stats.deadline_checks += 1;
        self.deadline.expired()
    }

    /// Bounded vivification of tier2 learnts: each candidate is
    /// detached, its literals' negations are propagated one by one on a
    /// probe level, and any implied/contradicted suffix is dropped. The
    /// shrunk clause is entailed by the *rest* of the formula (the
    /// candidate itself cannot participate while detached), so the
    /// replacement is sound. Returns `true` if the deadline expired.
    fn vivify_pass(&mut self) -> bool {
        debug_assert_eq!(self.decision_level(), 0);
        let mut cands: Vec<u32> = Vec::new();
        let mut off = 0usize;
        while off < self.arena.len() {
            let h = self.arena[off];
            let size = (h & SIZE_MASK) as usize;
            if h & LEARNT_BIT != 0
                && h & DELETED_BIT == 0
                && (h >> TIER_SHIFT) & TIER_MASK == TIER_TIER2
                && (3..=VIVIFY_MAX_SIZE).contains(&size)
            {
                cands.push(off as u32);
            }
            off += HEADER_WORDS + size;
        }
        if cands.is_empty() {
            return false;
        }
        let start = (self.vivify_cursor as usize) % cands.len();
        let take = cands.len().min(VIVIFY_CLAUSE_BUDGET);
        self.vivify_cursor = self.vivify_cursor.wrapping_add(take as u32);
        for i in 0..take {
            if i % INPROCESS_POLL_INTERVAL == 0 && self.inprocess_deadline_expired() {
                return true;
            }
            if !self.ok {
                return false;
            }
            let cref = cands[(start + i) % cands.len()];
            // a unit-shrink earlier in this pass may have propagated at
            // level 0, deleting, satisfying, or locking later candidates
            if self.clause_is_deleted(cref) || self.is_locked(cref) {
                continue;
            }
            self.vivify_one(cref);
        }
        false
    }

    /// Probes a single clause; see [`Solver::vivify_pass`].
    fn vivify_one(&mut self, cref: u32) {
        let size = self.clause_size(cref);
        let lits: Vec<Lit> = (0..size).map(|i| self.clause_lit(cref, i)).collect();
        let old_lbd = (self.arena[cref as usize] >> LBD_SHIFT) & LBD_MAX;
        // level-0 satisfied clause: permanently true, drop it outright
        if lits.iter().any(|&l| self.value_lit(l) == LBool::True) {
            self.remove_clause(cref);
            self.stats.vivified_clauses += 1;
            self.stats.vivified_lits += size as u64;
            return;
        }
        self.detach_clause(cref);
        let mut kept: Vec<Lit> = Vec::with_capacity(lits.len());
        self.trail_lim.push(self.trail.len()); // open the probe level
        for &l in &lits {
            match self.value_lit(l) {
                LBool::True => {
                    // ¬kept ⊨ l: the clause shrinks to kept ∨ l
                    kept.push(l);
                    break;
                }
                LBool::False => {
                    // ¬kept ⊨ ¬l: l is redundant, drop it
                }
                LBool::Undef => {
                    kept.push(l);
                    self.unchecked_enqueue(!l, None);
                    if self.propagate().is_some() {
                        // ¬kept is contradictory: kept alone is implied
                        break;
                    }
                }
            }
        }
        self.cancel_until(0);
        if kept.len() == lits.len() {
            // unchanged: reattach the original watchers
            self.watches[lits[0].code()].push(Watcher {
                cref,
                blocker: lits[1],
            });
            self.watches[lits[1].code()].push(Watcher {
                cref,
                blocker: lits[0],
            });
            return;
        }
        self.stats.vivified_clauses += 1;
        self.stats.vivified_lits += (lits.len() - kept.len()) as u64;
        self.count_removed(cref);
        self.free_clause(cref);
        match kept.len() {
            0 => self.ok = false,
            1 => match self.value_lit(kept[0]) {
                LBool::False => self.ok = false,
                LBool::True => {}
                LBool::Undef => {
                    self.unchecked_enqueue(kept[0], None);
                    if self.propagate().is_some() {
                        self.ok = false;
                    }
                }
            },
            n => {
                let lbd = old_lbd.min(n as u32 - 1).max(1);
                self.attach_clause(&kept, true, lbd);
            }
        }
    }

    /// Forward subsumption + self-subsuming resolution over a
    /// signature-indexed occurrence sweep: clauses are visited in
    /// ascending size order, candidate subsumees come from the
    /// occurrence list of the subsumer's rarest variable, and a 64-bit
    /// variable signature filters most pairs before any literals are
    /// compared. A ⊆ B deletes B (`subsumed`); A matching B except one
    /// negated literal resolves that literal out of B (`strengthened`).
    /// Returns `true` if the deadline expired.
    fn subsume_pass(&mut self) -> bool {
        debug_assert_eq!(self.decision_level(), 0);
        // (cref, size, var signature) of every live clause
        let mut clauses: Vec<(u32, u32, u64)> = Vec::new();
        let mut off = 0usize;
        while off < self.arena.len() {
            let h = self.arena[off];
            let size = (h & SIZE_MASK) as usize;
            if h & DELETED_BIT == 0 && size >= 2 {
                let mut sig = 0u64;
                for k in 0..size {
                    sig |= 1u64 << (Lit(self.arena[off + HEADER_WORDS + k]).var().0 % 64);
                }
                clauses.push((off as u32, size as u32, sig));
            }
            off += HEADER_WORDS + size;
        }
        clauses.sort_by_key(|&(cref, size, _)| (size, cref));
        // occurrence lists by variable (indices into `clauses`)
        let mut occ: Vec<Vec<u32>> = vec![Vec::new(); self.num_vars()];
        for (idx, &(cref, size, _)) in clauses.iter().enumerate() {
            for k in 0..size as usize {
                occ[self.clause_lit(cref, k).var().index()].push(idx as u32);
            }
        }
        // literal-marking scratch: code → stamp
        let mut marked: Vec<u32> = vec![0; self.num_vars() * 2];
        let mut stamp = 0u32;
        let mut budget = SUBSUME_LIT_BUDGET as isize;
        for (a_pos, &(a_cref, a_size, a_sig)) in clauses.iter().enumerate() {
            if budget <= 0 {
                break;
            }
            if a_pos % INPROCESS_POLL_INTERVAL == 0 && self.inprocess_deadline_expired() {
                return true;
            }
            if !self.ok {
                return false;
            }
            if self.clause_is_deleted(a_cref) {
                continue;
            }
            let a_size = a_size as usize;
            stamp += 1;
            let mut min_var = 0usize;
            let mut min_occ = usize::MAX;
            for k in 0..a_size {
                let l = self.clause_lit(a_cref, k);
                marked[l.code()] = stamp;
                let v = l.var().index();
                if occ[v].len() < min_occ {
                    min_occ = occ[v].len();
                    min_var = v;
                }
            }
            // borrow dance: the occurrence list is indices, so clone-free
            // iteration needs it split from `self` — take it out briefly
            let cand = std::mem::take(&mut occ[min_var]);
            for &b_idx in &cand {
                let (b_cref, b_size, b_sig) = clauses[b_idx as usize];
                if b_cref == a_cref
                    || (b_size as usize) < a_size
                    || a_sig & !b_sig != 0
                    || self.clause_is_deleted(b_cref)
                {
                    continue;
                }
                budget -= b_size as isize;
                // count literals of B that A contains, and the (at most
                // one tolerated) literal whose negation A contains
                let mut hits = 0usize;
                let mut neg_hits = 0usize;
                let mut neg_lit = Lit(0);
                for k in 0..b_size as usize {
                    let bl = self.clause_lit(b_cref, k);
                    if marked[bl.code()] == stamp {
                        hits += 1;
                    } else if marked[(!bl).code()] == stamp {
                        neg_hits += 1;
                        neg_lit = bl;
                        if neg_hits > 1 {
                            break;
                        }
                    }
                }
                if hits == a_size && !self.is_locked(b_cref) {
                    // A ⊆ B: B is redundant. If B is irredundant, its
                    // constraint must survive in A forever.
                    if !self.clause_is_learnt(b_cref) {
                        self.make_irredundant(a_cref);
                    }
                    self.remove_clause(b_cref);
                    self.stats.subsumed += 1;
                } else if hits == a_size - 1 && neg_hits == 1 && !self.is_locked(b_cref) {
                    // self-subsuming resolution: resolving A and B on
                    // `neg_lit` yields B \ {neg_lit}, which subsumes B
                    self.strengthen_clause(b_cref, neg_lit);
                    if !self.ok {
                        break;
                    }
                }
            }
            occ[min_var] = cand;
        }
        false
    }

    /// Replaces `cref` by the same clause with `drop` removed (the
    /// strengthened clause is entailed by the formula, so it survives
    /// any later deletion of the clause that justified the resolution).
    fn strengthen_clause(&mut self, cref: u32, drop: Lit) {
        let size = self.clause_size(cref);
        let learnt = self.clause_is_learnt(cref);
        let old_lbd = (self.arena[cref as usize] >> LBD_SHIFT) & LBD_MAX;
        let kept: Vec<Lit> = (0..size)
            .map(|i| self.clause_lit(cref, i))
            .filter(|&l| l != drop)
            .collect();
        debug_assert_eq!(kept.len(), size - 1);
        self.remove_clause(cref);
        self.stats.strengthened += 1;
        if kept.len() == 1 {
            match self.value_lit(kept[0]) {
                LBool::False => self.ok = false,
                LBool::True => {}
                LBool::Undef => {
                    self.unchecked_enqueue(kept[0], None);
                    if self.propagate().is_some() {
                        self.ok = false;
                    }
                }
            }
        } else {
            let lbd = if learnt {
                old_lbd.min(kept.len() as u32 - 1).max(1)
            } else {
                0
            };
            self.attach_clause(&kept, learnt, lbd);
        }
    }

    /// Applies the next step of the aspiration-rephasing schedule at a
    /// restart boundary. `Best` restores the deepest-trail snapshot (a
    /// no-op while no snapshot exists), `Inverted` installs its
    /// complement, and `Original` resets to the default (all-false)
    /// phases, so successive restarts descend into the best basin, its
    /// mirror image, and virgin territory in turn.
    fn aspiration_rephase(&mut self) {
        let kind = REPHASE_SCHEDULE[(self.rephase_index % REPHASE_SCHEDULE.len() as u64) as usize];
        match kind {
            RephaseKind::Best => {
                if self.best_trail == 0 {
                    return; // nothing recorded yet: keep current phases
                }
                self.polarity.copy_from_slice(&self.best_phase);
                self.stats.rephase_best += 1;
            }
            RephaseKind::Inverted => {
                if self.best_trail > 0 {
                    for (p, &b) in self.polarity.iter_mut().zip(&self.best_phase) {
                        *p = !b;
                    }
                } else {
                    for p in &mut self.polarity {
                        *p = !*p;
                    }
                }
                self.stats.rephase_inverted += 1;
            }
            RephaseKind::Original => {
                for p in &mut self.polarity {
                    *p = false;
                }
                self.stats.rephase_original += 1;
            }
        }
        self.rephase_index += 1;
        self.stats.rephases += 1;
    }

    /// Solves the current formula with no assumptions.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_with(&[])
    }

    /// Solves under `assumptions` (literals forced true for this call only).
    ///
    /// After the call the solver is back at decision level 0 and can be
    /// reused; learnt clauses are kept.
    pub fn solve_with(&mut self, assumptions: &[Lit]) -> SolveResult {
        if !self.ok {
            return SolveResult::Unsat;
        }
        for l in assumptions {
            assert!(
                l.var().index() < self.num_vars(),
                "assumption on unallocated variable"
            );
        }
        self.max_learnts = (self.num_originals as f64 / 3.0).max(100.0);
        let budget_start = self.stats.conflicts;
        // the best-phase snapshot is per call: polarity carries the
        // previous call's final phases in, and restarts inside this call
        // rephase toward this call's own deepest trail
        self.best_trail = 0;
        let mut restarts = 0u64;
        let result = loop {
            let limit = RESTART_FIRST * luby(restarts);
            match self.search(limit, assumptions, budget_start) {
                SearchOutcome::Sat => break SolveResult::Sat,
                SearchOutcome::Unsat => break SolveResult::Unsat,
                SearchOutcome::Restart => {
                    restarts += 1;
                    self.stats.restarts += 1;
                    self.max_learnts *= 1.05;
                    self.aspiration_rephase();
                    // a restart ends the fast EMA's epoch: re-anchor it
                    // to the long-run average so the next window
                    // measures only fresh conflicts
                    self.ema_lbd_fast = self.ema_lbd_slow;
                    if self.inprocessing && self.stats.conflicts >= self.next_inprocess {
                        self.next_inprocess = self.stats.conflicts + self.inprocess_interval;
                        self.inprocess_interval =
                            (self.inprocess_interval * 2).min(INPROCESS_INTERVAL * 64);
                        let expired = self.inprocess();
                        if !self.ok {
                            break SolveResult::Unsat;
                        }
                        if expired {
                            break SolveResult::Unknown;
                        }
                    }
                }
                SearchOutcome::BudgetExhausted => break SolveResult::Unknown,
            }
        };
        if result == SolveResult::Sat {
            self.model = self.assigns.iter().map(|&a| a == LBool::True).collect();
        }
        self.cancel_until(0);
        result
    }

    fn search(
        &mut self,
        conflict_limit: u64,
        assumptions: &[Lit],
        budget_start: u64,
    ) -> SearchOutcome {
        let mut conflicts_here = 0u64;
        loop {
            if let Some(confl) = self.propagate() {
                // best-phase snapshot at the conflict boundary, before
                // the trail unwinds: one full copy per depth-record
                // conflict (snapshotting at every quiescence instead
                // would cost a copy per decision — quadratic on the
                // first descent of every assumption-scoped call)
                if self.trail.len() > self.best_trail {
                    for &l in &self.trail {
                        self.best_phase[l.var().index()] = !l.is_neg();
                    }
                    self.best_trail = self.trail.len();
                }
                self.stats.conflicts += 1;
                conflicts_here += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    return SearchOutcome::Unsat;
                }
                // conflict below/at the assumption prefix ⇒ UNSAT under assumptions
                if self.decision_level() <= assumptions.len() {
                    // analyze to be sure the conflict does not depend on
                    // assumption-free levels; a simple sound answer:
                    let (learnt, bt, lbd) = self.analyze(confl);
                    if bt < assumptions.len() {
                        // learnt clause asserts at a level inside the
                        // assumption prefix: record it and retry there
                        self.cancel_until(bt);
                        self.record_learnt(learnt, lbd);
                        if self.decision_level() == 0 && self.propagate().is_some() {
                            self.ok = false;
                            return SearchOutcome::Unsat;
                        }
                        continue;
                    }
                    self.cancel_until(bt);
                    self.record_learnt(learnt, lbd);
                    continue;
                }
                let depth = self.trail.len();
                let (learnt, bt, lbd) = self.analyze(confl);
                // EMA restart control: every conflict feeds the
                // fast/slow LBD averages and the trail-depth average;
                // a run of bad (high-LBD) conflicts forces a restart
                // unless an unusually deep trail blocks it.
                let mut force_restart = false;
                if self.restart_mode == RestartMode::Ema {
                    let (lbd_f, depth_f) = (lbd as f64, depth as f64);
                    self.ema_samples += 1;
                    let inv_n = 1.0 / self.ema_samples as f64;
                    self.ema_lbd_fast += EMA_FAST_ALPHA.max(inv_n) * (lbd_f - self.ema_lbd_fast);
                    self.ema_lbd_slow += EMA_SLOW_ALPHA.max(inv_n) * (lbd_f - self.ema_lbd_slow);
                    self.ema_trail += EMA_TRAIL_ALPHA.max(inv_n) * (depth_f - self.ema_trail);
                    if conflicts_here >= EMA_MIN_CONFLICTS
                        && self.ema_lbd_fast > self.ema_lbd_slow * EMA_FORCE_RATIO
                    {
                        if self.stats.conflicts > EMA_BLOCK_WARMUP
                            && depth_f > self.ema_trail * EMA_BLOCK_RATIO
                        {
                            self.stats.ema_blocked += 1;
                            // swallow the pending restart: re-anchor the
                            // fast average so the epoch starts over
                            self.ema_lbd_fast = self.ema_lbd_slow;
                        } else {
                            self.stats.ema_forced += 1;
                            force_restart = true;
                        }
                    }
                }
                // chronological backtracking: when the assertion level
                // is very far below, a full backjump discards a large,
                // mostly still-consistent trail segment — step back one
                // level instead and let the learnt clause propagate
                // there. Sound because `unchecked_enqueue` stamps the
                // enqueue-time decision level, keeping the trail
                // level-monotone.
                let dl = self.decision_level();
                let bt = if learnt.len() > 1
                    && dl > assumptions.len() + 1
                    && dl - bt > CHRONO_BACKTRACK_GAP
                {
                    self.stats.chrono_backjumps += 1;
                    dl - 1
                } else {
                    bt
                };
                self.cancel_until(bt);
                self.record_learnt(learnt, lbd);
                self.var_inc *= VAR_DECAY;
                self.cla_inc *= CLA_DECAY;
                if let Some(b) = self.conflict_budget {
                    if self.stats.conflicts - budget_start >= b {
                        self.cancel_until(0);
                        return SearchOutcome::BudgetExhausted;
                    }
                }
                // Cooperative deadline: polled every few conflicts so a
                // wall-clock budget interrupts a stuck solve mid-flight
                // instead of waiting for the pass boundary. Expiry rides
                // the budget-exhaustion path (`SolveResult::Unknown`).
                if !self.deadline.is_none()
                    && conflicts_here.is_multiple_of(DEADLINE_CHECK_INTERVAL)
                {
                    self.stats.deadline_checks += 1;
                    if self.deadline.expired() {
                        self.cancel_until(0);
                        return SearchOutcome::BudgetExhausted;
                    }
                }
                let restart_now = match self.restart_mode {
                    RestartMode::Luby => conflicts_here >= conflict_limit,
                    RestartMode::Ema => force_restart,
                };
                if restart_now {
                    self.cancel_until(0);
                    return SearchOutcome::Restart;
                }
                if self.num_learnts as f64 >= self.max_learnts {
                    self.reduce_db();
                }
            } else {
                // establish assumptions in order
                if self.decision_level() < assumptions.len() {
                    let p = assumptions[self.decision_level()];
                    match self.value_lit(p) {
                        LBool::True => {
                            // already implied: open a dummy level
                            self.trail_lim.push(self.trail.len());
                        }
                        LBool::False => {
                            return SearchOutcome::Unsat;
                        }
                        LBool::Undef => {
                            self.trail_lim.push(self.trail.len());
                            self.unchecked_enqueue(p, None);
                        }
                    }
                    continue;
                }
                match self.pick_branch_var() {
                    None => return SearchOutcome::Sat,
                    Some(v) => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        let phase = self.polarity[v.index()];
                        self.unchecked_enqueue(Lit::new(v, phase), None);
                    }
                }
            }
        }
    }

    fn record_learnt(&mut self, learnt: Vec<Lit>, lbd: u32) {
        // one pass per conflict, hoisted out of the per-bump branches
        self.apply_pending_rescales();
        if learnt.len() == 1 {
            self.cancel_until(0);
            if self.value_lit(learnt[0]) == LBool::Undef {
                self.unchecked_enqueue(learnt[0], None);
            } else if self.value_lit(learnt[0]) == LBool::False {
                self.ok = false;
            }
        } else {
            let first = learnt[0];
            let cref = self.attach_clause(&learnt, true, lbd);
            self.cla_bump(cref);
            self.unchecked_enqueue(first, Some(cref));
        }
    }

    /// The value of `l` in the last satisfying model.
    ///
    /// Returns `None` before any successful `solve` or for variables
    /// allocated afterwards.
    pub fn model_value(&self, l: Lit) -> Option<bool> {
        self.model
            .get(l.var().index())
            .map(|&b| if l.is_neg() { !b } else { b })
    }

    /// Whether the clause set is already known unsatisfiable.
    pub fn is_ok(&self) -> bool {
        self.ok
    }

    /// Value of a variable fixed at decision level 0 (by propagation),
    /// independent of any model.
    pub fn fixed_value(&self, v: Var) -> Option<bool> {
        if self.level[v.index()] == 0 {
            match self.value_var(v) {
                LBool::True => Some(true),
                LBool::False => Some(false),
                LBool::Undef => None,
            }
        } else {
            None
        }
    }
}

enum SearchOutcome {
    Sat,
    Unsat,
    Restart,
    BudgetExhausted,
}

/// The Luby restart sequence (1,1,2,1,1,2,4,...).
fn luby(mut i: u64) -> u64 {
    // find the finite subsequence containing index i
    let mut size = 1u64;
    let mut seq = 0u32;
    while size < i + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    while size - 1 != i {
        size = (size - 1) / 2;
        seq -= 1;
        i %= size;
    }
    1u64 << seq
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(i: i32, s: &mut Solver) -> Lit {
        while s.num_vars() <= i.unsigned_abs() as usize {
            s.new_var();
        }
        let v = Var(i.unsigned_abs() - 1);
        if i < 0 {
            Lit::neg(v)
        } else {
            Lit::pos(v)
        }
    }

    fn cnf(s: &mut Solver, clauses: &[&[i32]]) {
        for c in clauses {
            let ls: Vec<Lit> = c.iter().map(|&i| lit(i, s)).collect();
            s.add_clause(ls);
        }
    }

    fn pigeonhole(s: &mut Solver, n: usize, m: usize) {
        let var = |i: usize, j: usize| (i * m + j + 1) as i32;
        for i in 0..n {
            let c: Vec<i32> = (0..m).map(|j| var(i, j)).collect();
            cnf(s, &[&c]);
        }
        for j in 0..m {
            for i1 in 0..n {
                for i2 in (i1 + 1)..n {
                    cnf(s, &[&[-var(i1, j), -var(i2, j)]]);
                }
            }
        }
    }

    #[test]
    fn luby_sequence() {
        let expect = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        for (i, &e) in expect.iter().enumerate() {
            assert_eq!(luby(i as u64), e, "luby({i})");
        }
    }

    #[test]
    fn header_packs_and_unpacks() {
        let h = pack_header(17, true, TIER_TIER2, 5);
        assert_eq!(h & SIZE_MASK, 17);
        assert_eq!((h >> LBD_SHIFT) & LBD_MAX, 5);
        assert_eq!((h >> TIER_SHIFT) & TIER_MASK, TIER_TIER2);
        assert_ne!(h & LEARNT_BIT, 0);
        assert_eq!(h & DELETED_BIT, 0);
        // LBD saturates instead of overflowing into the tier bits
        let h = pack_header(3, true, TIER_LOCAL, 1_000);
        assert_eq!((h >> LBD_SHIFT) & LBD_MAX, LBD_MAX);
        assert_eq!((h >> TIER_SHIFT) & TIER_MASK, TIER_LOCAL);
    }

    #[test]
    fn trivial_sat() {
        let mut s = Solver::new();
        cnf(&mut s, &[&[1, 2], &[-1, 2]]);
        let l2 = lit(2, &mut s);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.model_value(l2), Some(true));
    }

    #[test]
    fn trivial_unsat() {
        let mut s = Solver::new();
        cnf(&mut s, &[&[1], &[-1]]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn unit_chain_propagates() {
        let mut s = Solver::new();
        cnf(&mut s, &[&[1], &[-1, 2], &[-2, 3], &[-3, 4]]);
        let ls: Vec<Lit> = (1..=4).map(|i| lit(i, &mut s)).collect();
        assert_eq!(s.solve(), SolveResult::Sat);
        for l in ls {
            assert_eq!(s.model_value(l), Some(true));
        }
    }

    #[test]
    fn pigeonhole_3_into_2_unsat() {
        let mut s = Solver::new();
        pigeonhole(&mut s, 3, 2);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn pigeonhole_5_into_4_unsat() {
        let mut s = Solver::new();
        pigeonhole(&mut s, 5, 4);
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert!(s.stats().conflicts > 0);
    }

    #[test]
    fn xor_chain_sat_with_parity() {
        // x1 ^ x2 = 1, x2 ^ x3 = 1, x1 ^ x3 = 0 : satisfiable
        let mut s = Solver::new();
        cnf(
            &mut s,
            &[&[1, 2], &[-1, -2], &[2, 3], &[-2, -3], &[1, -3], &[-1, 3]],
        );
        let (l1, l2, l3) = (lit(1, &mut s), lit(2, &mut s), lit(3, &mut s));
        assert_eq!(s.solve(), SolveResult::Sat);
        let x1 = s.model_value(l1).unwrap();
        let x2 = s.model_value(l2).unwrap();
        let x3 = s.model_value(l3).unwrap();
        assert!(x1 ^ x2);
        assert!(x2 ^ x3);
        assert!(!(x1 ^ x3));
    }

    #[test]
    fn assumptions_flip_outcome() {
        let mut s = Solver::new();
        cnf(&mut s, &[&[1, 2]]);
        let a = lit(-1, &mut s);
        let b = lit(-2, &mut s);
        assert_eq!(s.solve_with(&[a, b]), SolveResult::Unsat);
        let l2 = lit(2, &mut s);
        assert_eq!(s.solve_with(&[a]), SolveResult::Sat);
        assert_eq!(s.model_value(l2), Some(true));
        // solver still reusable without assumptions
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn incremental_add_after_solve() {
        let mut s = Solver::new();
        cnf(&mut s, &[&[1, 2]]);
        assert_eq!(s.solve(), SolveResult::Sat);
        cnf(&mut s, &[&[-1], &[-2]]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn budget_returns_unknown() {
        // php(7,6) is hard enough to exceed a 5-conflict budget
        let mut s = Solver::new();
        pigeonhole(&mut s, 7, 6);
        s.set_conflict_budget(Some(5));
        assert_eq!(s.solve(), SolveResult::Unknown);
        s.set_conflict_budget(None);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn restart_heavy_search_rephases_from_best_phase() {
        // php(7,6): unsatisfiable and hard enough that the EMA
        // controller forces several restarts, so aspiration rephasing
        // must both fire and leave the verdict untouched
        let mut s = Solver::new();
        pigeonhole(&mut s, 7, 6);
        assert_eq!(s.solve(), SolveResult::Unsat);
        let st = s.stats();
        assert!(st.restarts > 0, "instance must restart");
        assert!(st.rephases > 0, "rephasing must fire");
        assert!(st.rephases <= st.restarts);
        // every applied rephase lands in exactly one histogram bucket
        assert_eq!(
            st.rephases,
            st.rephase_best + st.rephase_inverted + st.rephase_original
        );
    }

    #[test]
    fn learnt_tiers_and_reduction_preserve_verdicts() {
        // php(7,6) generates thousands of conflicts: the learnt database
        // must pass its limit, reduce (and usually GC) at least once, and
        // still prove UNSAT
        let mut s = Solver::new();
        pigeonhole(&mut s, 7, 6);
        assert_eq!(s.solve(), SolveResult::Unsat);
        let st = s.stats();
        assert!(st.conflicts > 500, "expected a hard instance: {st:?}");
        assert!(st.reduces > 0, "learnt DB must reduce: {st:?}");
        assert!(st.lbd_core > 0, "glue clauses must be found: {st:?}");
    }

    #[test]
    fn solver_stats_absorb_sums_counters() {
        let mut a = SolverStats {
            conflicts: 1,
            decisions: 2,
            propagations: 3,
            restarts: 4,
            learnt_clauses: 5,
            rephases: 6,
            rephase_best: 3,
            rephase_inverted: 2,
            rephase_original: 1,
            lbd_core: 7,
            reduces: 8,
            arena_gcs: 9,
            deadline_checks: 10,
            ema_forced: 11,
            ema_blocked: 12,
            vivified_clauses: 13,
            vivified_lits: 14,
            subsumed: 15,
            strengthened: 16,
            chrono_backjumps: 17,
            promoted: 18,
        };
        a.absorb(&a.clone());
        assert_eq!(a.conflicts, 2);
        assert_eq!(a.propagations, 6);
        assert_eq!(a.rephases, 12);
        assert_eq!(a.rephase_best, 6);
        assert_eq!(a.rephase_inverted, 4);
        assert_eq!(a.rephase_original, 2);
        assert_eq!(a.lbd_core, 14);
        assert_eq!(a.reduces, 16);
        assert_eq!(a.arena_gcs, 18);
        assert_eq!(a.deadline_checks, 20);
        assert_eq!(a.ema_forced, 22);
        assert_eq!(a.ema_blocked, 24);
        assert_eq!(a.vivified_clauses, 26);
        assert_eq!(a.vivified_lits, 28);
        assert_eq!(a.subsumed, 30);
        assert_eq!(a.strengthened, 32);
        assert_eq!(a.chrono_backjumps, 34);
        assert_eq!(a.promoted, 36);
        // `since` is the exact inverse of one absorb
        let half = SolverStats {
            conflicts: 1,
            decisions: 2,
            propagations: 3,
            restarts: 4,
            learnt_clauses: 5,
            rephases: 6,
            rephase_best: 3,
            rephase_inverted: 2,
            rephase_original: 1,
            lbd_core: 7,
            reduces: 8,
            arena_gcs: 9,
            deadline_checks: 10,
            ema_forced: 11,
            ema_blocked: 12,
            vivified_clauses: 13,
            vivified_lits: 14,
            subsumed: 15,
            strengthened: 16,
            chrono_backjumps: 17,
            promoted: 18,
        };
        assert_eq!(a.since(&half), half);
    }

    #[test]
    fn subsumption_deletes_redundant_supersets() {
        // (1 ∨ 2) subsumes (1 ∨ 2 ∨ 3) and its duplicate; the sweep
        // must delete both and keep the verdict identical.
        let mut s = Solver::new();
        cnf(&mut s, &[&[1, 2], &[1, 2, 3], &[1, 2, 3], &[-1, -2, -3]]);
        assert!(!s.inprocess(), "no deadline set: pass cannot expire");
        let st = s.stats();
        assert_eq!(st.subsumed, 2, "{st:?}");
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn self_subsuming_resolution_strengthens() {
        // (1 ∨ 2 ∨ 3) against (¬1 ∨ 2 ∨ 3) resolves to (2 ∨ 3): one
        // literal removed, model set unchanged.
        let mut s = Solver::new();
        cnf(&mut s, &[&[1, 2, 3], &[-1, 2, 3]]);
        assert!(!s.inprocess());
        let st = s.stats();
        assert!(st.strengthened >= 1, "{st:?}");
        let (l2, l3) = (lit(-2, &mut s), lit(-3, &mut s));
        // under ¬2 ∧ ¬3 the strengthened formula must still be UNSAT
        assert_eq!(s.solve_with(&[l2, l3]), SolveResult::Unsat);
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn inprocessing_fires_on_hard_instance_and_preserves_unsat() {
        // php(7,6) crosses the inprocessing threshold several times:
        // vivification must shrink clauses, analysis must promote
        // improving learnts, and the proof must still close.
        let mut s = Solver::new();
        pigeonhole(&mut s, 7, 6);
        assert_eq!(s.solve(), SolveResult::Unsat);
        let st = s.stats();
        assert!(st.conflicts > INPROCESS_INTERVAL, "{st:?}");
        assert!(st.vivified_clauses > 0, "vivification never fired: {st:?}");
        assert!(st.promoted > 0, "no learnt was ever promoted: {st:?}");
        assert!(
            st.ema_forced > 0,
            "EMA restarts never forced on a restart-heavy instance: {st:?}"
        );
    }

    #[test]
    fn luby_mode_disables_ema_and_agrees() {
        let mut ema = Solver::new();
        pigeonhole(&mut ema, 6, 5);
        let mut luby = Solver::new();
        pigeonhole(&mut luby, 6, 5);
        luby.set_restart_mode(RestartMode::Luby);
        luby.set_inprocessing(false);
        assert_eq!(ema.solve(), SolveResult::Unsat);
        assert_eq!(luby.solve(), SolveResult::Unsat);
        let ls = luby.stats();
        assert_eq!(ls.ema_forced + ls.ema_blocked, 0, "{ls:?}");
        assert_eq!(
            ls.vivified_clauses + ls.subsumed + ls.strengthened,
            0,
            "{ls:?}"
        );
    }

    #[test]
    fn deadline_interrupts_inprocessing_pass() {
        // An already-expired deadline must stop an inprocessing pass at
        // its first poll, before any clause is touched; clearing the
        // deadline lets the same pass complete and the solve succeed.
        let mut s = Solver::new();
        cnf(&mut s, &[&[1, 2], &[1, 2, 3], &[-1, -2, -3]]);
        s.set_deadline(Deadline::after_checks(1));
        assert!(s.inprocess(), "pass must report deadline expiry");
        assert!(s.stats().deadline_checks > 0);
        assert_eq!(s.stats().subsumed, 0, "no work after expiry");
        s.set_deadline(Deadline::none());
        assert!(!s.inprocess());
        assert!(s.stats().subsumed > 0);
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn deadline_interrupts_search_mid_flight() {
        // php(7,6) costs thousands of conflicts; a deterministic
        // one-check deadline must interrupt the search long before the
        // proof completes, surfacing exactly like budget exhaustion.
        let mut s = Solver::new();
        pigeonhole(&mut s, 7, 6);
        s.set_deadline(Deadline::after_checks(1));
        assert_eq!(s.solve(), SolveResult::Unknown);
        let st = s.stats();
        assert!(st.deadline_checks > 0, "deadline was never polled: {st:?}");
        assert!(st.conflicts < 500, "interruption latency too high: {st:?}");
        // clearing the deadline restores the full search
        s.set_deadline(Deadline::none());
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn elapsed_wall_deadline_interrupts_search() {
        let mut s = Solver::new();
        pigeonhole(&mut s, 7, 6);
        s.set_deadline(Deadline::after(std::time::Duration::ZERO));
        assert_eq!(s.solve(), SolveResult::Unknown);
        assert!(s.stats().deadline_checks > 0);
    }

    #[test]
    fn duplicate_and_tautology_handling() {
        let mut s = Solver::new();
        let a = lit(1, &mut s);
        // tautology is dropped silently
        assert!(s.add_clause([a, !a]));
        // duplicates collapse
        assert!(s.add_clause([a, a, a]));
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.model_value(a), Some(true));
    }

    #[test]
    fn fixed_value_at_level0() {
        let mut s = Solver::new();
        cnf(&mut s, &[&[1], &[-1, 2]]);
        // adding the clauses already propagates at level 0
        assert_eq!(s.fixed_value(Var(0)), Some(true));
        assert_eq!(s.fixed_value(Var(1)), Some(true));
    }

    /// Brute-force model count comparison on random small CNFs.
    #[test]
    fn agrees_with_brute_force() {
        let mut seed = 0x243F6A8885A308D3u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for round in 0..60 {
            let nvars = 4 + (next() % 6) as usize; // 4..=9
            let nclauses = 6 + (next() % 24) as usize;
            let mut clauses: Vec<Vec<i32>> = Vec::new();
            for _ in 0..nclauses {
                let len = 1 + (next() % 3) as usize;
                let mut c = Vec::new();
                for _ in 0..len {
                    let v = (next() % nvars as u64) as i32 + 1;
                    let sign = if next() % 2 == 0 { 1 } else { -1 };
                    c.push(v * sign);
                }
                clauses.push(c);
            }
            // brute force
            let mut any = false;
            'assign: for m in 0..(1u32 << nvars) {
                for c in &clauses {
                    let sat = c.iter().any(|&l| {
                        let v = l.unsigned_abs() as usize - 1;
                        let val = (m >> v) & 1 == 1;
                        if l > 0 {
                            val
                        } else {
                            !val
                        }
                    });
                    if !sat {
                        continue 'assign;
                    }
                }
                any = true;
                break;
            }
            let mut s = Solver::new();
            let refs: Vec<&[i32]> = clauses.iter().map(|c| c.as_slice()).collect();
            cnf(&mut s, &refs);
            let expected = if any {
                SolveResult::Sat
            } else {
                SolveResult::Unsat
            };
            assert_eq!(s.solve(), expected, "round {round}: {clauses:?}");
            if expected == SolveResult::Sat {
                // verify the model actually satisfies the clauses
                for c in &clauses {
                    let sat = c.iter().any(|&l| {
                        let v = Var(l.unsigned_abs() - 1);
                        let want = l > 0;
                        s.model_value(Lit::pos(v)) == Some(want)
                    });
                    assert!(sat, "model violates {c:?}");
                }
            }
        }
    }
}
