//! The CDCL search engine.
//!
//! # Data layout
//!
//! Clauses live in a single flat `u32` arena ([`Solver::arena`]): two
//! header words (size/learnt/tier/LBD packed into one, the activity as
//! `f32` bits in the other) followed by the literal codes, so unit
//! propagation walks contiguous memory instead of chasing one heap
//! allocation per clause. A clause reference is the word offset of its
//! header. Deleting a clause only flips a header bit and counts the
//! freed words; a compacting GC ([`Solver::garbage_collect`]) rebuilds
//! the arena once a quarter of it is garbage, forwarding watcher and
//! reason references through the old activity slots.
//!
//! # Learnt-clause management
//!
//! Learnt clauses are tiered by their literal-block distance (LBD,
//! Audemard & Simon's glucose metric) computed at learn time: **core**
//! (LBD ≤ 2 or binary — kept forever), **tier2** (LBD ≤ 6), and
//! **local**. When the live non-core learnt count passes an adaptive
//! limit, [`Solver::reduce_db`] deletes the worst half of the non-core
//! tiers (local before tier2, high LBD before low, low activity before
//! high), never touching reason ("locked") clauses.
//!
//! # Rephasing
//!
//! On top of best-phase saving (the deepest-trail snapshot), restarts
//! walk a CaDiCaL-style aspiration schedule that alternates the best
//! phases with their inversion and the original defaults, so search
//! periodically explores the complement of its best basin instead of
//! re-descending it forever.

use crate::deadline::Deadline;
use crate::heap::ActivityHeap;
use crate::{Lit, Var};

/// Result of a [`Solver::solve`] call.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SolveResult {
    /// A satisfying assignment was found (see [`Solver::model_value`]).
    Sat,
    /// The formula (under the given assumptions) is unsatisfiable.
    Unsat,
    /// The conflict budget was exhausted before an answer was found.
    Unknown,
}

/// Cumulative search statistics.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Number of conflicts encountered.
    pub conflicts: u64,
    /// Number of branching decisions.
    pub decisions: u64,
    /// Number of literals propagated.
    pub propagations: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Number of learnt clauses currently in the database.
    pub learnt_clauses: u64,
    /// Number of rephasings applied at restarts (all kinds).
    pub rephases: u64,
    /// Rephasings that restored the best-phase snapshot.
    pub rephase_best: u64,
    /// Rephasings that inverted the best-phase snapshot.
    pub rephase_inverted: u64,
    /// Rephasings that restored the original default phases.
    pub rephase_original: u64,
    /// Learnt clauses that entered the core tier (LBD ≤ 2 or binary).
    pub lbd_core: u64,
    /// Learnt-database reductions performed.
    pub reduces: u64,
    /// Compacting arena garbage collections performed.
    pub arena_gcs: u64,
    /// Cooperative-deadline polls performed inside `search` (one per
    /// [`DEADLINE_CHECK_INTERVAL`] conflicts while a deadline is set);
    /// `checks × interval` bounds how many conflicts a stuck solve ran
    /// past its deadline — the interruption latency.
    pub deadline_checks: u64,
}

/// Adds the other stats' monotone counters onto this one (used to carry
/// telemetry across solver resets; `learnt_clauses` is a gauge and is
/// summed like the rest — callers accumulating across resets want the
/// total clauses ever learnt and retained at each reset point).
impl SolverStats {
    /// Component-wise sum.
    pub fn absorb(&mut self, o: &SolverStats) {
        self.conflicts += o.conflicts;
        self.decisions += o.decisions;
        self.propagations += o.propagations;
        self.restarts += o.restarts;
        self.learnt_clauses += o.learnt_clauses;
        self.rephases += o.rephases;
        self.rephase_best += o.rephase_best;
        self.rephase_inverted += o.rephase_inverted;
        self.rephase_original += o.rephase_original;
        self.lbd_core += o.lbd_core;
        self.reduces += o.reduces;
        self.arena_gcs += o.arena_gcs;
        self.deadline_checks += o.deadline_checks;
    }

    /// Work done since `base` was snapshotted: the per-call delta the
    /// telemetry histograms feed on. Saturating on every field so a
    /// solver reset between the snapshots (which can shrink the
    /// `learnt_clauses` gauge) never underflows.
    pub fn since(&self, base: &SolverStats) -> SolverStats {
        SolverStats {
            conflicts: self.conflicts.saturating_sub(base.conflicts),
            decisions: self.decisions.saturating_sub(base.decisions),
            propagations: self.propagations.saturating_sub(base.propagations),
            restarts: self.restarts.saturating_sub(base.restarts),
            learnt_clauses: self.learnt_clauses.saturating_sub(base.learnt_clauses),
            rephases: self.rephases.saturating_sub(base.rephases),
            rephase_best: self.rephase_best.saturating_sub(base.rephase_best),
            rephase_inverted: self.rephase_inverted.saturating_sub(base.rephase_inverted),
            rephase_original: self.rephase_original.saturating_sub(base.rephase_original),
            lbd_core: self.lbd_core.saturating_sub(base.lbd_core),
            reduces: self.reduces.saturating_sub(base.reduces),
            arena_gcs: self.arena_gcs.saturating_sub(base.arena_gcs),
            deadline_checks: self.deadline_checks.saturating_sub(base.deadline_checks),
        }
    }
}

#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum LBool {
    True,
    False,
    Undef,
}

#[derive(Copy, Clone, Debug)]
struct Watcher {
    cref: u32,
    /// A literal of the clause other than the watched one; when it is
    /// already true the clause is satisfied and propagation never
    /// touches the arena (MiniSAT 2.2's "blocker").
    blocker: Lit,
}

// ---------------------------------------------------------------------
// Clause arena: header word 0 packs size | LBD | tier | learnt | deleted,
// header word 1 holds the activity as f32 bits (or the forwarding
// reference during GC), then `size` literal codes follow contiguously.
// ---------------------------------------------------------------------

/// Words before the literals of a clause.
const HEADER_WORDS: usize = 2;
/// Bits 0..20 of the header: clause size (≤ ~1M literals).
const SIZE_BITS: u32 = 20;
const SIZE_MASK: u32 = (1 << SIZE_BITS) - 1;
/// Bits 20..28: LBD, saturated at 255.
const LBD_SHIFT: u32 = 20;
const LBD_MAX: u32 = 0xFF;
/// Bits 28..30: tier.
const TIER_SHIFT: u32 = 28;
const TIER_MASK: u32 = 0b11;
/// Bit 30: learnt flag.
const LEARNT_BIT: u32 = 1 << 30;
/// Bit 31: deleted (awaiting GC).
const DELETED_BIT: u32 = 1 << 31;

/// Learnt tiers, stored in the header. Originals carry `TIER_CORE`.
const TIER_CORE: u32 = 0;
const TIER_TIER2: u32 = 1;
const TIER_LOCAL: u32 = 2;

/// LBD at or below which a learnt clause is core (kept forever).
const CORE_LBD: u32 = 2;
/// LBD at or below which a learnt clause is tier2 (reduced reluctantly).
const TIER2_LBD: u32 = 6;

fn pack_header(size: usize, learnt: bool, tier: u32, lbd: u32) -> u32 {
    debug_assert!(size as u32 <= SIZE_MASK);
    let mut h = size as u32;
    h |= lbd.min(LBD_MAX) << LBD_SHIFT;
    h |= (tier & TIER_MASK) << TIER_SHIFT;
    if learnt {
        h |= LEARNT_BIT;
    }
    h
}

/// A CDCL SAT solver; see the [crate docs](crate) for an example.
///
/// The solver is incremental: clauses may be added between `solve` calls,
/// and [`Solver::solve_with`] checks satisfiability under assumptions
/// without permanently asserting them.
#[derive(Clone, Debug)]
pub struct Solver {
    /// The flat clause store; see the module docs for the layout.
    arena: Vec<u32>,
    /// Words occupied by deleted clauses, pending compaction.
    garbage: usize,
    watches: Vec<Vec<Watcher>>,
    assigns: Vec<LBool>,
    level: Vec<u32>,
    reason: Vec<Option<u32>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    cla_inc: f64,
    /// Deferred VSIDS rescale flags: bumps only set these; the walk over
    /// every activity happens once per conflict at a safe point instead
    /// of inside the bump loop (relative order is scale-invariant, so
    /// deferral never perturbs the heap).
    var_rescale_pending: bool,
    cla_rescale_pending: bool,
    order: ActivityHeap,
    polarity: Vec<bool>,
    /// Best-phase cache: the full assignment at the deepest trail this
    /// `solve_with` call had reached when a conflict struck (snapshotted
    /// at the conflict boundary, before unwinding). Restarts rephase
    /// `polarity` from this snapshot, so search resumes near the most
    /// satisfied assignment seen instead of wherever the last backtrack
    /// happened to leave the phases — the progress-saving refinement of
    /// plain polarity caching (cf. splr's per-var `phase` / batsat's
    /// `phase_saving`). Assumption-scoped queries over a shared formula
    /// benefit most: each call re-walks the same prefix.
    best_phase: Vec<bool>,
    /// Trail depth at which `best_phase` was last improved.
    best_trail: usize,
    /// Position in the aspiration-rephasing schedule (advances once per
    /// applied rephase, across `solve_with` calls).
    rephase_index: u64,
    seen: Vec<bool>,
    /// Level-stamp scratch for LBD computation (indexed by level).
    lbd_seen: Vec<u32>,
    lbd_stamp: u32,
    ok: bool,
    model: Vec<bool>,
    stats: SolverStats,
    conflict_budget: Option<u64>,
    deadline: Deadline,
    /// Live original (problem) clauses in the arena.
    num_originals: usize,
    /// Live non-core learnt clauses (the reducible population).
    num_learnts: usize,
    /// Live core-tier learnt clauses (kept forever, not reducible).
    num_core: usize,
    max_learnts: f64,
}

const VAR_DECAY: f64 = 1.0 / 0.95;
const CLA_DECAY: f64 = 1.0 / 0.999;
const RESTART_FIRST: u64 = 100;
/// Conflicts between cooperative [`Deadline`] polls inside `search`.
/// Small enough that interruption latency is a handful of conflicts,
/// large enough that an `Instant::now()` every interval is noise next to
/// the propagations those conflicts cost.
pub const DEADLINE_CHECK_INTERVAL: u64 = 16;
/// The aspiration-rephasing schedule walked at restarts (CaDiCaL-style:
/// best phases dominate, with periodic excursions to their inversion and
/// the original defaults).
const REPHASE_SCHEDULE: [RephaseKind; 6] = [
    RephaseKind::Best,
    RephaseKind::Inverted,
    RephaseKind::Best,
    RephaseKind::Original,
    RephaseKind::Best,
    RephaseKind::Best,
];

#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum RephaseKind {
    Best,
    Inverted,
    Original,
}

impl Default for Solver {
    fn default() -> Self {
        Solver::new()
    }
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Self {
        Solver {
            arena: Vec::new(),
            garbage: 0,
            watches: Vec::new(),
            assigns: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            cla_inc: 1.0,
            var_rescale_pending: false,
            cla_rescale_pending: false,
            order: ActivityHeap::new(),
            polarity: Vec::new(),
            best_phase: Vec::new(),
            best_trail: 0,
            rephase_index: 0,
            seen: Vec::new(),
            lbd_seen: vec![0],
            lbd_stamp: 0,
            ok: true,
            model: Vec::new(),
            stats: SolverStats::default(),
            conflict_budget: None,
            deadline: Deadline::none(),
            num_originals: 0,
            num_learnts: 0,
            num_core: 0,
            max_learnts: 0.0,
        }
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assigns.len() as u32);
        self.assigns.push(LBool::Undef);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        self.polarity.push(false);
        self.best_phase.push(false);
        self.seen.push(false);
        self.lbd_seen.push(0);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.order.insert(v.0, &self.activity);
        v
    }

    /// Number of variables allocated.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Search statistics so far.
    pub fn stats(&self) -> SolverStats {
        let mut s = self.stats;
        s.learnt_clauses = (self.num_learnts + self.num_core) as u64;
        s
    }

    /// Limits the number of conflicts per `solve` call; `None` removes the
    /// limit. When the budget runs out, `solve` returns
    /// [`SolveResult::Unknown`].
    pub fn set_conflict_budget(&mut self, budget: Option<u64>) {
        self.conflict_budget = budget;
    }

    /// Installs a cooperative [`Deadline`], polled every
    /// [`DEADLINE_CHECK_INTERVAL`] conflicts inside `search` alongside
    /// the conflict budget. Expiry makes `solve` return
    /// [`SolveResult::Unknown`] — the same degradation path as budget
    /// exhaustion. [`Deadline::none`] removes the deadline.
    pub fn set_deadline(&mut self, deadline: Deadline) {
        self.deadline = deadline;
    }

    fn value_var(&self, v: Var) -> LBool {
        self.assigns[v.index()]
    }

    fn value_lit(&self, l: Lit) -> LBool {
        match self.assigns[l.var().index()] {
            LBool::Undef => LBool::Undef,
            LBool::True => {
                if l.is_neg() {
                    LBool::False
                } else {
                    LBool::True
                }
            }
            LBool::False => {
                if l.is_neg() {
                    LBool::True
                } else {
                    LBool::False
                }
            }
        }
    }

    // -- arena accessors ------------------------------------------------

    fn clause_size(&self, cref: u32) -> usize {
        (self.arena[cref as usize] & SIZE_MASK) as usize
    }

    fn clause_lit(&self, cref: u32, i: usize) -> Lit {
        Lit(self.arena[cref as usize + HEADER_WORDS + i])
    }

    fn clause_is_learnt(&self, cref: u32) -> bool {
        self.arena[cref as usize] & LEARNT_BIT != 0
    }

    fn clause_is_deleted(&self, cref: u32) -> bool {
        self.arena[cref as usize] & DELETED_BIT != 0
    }

    fn clause_activity(&self, cref: u32) -> f32 {
        f32::from_bits(self.arena[cref as usize + 1])
    }

    fn set_clause_activity(&mut self, cref: u32, a: f32) {
        self.arena[cref as usize + 1] = a.to_bits();
    }

    /// Allocates a clause in the arena and returns its reference.
    fn alloc_clause(&mut self, lits: &[Lit], learnt: bool, lbd: u32) -> u32 {
        assert!(
            lits.len() as u32 <= SIZE_MASK,
            "clause exceeds the arena size field"
        );
        let tier = if !learnt || lbd <= CORE_LBD || lits.len() == 2 {
            // originals carry the core tag too; the learnt bit keeps
            // them out of every learnt-only path
            TIER_CORE
        } else if lbd <= TIER2_LBD {
            TIER_TIER2
        } else {
            TIER_LOCAL
        };
        let cref = self.arena.len() as u32;
        self.arena.push(pack_header(lits.len(), learnt, tier, lbd));
        self.arena.push(0f32.to_bits());
        for l in lits {
            self.arena.push(l.0);
        }
        if learnt {
            if tier == TIER_CORE {
                self.num_core += 1;
                self.stats.lbd_core += 1;
            } else {
                self.num_learnts += 1;
            }
        } else {
            self.num_originals += 1;
        }
        cref
    }

    /// Adds a clause; returns `false` if the solver became trivially
    /// unsatisfiable (empty clause at level 0).
    ///
    /// Duplicate literals are removed and tautologies are dropped.
    ///
    /// # Panics
    ///
    /// Panics if called while the solver is not at decision level 0
    /// (cannot happen through the public API) or if a literal references an
    /// unallocated variable.
    pub fn add_clause(&mut self, lits: impl IntoIterator<Item = Lit>) -> bool {
        assert_eq!(self.decision_level(), 0, "clauses are added at level 0");
        if !self.ok {
            return false;
        }
        let mut ps: Vec<Lit> = lits.into_iter().collect();
        for l in &ps {
            assert!(l.var().index() < self.num_vars(), "unallocated variable");
        }
        ps.sort();
        ps.dedup();
        // tautology / false-literal elimination at level 0
        let mut out: Vec<Lit> = Vec::with_capacity(ps.len());
        let mut i = 0;
        while i < ps.len() {
            let l = ps[i];
            if i + 1 < ps.len() && ps[i + 1] == !l {
                return true; // tautology: l and !l adjacent after sort
            }
            match self.value_lit(l) {
                LBool::True => return true, // already satisfied
                LBool::False => {}          // drop falsified literal
                LBool::Undef => out.push(l),
            }
            i += 1;
        }
        match out.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.unchecked_enqueue(out[0], None);
                if self.propagate().is_some() {
                    self.ok = false;
                }
                self.ok
            }
            _ => {
                self.attach_clause(&out, false, 0);
                true
            }
        }
    }

    fn attach_clause(&mut self, lits: &[Lit], learnt: bool, lbd: u32) -> u32 {
        debug_assert!(lits.len() >= 2);
        let cref = self.alloc_clause(lits, learnt, lbd);
        self.watches[lits[0].code()].push(Watcher {
            cref,
            blocker: lits[1],
        });
        self.watches[lits[1].code()].push(Watcher {
            cref,
            blocker: lits[0],
        });
        cref
    }

    fn detach_clause(&mut self, cref: u32) {
        let (l0, l1) = (self.clause_lit(cref, 0), self.clause_lit(cref, 1));
        // Position lookup + swap_remove: O(1) removal once found, instead
        // of `retain`'s full compaction of the watch list. Clause-DB
        // reduction detaches half the learnts at once, so this runs hot.
        for code in [l0.code(), l1.code()] {
            let ws = &mut self.watches[code];
            if let Some(pos) = ws.iter().position(|w| w.cref == cref) {
                ws.swap_remove(pos);
            }
        }
    }

    /// Marks a (detached) clause deleted; the words are reclaimed by the
    /// next [`Solver::garbage_collect`].
    fn free_clause(&mut self, cref: u32) {
        debug_assert!(!self.clause_is_deleted(cref));
        let size = self.clause_size(cref);
        self.arena[cref as usize] |= DELETED_BIT;
        self.garbage += HEADER_WORDS + size;
    }

    fn decision_level(&self) -> usize {
        self.trail_lim.len()
    }

    fn unchecked_enqueue(&mut self, l: Lit, from: Option<u32>) {
        debug_assert_eq!(self.value_lit(l), LBool::Undef);
        let v = l.var().index();
        self.assigns[v] = if l.is_neg() {
            LBool::False
        } else {
            LBool::True
        };
        self.level[v] = self.decision_level() as u32;
        self.reason[v] = from;
        self.trail.push(l);
    }

    /// Unit propagation; returns the conflicting clause if any.
    ///
    /// Watch lists are compacted in place with a read/write cursor pair:
    /// watchers that stay (satisfied blocker, updated blocker, unit or
    /// conflict) are moved down at most once and the list is truncated at
    /// the end — no `mem::take`/re-push round trip, and the arena is not
    /// touched at all when the blocking literal is already true.
    fn propagate(&mut self) -> Option<u32> {
        let mut conflict = None;
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let false_lit = !p;
            let fcode = false_lit.code();
            let n = self.watches[fcode].len();
            let mut i = 0usize; // read cursor
            let mut j = 0usize; // write cursor
            'watchers: while i < n {
                let w = self.watches[fcode][i];
                // fast path: blocker already true — clause satisfied,
                // watcher kept, arena untouched
                if self.value_lit(w.blocker) == LBool::True {
                    self.watches[fcode][j] = w;
                    i += 1;
                    j += 1;
                    continue;
                }
                let cref = w.cref;
                let base = cref as usize + HEADER_WORDS;
                // make sure the false literal is at position 1
                if self.arena[base] == false_lit.0 {
                    self.arena.swap(base, base + 1);
                }
                debug_assert_eq!(self.arena[base + 1], false_lit.0);
                let first = Lit(self.arena[base]);
                if first != w.blocker && self.value_lit(first) == LBool::True {
                    self.watches[fcode][j] = Watcher {
                        cref,
                        blocker: first,
                    };
                    i += 1;
                    j += 1;
                    continue;
                }
                // look for a new literal to watch
                let size = (self.arena[cref as usize] & SIZE_MASK) as usize;
                for k in 2..size {
                    let lk = Lit(self.arena[base + k]);
                    if self.value_lit(lk) != LBool::False {
                        self.arena.swap(base + 1, base + k);
                        // `lk` is not false while `false_lit` is, so this
                        // push never targets the list being compacted
                        self.watches[lk.code()].push(Watcher {
                            cref,
                            blocker: first,
                        });
                        i += 1; // watcher moved away: not re-written
                        continue 'watchers;
                    }
                }
                // no new watch: clause is unit or conflicting
                self.watches[fcode][j] = Watcher {
                    cref,
                    blocker: first,
                };
                i += 1;
                j += 1;
                if self.value_lit(first) == LBool::False {
                    conflict = Some(cref);
                    self.qhead = self.trail.len();
                    // keep the unvisited suffix: slide it down
                    while i < n {
                        self.watches[fcode][j] = self.watches[fcode][i];
                        i += 1;
                        j += 1;
                    }
                    break;
                }
                self.unchecked_enqueue(first, Some(cref));
            }
            self.watches[fcode].truncate(j);
            if conflict.is_some() {
                break;
            }
        }
        conflict
    }

    fn var_bump(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > 1e100 {
            // rescaling preserves relative order, so it is deferred to
            // one pass per conflict instead of running inside the
            // bump-per-literal loop of conflict analysis
            self.var_rescale_pending = true;
        }
        self.order.bump(v.0, &self.activity);
    }

    fn cla_bump(&mut self, cref: u32) {
        if !self.clause_is_learnt(cref) {
            return; // original clauses are never reduced: activity unused
        }
        let a = self.clause_activity(cref) + self.cla_inc as f32;
        self.set_clause_activity(cref, a);
        if a > 1e20 {
            self.cla_rescale_pending = true;
        }
    }

    /// Applies any rescale requested by `var_bump`/`cla_bump` since the
    /// last conflict: one pass each, hoisted out of the bump hot paths.
    fn apply_pending_rescales(&mut self) {
        if self.var_rescale_pending {
            self.var_rescale_pending = false;
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        if self.cla_rescale_pending {
            self.cla_rescale_pending = false;
            let mut off = 0usize;
            while off < self.arena.len() {
                let h = self.arena[off];
                let size = (h & SIZE_MASK) as usize;
                if h & LEARNT_BIT != 0 && h & DELETED_BIT == 0 {
                    let a = f32::from_bits(self.arena[off + 1]) * 1e-20;
                    self.arena[off + 1] = a.to_bits();
                }
                off += HEADER_WORDS + size;
            }
            self.cla_inc *= 1e-20;
        }
    }

    fn abstract_level(&self, v: Var) -> u32 {
        1 << (self.level[v.index()] & 31)
    }

    /// Literal-block distance: the number of distinct decision levels
    /// among the clause's literals (glucose's quality metric; smaller is
    /// better, ≤ 2 is "glue").
    fn lbd_of(&mut self, lits: &[Lit]) -> u32 {
        self.lbd_stamp = self.lbd_stamp.wrapping_add(1);
        if self.lbd_stamp == 0 {
            // wrapped: clear the stamps so stale matches are impossible
            self.lbd_seen.iter_mut().for_each(|s| *s = 0);
            self.lbd_stamp = 1;
        }
        let mut lbd = 0u32;
        for l in lits {
            let lvl = self.level[l.var().index()] as usize;
            if lvl >= self.lbd_seen.len() {
                // duplicated assumptions open dummy decision levels, so
                // the level count can exceed the per-var table size
                self.lbd_seen.resize(lvl + 1, 0);
            }
            if self.lbd_seen[lvl] != self.lbd_stamp {
                self.lbd_seen[lvl] = self.lbd_stamp;
                lbd += 1;
            }
        }
        lbd
    }

    /// 1-UIP conflict analysis with deep clause minimization.
    /// Returns (learnt clause with asserting literal first, backtrack
    /// level, LBD of the learnt clause).
    fn analyze(&mut self, mut confl: u32) -> (Vec<Lit>, usize, u32) {
        let mut learnt: Vec<Lit> = vec![Lit(0)]; // slot for asserting literal
        let mut path_count = 0u32;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let mut to_clear: Vec<Var> = Vec::new();

        loop {
            self.cla_bump(confl);
            let start = if p.is_none() { 0 } else { 1 };
            let size = self.clause_size(confl);
            for k in start..size {
                let q = self.clause_lit(confl, k);
                let v = q.var();
                if !self.seen[v.index()] && self.level[v.index()] > 0 {
                    self.var_bump(v);
                    self.seen[v.index()] = true;
                    to_clear.push(v);
                    if self.level[v.index()] as usize >= self.decision_level() {
                        path_count += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // next marked literal on the trail
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let pl = self.trail[index];
            p = Some(pl);
            self.seen[pl.var().index()] = false;
            path_count -= 1;
            if path_count == 0 {
                break;
            }
            confl = self.reason[pl.var().index()].expect("non-decision must have a reason");
        }
        learnt[0] = !p.expect("asserting literal");

        // deep minimization: drop literals implied by the rest
        let abstract_levels = learnt[1..]
            .iter()
            .fold(0u32, |acc, l| acc | self.abstract_level(l.var()));
        let mut keep: Vec<Lit> = vec![learnt[0]];
        for &l in &learnt[1..] {
            if self.reason[l.var().index()].is_none()
                || !self.lit_redundant(l, abstract_levels, &mut to_clear)
            {
                keep.push(l);
            }
        }
        let mut learnt = keep;

        for v in to_clear {
            self.seen[v.index()] = false;
        }

        // LBD at learn time (before unwinding destroys the levels)
        let lbd = self.lbd_of(&learnt);

        // compute backtrack level; move the max-level literal to slot 1
        let bt_level = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var().index()] as usize
        };
        (learnt, bt_level, lbd)
    }

    /// Checks whether `p` is redundant w.r.t. the currently-seen literals
    /// (MiniSAT `litRedundant`, iterative).
    fn lit_redundant(&mut self, p: Lit, abstract_levels: u32, to_clear: &mut Vec<Var>) -> bool {
        let mut stack = vec![p];
        let top = to_clear.len();
        while let Some(q) = stack.pop() {
            let cref = self.reason[q.var().index()].expect("reason checked by caller");
            let size = self.clause_size(cref);
            for k in 1..size {
                let l = self.clause_lit(cref, k);
                let v = l.var();
                if !self.seen[v.index()] && self.level[v.index()] > 0 {
                    if self.reason[v.index()].is_some()
                        && (self.abstract_level(v) & abstract_levels) != 0
                    {
                        self.seen[v.index()] = true;
                        to_clear.push(v);
                        stack.push(l);
                    } else {
                        // cannot remove: undo the marks made in this call
                        for v2 in to_clear.drain(top..) {
                            self.seen[v2.index()] = false;
                        }
                        return false;
                    }
                }
            }
        }
        true
    }

    fn cancel_until(&mut self, level: usize) {
        if self.decision_level() <= level {
            return;
        }
        let lim = self.trail_lim[level];
        for i in (lim..self.trail.len()).rev() {
            let l = self.trail[i];
            let v = l.var();
            self.polarity[v.index()] = !l.is_neg();
            self.assigns[v.index()] = LBool::Undef;
            self.reason[v.index()] = None;
            self.order.insert(v.0, &self.activity);
        }
        self.trail.truncate(lim);
        self.trail_lim.truncate(level);
        self.qhead = self.trail.len();
    }

    fn pick_branch_var(&mut self) -> Option<Var> {
        while let Some(v) = self.order.pop_max(&self.activity) {
            if self.assigns[v as usize] == LBool::Undef {
                return Some(Var(v));
            }
        }
        None
    }

    /// Halves the non-core learnt population: local-tier clauses go
    /// before tier2, higher LBD before lower, lower activity before
    /// higher. Core-tier clauses, binary clauses and reason ("locked")
    /// clauses are never deleted. Compacts the arena afterwards when a
    /// quarter of it is garbage.
    fn reduce_db(&mut self) {
        self.stats.reduces += 1;
        // (cref, tier, lbd, activity) of every reducible learnt
        let mut refs: Vec<(u32, u32, u32, f32)> = Vec::with_capacity(self.num_learnts);
        let mut off = 0usize;
        while off < self.arena.len() {
            let h = self.arena[off];
            let size = (h & SIZE_MASK) as usize;
            let cref = off as u32;
            if h & LEARNT_BIT != 0
                && h & DELETED_BIT == 0
                && (h >> TIER_SHIFT) & TIER_MASK != TIER_CORE
                && size > 2
                && !self.is_locked(cref)
            {
                refs.push((
                    cref,
                    (h >> TIER_SHIFT) & TIER_MASK,
                    (h >> LBD_SHIFT) & LBD_MAX,
                    self.clause_activity(cref),
                ));
            }
            off += HEADER_WORDS + size;
        }
        // victims first; cref as the deterministic tiebreaker
        refs.sort_by(|a, b| {
            b.1.cmp(&a.1)
                .then(b.2.cmp(&a.2))
                .then(a.3.partial_cmp(&b.3).unwrap_or(std::cmp::Ordering::Equal))
                .then(a.0.cmp(&b.0))
        });
        let target = refs.len() / 2;
        for &(cref, ..) in refs.iter().take(target) {
            self.detach_clause(cref);
            self.free_clause(cref);
            self.num_learnts -= 1;
        }
        if self.garbage * 4 > self.arena.len() {
            self.garbage_collect();
        }
    }

    /// Compacts the arena: live clauses move down contiguously, watcher
    /// and reason references are forwarded through the old activity
    /// slots, and the freed words are reclaimed.
    fn garbage_collect(&mut self) {
        self.stats.arena_gcs += 1;
        let mut new_arena: Vec<u32> = Vec::with_capacity(self.arena.len() - self.garbage);
        let mut off = 0usize;
        while off < self.arena.len() {
            let h = self.arena[off];
            let total = HEADER_WORDS + (h & SIZE_MASK) as usize;
            if h & DELETED_BIT == 0 {
                let new_cref = new_arena.len() as u32;
                new_arena.extend_from_slice(&self.arena[off..off + total]);
                // forward pointer for the remap passes below
                self.arena[off + 1] = new_cref;
            }
            off += total;
        }
        let old = &self.arena;
        for ws in &mut self.watches {
            for w in ws.iter_mut() {
                debug_assert!(old[w.cref as usize] & DELETED_BIT == 0);
                w.cref = old[w.cref as usize + 1];
            }
        }
        for r in self.reason.iter_mut().flatten() {
            debug_assert!(old[*r as usize] & DELETED_BIT == 0);
            *r = old[*r as usize + 1];
        }
        self.arena = new_arena;
        self.garbage = 0;
    }

    fn is_locked(&self, cref: u32) -> bool {
        let first = self.clause_lit(cref, 0);
        self.reason[first.var().index()] == Some(cref) && self.value_lit(first) == LBool::True
    }

    /// Applies the next step of the aspiration-rephasing schedule at a
    /// restart boundary. `Best` restores the deepest-trail snapshot (a
    /// no-op while no snapshot exists), `Inverted` installs its
    /// complement, and `Original` resets to the default (all-false)
    /// phases, so successive restarts descend into the best basin, its
    /// mirror image, and virgin territory in turn.
    fn aspiration_rephase(&mut self) {
        let kind = REPHASE_SCHEDULE[(self.rephase_index % REPHASE_SCHEDULE.len() as u64) as usize];
        match kind {
            RephaseKind::Best => {
                if self.best_trail == 0 {
                    return; // nothing recorded yet: keep current phases
                }
                self.polarity.copy_from_slice(&self.best_phase);
                self.stats.rephase_best += 1;
            }
            RephaseKind::Inverted => {
                if self.best_trail > 0 {
                    for (p, &b) in self.polarity.iter_mut().zip(&self.best_phase) {
                        *p = !b;
                    }
                } else {
                    for p in &mut self.polarity {
                        *p = !*p;
                    }
                }
                self.stats.rephase_inverted += 1;
            }
            RephaseKind::Original => {
                for p in &mut self.polarity {
                    *p = false;
                }
                self.stats.rephase_original += 1;
            }
        }
        self.rephase_index += 1;
        self.stats.rephases += 1;
    }

    /// Solves the current formula with no assumptions.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_with(&[])
    }

    /// Solves under `assumptions` (literals forced true for this call only).
    ///
    /// After the call the solver is back at decision level 0 and can be
    /// reused; learnt clauses are kept.
    pub fn solve_with(&mut self, assumptions: &[Lit]) -> SolveResult {
        if !self.ok {
            return SolveResult::Unsat;
        }
        for l in assumptions {
            assert!(
                l.var().index() < self.num_vars(),
                "assumption on unallocated variable"
            );
        }
        self.max_learnts = (self.num_originals as f64 / 3.0).max(100.0);
        let budget_start = self.stats.conflicts;
        // the best-phase snapshot is per call: polarity carries the
        // previous call's final phases in, and restarts inside this call
        // rephase toward this call's own deepest trail
        self.best_trail = 0;
        let mut restarts = 0u64;
        let result = loop {
            let limit = RESTART_FIRST * luby(restarts);
            match self.search(limit, assumptions, budget_start) {
                SearchOutcome::Sat => break SolveResult::Sat,
                SearchOutcome::Unsat => break SolveResult::Unsat,
                SearchOutcome::Restart => {
                    restarts += 1;
                    self.stats.restarts += 1;
                    self.max_learnts *= 1.05;
                    self.aspiration_rephase();
                }
                SearchOutcome::BudgetExhausted => break SolveResult::Unknown,
            }
        };
        if result == SolveResult::Sat {
            self.model = self.assigns.iter().map(|&a| a == LBool::True).collect();
        }
        self.cancel_until(0);
        result
    }

    fn search(
        &mut self,
        conflict_limit: u64,
        assumptions: &[Lit],
        budget_start: u64,
    ) -> SearchOutcome {
        let mut conflicts_here = 0u64;
        loop {
            if let Some(confl) = self.propagate() {
                // best-phase snapshot at the conflict boundary, before
                // the trail unwinds: one full copy per depth-record
                // conflict (snapshotting at every quiescence instead
                // would cost a copy per decision — quadratic on the
                // first descent of every assumption-scoped call)
                if self.trail.len() > self.best_trail {
                    for &l in &self.trail {
                        self.best_phase[l.var().index()] = !l.is_neg();
                    }
                    self.best_trail = self.trail.len();
                }
                self.stats.conflicts += 1;
                conflicts_here += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    return SearchOutcome::Unsat;
                }
                // conflict below/at the assumption prefix ⇒ UNSAT under assumptions
                if self.decision_level() <= assumptions.len() {
                    // analyze to be sure the conflict does not depend on
                    // assumption-free levels; a simple sound answer:
                    let (learnt, bt, lbd) = self.analyze(confl);
                    if bt < assumptions.len() {
                        // learnt clause asserts at a level inside the
                        // assumption prefix: record it and retry there
                        self.cancel_until(bt);
                        self.record_learnt(learnt, lbd);
                        if self.decision_level() == 0 && self.propagate().is_some() {
                            self.ok = false;
                            return SearchOutcome::Unsat;
                        }
                        continue;
                    }
                    self.cancel_until(bt);
                    self.record_learnt(learnt, lbd);
                    continue;
                }
                let (learnt, bt, lbd) = self.analyze(confl);
                self.cancel_until(bt);
                self.record_learnt(learnt, lbd);
                self.var_inc *= VAR_DECAY;
                self.cla_inc *= CLA_DECAY;
                if let Some(b) = self.conflict_budget {
                    if self.stats.conflicts - budget_start >= b {
                        self.cancel_until(0);
                        return SearchOutcome::BudgetExhausted;
                    }
                }
                // Cooperative deadline: polled every few conflicts so a
                // wall-clock budget interrupts a stuck solve mid-flight
                // instead of waiting for the pass boundary. Expiry rides
                // the budget-exhaustion path (`SolveResult::Unknown`).
                if !self.deadline.is_none()
                    && conflicts_here.is_multiple_of(DEADLINE_CHECK_INTERVAL)
                {
                    self.stats.deadline_checks += 1;
                    if self.deadline.expired() {
                        self.cancel_until(0);
                        return SearchOutcome::BudgetExhausted;
                    }
                }
                if conflicts_here >= conflict_limit {
                    self.cancel_until(0);
                    return SearchOutcome::Restart;
                }
                if self.num_learnts as f64 >= self.max_learnts {
                    self.reduce_db();
                }
            } else {
                // establish assumptions in order
                if self.decision_level() < assumptions.len() {
                    let p = assumptions[self.decision_level()];
                    match self.value_lit(p) {
                        LBool::True => {
                            // already implied: open a dummy level
                            self.trail_lim.push(self.trail.len());
                        }
                        LBool::False => {
                            return SearchOutcome::Unsat;
                        }
                        LBool::Undef => {
                            self.trail_lim.push(self.trail.len());
                            self.unchecked_enqueue(p, None);
                        }
                    }
                    continue;
                }
                match self.pick_branch_var() {
                    None => return SearchOutcome::Sat,
                    Some(v) => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        let phase = self.polarity[v.index()];
                        self.unchecked_enqueue(Lit::new(v, phase), None);
                    }
                }
            }
        }
    }

    fn record_learnt(&mut self, learnt: Vec<Lit>, lbd: u32) {
        // one pass per conflict, hoisted out of the per-bump branches
        self.apply_pending_rescales();
        if learnt.len() == 1 {
            self.cancel_until(0);
            if self.value_lit(learnt[0]) == LBool::Undef {
                self.unchecked_enqueue(learnt[0], None);
            } else if self.value_lit(learnt[0]) == LBool::False {
                self.ok = false;
            }
        } else {
            let first = learnt[0];
            let cref = self.attach_clause(&learnt, true, lbd);
            self.cla_bump(cref);
            self.unchecked_enqueue(first, Some(cref));
        }
    }

    /// The value of `l` in the last satisfying model.
    ///
    /// Returns `None` before any successful `solve` or for variables
    /// allocated afterwards.
    pub fn model_value(&self, l: Lit) -> Option<bool> {
        self.model
            .get(l.var().index())
            .map(|&b| if l.is_neg() { !b } else { b })
    }

    /// Whether the clause set is already known unsatisfiable.
    pub fn is_ok(&self) -> bool {
        self.ok
    }

    /// Value of a variable fixed at decision level 0 (by propagation),
    /// independent of any model.
    pub fn fixed_value(&self, v: Var) -> Option<bool> {
        if self.level[v.index()] == 0 {
            match self.value_var(v) {
                LBool::True => Some(true),
                LBool::False => Some(false),
                LBool::Undef => None,
            }
        } else {
            None
        }
    }
}

enum SearchOutcome {
    Sat,
    Unsat,
    Restart,
    BudgetExhausted,
}

/// The Luby restart sequence (1,1,2,1,1,2,4,...).
fn luby(mut i: u64) -> u64 {
    // find the finite subsequence containing index i
    let mut size = 1u64;
    let mut seq = 0u32;
    while size < i + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    while size - 1 != i {
        size = (size - 1) / 2;
        seq -= 1;
        i %= size;
    }
    1u64 << seq
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(i: i32, s: &mut Solver) -> Lit {
        while s.num_vars() <= i.unsigned_abs() as usize {
            s.new_var();
        }
        let v = Var(i.unsigned_abs() - 1);
        if i < 0 {
            Lit::neg(v)
        } else {
            Lit::pos(v)
        }
    }

    fn cnf(s: &mut Solver, clauses: &[&[i32]]) {
        for c in clauses {
            let ls: Vec<Lit> = c.iter().map(|&i| lit(i, s)).collect();
            s.add_clause(ls);
        }
    }

    fn pigeonhole(s: &mut Solver, n: usize, m: usize) {
        let var = |i: usize, j: usize| (i * m + j + 1) as i32;
        for i in 0..n {
            let c: Vec<i32> = (0..m).map(|j| var(i, j)).collect();
            cnf(s, &[&c]);
        }
        for j in 0..m {
            for i1 in 0..n {
                for i2 in (i1 + 1)..n {
                    cnf(s, &[&[-var(i1, j), -var(i2, j)]]);
                }
            }
        }
    }

    #[test]
    fn luby_sequence() {
        let expect = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        for (i, &e) in expect.iter().enumerate() {
            assert_eq!(luby(i as u64), e, "luby({i})");
        }
    }

    #[test]
    fn header_packs_and_unpacks() {
        let h = pack_header(17, true, TIER_TIER2, 5);
        assert_eq!(h & SIZE_MASK, 17);
        assert_eq!((h >> LBD_SHIFT) & LBD_MAX, 5);
        assert_eq!((h >> TIER_SHIFT) & TIER_MASK, TIER_TIER2);
        assert_ne!(h & LEARNT_BIT, 0);
        assert_eq!(h & DELETED_BIT, 0);
        // LBD saturates instead of overflowing into the tier bits
        let h = pack_header(3, true, TIER_LOCAL, 1_000);
        assert_eq!((h >> LBD_SHIFT) & LBD_MAX, LBD_MAX);
        assert_eq!((h >> TIER_SHIFT) & TIER_MASK, TIER_LOCAL);
    }

    #[test]
    fn trivial_sat() {
        let mut s = Solver::new();
        cnf(&mut s, &[&[1, 2], &[-1, 2]]);
        let l2 = lit(2, &mut s);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.model_value(l2), Some(true));
    }

    #[test]
    fn trivial_unsat() {
        let mut s = Solver::new();
        cnf(&mut s, &[&[1], &[-1]]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn unit_chain_propagates() {
        let mut s = Solver::new();
        cnf(&mut s, &[&[1], &[-1, 2], &[-2, 3], &[-3, 4]]);
        let ls: Vec<Lit> = (1..=4).map(|i| lit(i, &mut s)).collect();
        assert_eq!(s.solve(), SolveResult::Sat);
        for l in ls {
            assert_eq!(s.model_value(l), Some(true));
        }
    }

    #[test]
    fn pigeonhole_3_into_2_unsat() {
        let mut s = Solver::new();
        pigeonhole(&mut s, 3, 2);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn pigeonhole_5_into_4_unsat() {
        let mut s = Solver::new();
        pigeonhole(&mut s, 5, 4);
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert!(s.stats().conflicts > 0);
    }

    #[test]
    fn xor_chain_sat_with_parity() {
        // x1 ^ x2 = 1, x2 ^ x3 = 1, x1 ^ x3 = 0 : satisfiable
        let mut s = Solver::new();
        cnf(
            &mut s,
            &[&[1, 2], &[-1, -2], &[2, 3], &[-2, -3], &[1, -3], &[-1, 3]],
        );
        let (l1, l2, l3) = (lit(1, &mut s), lit(2, &mut s), lit(3, &mut s));
        assert_eq!(s.solve(), SolveResult::Sat);
        let x1 = s.model_value(l1).unwrap();
        let x2 = s.model_value(l2).unwrap();
        let x3 = s.model_value(l3).unwrap();
        assert!(x1 ^ x2);
        assert!(x2 ^ x3);
        assert!(!(x1 ^ x3));
    }

    #[test]
    fn assumptions_flip_outcome() {
        let mut s = Solver::new();
        cnf(&mut s, &[&[1, 2]]);
        let a = lit(-1, &mut s);
        let b = lit(-2, &mut s);
        assert_eq!(s.solve_with(&[a, b]), SolveResult::Unsat);
        let l2 = lit(2, &mut s);
        assert_eq!(s.solve_with(&[a]), SolveResult::Sat);
        assert_eq!(s.model_value(l2), Some(true));
        // solver still reusable without assumptions
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn incremental_add_after_solve() {
        let mut s = Solver::new();
        cnf(&mut s, &[&[1, 2]]);
        assert_eq!(s.solve(), SolveResult::Sat);
        cnf(&mut s, &[&[-1], &[-2]]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn budget_returns_unknown() {
        // php(7,6) is hard enough to exceed a 5-conflict budget
        let mut s = Solver::new();
        pigeonhole(&mut s, 7, 6);
        s.set_conflict_budget(Some(5));
        assert_eq!(s.solve(), SolveResult::Unknown);
        s.set_conflict_budget(None);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn restart_heavy_search_rephases_from_best_phase() {
        // php(6,5): unsatisfiable and hard enough to restart several
        // times, so aspiration rephasing must both fire and leave the
        // verdict untouched
        let mut s = Solver::new();
        pigeonhole(&mut s, 6, 5);
        assert_eq!(s.solve(), SolveResult::Unsat);
        let st = s.stats();
        assert!(st.restarts > 0, "instance must restart");
        assert!(st.rephases > 0, "rephasing must fire");
        assert!(st.rephases <= st.restarts);
        // every applied rephase lands in exactly one histogram bucket
        assert_eq!(
            st.rephases,
            st.rephase_best + st.rephase_inverted + st.rephase_original
        );
    }

    #[test]
    fn learnt_tiers_and_reduction_preserve_verdicts() {
        // php(7,6) generates thousands of conflicts: the learnt database
        // must pass its limit, reduce (and usually GC) at least once, and
        // still prove UNSAT
        let mut s = Solver::new();
        pigeonhole(&mut s, 7, 6);
        assert_eq!(s.solve(), SolveResult::Unsat);
        let st = s.stats();
        assert!(st.conflicts > 500, "expected a hard instance: {st:?}");
        assert!(st.reduces > 0, "learnt DB must reduce: {st:?}");
        assert!(st.lbd_core > 0, "glue clauses must be found: {st:?}");
    }

    #[test]
    fn solver_stats_absorb_sums_counters() {
        let mut a = SolverStats {
            conflicts: 1,
            decisions: 2,
            propagations: 3,
            restarts: 4,
            learnt_clauses: 5,
            rephases: 6,
            rephase_best: 3,
            rephase_inverted: 2,
            rephase_original: 1,
            lbd_core: 7,
            reduces: 8,
            arena_gcs: 9,
            deadline_checks: 10,
        };
        a.absorb(&a.clone());
        assert_eq!(a.conflicts, 2);
        assert_eq!(a.propagations, 6);
        assert_eq!(a.rephases, 12);
        assert_eq!(a.rephase_best, 6);
        assert_eq!(a.rephase_inverted, 4);
        assert_eq!(a.rephase_original, 2);
        assert_eq!(a.lbd_core, 14);
        assert_eq!(a.reduces, 16);
        assert_eq!(a.arena_gcs, 18);
        assert_eq!(a.deadline_checks, 20);
    }

    #[test]
    fn deadline_interrupts_search_mid_flight() {
        // php(7,6) costs thousands of conflicts; a deterministic
        // one-check deadline must interrupt the search long before the
        // proof completes, surfacing exactly like budget exhaustion.
        let mut s = Solver::new();
        pigeonhole(&mut s, 7, 6);
        s.set_deadline(Deadline::after_checks(1));
        assert_eq!(s.solve(), SolveResult::Unknown);
        let st = s.stats();
        assert!(st.deadline_checks > 0, "deadline was never polled: {st:?}");
        assert!(st.conflicts < 500, "interruption latency too high: {st:?}");
        // clearing the deadline restores the full search
        s.set_deadline(Deadline::none());
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn elapsed_wall_deadline_interrupts_search() {
        let mut s = Solver::new();
        pigeonhole(&mut s, 7, 6);
        s.set_deadline(Deadline::after(std::time::Duration::ZERO));
        assert_eq!(s.solve(), SolveResult::Unknown);
        assert!(s.stats().deadline_checks > 0);
    }

    #[test]
    fn duplicate_and_tautology_handling() {
        let mut s = Solver::new();
        let a = lit(1, &mut s);
        // tautology is dropped silently
        assert!(s.add_clause([a, !a]));
        // duplicates collapse
        assert!(s.add_clause([a, a, a]));
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.model_value(a), Some(true));
    }

    #[test]
    fn fixed_value_at_level0() {
        let mut s = Solver::new();
        cnf(&mut s, &[&[1], &[-1, 2]]);
        // adding the clauses already propagates at level 0
        assert_eq!(s.fixed_value(Var(0)), Some(true));
        assert_eq!(s.fixed_value(Var(1)), Some(true));
    }

    /// Brute-force model count comparison on random small CNFs.
    #[test]
    fn agrees_with_brute_force() {
        let mut seed = 0x243F6A8885A308D3u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for round in 0..60 {
            let nvars = 4 + (next() % 6) as usize; // 4..=9
            let nclauses = 6 + (next() % 24) as usize;
            let mut clauses: Vec<Vec<i32>> = Vec::new();
            for _ in 0..nclauses {
                let len = 1 + (next() % 3) as usize;
                let mut c = Vec::new();
                for _ in 0..len {
                    let v = (next() % nvars as u64) as i32 + 1;
                    let sign = if next() % 2 == 0 { 1 } else { -1 };
                    c.push(v * sign);
                }
                clauses.push(c);
            }
            // brute force
            let mut any = false;
            'assign: for m in 0..(1u32 << nvars) {
                for c in &clauses {
                    let sat = c.iter().any(|&l| {
                        let v = l.unsigned_abs() as usize - 1;
                        let val = (m >> v) & 1 == 1;
                        if l > 0 {
                            val
                        } else {
                            !val
                        }
                    });
                    if !sat {
                        continue 'assign;
                    }
                }
                any = true;
                break;
            }
            let mut s = Solver::new();
            let refs: Vec<&[i32]> = clauses.iter().map(|c| c.as_slice()).collect();
            cnf(&mut s, &refs);
            let expected = if any {
                SolveResult::Sat
            } else {
                SolveResult::Unsat
            };
            assert_eq!(s.solve(), expected, "round {round}: {clauses:?}");
            if expected == SolveResult::Sat {
                // verify the model actually satisfies the clauses
                for c in &clauses {
                    let sat = c.iter().any(|&l| {
                        let v = Var(l.unsigned_abs() - 1);
                        let want = l > 0;
                        s.model_value(Lit::pos(v)) == Some(want)
                    });
                    assert!(sat, "model violates {c:?}");
                }
            }
        }
    }
}
