//! Stable binary serialization for packed solver models.
//!
//! SAT models leave the solver as packed 64-lane vector words (lane *k*
//! of every variable's word = model *k*), and the persistence layer
//! wants to write them to disk in a format that is byte-identical
//! across platforms, builds and runs. This module is the shared wire
//! codec: everything is little-endian, lengths are explicit, and a
//! seedless FNV-1a checksum guards payloads against torn writes and
//! bit rot. Readers never panic on malformed input — every accessor
//! returns [`CodecError`] on truncation, so a corrupted file degrades
//! to a clean load failure instead of UB or an abort.

use std::fmt;

/// Truncated or malformed input encountered by a [`ByteReader`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CodecError {
    /// Byte offset the failed read started at.
    pub at: usize,
    /// Bytes the read needed.
    pub needed: usize,
    /// Bytes actually available.
    pub available: usize,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "truncated input at byte {}: needed {}, had {}",
            self.at, self.needed, self.available
        )
    }
}

impl std::error::Error for CodecError {}

/// Little-endian byte sink for the knowledge-store writer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a slice of little-endian `u64` words (no length prefix —
    /// callers record the count themselves).
    pub fn put_u64s(&mut self, vs: &[u64]) {
        self.buf.reserve(vs.len() * 8);
        for &v in vs {
            self.put_u64(v);
        }
    }

    /// Appends raw bytes verbatim.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Consumes the writer, yielding the accumulated bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Little-endian cursor over a byte slice; every read is bounds-checked.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over `buf`, positioned at its start.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError {
                at: self.pos,
                needed: n,
                available: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Reads `n` little-endian `u64` words.
    pub fn u64s(&mut self, n: usize) -> Result<Vec<u64>, CodecError> {
        // guard the multiplication so a hostile count cannot wrap into a
        // tiny allocation; the length check in take() does the rest
        let bytes = n.checked_mul(8).ok_or(CodecError {
            at: self.pos,
            needed: usize::MAX,
            available: self.remaining(),
        })?;
        let b = self.take(bytes)?;
        Ok(b.chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect())
    }

    /// Reads `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        self.take(n)
    }
}

/// Seedless FNV-1a over a byte slice: the payload checksum of the
/// knowledge store. Stable across processes, builds and platforms
/// (unlike `DefaultHasher`, which only promises stability within one
/// program execution).
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_width() {
        let mut w = ByteWriter::new();
        w.put_u8(0xAB);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(0x0123_4567_89AB_CDEF);
        w.put_u64s(&[1, u64::MAX, 42]);
        w.put_bytes(b"tail");
        let bytes = w.into_bytes();

        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 0xAB);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.u64s(3).unwrap(), vec![1, u64::MAX, 42]);
        assert_eq!(r.bytes(4).unwrap(), b"tail");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn truncation_errors_instead_of_panicking() {
        let bytes = [1u8, 2, 3];
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 1);
        let err = r.u64().unwrap_err();
        assert_eq!(err.at, 1);
        assert_eq!(err.needed, 8);
        assert_eq!(err.available, 2);
        // a failed read consumes nothing
        assert_eq!(r.u8().unwrap(), 2);
        assert!(r.u64s(usize::MAX).is_err(), "count overflow is an error");
    }

    #[test]
    fn fnv64_is_the_documented_function() {
        // pinned vectors: the on-disk checksum must never drift
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv64(b"ab"), fnv64(b"ba"));
    }
}
