//! Indexed max-heap ordered by VSIDS activity.

/// A binary max-heap over variable indices, keyed by an external activity
/// array, supporting `decrease`-free `update` and membership queries —
/// the classic MiniSAT `Heap<VarOrderLt>`.
#[derive(Clone, Debug, Default)]
pub(crate) struct ActivityHeap {
    heap: Vec<u32>,
    /// position of each var in `heap`, or `usize::MAX` when absent
    index: Vec<usize>,
}

const ABSENT: usize = usize::MAX;

impl ActivityHeap {
    pub fn new() -> Self {
        ActivityHeap::default()
    }

    /// Number of queued variables (test-only observability; the solver
    /// itself only pops and re-inserts).
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn contains(&self, v: u32) -> bool {
        (v as usize) < self.index.len() && self.index[v as usize] != ABSENT
    }

    fn ensure(&mut self, v: u32) {
        if self.index.len() <= v as usize {
            self.index.resize(v as usize + 1, ABSENT);
        }
    }

    pub fn insert(&mut self, v: u32, activity: &[f64]) {
        self.ensure(v);
        if self.contains(v) {
            return;
        }
        self.index[v as usize] = self.heap.len();
        self.heap.push(v);
        self.sift_up(self.heap.len() - 1, activity);
    }

    /// Restores heap order after `v`'s activity increased.
    pub fn bump(&mut self, v: u32, activity: &[f64]) {
        if self.contains(v) {
            let pos = self.index[v as usize];
            self.sift_up(pos, activity);
        }
    }

    pub fn pop_max(&mut self, activity: &[f64]) -> Option<u32> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        let last = self.heap.pop().expect("non-empty");
        self.index[top as usize] = ABSENT;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.index[last as usize] = 0;
            self.sift_down(0, activity);
        }
        Some(top)
    }

    fn sift_up(&mut self, mut pos: usize, activity: &[f64]) {
        let v = self.heap[pos];
        while pos > 0 {
            let parent = (pos - 1) / 2;
            let pv = self.heap[parent];
            if activity[v as usize] <= activity[pv as usize] {
                break;
            }
            self.heap[pos] = pv;
            self.index[pv as usize] = pos;
            pos = parent;
        }
        self.heap[pos] = v;
        self.index[v as usize] = pos;
    }

    fn sift_down(&mut self, mut pos: usize, activity: &[f64]) {
        let v = self.heap[pos];
        let n = self.heap.len();
        loop {
            let left = 2 * pos + 1;
            if left >= n {
                break;
            }
            let right = left + 1;
            let child = if right < n
                && activity[self.heap[right] as usize] > activity[self.heap[left] as usize]
            {
                right
            } else {
                left
            };
            let cv = self.heap[child];
            if activity[cv as usize] <= activity[v as usize] {
                break;
            }
            self.heap[pos] = cv;
            self.index[cv as usize] = pos;
            pos = child;
        }
        self.heap[pos] = v;
        self.index[v as usize] = pos;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_activity_order() {
        let activity = vec![0.5, 3.0, 1.0, 2.0];
        let mut h = ActivityHeap::new();
        for v in 0..4 {
            h.insert(v, &activity);
        }
        assert_eq!(h.pop_max(&activity), Some(1));
        assert_eq!(h.pop_max(&activity), Some(3));
        assert_eq!(h.pop_max(&activity), Some(2));
        assert_eq!(h.pop_max(&activity), Some(0));
        assert_eq!(h.pop_max(&activity), None);
    }

    #[test]
    fn bump_reorders() {
        let mut activity = vec![1.0, 2.0, 3.0];
        let mut h = ActivityHeap::new();
        for v in 0..3 {
            h.insert(v, &activity);
        }
        activity[0] = 10.0;
        h.bump(0, &activity);
        assert_eq!(h.pop_max(&activity), Some(0));
    }

    #[test]
    fn reinsert_is_idempotent() {
        let activity = vec![1.0, 2.0];
        let mut h = ActivityHeap::new();
        h.insert(0, &activity);
        h.insert(0, &activity);
        h.insert(1, &activity);
        assert_eq!(h.len(), 2);
        assert!(h.contains(0));
        h.pop_max(&activity);
        assert!(!h.contains(1));
        assert!(h.contains(0));
    }
}
