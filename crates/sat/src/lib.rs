//! A CDCL SAT solver in the MiniSAT lineage, on a modern data layout.
//!
//! The smaRTLy paper uses MiniSAT [Sörensson & Eén 2005] to decide whether a
//! multiplexer control signal is constant under a path condition. This
//! crate is a from-scratch Rust implementation of the same ingredient
//! list, modernized where it pays in the hot loop:
//!
//! * a flat `u32` **clause arena** (header packs size/learnt/tier/LBD;
//!   literals contiguous) with a compacting GC, so propagation is
//!   cache-local and clause deletion is a header-bit flip,
//! * two-watched-literal unit propagation with **blocking literals**
//!   and in-place watch-list compaction,
//! * VSIDS variable activity with an indexed max-heap (activity
//!   rescales hoisted out of the per-bump hot path),
//! * first-UIP conflict analysis with deep conflict-clause minimization
//!   (MiniSAT 1.13's headline feature),
//! * an **LBD-tiered learnt database** (core / tier2 / local, glucose
//!   style) with periodic reduction,
//! * best-phase saving plus **aspiration rephasing** (a CaDiCaL-style
//!   best/inverted/original schedule at restarts),
//! * **EMA-adaptive restarts** (Glucose-style fast/slow LBD averages
//!   force restarts, a trail-depth average blocks them; the fixed Luby
//!   schedule survives behind [`RestartMode::Luby`] for ablation) with
//!   chronological backtracking on very long backjumps,
//! * **inprocessing at restart boundaries**: bounded vivification of
//!   tier2 learnts plus forward subsumption / self-subsuming resolution
//!   over a signature-indexed occurrence sweep, with on-the-fly LBD
//!   recomputation promoting improving clauses into better tiers,
//! * solving under assumptions and an optional conflict budget (the paper
//!   bounds SAT effort with a threshold; [`Solver::set_conflict_budget`]
//!   is the hook for that),
//! * a **cooperative deadline** ([`Solver::set_deadline`]): a cloneable
//!   cancellation token polled every few conflicts alongside the budget,
//!   so a wall-clock limit interrupts a stuck solve mid-search; expiry
//!   surfaces as [`SolveResult::Unknown`], exactly like budget
//!   exhaustion.
//!
//! [`tseitin::TseitinEncoder`] layers gate-consistency encoding on top, so
//! circuit cones can be asserted directly.
//!
//! # Example
//!
//! ```
//! use smartly_sat::{Solver, Lit, SolveResult};
//!
//! let mut s = Solver::new();
//! let a = s.new_var();
//! let b = s.new_var();
//! // (a | b) & (!a | b) & (a | !b)  =>  a=1, b=1
//! s.add_clause([Lit::pos(a), Lit::pos(b)]);
//! s.add_clause([Lit::neg(a), Lit::pos(b)]);
//! s.add_clause([Lit::pos(a), Lit::neg(b)]);
//! assert_eq!(s.solve(), SolveResult::Sat);
//! assert_eq!(s.model_value(Lit::pos(a)), Some(true));
//! assert_eq!(s.model_value(Lit::pos(b)), Some(true));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod deadline;
pub mod dimacs;
mod heap;
mod solver;
pub mod tseitin;

pub use codec::{fnv64, ByteReader, ByteWriter, CodecError};
pub use deadline::Deadline;
pub use dimacs::{parse_dimacs, write_dimacs, DimacsProblem, ParseDimacsError};
pub use solver::{
    RestartMode, SolveResult, Solver, SolverStats, DEADLINE_CHECK_INTERVAL, INPROCESS_INTERVAL,
};
pub use tseitin::TseitinEncoder;

use std::fmt;

/// A propositional variable (0-based index).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub(crate) u32);

impl Var {
    /// Builds a variable from its 0-based index.
    ///
    /// Useful with [`dimacs`] and for addressing variables allocated in a
    /// known order; solving with a variable never allocated through
    /// [`Solver::new_var`] panics.
    pub fn from_index(index: usize) -> Var {
        Var(index as u32)
    }

    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A literal: a variable with a sign.
///
/// Encoded as `var << 1 | sign` where `sign == 1` means negated.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(pub(crate) u32);

impl Lit {
    /// The positive literal of `var`.
    pub fn pos(var: Var) -> Lit {
        Lit(var.0 << 1)
    }

    /// The negative literal of `var`.
    pub fn neg(var: Var) -> Lit {
        Lit(var.0 << 1 | 1)
    }

    /// Builds a literal from a variable and a value: `Lit::new(v, true)` is
    /// satisfied when `v` is true.
    pub fn new(var: Var, value: bool) -> Lit {
        if value {
            Lit::pos(var)
        } else {
            Lit::neg(var)
        }
    }

    /// The underlying variable.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Whether the literal is negated.
    pub fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }

    /// The raw code (`var << 1 | sign`), useful as an array index.
    pub fn code(self) -> usize {
        self.0 as usize
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_neg() {
            write!(f, "-{}", self.var().0 + 1)
        } else {
            write!(f, "{}", self.var().0 + 1)
        }
    }
}

#[cfg(test)]
mod lit_tests {
    use super::*;

    #[test]
    fn lit_codec() {
        let v = Var(7);
        assert_eq!(Lit::pos(v).var(), v);
        assert!(!Lit::pos(v).is_neg());
        assert!(Lit::neg(v).is_neg());
        assert_eq!(!Lit::pos(v), Lit::neg(v));
        assert_eq!(!!Lit::pos(v), Lit::pos(v));
        assert_eq!(Lit::new(v, false), Lit::neg(v));
    }
}
