//! Unified telemetry substrate for the smartly workspace.
//!
//! Three primitives, all dependency-free (the workspace builds offline):
//!
//! * **Hierarchical spans** — [`TraceBuf`] records strictly nested
//!   begin/end [`SpanEvent`]s against a shared [`TraceClock`]. Each
//!   worker owns its buffer exclusively (no locks, no atomics on the
//!   record path); the driver merges the buffers into a [`Trace`] in
//!   *module order* at run end, so the track layout of an exported trace
//!   is deterministic even though the timestamps are not.
//! * **Log2-bucketed [`Histogram`]s** — fixed-size, `Copy`, cheap enough
//!   to ride inside the per-sweep stats structs (latency distributions
//!   per query-funnel layer, work distributions per SAT call).
//! * **A [`Counters`] registry** — an insertion-ordered name→value map
//!   so a counter block renders (and snapshots) from one registration
//!   point instead of hand-threaded field-by-field plumbing.
//!
//! The standing digest-safety contract applies to everything here: spans,
//! histograms and counters describe *where time went*, never *what was
//! decided* — they must only ever surface in trace files and timing JSON,
//! never in a `--digest` artifact.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Instant;

/// Number of log2 buckets a [`Histogram`] tracks. Bucket `i` (for
/// `i >= 1`) counts values in `[2^(i-1), 2^i)`; bucket 0 counts zeros;
/// the last bucket absorbs everything at or above `2^(BUCKETS-2)`
/// (~2.1 s when recording microseconds).
pub const BUCKETS: usize = 32;

/// A log2-bucketed histogram of `u64` samples (latencies in
/// microseconds, propagation counts, ...).
///
/// `Copy` by design: it lives inside stats structs that are absorbed by
/// value up the report chain.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Index of the bucket that counts `value`.
    pub fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            ((64 - value.leading_zeros()) as usize).min(BUCKETS - 1)
        }
    }

    /// Smallest value the bucket at `index` counts (0 for bucket 0).
    pub fn bucket_floor(index: usize) -> u64 {
        if index == 0 {
            0
        } else {
            1u64 << (index - 1)
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean sample value, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper-bounds the `q`-quantile (0.0–1.0) by the ceiling of the
    /// bucket holding it: the value `v` such that at least `q` of the
    /// samples are `< max(v, floor+1)`. Coarse (log2 resolution) but
    /// monotone and allocation-free. Returns 0 when empty.
    pub fn quantile_ceil(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target.max(1) {
                return if i + 1 < BUCKETS {
                    Self::bucket_floor(i + 1).saturating_sub(1)
                } else {
                    u64::MAX
                };
            }
        }
        u64::MAX
    }

    /// Component-wise sum.
    pub fn absorb(&mut self, o: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(o.buckets.iter()) {
            *a += b;
        }
        self.count += o.count;
        self.sum = self.sum.saturating_add(o.sum);
    }

    /// The non-empty buckets as `(floor_value, count)` pairs, in
    /// ascending value order.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (Self::bucket_floor(i), n))
            .collect()
    }
}

/// An insertion-ordered `name → u64` counter registry.
///
/// The registry is the single registration point for a counter block:
/// renderers iterate it instead of naming every field, so adding a
/// counter is one `add` call rather than edits in every output path —
/// and a schema snapshot test can pin the key *set* wholesale.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Counters {
    entries: Vec<(&'static str, u64)>,
}

impl Counters {
    /// An empty registry.
    pub fn new() -> Self {
        Counters::default()
    }

    /// Adds `delta` onto `name`, registering it (at the end of the
    /// iteration order) on first use.
    pub fn add(&mut self, name: &'static str, delta: u64) -> &mut Self {
        match self.entries.iter_mut().find(|(n, _)| *n == name) {
            Some((_, v)) => *v += delta,
            None => self.entries.push((name, delta)),
        }
        self
    }

    /// Current value of `name` (0 when never registered).
    pub fn get(&self, name: &str) -> u64 {
        self.entries
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// Component-wise sum; counters unknown to `self` are appended in
    /// `other`'s order.
    pub fn absorb(&mut self, other: &Counters) {
        for (name, v) in &other.entries {
            self.add(name, *v);
        }
    }

    /// Iterates `(name, value)` in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.entries.iter().copied()
    }

    /// Number of registered counters.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing was ever registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The epoch all of one run's spans are timed against; `Copy` so every
/// worker carries the same zero point.
#[derive(Copy, Clone, Debug)]
pub struct TraceClock {
    epoch: Instant,
}

impl TraceClock {
    /// Starts the clock: now becomes timestamp 0.
    pub fn start() -> Self {
        TraceClock {
            epoch: Instant::now(),
        }
    }

    /// Microseconds elapsed since the epoch.
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }
}

/// A span-argument value: unsigned numbers or static strings only, so
/// recording never allocates per event beyond the args vector itself.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ArgValue {
    /// An unsigned counter/identifier.
    U64(u64),
    /// A static label (layer names, verdict tags).
    Str(&'static str),
}

/// Whether a [`SpanEvent`] opens or closes a span.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Span start (carries the opening args).
    Begin,
    /// Span end (may carry result args).
    End,
}

/// One begin/end event. End events repeat the span's name so a trace
/// validator can check pairing without reconstructing state.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanEvent {
    /// Opens or closes.
    pub phase: Phase,
    /// Span name (static: span kinds are a closed vocabulary; variable
    /// identity goes in track labels or args).
    pub name: &'static str,
    /// Microseconds since the run's [`TraceClock`] epoch.
    pub ts_us: u64,
    /// Attached key/value arguments.
    pub args: Vec<(&'static str, ArgValue)>,
}

/// A per-worker span buffer: strictly nested begin/end recording with no
/// locks — each buffer is owned by exactly one thread for its lifetime
/// and only the finished event vector crosses threads.
#[derive(Debug)]
pub struct TraceBuf {
    clock: TraceClock,
    events: Vec<SpanEvent>,
    /// Indices (into `events`) of currently open Begin events.
    open: Vec<usize>,
}

impl TraceBuf {
    /// An empty buffer against `clock`.
    pub fn new(clock: TraceClock) -> Self {
        TraceBuf {
            clock,
            events: Vec::new(),
            open: Vec::new(),
        }
    }

    /// Opens a span.
    pub fn begin(&mut self, name: &'static str) {
        self.begin_with(name, &[]);
    }

    /// Opens a span with arguments.
    pub fn begin_with(&mut self, name: &'static str, args: &[(&'static str, ArgValue)]) {
        self.open.push(self.events.len());
        self.events.push(SpanEvent {
            phase: Phase::Begin,
            name,
            ts_us: self.clock.now_us(),
            args: args.to_vec(),
        });
    }

    /// Closes the innermost open span.
    pub fn end(&mut self) {
        self.end_with(&[]);
    }

    /// Closes the innermost open span, attaching result arguments to the
    /// end event. Unbalanced `end` calls are ignored (recording must
    /// never panic a worker).
    pub fn end_with(&mut self, args: &[(&'static str, ArgValue)]) {
        let Some(b) = self.open.pop() else { return };
        let name = self.events[b].name;
        self.events.push(SpanEvent {
            phase: Phase::End,
            name,
            ts_us: self.clock.now_us(),
            args: args.to_vec(),
        });
    }

    /// Current nesting depth.
    pub fn depth(&self) -> usize {
        self.open.len()
    }

    /// Closes any spans still open (a worker that bailed early must not
    /// produce an unbalanced track) and returns the event stream.
    pub fn finish(mut self) -> Vec<SpanEvent> {
        while !self.open.is_empty() {
            self.end();
        }
        self.events
    }
}

/// A cheap, cloneable recording handle: `None` is a disabled handle whose
/// every method is a no-op, so instrumentation points pay one branch when
/// tracing is off. Not thread-safe by design (`Rc`) — one handle tree per
/// worker; only the finished events cross threads.
#[derive(Clone, Debug, Default)]
pub struct TraceHandle(Option<Rc<RefCell<TraceBuf>>>);

impl TraceHandle {
    /// A handle that records nothing.
    pub fn disabled() -> Self {
        TraceHandle(None)
    }

    /// A live handle recording into a fresh buffer against `clock`.
    pub fn recording(clock: TraceClock) -> Self {
        TraceHandle(Some(Rc::new(RefCell::new(TraceBuf::new(clock)))))
    }

    /// Whether this handle records.
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Opens a span.
    pub fn begin(&self, name: &'static str) {
        if let Some(buf) = &self.0 {
            buf.borrow_mut().begin(name);
        }
    }

    /// Opens a span with arguments.
    pub fn begin_with(&self, name: &'static str, args: &[(&'static str, ArgValue)]) {
        if let Some(buf) = &self.0 {
            buf.borrow_mut().begin_with(name, args);
        }
    }

    /// Closes the innermost open span.
    pub fn end(&self) {
        if let Some(buf) = &self.0 {
            buf.borrow_mut().end();
        }
    }

    /// Closes the innermost open span with result arguments.
    pub fn end_with(&self, args: &[(&'static str, ArgValue)]) {
        if let Some(buf) = &self.0 {
            buf.borrow_mut().end_with(args);
        }
    }

    /// Opens a span and returns a guard that closes it on drop — safe
    /// around early returns.
    pub fn scope(&self, name: &'static str) -> SpanGuard {
        self.scope_with(name, &[])
    }

    /// [`TraceHandle::scope`] with opening arguments.
    pub fn scope_with(&self, name: &'static str, args: &[(&'static str, ArgValue)]) -> SpanGuard {
        self.begin_with(name, args);
        SpanGuard {
            handle: self.clone(),
        }
    }

    /// Consumes the handle and returns the recorded events, closing any
    /// still-open spans. Returns `None` when disabled *or* when clones of
    /// this handle are still alive (the buffer cannot be taken apart
    /// while another recorder holds it).
    pub fn finish(self) -> Option<Vec<SpanEvent>> {
        let rc = self.0?;
        Rc::try_unwrap(rc)
            .ok()
            .map(|cell| cell.into_inner().finish())
    }
}

/// Closes its span when dropped; produced by [`TraceHandle::scope`].
#[derive(Debug)]
pub struct SpanGuard {
    handle: TraceHandle,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.handle.end();
    }
}

/// One track of a merged [`Trace`]: a label (module name, `design`) and
/// its strictly nested event stream.
#[derive(Clone, Debug, PartialEq)]
pub struct Track {
    /// Human-readable track label; becomes the thread name in a Chrome
    /// trace export.
    pub label: String,
    /// The track's events, in record order (nested by construction).
    pub events: Vec<SpanEvent>,
}

/// A whole run's merged trace. The caller pushes tracks in a canonical
/// order (the driver uses design order: root first, then modules), which
/// makes the exported structure deterministic; only timestamps and
/// durations vary between runs.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Trace {
    /// What the trace covers (design name, corpus level).
    pub name: String,
    /// Tracks in canonical order.
    pub tracks: Vec<Track>,
}

impl Trace {
    /// An empty trace named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Trace {
            name: name.into(),
            tracks: Vec::new(),
        }
    }

    /// Appends a track (skipping empty event streams).
    pub fn push_track(&mut self, label: impl Into<String>, events: Vec<SpanEvent>) {
        if !events.is_empty() {
            self.tracks.push(Track {
                label: label.into(),
                events,
            });
        }
    }

    /// Total number of events across all tracks.
    pub fn event_count(&self) -> usize {
        self.tracks.iter().map(|t| t.events.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), BUCKETS - 1);
        assert_eq!(Histogram::bucket_floor(0), 0);
        assert_eq!(Histogram::bucket_floor(1), 1);
        assert_eq!(Histogram::bucket_floor(3), 4);
        // every value lands in the bucket whose floor is <= value
        for v in [0u64, 1, 2, 5, 63, 64, 1000, 1 << 40] {
            let b = Histogram::bucket_of(v);
            assert!(Histogram::bucket_floor(b) <= v);
            if b + 1 < BUCKETS {
                assert!(v < Histogram::bucket_floor(b + 1) * 2 || b == 0);
            }
        }
    }

    #[test]
    fn histogram_records_and_absorbs() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(3);
        h.record(3);
        h.record(100);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 106);
        assert_eq!(h.nonzero_buckets(), vec![(0, 1), (2, 2), (64, 1)]);
        let mut other = Histogram::new();
        other.record(3);
        h.absorb(&other);
        assert_eq!(h.count(), 5);
        assert_eq!(h.get_bucket_count(2), 3);
        assert!(h.mean() > 0.0);
        assert!(h.quantile_ceil(0.5) >= 3);
    }

    impl Histogram {
        fn get_bucket_count(&self, i: usize) -> u64 {
            self.buckets[i]
        }
    }

    #[test]
    fn counters_keep_registration_order() {
        let mut c = Counters::new();
        c.add("zeta", 1).add("alpha", 2).add("zeta", 3);
        assert_eq!(
            c.iter().collect::<Vec<_>>(),
            vec![("zeta", 4), ("alpha", 2)]
        );
        assert_eq!(c.get("alpha"), 2);
        assert_eq!(c.get("missing"), 0);
        let mut d = Counters::new();
        d.add("alpha", 1).add("new", 9);
        c.absorb(&d);
        assert_eq!(c.get("alpha"), 3);
        assert_eq!(c.get("new"), 9);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn spans_nest_and_balance() {
        let clock = TraceClock::start();
        let handle = TraceHandle::recording(clock);
        handle.begin_with("outer", &[("n", ArgValue::U64(1))]);
        {
            let _g = handle.scope("inner");
            handle.begin("leaf");
            handle.end_with(&[("layer", ArgValue::Str("sat"))]);
        } // guard closes "inner"
        handle.end();
        let events = handle.finish().expect("sole owner");
        let names: Vec<(&str, Phase)> = events.iter().map(|e| (e.name, e.phase)).collect();
        assert_eq!(
            names,
            vec![
                ("outer", Phase::Begin),
                ("inner", Phase::Begin),
                ("leaf", Phase::Begin),
                ("leaf", Phase::End),
                ("inner", Phase::End),
                ("outer", Phase::End),
            ]
        );
        // timestamps are monotone in record order
        for w in events.windows(2) {
            assert!(w[0].ts_us <= w[1].ts_us);
        }
    }

    #[test]
    fn finish_closes_dangling_spans_and_disabled_is_noop() {
        let handle = TraceHandle::recording(TraceClock::start());
        handle.begin("left-open");
        let events = handle.finish().expect("sole owner");
        assert_eq!(events.len(), 2, "finish closed the dangling span");

        let off = TraceHandle::disabled();
        off.begin("ignored");
        off.end();
        assert!(!off.enabled());
        assert!(off.finish().is_none());
    }

    #[test]
    fn finish_with_live_clone_returns_none() {
        let handle = TraceHandle::recording(TraceClock::start());
        let clone = handle.clone();
        assert!(handle.finish().is_none());
        assert!(clone.finish().is_some());
    }

    #[test]
    fn trace_skips_empty_tracks() {
        let mut t = Trace::new("design");
        t.push_track("empty", Vec::new());
        t.push_track(
            "m",
            vec![SpanEvent {
                phase: Phase::Begin,
                name: "module",
                ts_us: 0,
                args: Vec::new(),
            }],
        );
        assert_eq!(t.tracks.len(), 1);
        assert_eq!(t.event_count(), 1);
    }
}
