//! Minimal JSON for the line-delimited socket protocol.
//!
//! The daemon speaks one JSON object per line in both directions. This
//! module is the whole wire vocabulary: a small value type, a strict
//! recursive-descent parser, and a canonical renderer (object keys keep
//! insertion order, strings escape control characters), so the crate
//! stays dependency-free. It is *not* the report renderer — reports and
//! digests are produced by the driver's own JSON layer and travel
//! through this protocol as opaque strings.
//!
//! Scope is deliberately narrow: integers only (`u64` — the protocol
//! carries ids, counters, and millisecond budgets, never measurements),
//! no floats, no `NaN` family. A malformed request line becomes a
//! protocol error response, never a panic.

use std::fmt::Write as _;

/// A JSON value as the protocol uses it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A non-negative integer (the only number the protocol carries).
    UInt(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion-ordered, first write of a key wins on read.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// An empty object.
    pub fn object() -> Value {
        Value::Obj(Vec::new())
    }

    /// Sets `key` on an object (appends; callers do not re-set keys).
    pub fn set(&mut self, key: &str, value: Value) -> &mut Value {
        if let Value::Obj(entries) = self {
            entries.push((key.to_string(), value));
        }
        self
    }

    /// Looks `key` up on an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is an integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Renders on one line (the protocol is line-delimited, so the
    /// rendering never contains a raw newline: strings escape them).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::UInt(n) => {
                write!(out, "{n}").expect("write to String");
            }
            Value::Str(s) => render_string(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Value::Obj(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                write!(out, "\\u{:04x}", c as u32).expect("write to String");
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one JSON value; the whole input must be consumed (modulo
/// whitespace), which is exactly the one-value-per-line contract.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing input at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", char::from(b), self.pos))
        }
    }

    fn eat_keyword(&mut self, word: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("malformed literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.eat_keyword("null", Value::Null),
            Some(b't') => self.eat_keyword("true", Value::Bool(true)),
            Some(b'f') => self.eat_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'0'..=b'9') => self.number(),
            Some(b'-') => Err(format!(
                "negative number at byte {} (protocol carries unsigned integers only)",
                self.pos
            )),
            Some(other) => Err(format!(
                "unexpected byte 0x{other:02x} at offset {}",
                self.pos
            )),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return Err(format!(
                "non-integer number at byte {start} (protocol carries integers only)"
            ));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are utf8");
        text.parse::<u64>()
            .map(Value::UInt)
            .map_err(|_| format!("integer out of range at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // surrogate pair: require the low half
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err("invalid low surrogate".to_string());
                                }
                                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp).ok_or("invalid surrogate pair")?
                            } else {
                                char::from_u32(hi).ok_or("lone surrogate escape")?
                            };
                            out.push(c);
                        }
                        other => return Err(format!("unknown escape '\\{}'", char::from(other))),
                    }
                }
                Some(b) if b < 0x20 => {
                    return Err("raw control character in string".to_string());
                }
                Some(_) => {
                    // consume one full UTF-8 scalar
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|_| "bad utf8")?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        if self.pos + 4 > self.bytes.len() {
            return Err("truncated \\u escape".to_string());
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| "bad \\u escape")?;
        let v = u32::from_str_radix(text, 16).map_err(|_| "bad \\u escape")?;
        self.pos += 4;
        Ok(v)
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(entries));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_protocol_shapes() {
        let mut req = Value::object();
        req.set("cmd", Value::Str("submit".into()));
        req.set("source", Value::Str("module m;\nendmodule\n".into()));
        req.set("timeout_ms", Value::UInt(250));
        req.set("verify", Value::Bool(false));
        req.set("tags", Value::Arr(vec![Value::Null, Value::UInt(7)]));
        let line = req.render();
        assert!(!line.contains('\n'), "line protocol: newlines escaped");
        let back = parse(&line).expect("parses");
        assert_eq!(back, req);
        assert_eq!(back.get("timeout_ms").and_then(Value::as_u64), Some(250));
        assert_eq!(
            back.get("source").and_then(Value::as_str),
            Some("module m;\nendmodule\n")
        );
    }

    #[test]
    fn escapes_round_trip() {
        for s in [
            "plain",
            "quote\" slash\\ newline\n tab\t cr\r",
            "control\u{0001}char",
            "unicode: µ → 💡",
        ] {
            let v = Value::Str(s.to_string());
            assert_eq!(parse(&v.render()).expect("parses"), v, "{s:?}");
        }
        // explicit \u escapes, including a surrogate pair
        assert_eq!(
            parse(r#""µ 💡""#).expect("parses"),
            Value::Str("µ 💡".into())
        );
    }

    #[test]
    fn malformed_input_errors_instead_of_panicking() {
        for bad in [
            "",
            "{",
            "[1,",
            "nul",
            "{\"a\" 1}",
            "\"unterminated",
            "1.5",
            "-3",
            "1e9",
            "18446744073709551616", // u64::MAX + 1
            "{\"a\":1} trailing",
            "\"bad \\q escape\"",
            "\"lone \\ud800 surrogate\"",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn object_lookup_is_first_write_wins() {
        let v = parse(r#"{"a":1,"a":2}"#).expect("parses");
        assert_eq!(v.get("a").and_then(Value::as_u64), Some(1));
        assert_eq!(v.get("missing"), None);
    }
}
