//! Request vocabulary of the line protocol.
//!
//! One JSON object per line, `cmd` selects the verb. Parsing is strict
//! about types (a string `timeout_ms` is an error, not a coercion) but
//! lenient about omissions — every optional field has the documented
//! default — so hand-typed `echo ... | nc -U` sessions work.

use crate::wire::{parse, Value};

/// A decoded client request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Admit a job: optimize `source` and journal the result.
    Submit {
        /// Verilog source text.
        source: String,
        /// Optimization level name; default `"full"`.
        level: String,
        /// Per-job wall-clock budget in milliseconds; 0 (the default)
        /// inherits the server's `--timeout-ms`.
        timeout_ms: u64,
        /// Run SAT equivalence verification; default `false`.
        verify: bool,
    },
    /// Report a job's phase without blocking.
    Status {
        /// Job id from `submit`.
        id: u64,
    },
    /// Fetch a job's terminal result.
    Result {
        /// Job id from `submit`.
        id: u64,
        /// Block until the job is terminal; default `true`.
        wait: bool,
        /// Include the optimized Verilog in the response; default
        /// `false` (the digest is always included).
        verilog: bool,
    },
    /// Liveness + counters snapshot.
    Health,
    /// Stop admissions and begin graceful shutdown.
    Drain,
}

/// Parses one request line.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let value = parse(line.trim())?;
    let cmd = value
        .get("cmd")
        .and_then(Value::as_str)
        .ok_or("missing string field \"cmd\"")?;
    match cmd {
        "submit" => {
            let source = value
                .get("source")
                .and_then(Value::as_str)
                .ok_or("submit: missing string field \"source\"")?
                .to_string();
            let level = opt_str(&value, "level", "full")?;
            let timeout_ms = opt_u64(&value, "timeout_ms", 0)?;
            let verify = opt_bool(&value, "verify", false)?;
            Ok(Request::Submit {
                source,
                level,
                timeout_ms,
                verify,
            })
        }
        "status" => Ok(Request::Status {
            id: req_u64(&value, "id")?,
        }),
        "result" => Ok(Request::Result {
            id: req_u64(&value, "id")?,
            wait: opt_bool(&value, "wait", true)?,
            verilog: opt_bool(&value, "verilog", false)?,
        }),
        "health" => Ok(Request::Health),
        "drain" => Ok(Request::Drain),
        other => Err(format!("unknown cmd {other:?}")),
    }
}

fn req_u64(value: &Value, key: &str) -> Result<u64, String> {
    value
        .get(key)
        .and_then(Value::as_u64)
        .ok_or(format!("missing integer field {key:?}"))
}

fn opt_u64(value: &Value, key: &str, default: u64) -> Result<u64, String> {
    match value.get(key) {
        None | Some(Value::Null) => Ok(default),
        Some(v) => v
            .as_u64()
            .ok_or(format!("field {key:?} must be an integer")),
    }
}

fn opt_bool(value: &Value, key: &str, default: bool) -> Result<bool, String> {
    match value.get(key) {
        None | Some(Value::Null) => Ok(default),
        Some(v) => v
            .as_bool()
            .ok_or(format!("field {key:?} must be a boolean")),
    }
}

fn opt_str(value: &Value, key: &str, default: &str) -> Result<String, String> {
    match value.get(key) {
        None | Some(Value::Null) => Ok(default.to_string()),
        Some(v) => v
            .as_str()
            .map(str::to_string)
            .ok_or(format!("field {key:?} must be a string")),
    }
}

/// `{"ok":false,"error":...}` — the catch-all failure shape.
pub fn error_response(message: &str) -> Value {
    let mut v = Value::object();
    v.set("ok", Value::Bool(false));
    v.set("error", Value::Str(message.to_string()));
    v
}

/// `{"ok":false,"rejected":...}` — an admission refusal; `reason` is
/// one of `"overloaded"`, `"draining"`, `"journal"`.
pub fn rejected_response(reason: &str) -> Value {
    let mut v = Value::object();
    v.set("ok", Value::Bool(false));
    v.set("rejected", Value::Str(reason.to_string()));
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_defaults_are_applied() {
        let req =
            parse_request(r#"{"cmd":"submit","source":"module m; endmodule"}"#).expect("parses");
        assert_eq!(
            req,
            Request::Submit {
                source: "module m; endmodule".into(),
                level: "full".into(),
                timeout_ms: 0,
                verify: false,
            }
        );
    }

    #[test]
    fn submit_honors_every_field() {
        let req = parse_request(
            r#"{"cmd":"submit","source":"x","level":"light","timeout_ms":250,"verify":true}"#,
        )
        .expect("parses");
        assert_eq!(
            req,
            Request::Submit {
                source: "x".into(),
                level: "light".into(),
                timeout_ms: 250,
                verify: true,
            }
        );
    }

    #[test]
    fn result_defaults_to_waiting_without_verilog() {
        assert_eq!(
            parse_request(r#"{"cmd":"result","id":3}"#).expect("parses"),
            Request::Result {
                id: 3,
                wait: true,
                verilog: false
            }
        );
        assert_eq!(
            parse_request(r#"{"cmd":"result","id":3,"wait":false,"verilog":true}"#)
                .expect("parses"),
            Request::Result {
                id: 3,
                wait: false,
                verilog: true
            }
        );
    }

    #[test]
    fn bad_requests_are_descriptive_errors() {
        for (line, needle) in [
            ("", "unexpected end"),
            ("[]", "cmd"),
            (r#"{"cmd":"warp"}"#, "unknown cmd"),
            (r#"{"cmd":"submit"}"#, "source"),
            (r#"{"cmd":"status"}"#, "id"),
            (
                r#"{"cmd":"submit","source":"x","timeout_ms":"fast"}"#,
                "integer",
            ),
            (r#"{"cmd":"result","id":1,"wait":1}"#, "boolean"),
        ] {
            let err = parse_request(line).expect_err(line);
            assert!(err.contains(needle), "{line:?}: {err:?} lacks {needle:?}");
        }
    }

    #[test]
    fn canned_responses_render_stably() {
        assert_eq!(
            error_response("boom").render(),
            r#"{"ok":false,"error":"boom"}"#
        );
        assert_eq!(
            rejected_response("overloaded").render(),
            r#"{"ok":false,"rejected":"overloaded"}"#
        );
    }
}
