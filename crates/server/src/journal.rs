//! Crash-recoverable job journal: an append-only write-ahead log.
//!
//! Every job the daemon *accepts* is journaled before the submitter
//! sees `{"ok":true}`, and every job that reaches a terminal state is
//! journaled again with its outcome. On startup the daemon replays the
//! journal: completed jobs come back queryable with their digests,
//! accepted-but-unfinished jobs re-enter the queue and re-run — and
//! because the optimizer's digest is deterministic (timing-free,
//! byte-identical across `--jobs` and warm/cold knowledge), a re-run
//! after a crash converges on exactly the digest the lost run would
//! have produced.
//!
//! # On-disk format
//!
//! Everything little-endian via [`smartly_sat::codec`]:
//!
//! ```text
//! header:  magic "SMJL" (4 bytes), version u32 = 1
//! record:  payload_len u32, checksum u64 = fnv64(payload), payload
//! payload: kind u8, then kind-specific fields
//!   kind 1 = Accepted:  id u64, verify u8, timeout_ms u64,
//!                       level (u32 len + utf8), source (u32 len + utf8)
//!   kind 2 = Completed: id u64, status u8 (0 done / 1 failed / 2 poisoned),
//!                       digest, error, verilog (each u32 len + utf8),
//!                       modules_poisoned u64
//! ```
//!
//! # Replay fault model
//!
//! * **Torn tail** — the process died mid-append, so the final frame is
//!   incomplete. Replay keeps every record before it, truncates the
//!   file back to the last good offset (so the next append starts on a
//!   clean frame boundary), and reports the truncated byte count.
//! * **Checksum flip** — the frame is complete but `fnv64(payload)`
//!   disagrees with the stored checksum (bit rot). The record is
//!   skipped, counted in [`Replay::corrupt_records`], and replay
//!   continues with the next frame — one rotten record does not orphan
//!   the rest of the log.
//! * **Missing or empty file** — a cold start: no jobs, no error.
//! * **Foreign header** — the file exists but is not a journal; replay
//!   refuses rather than destroying someone else's data.
//!
//! Fail points: `server.journal.append` faults the record write and
//! `server.journal.fsync` faults the durability barrier, so the chaos
//! suite can pin the accept-path contract (an unjournalable job is
//! rejected, never silently accepted).

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use smartly_failpoint as fail;
use smartly_sat::codec::{fnv64, ByteReader, ByteWriter};

/// Fail point on the journal's record write (`write_all`).
pub const FP_JOURNAL_APPEND: &str = "server.journal.append";
/// Fail point on the journal's fsync barrier after a record write.
pub const FP_JOURNAL_FSYNC: &str = "server.journal.fsync";

const MAGIC: &[u8; 4] = b"SMJL";
const VERSION: u32 = 1;
const HEADER_LEN: u64 = 8;
/// Frame prefix: payload_len u32 + checksum u64.
const FRAME_PREFIX: usize = 12;
/// Upper bound on one record's payload; anything larger during replay
/// is treated as a torn/garbage frame, not an allocation request.
const MAX_PAYLOAD: u32 = 64 << 20;

const KIND_ACCEPTED: u8 = 1;
const KIND_COMPLETED: u8 = 2;

/// How a journaled job ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobStatus {
    /// The optimizer ran to completion (possibly with degraded
    /// modules — see `modules_poisoned`).
    Done,
    /// The job failed outright (frontend or pipeline error).
    Failed,
    /// The server poisoned the job: the worker panicked, wedged past
    /// its watchdog grace, or was cancelled by drain.
    Poisoned,
}

impl JobStatus {
    fn to_u8(self) -> u8 {
        match self {
            JobStatus::Done => 0,
            JobStatus::Failed => 1,
            JobStatus::Poisoned => 2,
        }
    }

    fn from_u8(v: u8) -> Option<JobStatus> {
        match v {
            0 => Some(JobStatus::Done),
            1 => Some(JobStatus::Failed),
            2 => Some(JobStatus::Poisoned),
            _ => None,
        }
    }

    /// Wire name, as the `status` field of protocol responses.
    pub fn name(self) -> &'static str {
        match self {
            JobStatus::Done => "done",
            JobStatus::Failed => "failed",
            JobStatus::Poisoned => "poisoned",
        }
    }
}

/// One journal record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Record {
    /// A job was admitted: enough to re-run it after a crash.
    Accepted {
        /// Server-assigned job id.
        id: u64,
        /// The Verilog source to optimize.
        source: String,
        /// Optimization level name (`"full"`, `"light"`, ...).
        level: String,
        /// Per-job wall-clock budget; 0 = no deadline.
        timeout_ms: u64,
        /// Whether SAT-based equivalence verification was requested.
        verify: bool,
    },
    /// A job reached a terminal state.
    Completed {
        /// Server-assigned job id.
        id: u64,
        /// Terminal status.
        status: JobStatus,
        /// The timing-free digest (empty unless `Done`).
        digest: String,
        /// Error text (empty unless `Failed` / `Poisoned`).
        error: String,
        /// Optimized Verilog (empty unless `Done`).
        verilog: String,
        /// Modules the driver poisoned *within* a `Done` run.
        modules_poisoned: u64,
    },
}

impl Record {
    fn id(&self) -> u64 {
        match self {
            Record::Accepted { id, .. } | Record::Completed { id, .. } => *id,
        }
    }

    fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        match self {
            Record::Accepted {
                id,
                source,
                level,
                timeout_ms,
                verify,
            } => {
                w.put_u8(KIND_ACCEPTED);
                w.put_u64(*id);
                w.put_u8(u8::from(*verify));
                w.put_u64(*timeout_ms);
                put_str(&mut w, level);
                put_str(&mut w, source);
            }
            Record::Completed {
                id,
                status,
                digest,
                error,
                verilog,
                modules_poisoned,
            } => {
                w.put_u8(KIND_COMPLETED);
                w.put_u64(*id);
                w.put_u8(status.to_u8());
                put_str(&mut w, digest);
                put_str(&mut w, error);
                put_str(&mut w, verilog);
                w.put_u64(*modules_poisoned);
            }
        }
        w.into_bytes()
    }

    fn decode(payload: &[u8]) -> Option<Record> {
        let mut r = ByteReader::new(payload);
        let record = match r.u8().ok()? {
            KIND_ACCEPTED => {
                let id = r.u64().ok()?;
                let verify = r.u8().ok()? != 0;
                let timeout_ms = r.u64().ok()?;
                let level = get_str(&mut r)?;
                let source = get_str(&mut r)?;
                Record::Accepted {
                    id,
                    source,
                    level,
                    timeout_ms,
                    verify,
                }
            }
            KIND_COMPLETED => {
                let id = r.u64().ok()?;
                let status = JobStatus::from_u8(r.u8().ok()?)?;
                let digest = get_str(&mut r)?;
                let error = get_str(&mut r)?;
                let verilog = get_str(&mut r)?;
                let modules_poisoned = r.u64().ok()?;
                Record::Completed {
                    id,
                    status,
                    digest,
                    error,
                    verilog,
                    modules_poisoned,
                }
            }
            _ => return None,
        };
        // a trailing-garbage payload is corrupt, not "close enough"
        (r.remaining() == 0).then_some(record)
    }
}

fn put_str(w: &mut ByteWriter, s: &str) {
    w.put_u32(u32::try_from(s.len()).expect("string under 4 GiB"));
    w.put_bytes(s.as_bytes());
}

fn get_str(r: &mut ByteReader<'_>) -> Option<String> {
    let len = r.u32().ok()? as usize;
    let bytes = r.bytes(len).ok()?;
    String::from_utf8(bytes.to_vec()).ok()
}

/// What a journal replay recovered.
#[derive(Debug, Default)]
pub struct Replay {
    /// Every intact record, in append order.
    pub records: Vec<Record>,
    /// Complete frames whose checksum did not match — skipped.
    pub corrupt_records: u64,
    /// Bytes of torn tail truncated off the file.
    pub truncated_bytes: u64,
    /// Highest job id seen (0 on a cold start); the server resumes its
    /// id counter above this so replayed and new jobs never collide.
    pub max_id: u64,
}

/// Journal I/O failure, tagged with the operation that failed.
#[derive(Debug)]
pub struct JournalError {
    /// What the journal was doing (`"open"`, `"append"`, `"fsync"`, ...).
    pub op: &'static str,
    /// The underlying description.
    pub message: String,
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "journal {}: {}", self.op, self.message)
    }
}

impl std::error::Error for JournalError {}

fn jerr(op: &'static str, e: impl std::fmt::Display) -> JournalError {
    JournalError {
        op,
        message: e.to_string(),
    }
}

/// An open, append-only job journal.
#[derive(Debug)]
pub struct Journal {
    file: File,
    path: PathBuf,
}

impl Journal {
    /// Opens (or creates) the journal at `path` and replays it.
    ///
    /// A missing or empty file is a cold start. A torn tail is
    /// truncated so subsequent appends land on a frame boundary. A file
    /// that exists but does not start with the journal magic is refused.
    pub fn open(path: &Path) -> Result<(Journal, Replay), JournalError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(|e| jerr("open", format!("{}: {e}", path.display())))?;

        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes).map_err(|e| jerr("read", e))?;

        let mut replay = Replay::default();
        let good_end;
        if bytes.is_empty() {
            // cold start: stamp a fresh header
            let mut w = ByteWriter::new();
            w.put_bytes(MAGIC);
            w.put_u32(VERSION);
            file.write_all(&w.into_bytes())
                .map_err(|e| jerr("append", e))?;
            file.sync_data().map_err(|e| jerr("fsync", e))?;
            good_end = HEADER_LEN;
        } else {
            if bytes.len() < HEADER_LEN as usize || &bytes[..4] != MAGIC {
                return Err(jerr(
                    "open",
                    format!("{}: not a smartly job journal", path.display()),
                ));
            }
            let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
            if version != VERSION {
                return Err(jerr(
                    "open",
                    format!("{}: unsupported journal version {version}", path.display()),
                ));
            }
            good_end = scan(&bytes, &mut replay);
            let torn = bytes.len() as u64 - good_end;
            if torn > 0 {
                replay.truncated_bytes = torn;
                file.set_len(good_end).map_err(|e| jerr("truncate", e))?;
                file.sync_data().map_err(|e| jerr("fsync", e))?;
            }
        }

        // position the write cursor at the recovered end
        use std::io::Seek;
        file.seek(std::io::SeekFrom::Start(good_end))
            .map_err(|e| jerr("seek", e))?;

        replay.max_id = replay.records.iter().map(Record::id).max().unwrap_or(0);
        Ok((
            Journal {
                file,
                path: path.to_path_buf(),
            },
            replay,
        ))
    }

    /// The journal's path (for operator-facing messages).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record and fsyncs it. On return the record is
    /// durable: a crash on the next instruction replays it.
    pub fn append(&mut self, record: &Record) -> Result<(), JournalError> {
        let payload = record.encode();
        let mut w = ByteWriter::new();
        w.put_u32(u32::try_from(payload.len()).expect("payload under 4 GiB"));
        w.put_u64(fnv64(&payload));
        w.put_bytes(&payload);

        if fail::check(FP_JOURNAL_APPEND) {
            return Err(jerr("append", "injected fault (server.journal.append)"));
        }
        self.file
            .write_all(&w.into_bytes())
            .map_err(|e| jerr("append", e))?;

        if fail::check(FP_JOURNAL_FSYNC) {
            return Err(jerr("fsync", "injected fault (server.journal.fsync)"));
        }
        self.file.sync_data().map_err(|e| jerr("fsync", e))
    }
}

/// Walks frames from the header onwards; returns the offset just past
/// the last *complete* frame (intact or checksum-corrupt — only an
/// incomplete frame marks the torn tail).
fn scan(bytes: &[u8], replay: &mut Replay) -> u64 {
    let mut pos = HEADER_LEN as usize;
    while pos < bytes.len() {
        if bytes.len() - pos < FRAME_PREFIX {
            break; // torn mid-prefix
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes"));
        if len > MAX_PAYLOAD {
            break; // garbage length: treat the rest as torn
        }
        let checksum = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().expect("8 bytes"));
        let body_start = pos + FRAME_PREFIX;
        let body_end = body_start + len as usize;
        if body_end > bytes.len() {
            break; // torn mid-payload
        }
        let payload = &bytes[body_start..body_end];
        if fnv64(payload) != checksum {
            replay.corrupt_records += 1;
        } else {
            match Record::decode(payload) {
                Some(record) => replay.records.push(record),
                None => replay.corrupt_records += 1,
            }
        }
        pos = body_end;
    }
    pos as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard};

    // the fail-point registry is process-global, so every test that
    // appends serializes with the one test that arms a journal site
    static LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn tmp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "smartly_journal_{tag}_{}_{:?}.wal",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    fn accepted(id: u64) -> Record {
        Record::Accepted {
            id,
            source: format!("module m{id}; endmodule\n"),
            level: "full".into(),
            timeout_ms: 250,
            verify: id.is_multiple_of(2),
        }
    }

    fn completed(id: u64) -> Record {
        Record::Completed {
            id,
            status: JobStatus::Done,
            digest: format!("{{\"digest\":{id}}}"),
            error: String::new(),
            verilog: "module m; endmodule\n".into(),
            modules_poisoned: 0,
        }
    }

    #[test]
    fn records_round_trip_through_the_codec() {
        for record in [
            accepted(7),
            completed(7),
            Record::Completed {
                id: 9,
                status: JobStatus::Poisoned,
                digest: String::new(),
                error: "watchdog: exceeded budget".into(),
                verilog: String::new(),
                modules_poisoned: 3,
            },
        ] {
            assert_eq!(Record::decode(&record.encode()), Some(record));
        }
        assert_eq!(Record::decode(&[]), None);
        assert_eq!(Record::decode(&[99]), None, "unknown kind");
        let mut long = accepted(1).encode();
        long.push(0); // trailing garbage
        assert_eq!(Record::decode(&long), None);
    }

    #[test]
    fn clean_restart_replays_everything_in_order() {
        let _g = locked();
        let path = tmp("clean");
        let _ = std::fs::remove_file(&path);
        {
            let (mut j, replay) = Journal::open(&path).expect("cold open");
            assert!(replay.records.is_empty());
            assert_eq!(replay.max_id, 0);
            j.append(&accepted(1)).expect("append");
            j.append(&accepted(2)).expect("append");
            j.append(&completed(1)).expect("append");
        }
        let (_, replay) = Journal::open(&path).expect("warm open");
        assert_eq!(replay.records, vec![accepted(1), accepted(2), completed(1)]);
        assert_eq!(replay.corrupt_records, 0);
        assert_eq!(replay.truncated_bytes, 0);
        assert_eq!(replay.max_id, 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_truncated_and_the_prefix_survives() {
        let _g = locked();
        let path = tmp("torn");
        let _ = std::fs::remove_file(&path);
        {
            let (mut j, _) = Journal::open(&path).expect("cold open");
            j.append(&accepted(1)).expect("append");
            j.append(&accepted(2)).expect("append");
        }
        let full = std::fs::read(&path).expect("read");
        // tear the final record in half
        let torn_len = full.len() - 9;
        std::fs::write(&path, &full[..torn_len]).expect("tear");

        let (mut j, replay) = Journal::open(&path).expect("recovering open");
        assert_eq!(replay.records, vec![accepted(1)]);
        assert!(replay.truncated_bytes > 0, "tail was measured");
        assert_eq!(replay.corrupt_records, 0);

        // the truncated file accepts appends on a clean boundary
        j.append(&accepted(3)).expect("append after recovery");
        drop(j);
        let (_, replay) = Journal::open(&path).expect("reopen");
        assert_eq!(replay.records, vec![accepted(1), accepted(3)]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn checksum_flip_skips_one_record_and_keeps_the_rest() {
        let _g = locked();
        let path = tmp("flip");
        let _ = std::fs::remove_file(&path);
        let second_start;
        {
            let (mut j, _) = Journal::open(&path).expect("cold open");
            j.append(&accepted(1)).expect("append");
            second_start = std::fs::metadata(&path).expect("meta").len() as usize;
            j.append(&accepted(2)).expect("append");
            j.append(&completed(2)).expect("append");
        }
        let mut bytes = std::fs::read(&path).expect("read");
        // flip one payload byte of record 2, leaving its framing intact
        bytes[second_start + FRAME_PREFIX + 3] ^= 0x40;
        std::fs::write(&path, &bytes).expect("corrupt");

        let (_, replay) = Journal::open(&path).expect("open");
        assert_eq!(replay.records, vec![accepted(1), completed(2)]);
        assert_eq!(replay.corrupt_records, 1);
        assert_eq!(replay.truncated_bytes, 0, "framing intact, nothing torn");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn foreign_files_are_refused() {
        let path = tmp("foreign");
        std::fs::write(&path, b"definitely not a journal").expect("write");
        let err = Journal::open(&path).expect_err("refused");
        assert_eq!(err.op, "open");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn append_failpoints_surface_as_errors() {
        let _g = locked();
        let path = tmp("failpoint");
        let _ = std::fs::remove_file(&path);
        let (mut j, _) = Journal::open(&path).expect("cold open");
        fail::arm(FP_JOURNAL_APPEND, "hit:1").expect("arm");
        let err = j.append(&accepted(1)).expect_err("injected");
        assert_eq!(err.op, "append");
        j.append(&accepted(1)).expect("next append is clean");
        fail::disarm(FP_JOURNAL_APPEND);
        let _ = std::fs::remove_file(&path);
    }
}
