//! `smartly serve`: a crash-recoverable optimization daemon.
//!
//! This crate is the service wrapper around the optimizer — and *only*
//! the wrapper: it depends on the shared codec/cancellation crate and
//! the fail-point registry, never on the optimizer itself. The daemon
//! machinery is generic over a [`JobRunner`]; the `smartly` binary
//! injects a driver-backed runner, and the test suites inject mocks
//! (wedging, panicking, instant) to pin the fault ladder without
//! paying for real optimizations.
//!
//! # Shape
//!
//! A [`Server`] listens on a Unix socket speaking one JSON object per
//! line ([`protocol`]): `submit` / `status` / `result` / `health` /
//! `drain`. Accepted jobs are journaled ([`journal`]) *before* the
//! submitter sees `ok`, executed on a small worker pool, and journaled
//! again on completion — so a SIGKILL at any instruction boundary
//! loses no accepted work: restart replays the journal, completed jobs
//! come back queryable, unfinished jobs re-run, and the optimizer's
//! deterministic digest makes the re-run byte-identical to the run the
//! crash stole.
//!
//! # Fault ladder
//!
//! * **Admission control** — a bounded queue; a full queue is an
//!   explicit `{"rejected":"overloaded"}`, never an unbounded buffer.
//! * **Per-job deadlines** — each job runs under a cooperative
//!   [`Deadline`]; a budgeted job that exceeds its budget degrades
//!   inside the optimizer (timed-out modules revert, the job still
//!   completes).
//! * **Watchdog** — a job wedged past its budget plus a grace period
//!   (stuck in non-cooperative code) is marked `poisoned`, its worker
//!   abandoned and replaced, and the queue keeps moving.
//! * **Panic isolation** — a panicking runner poisons one job, not the
//!   daemon.
//! * **Graceful drain** — SIGTERM or the `drain` verb stops
//!   admissions, lets running jobs finish within a grace window, then
//!   trips their deadlines, then force-poisons stragglers; queued jobs
//!   stay journaled for the next start. [`Server::run`] returns a
//!   [`DrainReport`] and the process exits 0.
//!
//! Fail points: `server.accept` injects admission rejections,
//! `server.journal.append` / `server.journal.fsync` fault the journal
//! (an unjournalable submit is *rejected* — durability is part of the
//! accept contract).

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod journal;
pub mod protocol;
pub mod wire;

use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use smartly_failpoint as fail;
use smartly_sat::Deadline;

use journal::{JobStatus, Journal, Record};
use protocol::{error_response, parse_request, rejected_response, Request};
use wire::Value;

/// Fail point on job admission: when armed, `submit` is rejected as
/// `overloaded` regardless of actual queue depth.
pub const FP_ACCEPT: &str = "server.accept";

pub use journal::{FP_JOURNAL_APPEND, FP_JOURNAL_FSYNC};

/// Everything a worker needs to run one job.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// Server-assigned id.
    pub id: u64,
    /// Verilog source text.
    pub source: String,
    /// Optimization level name (the runner validates it).
    pub level: String,
    /// Wall-clock budget in milliseconds; 0 = no deadline.
    pub timeout_ms: u64,
    /// Whether to run SAT equivalence verification.
    pub verify: bool,
}

/// What one job produced.
#[derive(Clone, Debug)]
pub enum RunOutcome {
    /// The optimizer completed (possibly with internally degraded
    /// modules — reverted, timed-out or poisoned by the driver's own
    /// isolation; the job as a whole is still `done`).
    Done {
        /// The timing-free digest of the design report.
        digest: String,
        /// The optimized design as Verilog.
        verilog: String,
        /// Modules the driver poisoned inside this run.
        modules_poisoned: u64,
    },
    /// The job failed outright (bad source, unknown level, ...).
    Failed {
        /// Human-readable failure description.
        error: String,
    },
}

/// The execution seam the daemon is generic over.
///
/// The `smartly` binary implements this with the driver's
/// `optimize_source`; tests implement it with mocks. Runners must be
/// panic-safe in the ordinary sense — the server wraps every call in
/// `catch_unwind` and a panic poisons only that job.
pub trait JobRunner: Send + Sync {
    /// Runs one job to completion, honoring `deadline` cooperatively.
    fn run(&self, spec: &JobSpec, deadline: &Deadline) -> RunOutcome;

    /// Extra counters for the `health` verb (e.g. knowledge-base
    /// statistics). Keys are flat snake_case names.
    fn health(&self) -> Vec<(String, u64)> {
        Vec::new()
    }
}

/// Daemon tuning. Build one with [`ServerConfig::new`] and override
/// fields as needed.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Path of the Unix socket to listen on.
    pub socket: PathBuf,
    /// Path of the job journal; `None` disables crash recovery.
    pub journal: Option<PathBuf>,
    /// Bounded queue depth; submits beyond it are rejected.
    pub queue_capacity: usize,
    /// Worker threads (each job is internally parallel in the real
    /// runner, so 1 is the sensible default).
    pub workers: usize,
    /// Default per-job budget applied when a submit carries
    /// `timeout_ms: 0`; 0 = unlimited.
    pub default_timeout_ms: u64,
    /// Slack past a job's budget before the watchdog poisons it.
    pub watchdog_grace: Duration,
    /// Watchdog poll interval.
    pub watchdog_poll: Duration,
    /// How long drain waits for running jobs — once to finish
    /// naturally, then once more after tripping their deadlines.
    pub drain_grace: Duration,
    /// Install SIGTERM/SIGINT handlers that trigger drain. The CLI
    /// sets this; in-process tests leave it off.
    pub handle_signals: bool,
}

impl ServerConfig {
    /// A config with production defaults, listening on `socket`.
    pub fn new(socket: impl Into<PathBuf>) -> ServerConfig {
        ServerConfig {
            socket: socket.into(),
            journal: None,
            queue_capacity: 64,
            workers: 1,
            default_timeout_ms: 0,
            watchdog_grace: Duration::from_secs(2),
            watchdog_poll: Duration::from_millis(20),
            drain_grace: Duration::from_secs(2),
            handle_signals: false,
        }
    }
}

/// Monotonic event counters, all visible through `health`.
#[derive(Clone, Debug, Default)]
pub struct Counters {
    /// Jobs admitted (journaled and queued).
    pub accepted: u64,
    /// Submits refused because the queue was full (or `server.accept`
    /// fired).
    pub rejected_overloaded: u64,
    /// Submits refused because the daemon was draining.
    pub rejected_draining: u64,
    /// Submits refused because the accept-path journal append failed.
    pub rejected_journal: u64,
    /// Jobs that finished `done`.
    pub completed: u64,
    /// Jobs that finished `failed`.
    pub failed: u64,
    /// Jobs the server poisoned (panic, watchdog, drain cancel).
    pub poisoned: u64,
    /// Completion-side journal appends that failed (the job result
    /// stays served from memory; a restart re-runs the job).
    pub journal_append_failed: u64,
    /// Corrupt journal records skipped during replay.
    pub journal_corrupt_records: u64,
    /// Torn-tail bytes truncated during replay.
    pub journal_truncated_bytes: u64,
    /// Terminal jobs restored from the journal at startup.
    pub replayed_completed: u64,
    /// Unfinished jobs re-queued from the journal at startup.
    pub replayed_requeued: u64,
}

/// A job's terminal result.
#[derive(Clone, Debug)]
struct Terminal {
    status: JobStatus,
    digest: String,
    error: String,
    verilog: String,
    modules_poisoned: u64,
}

#[derive(Clone, Debug)]
enum Phase {
    Queued,
    Running {
        started: Instant,
        deadline: Deadline,
    },
    Terminal(Terminal),
}

#[derive(Debug)]
struct JobEntry {
    spec: JobSpec,
    phase: Phase,
}

#[derive(Default)]
struct State {
    jobs: HashMap<u64, JobEntry>,
    queue: VecDeque<u64>,
    next_id: u64,
    draining: bool,
    counters: Counters,
    journal: Option<Journal>,
}

struct Inner {
    state: Mutex<State>,
    cv: Condvar,
    /// Drain requested (signal, `drain` verb, or [`ServerHandle`]).
    shutdown: AtomicBool,
    /// Teardown: watchdog and connection threads exit.
    stopping: AtomicBool,
    started: Instant,
    config: ServerConfig,
    runner: Arc<dyn JobRunner>,
}

impl Inner {
    fn lock(&self) -> MutexGuard<'_, State> {
        // a panicking runner is caught before it can poison this lock,
        // but recover anyway: the state is counters + phases, all valid
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || signal::drain_requested()
    }
}

/// What drain left behind; returned by [`Server::run`].
#[derive(Clone, Debug)]
pub struct DrainReport {
    /// Jobs that finished `done` over the daemon's lifetime.
    pub completed: u64,
    /// Jobs that finished `failed`.
    pub failed: u64,
    /// Jobs poisoned (including any drain force-poisoned).
    pub poisoned: u64,
    /// Jobs still queued at shutdown — journaled, so the next start
    /// re-runs them.
    pub queued_for_restart: u64,
    /// True when no job had to be force-poisoned by drain.
    pub clean: bool,
}

/// Errors binding or running the daemon.
#[derive(Debug)]
pub struct ServerError {
    /// What failed (`"bind"`, `"journal"`, ...).
    pub op: &'static str,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "server {}: {}", self.op, self.message)
    }
}

impl std::error::Error for ServerError {}

/// A clonable remote control for an in-process server: lets tests and
/// embedding code request drain without a socket round trip.
#[derive(Clone)]
pub struct ServerHandle {
    inner: Arc<Inner>,
}

impl ServerHandle {
    /// Requests graceful drain, as SIGTERM would.
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.cv.notify_all();
    }

    /// Snapshot of the counters (for assertions).
    pub fn counters(&self) -> Counters {
        self.inner.lock().counters.clone()
    }
}

/// The daemon: bind, then [`run`](Server::run) until drain.
pub struct Server {
    inner: Arc<Inner>,
    listener: UnixListener,
    replayed: Vec<u64>,
}

impl Server {
    /// Opens the journal (replaying it), binds the socket, and
    /// prepares the daemon. No threads start until [`Server::run`].
    ///
    /// A leftover socket file from a crashed daemon is removed and
    /// rebound; a socket with a *live* daemon behind it is an error.
    pub fn bind(config: ServerConfig, runner: Arc<dyn JobRunner>) -> Result<Server, ServerError> {
        let mut state = State {
            next_id: 1,
            ..State::default()
        };
        let mut replayed = Vec::new();

        if let Some(path) = &config.journal {
            let (journal, replay) = Journal::open(path).map_err(|e| ServerError {
                op: "journal",
                message: e.to_string(),
            })?;
            state.counters.journal_corrupt_records = replay.corrupt_records;
            state.counters.journal_truncated_bytes = replay.truncated_bytes;
            state.next_id = replay.max_id + 1;
            for record in replay.records {
                match record {
                    Record::Accepted {
                        id,
                        source,
                        level,
                        timeout_ms,
                        verify,
                    } => {
                        state.jobs.insert(
                            id,
                            JobEntry {
                                spec: JobSpec {
                                    id,
                                    source,
                                    level,
                                    timeout_ms,
                                    verify,
                                },
                                phase: Phase::Queued,
                            },
                        );
                    }
                    Record::Completed {
                        id,
                        status,
                        digest,
                        error,
                        verilog,
                        modules_poisoned,
                    } => {
                        let terminal = Terminal {
                            status,
                            digest,
                            error,
                            verilog,
                            modules_poisoned,
                        };
                        // an orphan completion (its accept record was
                        // the corrupt one) still serves results
                        let entry = state.jobs.entry(id).or_insert_with(|| JobEntry {
                            spec: JobSpec {
                                id,
                                source: String::new(),
                                level: String::new(),
                                timeout_ms: 0,
                                verify: false,
                            },
                            phase: Phase::Queued,
                        });
                        entry.phase = Phase::Terminal(terminal);
                    }
                }
            }
            let mut requeue: Vec<u64> = state
                .jobs
                .iter()
                .filter(|(_, e)| matches!(e.phase, Phase::Queued))
                .map(|(&id, _)| id)
                .collect();
            requeue.sort_unstable();
            state.counters.replayed_requeued = requeue.len() as u64;
            state.counters.replayed_completed =
                state.jobs.len() as u64 - state.counters.replayed_requeued;
            replayed.clone_from(&requeue);
            state.queue.extend(requeue);
            state.journal = Some(journal);
        }

        let listener = bind_socket(&config.socket)?;
        listener.set_nonblocking(true).map_err(|e| ServerError {
            op: "bind",
            message: e.to_string(),
        })?;

        Ok(Server {
            inner: Arc::new(Inner {
                state: Mutex::new(state),
                cv: Condvar::new(),
                shutdown: AtomicBool::new(false),
                stopping: AtomicBool::new(false),
                started: Instant::now(),
                config,
                runner,
            }),
            listener,
            replayed,
        })
    }

    /// Job ids re-queued from the journal at startup (for logging).
    pub fn replayed_jobs(&self) -> &[u64] {
        &self.replayed
    }

    /// A drain control for this server.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Runs the daemon: workers, watchdog, accept loop — until a
    /// drain request — then the drain ladder. Returns what was left.
    pub fn run(self) -> DrainReport {
        if self.inner.config.handle_signals {
            signal::install();
        }
        for _ in 0..self.inner.config.workers.max(1) {
            let inner = Arc::clone(&self.inner);
            std::thread::spawn(move || worker_loop(&inner));
        }
        {
            let inner = Arc::clone(&self.inner);
            std::thread::spawn(move || watchdog_loop(&inner));
        }

        // accept loop: nonblocking so drain requests are noticed fast
        while !self.inner.shutdown_requested() {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let inner = Arc::clone(&self.inner);
                    std::thread::spawn(move || connection_loop(&inner, stream));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(10)),
            }
        }

        let report = drain(&self.inner);
        self.inner.stopping.store(true, Ordering::SeqCst);
        self.inner.cv.notify_all();
        let _ = std::fs::remove_file(&self.inner.config.socket);
        report
    }
}

/// Removes a stale socket file (crashed predecessor) but refuses to
/// displace a live daemon.
fn bind_socket(path: &std::path::Path) -> Result<UnixListener, ServerError> {
    match UnixListener::bind(path) {
        Ok(l) => Ok(l),
        Err(e) if e.kind() == std::io::ErrorKind::AddrInUse => {
            if UnixStream::connect(path).is_ok() {
                return Err(ServerError {
                    op: "bind",
                    message: format!(
                        "{}: another daemon is already serving this socket",
                        path.display()
                    ),
                });
            }
            std::fs::remove_file(path).map_err(|e| ServerError {
                op: "bind",
                message: format!("{}: stale socket: {e}", path.display()),
            })?;
            UnixListener::bind(path).map_err(|e| ServerError {
                op: "bind",
                message: format!("{}: {e}", path.display()),
            })
        }
        Err(e) => Err(ServerError {
            op: "bind",
            message: format!("{}: {e}", path.display()),
        }),
    }
}

// ---------------------------------------------------------------- workers

fn worker_loop(inner: &Arc<Inner>) {
    loop {
        let (spec, deadline) = {
            let mut st = inner.lock();
            loop {
                if inner.shutdown_requested() || st.draining {
                    return;
                }
                if let Some(id) = st.queue.pop_front() {
                    let deadline = if st.jobs[&id].spec.timeout_ms > 0 {
                        Deadline::after(Duration::from_millis(st.jobs[&id].spec.timeout_ms))
                    } else {
                        // trippable stand-in for "no deadline": drain
                        // and the watchdog can still cancel the job
                        Deadline::after(Duration::from_secs(86_400 * 365))
                    };
                    let entry = st.jobs.get_mut(&id).expect("queued job exists");
                    entry.phase = Phase::Running {
                        started: Instant::now(),
                        deadline: deadline.clone(),
                    };
                    break (entry.spec.clone(), deadline);
                }
                let (guard, _) = inner
                    .cv
                    .wait_timeout(st, Duration::from_millis(100))
                    .unwrap_or_else(|e| e.into_inner());
                st = guard;
            }
        };

        let id = spec.id;
        let runner = Arc::clone(&inner.runner);
        let outcome = catch_unwind(AssertUnwindSafe(|| runner.run(&spec, &deadline)));

        let mut st = inner.lock();
        let abandoned = !matches!(
            st.jobs.get(&id).map(|e| &e.phase),
            Some(Phase::Running { .. })
        );
        if abandoned {
            // the watchdog poisoned this job and spawned our
            // replacement: drop the late result and retire
            return;
        }
        let terminal = match outcome {
            Ok(RunOutcome::Done {
                digest,
                verilog,
                modules_poisoned,
            }) => Terminal {
                status: JobStatus::Done,
                digest,
                error: String::new(),
                verilog,
                modules_poisoned,
            },
            Ok(RunOutcome::Failed { error }) => Terminal {
                status: JobStatus::Failed,
                digest: String::new(),
                error,
                verilog: String::new(),
                modules_poisoned: 0,
            },
            Err(panic) => Terminal {
                status: JobStatus::Poisoned,
                digest: String::new(),
                error: format!("job panicked: {}", panic_message(&*panic)),
                verilog: String::new(),
                modules_poisoned: 0,
            },
        };
        finish_job(&mut st, id, terminal);
        inner.cv.notify_all();
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Records a terminal phase, bumps counters, journals the completion.
/// A completion-side journal failure is absorbed (counted); the result
/// still serves from memory and a restart simply re-runs the job.
fn finish_job(st: &mut State, id: u64, terminal: Terminal) {
    match terminal.status {
        JobStatus::Done => st.counters.completed += 1,
        JobStatus::Failed => st.counters.failed += 1,
        JobStatus::Poisoned => st.counters.poisoned += 1,
    }
    let record = Record::Completed {
        id,
        status: terminal.status,
        digest: terminal.digest.clone(),
        error: terminal.error.clone(),
        verilog: terminal.verilog.clone(),
        modules_poisoned: terminal.modules_poisoned,
    };
    if let Some(journal) = &mut st.journal {
        if journal.append(&record).is_err() {
            st.counters.journal_append_failed += 1;
        }
    }
    if let Some(entry) = st.jobs.get_mut(&id) {
        entry.phase = Phase::Terminal(terminal);
    }
}

// --------------------------------------------------------------- watchdog

fn watchdog_loop(inner: &Arc<Inner>) {
    while !inner.stopping.load(Ordering::SeqCst) {
        std::thread::sleep(inner.config.watchdog_poll);
        let now = Instant::now();
        let mut st = inner.lock();
        let mut wedged = Vec::new();
        for (&id, entry) in &st.jobs {
            if let Phase::Running { started, deadline } = &entry.phase {
                if entry.spec.timeout_ms == 0 {
                    continue; // unbudgeted jobs are never watchdogged
                }
                let budget = Duration::from_millis(entry.spec.timeout_ms);
                if now.duration_since(*started) > budget + inner.config.watchdog_grace {
                    deadline.trip();
                    wedged.push(id);
                }
            }
        }
        for id in wedged {
            finish_job(
                &mut st,
                id,
                Terminal {
                    status: JobStatus::Poisoned,
                    digest: String::new(),
                    error: "watchdog: job exceeded its budget plus grace; worker abandoned"
                        .to_string(),
                    verilog: String::new(),
                    modules_poisoned: 0,
                },
            );
            // the wedged worker is lost to us; keep the pool at size
            let replacement = Arc::clone(inner);
            std::thread::spawn(move || worker_loop(&replacement));
            inner.cv.notify_all();
        }
    }
}

// ------------------------------------------------------------------ drain

fn drain(inner: &Arc<Inner>) -> DrainReport {
    {
        let mut st = inner.lock();
        st.draining = true;
    }
    inner.cv.notify_all();

    let running = |st: &State| {
        st.jobs
            .values()
            .filter(|e| matches!(e.phase, Phase::Running { .. }))
            .count()
    };

    // rung 1: let running jobs finish naturally
    let mut clean = wait_drained(inner, running);

    // rung 2: trip their deadlines, wait again
    if !clean {
        let st = inner.lock();
        for entry in st.jobs.values() {
            if let Phase::Running { deadline, .. } = &entry.phase {
                deadline.trip();
            }
        }
        drop(st);
        clean = wait_drained(inner, running);
    }

    // rung 3: force-poison stragglers so run() can return
    let mut st = inner.lock();
    if !clean {
        let stuck: Vec<u64> = st
            .jobs
            .iter()
            .filter(|(_, e)| matches!(e.phase, Phase::Running { .. }))
            .map(|(&id, _)| id)
            .collect();
        for id in stuck {
            finish_job(
                &mut st,
                id,
                Terminal {
                    status: JobStatus::Poisoned,
                    digest: String::new(),
                    error: "drain: job cancelled at shutdown".to_string(),
                    verilog: String::new(),
                    modules_poisoned: 0,
                },
            );
        }
    }
    inner.cv.notify_all();
    DrainReport {
        completed: st.counters.completed,
        failed: st.counters.failed,
        poisoned: st.counters.poisoned,
        queued_for_restart: st.queue.len() as u64,
        clean,
    }
}

fn wait_drained(inner: &Arc<Inner>, running: impl Fn(&State) -> usize) -> bool {
    let deadline = Instant::now() + inner.config.drain_grace;
    loop {
        if running(&inner.lock()) == 0 {
            return true;
        }
        if Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

// ------------------------------------------------------------ connections

fn connection_loop(inner: &Arc<Inner>, stream: UnixStream) {
    if stream
        .set_read_timeout(Some(Duration::from_millis(200)))
        .is_err()
    {
        return;
    }
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut writer = std::io::BufWriter::new(write_half);
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return, // client hung up
            Ok(_) => {
                if line.trim().is_empty() {
                    continue;
                }
                let response = dispatch(inner, &line);
                let mut out = response.render();
                out.push('\n');
                if writer.write_all(out.as_bytes()).is_err() || writer.flush().is_err() {
                    return;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if inner.stopping.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

fn dispatch(inner: &Arc<Inner>, line: &str) -> Value {
    let request = match parse_request(line) {
        Ok(r) => r,
        Err(e) => return error_response(&e),
    };
    match request {
        Request::Submit {
            source,
            level,
            timeout_ms,
            verify,
        } => submit(inner, source, level, timeout_ms, verify),
        Request::Status { id } => status(inner, id),
        Request::Result { id, wait, verilog } => result(inner, id, wait, verilog),
        Request::Health => health(inner),
        Request::Drain => {
            inner.shutdown.store(true, Ordering::SeqCst);
            inner.cv.notify_all();
            let mut v = Value::object();
            v.set("ok", Value::Bool(true));
            v.set("draining", Value::Bool(true));
            v
        }
    }
}

fn submit(
    inner: &Arc<Inner>,
    source: String,
    level: String,
    timeout_ms: u64,
    verify: bool,
) -> Value {
    let mut st = inner.lock();
    if st.draining || inner.shutdown_requested() {
        st.counters.rejected_draining += 1;
        return rejected_response("draining");
    }
    if st.queue.len() >= inner.config.queue_capacity || fail::check(FP_ACCEPT) {
        st.counters.rejected_overloaded += 1;
        return rejected_response("overloaded");
    }
    let timeout_ms = if timeout_ms == 0 {
        inner.config.default_timeout_ms
    } else {
        timeout_ms
    };
    let id = st.next_id;
    st.next_id += 1;
    let spec = JobSpec {
        id,
        source,
        level,
        timeout_ms,
        verify,
    };

    // durability is part of the accept contract: if the journal cannot
    // record the job, the submitter is told "no", not "trust me"
    if let Some(journal) = &mut st.journal {
        let record = Record::Accepted {
            id,
            source: spec.source.clone(),
            level: spec.level.clone(),
            timeout_ms: spec.timeout_ms,
            verify: spec.verify,
        };
        if journal.append(&record).is_err() {
            st.counters.rejected_journal += 1;
            return rejected_response("journal");
        }
    }

    st.jobs.insert(
        id,
        JobEntry {
            spec,
            phase: Phase::Queued,
        },
    );
    st.queue.push_back(id);
    st.counters.accepted += 1;
    drop(st);
    inner.cv.notify_all();

    let mut v = Value::object();
    v.set("ok", Value::Bool(true));
    v.set("id", Value::UInt(id));
    v
}

fn phase_name(phase: &Phase) -> &'static str {
    match phase {
        Phase::Queued => "queued",
        Phase::Running { .. } => "running",
        Phase::Terminal(t) => t.status.name(),
    }
}

fn status(inner: &Arc<Inner>, id: u64) -> Value {
    let st = inner.lock();
    match st.jobs.get(&id) {
        None => error_response(&format!("unknown job {id}")),
        Some(entry) => {
            let mut v = Value::object();
            v.set("ok", Value::Bool(true));
            v.set("id", Value::UInt(id));
            v.set("status", Value::Str(phase_name(&entry.phase).to_string()));
            v
        }
    }
}

fn result(inner: &Arc<Inner>, id: u64, wait: bool, want_verilog: bool) -> Value {
    let mut st = inner.lock();
    loop {
        let Some(entry) = st.jobs.get(&id) else {
            return error_response(&format!("unknown job {id}"));
        };
        if let Phase::Terminal(t) = &entry.phase {
            let mut v = Value::object();
            v.set("ok", Value::Bool(true));
            v.set("id", Value::UInt(id));
            v.set("status", Value::Str(t.status.name().to_string()));
            v.set("digest", Value::Str(t.digest.clone()));
            v.set("modules_poisoned", Value::UInt(t.modules_poisoned));
            if !t.error.is_empty() {
                v.set("error", Value::Str(t.error.clone()));
            }
            if want_verilog {
                v.set("verilog", Value::Str(t.verilog.clone()));
            }
            return v;
        }
        if !wait {
            let mut v = Value::object();
            v.set("ok", Value::Bool(true));
            v.set("id", Value::UInt(id));
            v.set("status", Value::Str(phase_name(&entry.phase).to_string()));
            return v;
        }
        if inner.stopping.load(Ordering::SeqCst)
            || (inner.shutdown_requested() && matches!(entry.phase, Phase::Queued))
        {
            // a queued job will not run again this lifetime; its
            // journal record re-runs it on the next start
            return error_response("draining: job deferred to next start");
        }
        let (guard, _) = inner
            .cv
            .wait_timeout(st, Duration::from_millis(100))
            .unwrap_or_else(|e| e.into_inner());
        st = guard;
    }
}

fn health(inner: &Arc<Inner>) -> Value {
    let st = inner.lock();
    let running = st
        .jobs
        .values()
        .filter(|e| matches!(e.phase, Phase::Running { .. }))
        .count() as u64;
    let c = &st.counters;
    let mut v = Value::object();
    v.set("ok", Value::Bool(true));
    v.set(
        "uptime_ms",
        Value::UInt(inner.started.elapsed().as_millis() as u64),
    );
    v.set("queue_depth", Value::UInt(st.queue.len() as u64));
    v.set("running", Value::UInt(running));
    v.set("draining", Value::Bool(st.draining));

    let mut jobs = Value::object();
    jobs.set("accepted", Value::UInt(c.accepted));
    jobs.set("completed", Value::UInt(c.completed));
    jobs.set("failed", Value::UInt(c.failed));
    jobs.set("poisoned", Value::UInt(c.poisoned));
    jobs.set("rejected_overloaded", Value::UInt(c.rejected_overloaded));
    jobs.set("rejected_draining", Value::UInt(c.rejected_draining));
    jobs.set("rejected_journal", Value::UInt(c.rejected_journal));
    jobs.set("replayed_completed", Value::UInt(c.replayed_completed));
    jobs.set("replayed_requeued", Value::UInt(c.replayed_requeued));
    v.set("jobs", jobs);

    let mut journal = Value::object();
    journal.set("corrupt_records", Value::UInt(c.journal_corrupt_records));
    journal.set("truncated_bytes", Value::UInt(c.journal_truncated_bytes));
    journal.set("append_failed", Value::UInt(c.journal_append_failed));
    v.set("journal", journal);

    let mut runner = Value::object();
    for (key, count) in inner.runner.health() {
        runner.set(&key, Value::UInt(count));
    }
    v.set("runner", runner);
    v
}

// ----------------------------------------------------------------- signal

/// SIGTERM/SIGINT → drain. The handler only flips an atomic (the one
/// async-signal-safe thing worth doing); the accept loop polls it.
#[allow(unsafe_code)]
mod signal {
    use std::sync::atomic::{AtomicBool, Ordering};

    static DRAIN: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        DRAIN.store(true, Ordering::SeqCst);
    }

    /// Installs the handlers (idempotent).
    pub fn install() {
        let handler = on_signal as extern "C" fn(i32) as usize;
        // SAFETY: `signal` is the libc function of that name; the
        // handler is a plain extern "C" fn that only stores a relaxed
        // atomic flag, which is async-signal-safe.
        unsafe {
            signal(SIGTERM, handler);
            signal(SIGINT, handler);
        }
    }

    /// Whether a drain signal has arrived.
    pub fn drain_requested() -> bool {
        DRAIN.load(Ordering::SeqCst)
    }
}
