//! End-to-end daemon tests over a real Unix socket with mock runners:
//! the full verb set, admission control, panic isolation, the
//! watchdog, and graceful drain — without paying for real
//! optimizations. Digest parity against the actual optimizer lives in
//! the workspace-root `serve_e2e` suite; this file pins the *service*
//! semantics.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use smartly_failpoint as fail;
use smartly_sat::Deadline;
use smartly_server::{
    wire, DrainReport, JobRunner, JobSpec, RunOutcome, Server, ServerConfig, ServerHandle,
    FP_ACCEPT,
};

// the fail-point registry is process-global and every test boots its
// own daemon, so the whole file serializes on one lock
static LOCK: Mutex<()> = Mutex::new(());

fn locked() -> MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn tmp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("smartly_serve_{tag}_{}", std::process::id()))
}

/// Done instantly; digest is a deterministic function of the source.
struct InstantRunner;

impl JobRunner for InstantRunner {
    fn run(&self, spec: &JobSpec, _deadline: &Deadline) -> RunOutcome {
        RunOutcome::Done {
            digest: format!("digest:{:016x}", smartly_sat::fnv64(spec.source.as_bytes())),
            verilog: format!("// optimized\n{}", spec.source),
            modules_poisoned: 0,
        }
    }

    fn health(&self) -> Vec<(String, u64)> {
        vec![("mock_runner".to_string(), 1)]
    }
}

/// Blocks every job until the gate opens (pins "running" states).
struct GatedRunner {
    gate: Arc<AtomicBool>,
}

impl JobRunner for GatedRunner {
    fn run(&self, spec: &JobSpec, _deadline: &Deadline) -> RunOutcome {
        let opened_in_time =
            wait_until(Duration::from_secs(10), || self.gate.load(Ordering::SeqCst));
        assert!(opened_in_time, "test gate never opened");
        RunOutcome::Done {
            digest: format!("gated:{}", spec.id),
            verilog: String::new(),
            modules_poisoned: 0,
        }
    }
}

/// Panics on sources containing "boom", otherwise instant.
struct PanicRunner;

impl JobRunner for PanicRunner {
    fn run(&self, spec: &JobSpec, deadline: &Deadline) -> RunOutcome {
        if spec.source.contains("boom") {
            panic!("injected runner panic");
        }
        InstantRunner.run(spec, deadline)
    }
}

/// Ignores its deadline entirely — the non-cooperative worst case the
/// watchdog exists for. Bounded so the abandoned thread eventually
/// retires instead of outliving the test binary.
struct WedgeRunner;

impl JobRunner for WedgeRunner {
    fn run(&self, spec: &JobSpec, deadline: &Deadline) -> RunOutcome {
        if spec.source.contains("wedge") {
            std::thread::sleep(Duration::from_secs(3));
        }
        InstantRunner.run(spec, deadline)
    }
}

struct Daemon {
    handle: ServerHandle,
    socket: PathBuf,
    thread: JoinHandle<DrainReport>,
}

fn start(config: ServerConfig, runner: Arc<dyn JobRunner>) -> Daemon {
    let socket = config.socket.clone();
    let server = Server::bind(config, runner).expect("bind");
    let handle = server.handle();
    let thread = std::thread::spawn(move || server.run());
    assert!(
        wait_until(Duration::from_secs(5), || UnixStream::connect(&socket)
            .is_ok()),
        "daemon never came up on {}",
        socket.display()
    );
    Daemon {
        handle,
        socket,
        thread,
    }
}

fn stop(daemon: Daemon) -> DrainReport {
    daemon.handle.shutdown();
    let report = daemon.thread.join().expect("server thread");
    let _ = std::fs::remove_file(&daemon.socket);
    report
}

fn wait_until(budget: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + budget;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    cond()
}

/// One request/response round trip on a fresh connection.
fn rpc(socket: &Path, line: &str) -> wire::Value {
    let stream = UnixStream::connect(socket).expect("connect");
    rpc_on(&stream, line)
}

/// One request/response round trip on an existing connection.
fn rpc_on(stream: &UnixStream, line: &str) -> wire::Value {
    let mut writer = stream.try_clone().expect("clone");
    writer
        .write_all(format!("{line}\n").as_bytes())
        .expect("send");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut response = String::new();
    reader.read_line(&mut response).expect("recv");
    wire::parse(&response).expect("response parses")
}

fn str_of<'v>(v: &'v wire::Value, key: &str) -> &'v str {
    v.get(key).and_then(wire::Value::as_str).unwrap_or("")
}

fn u64_of(v: &wire::Value, key: &str) -> u64 {
    v.get(key).and_then(wire::Value::as_u64).unwrap_or(u64::MAX)
}

fn submit(socket: &Path, source: &str) -> wire::Value {
    let mut req = wire::Value::object();
    req.set("cmd", wire::Value::Str("submit".into()));
    req.set("source", wire::Value::Str(source.into()));
    rpc(socket, &req.render())
}

#[test]
fn full_verb_roundtrip_over_the_socket() {
    let _g = locked();
    let config = ServerConfig::new(tmp("roundtrip.sock"));
    let daemon = start(config, Arc::new(InstantRunner));

    let accepted = submit(&daemon.socket, "module a; endmodule");
    assert_eq!(accepted.get("ok"), Some(&wire::Value::Bool(true)));
    let id = u64_of(&accepted, "id");
    assert!(id >= 1);

    let result = rpc(
        &daemon.socket,
        &format!("{{\"cmd\":\"result\",\"id\":{id},\"verilog\":true}}"),
    );
    assert_eq!(str_of(&result, "status"), "done");
    assert!(str_of(&result, "digest").starts_with("digest:"));
    assert!(str_of(&result, "verilog").contains("optimized"));

    let status = rpc(
        &daemon.socket,
        &format!("{{\"cmd\":\"status\",\"id\":{id}}}"),
    );
    assert_eq!(str_of(&status, "status"), "done");

    // digest is omitted from result only when verilog isn't requested?
    // no: digest is always present, verilog is the opt-in field
    let lean = rpc(
        &daemon.socket,
        &format!("{{\"cmd\":\"result\",\"id\":{id}}}"),
    );
    assert!(!str_of(&lean, "digest").is_empty());
    assert_eq!(lean.get("verilog"), None);

    let health = rpc(&daemon.socket, "{\"cmd\":\"health\"}");
    assert_eq!(health.get("ok"), Some(&wire::Value::Bool(true)));
    let jobs = health.get("jobs").expect("jobs block");
    assert_eq!(u64_of(jobs, "accepted"), 1);
    assert_eq!(u64_of(jobs, "completed"), 1);
    let runner = health.get("runner").expect("runner block");
    assert_eq!(
        u64_of(runner, "mock_runner"),
        1,
        "runner health is surfaced"
    );

    let unknown = rpc(&daemon.socket, "{\"cmd\":\"status\",\"id\":999}");
    assert_eq!(unknown.get("ok"), Some(&wire::Value::Bool(false)));
    let garbage = rpc(&daemon.socket, "not json at all");
    assert_eq!(garbage.get("ok"), Some(&wire::Value::Bool(false)));

    let report = stop(daemon);
    assert_eq!(report.completed, 1);
    assert!(report.clean);
}

#[test]
fn full_queue_rejects_with_overloaded() {
    let _g = locked();
    let gate = Arc::new(AtomicBool::new(false));
    let mut config = ServerConfig::new(tmp("overload.sock"));
    config.queue_capacity = 1;
    let daemon = start(config, Arc::new(GatedRunner { gate: gate.clone() }));

    // job 1 must be *running* (off the queue) before we measure depth
    let first = u64_of(&submit(&daemon.socket, "m1"), "id");
    assert!(wait_until(Duration::from_secs(5), || {
        let s = rpc(
            &daemon.socket,
            &format!("{{\"cmd\":\"status\",\"id\":{first}}}"),
        );
        str_of(&s, "status") == "running"
    }));

    let second = submit(&daemon.socket, "m2");
    assert_eq!(second.get("ok"), Some(&wire::Value::Bool(true)));
    let third = submit(&daemon.socket, "m3");
    assert_eq!(str_of(&third, "rejected"), "overloaded");

    gate.store(true, Ordering::SeqCst);
    let done = rpc(
        &daemon.socket,
        &format!("{{\"cmd\":\"result\",\"id\":{}}}", u64_of(&second, "id")),
    );
    assert_eq!(str_of(&done, "status"), "done");

    let health = rpc(&daemon.socket, "{\"cmd\":\"health\"}");
    let jobs = health.get("jobs").expect("jobs block");
    assert_eq!(u64_of(jobs, "rejected_overloaded"), 1);
    assert_eq!(u64_of(jobs, "accepted"), 2);

    let report = stop(daemon);
    assert_eq!(report.completed, 2);
}

#[test]
fn accept_failpoint_injects_rejections() {
    let _g = locked();
    fail::disarm_all();
    let config = ServerConfig::new(tmp("acceptfp.sock"));
    let daemon = start(config, Arc::new(InstantRunner));

    fail::arm(FP_ACCEPT, "hit:1").expect("arm");
    let first = submit(&daemon.socket, "m1");
    assert_eq!(str_of(&first, "rejected"), "overloaded");
    let second = submit(&daemon.socket, "m2");
    assert_eq!(second.get("ok"), Some(&wire::Value::Bool(true)));
    fail::disarm_all();

    let health = rpc(&daemon.socket, "{\"cmd\":\"health\"}");
    let jobs = health.get("jobs").expect("jobs");
    assert_eq!(u64_of(jobs, "rejected_overloaded"), 1);
    assert_eq!(u64_of(jobs, "accepted"), 1);
    stop(daemon);
}

#[test]
fn a_panicking_job_poisons_itself_not_the_daemon() {
    let _g = locked();
    let config = ServerConfig::new(tmp("panic.sock"));
    let daemon = start(config, Arc::new(PanicRunner));

    let bad = u64_of(&submit(&daemon.socket, "module boom; endmodule"), "id");
    let result = rpc(
        &daemon.socket,
        &format!("{{\"cmd\":\"result\",\"id\":{bad}}}"),
    );
    assert_eq!(str_of(&result, "status"), "poisoned");
    assert!(
        str_of(&result, "error").contains("injected runner panic"),
        "panic payload surfaces: {result:?}"
    );

    // the daemon survived and the worker still serves
    let good = u64_of(&submit(&daemon.socket, "module fine; endmodule"), "id");
    let result = rpc(
        &daemon.socket,
        &format!("{{\"cmd\":\"result\",\"id\":{good}}}"),
    );
    assert_eq!(str_of(&result, "status"), "done");

    let report = stop(daemon);
    assert_eq!(report.poisoned, 1);
    assert_eq!(report.completed, 1);
}

#[test]
fn watchdog_poisons_a_wedged_job_and_replaces_the_worker() {
    let _g = locked();
    let mut config = ServerConfig::new(tmp("wedge.sock"));
    config.watchdog_grace = Duration::from_millis(100);
    config.watchdog_poll = Duration::from_millis(10);
    let daemon = start(config, Arc::new(WedgeRunner));

    // timeout_ms arms the budget the watchdog judges against
    let req = "{\"cmd\":\"submit\",\"source\":\"wedge\",\"timeout_ms\":50}";
    let wedged = u64_of(&rpc(&daemon.socket, req), "id");
    let result = rpc(
        &daemon.socket,
        &format!("{{\"cmd\":\"result\",\"id\":{wedged}}}"),
    );
    assert_eq!(str_of(&result, "status"), "poisoned");
    assert!(str_of(&result, "error").contains("watchdog"));

    // the replacement worker keeps the queue moving while the wedged
    // thread is still asleep
    let next = u64_of(&submit(&daemon.socket, "module quick; endmodule"), "id");
    let result = rpc(
        &daemon.socket,
        &format!("{{\"cmd\":\"result\",\"id\":{next}}}"),
    );
    assert_eq!(str_of(&result, "status"), "done");

    let report = stop(daemon);
    assert_eq!(report.poisoned, 1);
    assert_eq!(report.completed, 1);
}

#[test]
fn drain_stops_admissions_and_defers_queued_jobs_to_restart() {
    let _g = locked();
    let gate = Arc::new(AtomicBool::new(false));
    let journal = tmp("drain.wal");
    let _ = std::fs::remove_file(&journal);
    let mut config = ServerConfig::new(tmp("drain.sock"));
    config.journal = Some(journal.clone());
    config.drain_grace = Duration::from_millis(500);
    let daemon = start(config, Arc::new(GatedRunner { gate: gate.clone() }));

    let running = u64_of(&submit(&daemon.socket, "held"), "id");
    assert!(wait_until(Duration::from_secs(5), || {
        let s = rpc(
            &daemon.socket,
            &format!("{{\"cmd\":\"status\",\"id\":{running}}}"),
        );
        str_of(&s, "status") == "running"
    }));
    let queued = u64_of(&submit(&daemon.socket, "queued"), "id");

    // drain over the wire: admissions stop immediately
    let stream = UnixStream::connect(&daemon.socket).expect("connect");
    let drained = rpc_on(&stream, "{\"cmd\":\"drain\"}");
    assert_eq!(drained.get("draining"), Some(&wire::Value::Bool(true)));
    let late = rpc_on(&stream, "{\"cmd\":\"submit\",\"source\":\"late\"}");
    assert_eq!(str_of(&late, "rejected"), "draining");

    // the held job ignores its tripped deadline, so drain eventually
    // force-poisons it; the queued job is left for the next start
    let report = daemon.thread.join().expect("server thread");
    assert!(!report.clean, "the gated job had to be force-poisoned");
    assert_eq!(report.poisoned, 1);
    assert_eq!(report.queued_for_restart, 1);
    gate.store(true, Ordering::SeqCst); // let the abandoned thread retire

    // restart on the same journal: the queued job re-runs to done
    let mut config = ServerConfig::new(tmp("drain2.sock"));
    config.journal = Some(journal.clone());
    let daemon = start(config, Arc::new(InstantRunner));
    assert_eq!(daemon.handle.counters().replayed_requeued, 1);
    let result = rpc(
        &daemon.socket,
        &format!("{{\"cmd\":\"result\",\"id\":{queued}}}"),
    );
    assert_eq!(str_of(&result, "status"), "done", "{result:?}");
    // the force-poisoned job's terminal state also survived the restart
    let held = rpc(
        &daemon.socket,
        &format!("{{\"cmd\":\"result\",\"id\":{running}}}"),
    );
    assert_eq!(str_of(&held, "status"), "poisoned");
    stop(daemon);
    let _ = std::fs::remove_file(&journal);
}

#[test]
fn stale_socket_files_are_reclaimed_live_ones_are_not() {
    let _g = locked();
    let socket = tmp("stale.sock");
    // a dead daemon's leftover socket file
    std::fs::remove_file(&socket).ok();
    drop(std::os::unix::net::UnixListener::bind(&socket).expect("first bind"));
    let daemon = start(ServerConfig::new(socket.clone()), Arc::new(InstantRunner));

    // but a *live* daemon must not be displaced
    let err = Server::bind(ServerConfig::new(socket.clone()), Arc::new(InstantRunner))
        .map(|_| ())
        .expect_err("second daemon refused");
    assert!(err.message.contains("already serving"), "{err}");
    stop(daemon);
}
