//! The journal-replay matrix, exercised through `Server::bind` so what
//! is pinned is the daemon's observable recovery behaviour, not just
//! the codec:
//!
//! * clean restart — completed jobs come back queryable, nothing re-runs;
//! * torn final record — the prefix survives, the tail is truncated
//!   and counted;
//! * checksum flip — the rotten record is skipped and counted, the
//!   records around it survive;
//! * empty or missing journal — a cold start, not an error.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use smartly_sat::Deadline;
use smartly_server::journal::{Journal, Record};
use smartly_server::{wire, JobRunner, JobSpec, RunOutcome, Server, ServerConfig};

static LOCK: Mutex<()> = Mutex::new(());

fn locked() -> MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn tmp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("smartly_replay_{tag}_{}", std::process::id()))
}

struct InstantRunner;

impl JobRunner for InstantRunner {
    fn run(&self, spec: &JobSpec, _deadline: &Deadline) -> RunOutcome {
        RunOutcome::Done {
            digest: format!("digest:{:016x}", smartly_sat::fnv64(spec.source.as_bytes())),
            verilog: String::new(),
            modules_poisoned: 0,
        }
    }
}

fn rpc(socket: &Path, line: &str) -> wire::Value {
    let stream = UnixStream::connect(socket).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    writer
        .write_all(format!("{line}\n").as_bytes())
        .expect("send");
    let mut reader = BufReader::new(stream);
    let mut response = String::new();
    reader.read_line(&mut response).expect("recv");
    wire::parse(&response).expect("response parses")
}

fn str_of<'v>(v: &'v wire::Value, key: &str) -> &'v str {
    v.get(key).and_then(wire::Value::as_str).unwrap_or("")
}

/// Boots a daemon on `journal`, returns (socket, join, handle).
fn boot(
    tag: &str,
    journal: &Path,
) -> (
    PathBuf,
    std::thread::JoinHandle<smartly_server::DrainReport>,
    smartly_server::ServerHandle,
) {
    let mut config = ServerConfig::new(tmp(&format!("{tag}.sock")));
    config.journal = Some(journal.to_path_buf());
    let socket = config.socket.clone();
    let server = Server::bind(config, Arc::new(InstantRunner)).expect("bind");
    let handle = server.handle();
    let thread = std::thread::spawn(move || server.run());
    let deadline = Instant::now() + Duration::from_secs(5);
    while UnixStream::connect(&socket).is_err() {
        assert!(Instant::now() < deadline, "daemon never came up");
        std::thread::sleep(Duration::from_millis(10));
    }
    (socket, thread, handle)
}

fn accepted(id: u64, source: &str) -> Record {
    Record::Accepted {
        id,
        source: source.to_string(),
        level: "full".into(),
        timeout_ms: 0,
        verify: false,
    }
}

#[test]
fn clean_restart_serves_old_results_without_rerunning() {
    let _g = locked();
    let journal = tmp("clean.wal");
    let _ = std::fs::remove_file(&journal);

    let (socket, thread, handle) = boot("clean1", &journal);
    let first = rpc(
        &socket,
        "{\"cmd\":\"submit\",\"source\":\"module a; endmodule\"}",
    );
    let id = first.get("id").and_then(wire::Value::as_u64).expect("id");
    let done = rpc(&socket, &format!("{{\"cmd\":\"result\",\"id\":{id}}}"));
    let digest = str_of(&done, "digest").to_string();
    assert!(!digest.is_empty());
    handle.shutdown();
    thread.join().expect("join");

    let (socket, thread, handle) = boot("clean2", &journal);
    let counters = handle.counters();
    assert_eq!(counters.replayed_completed, 1);
    assert_eq!(counters.replayed_requeued, 0);
    assert_eq!(counters.journal_corrupt_records, 0);
    assert_eq!(counters.journal_truncated_bytes, 0);
    let replayed = rpc(&socket, &format!("{{\"cmd\":\"result\",\"id\":{id}}}"));
    assert_eq!(str_of(&replayed, "status"), "done");
    assert_eq!(
        str_of(&replayed, "digest"),
        digest,
        "digest survives restart"
    );
    handle.shutdown();
    thread.join().expect("join");
    let _ = std::fs::remove_file(&journal);
}

#[test]
fn torn_final_record_recovers_the_prefix_and_reruns_it() {
    let _g = locked();
    let journal = tmp("torn.wal");
    let _ = std::fs::remove_file(&journal);
    {
        let (mut j, _) = Journal::open(&journal).expect("open");
        j.append(&accepted(1, "module torn_a; endmodule"))
            .expect("append");
        j.append(&accepted(2, "module torn_b; endmodule"))
            .expect("append");
    }
    // the crash tore the second record mid-frame
    let bytes = std::fs::read(&journal).expect("read");
    std::fs::write(&journal, &bytes[..bytes.len() - 7]).expect("tear");

    let (socket, thread, handle) = boot("torn", &journal);
    let counters = handle.counters();
    assert_eq!(counters.replayed_requeued, 1, "only the intact record");
    assert!(counters.journal_truncated_bytes > 0);
    assert_eq!(counters.journal_corrupt_records, 0);
    let result = rpc(&socket, "{\"cmd\":\"result\",\"id\":1}");
    assert_eq!(str_of(&result, "status"), "done", "replayed job re-ran");
    // job 2's accept never became durable, so it simply does not exist
    let missing = rpc(&socket, "{\"cmd\":\"status\",\"id\":2}");
    assert_eq!(missing.get("ok"), Some(&wire::Value::Bool(false)));
    handle.shutdown();
    thread.join().expect("join");
    let _ = std::fs::remove_file(&journal);
}

#[test]
fn checksum_flip_skips_the_record_and_counts_it() {
    let _g = locked();
    let journal = tmp("flip.wal");
    let _ = std::fs::remove_file(&journal);
    let second_start;
    {
        let (mut j, _) = Journal::open(&journal).expect("open");
        j.append(&accepted(1, "module flip_a; endmodule"))
            .expect("append");
        second_start = std::fs::metadata(&journal).expect("meta").len() as usize;
        j.append(&accepted(2, "module flip_b; endmodule"))
            .expect("append");
        j.append(&accepted(3, "module flip_c; endmodule"))
            .expect("append");
    }
    let mut bytes = std::fs::read(&journal).expect("read");
    // flip one payload byte of record 2; framing stays intact
    bytes[second_start + 12 + 5] ^= 0x20;
    std::fs::write(&journal, &bytes).expect("corrupt");

    let (socket, thread, handle) = boot("flip", &journal);
    let counters = handle.counters();
    assert_eq!(counters.journal_corrupt_records, 1);
    assert_eq!(counters.journal_truncated_bytes, 0);
    assert_eq!(counters.replayed_requeued, 2, "records 1 and 3 survive");
    for id in [1u64, 3] {
        let result = rpc(&socket, &format!("{{\"cmd\":\"result\",\"id\":{id}}}"));
        assert_eq!(str_of(&result, "status"), "done");
    }
    let missing = rpc(&socket, "{\"cmd\":\"status\",\"id\":2}");
    assert_eq!(missing.get("ok"), Some(&wire::Value::Bool(false)));
    handle.shutdown();
    thread.join().expect("join");
    let _ = std::fs::remove_file(&journal);
}

#[test]
fn missing_and_empty_journals_are_cold_starts() {
    let _g = locked();
    for (tag, prepare) in [("missing", false), ("empty", true)] {
        let journal = tmp(&format!("{tag}.wal"));
        let _ = std::fs::remove_file(&journal);
        if prepare {
            std::fs::write(&journal, b"").expect("touch");
        }
        let (socket, thread, handle) = boot(tag, &journal);
        let counters = handle.counters();
        assert_eq!(counters.replayed_completed, 0);
        assert_eq!(counters.replayed_requeued, 0);
        assert_eq!(counters.journal_corrupt_records, 0);
        // the cold daemon is fully functional
        let sub = rpc(
            &socket,
            "{\"cmd\":\"submit\",\"source\":\"module cold; endmodule\"}",
        );
        assert_eq!(sub.get("ok"), Some(&wire::Value::Bool(true)));
        let id = sub.get("id").and_then(wire::Value::as_u64).expect("id");
        assert_eq!(id, 1, "{tag}: id counter starts fresh");
        let result = rpc(&socket, &format!("{{\"cmd\":\"result\",\"id\":{id}}}"));
        assert_eq!(str_of(&result, "status"), "done");
        handle.shutdown();
        thread.join().expect("join");
        let _ = std::fs::remove_file(&journal);
    }
}
